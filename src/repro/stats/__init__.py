"""Statistics, heatmaps and report formatting."""

from .collector import (arithmetic_mean, coefficient_of_variation,
                        geometric_mean, per_tile_difference_cdf,
                        rebin_series)
from .heatmap import (hot_cold_summary, render_ascii, supertile_matrix,
                      tile_matrix)
from .report import (experiment_header, format_series, format_table,
                     percent, rows_from_dicts, summary_line)

__all__ = [
    "geometric_mean",
    "arithmetic_mean",
    "rebin_series",
    "coefficient_of_variation",
    "per_tile_difference_cdf",
    "tile_matrix",
    "supertile_matrix",
    "render_ascii",
    "hot_cold_summary",
    "format_table",
    "format_series",
    "experiment_header",
    "summary_line",
    "percent",
    "rows_from_dicts",
]
