"""Per-tile heatmaps (the paper's Figures 2 and 9).

Turns per-tile metric dictionaries (e.g. DRAM accesses per tile) into 2D
arrays, optionally aggregated to supertile granularity, and renders them
as ASCII art for terminal inspection.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

TileCoord = Tuple[int, int]

_SHADES = " .:-=+*#%@"


def tile_matrix(per_tile: Dict[TileCoord, float], tiles_x: int,
                tiles_y: int) -> np.ndarray:
    """(tiles_y, tiles_x) array of a per-tile metric (missing tiles -> 0)."""
    matrix = np.zeros((tiles_y, tiles_x))
    for (tx, ty), value in per_tile.items():
        if 0 <= tx < tiles_x and 0 <= ty < tiles_y:
            matrix[ty, tx] = value
    return matrix


def supertile_matrix(matrix: np.ndarray, size: int) -> np.ndarray:
    """Aggregate a tile matrix to ``size x size`` supertile sums."""
    if size < 1:
        raise ValueError("supertile size must be >= 1")
    tiles_y, tiles_x = matrix.shape
    out_y = -(-tiles_y // size)
    out_x = -(-tiles_x // size)
    out = np.zeros((out_y, out_x))
    for sy in range(out_y):
        for sx in range(out_x):
            block = matrix[sy * size:(sy + 1) * size,
                           sx * size:(sx + 1) * size]
            out[sy, sx] = block.sum()
    return out


def render_ascii(matrix: np.ndarray, width: int = 0) -> str:
    """ASCII heatmap: one character per cell, darkest = hottest."""
    if matrix.size == 0:
        return ""
    peak = matrix.max()
    lines = []
    for row in matrix:
        if peak > 0:
            indices = np.minimum(
                (row / peak * (len(_SHADES) - 1)).astype(int),
                len(_SHADES) - 1)
        else:
            indices = np.zeros(len(row), dtype=int)
        lines.append("".join(_SHADES[i] for i in indices))
    return "\n".join(lines)


def hot_cold_summary(per_tile: Dict[TileCoord, float],
                     hot_fraction: float = 0.1) -> Dict[str, float]:
    """Contrast between the hottest tiles and the rest.

    Returns the share of total accesses produced by the hottest
    ``hot_fraction`` of tiles — the imbalance LIBRA exploits.
    """
    if not 0 < hot_fraction <= 1:
        raise ValueError("hot_fraction must be in (0, 1]")
    values = sorted(per_tile.values(), reverse=True)
    if not values:
        return {"hot_share": 0.0, "hot_tiles": 0, "total": 0.0}
    count = max(int(len(values) * hot_fraction), 1)
    total = float(sum(values))
    hot = float(sum(values[:count]))
    return {
        "hot_share": hot / total if total else 0.0,
        "hot_tiles": count,
        "total": total,
    }
