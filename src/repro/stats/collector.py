"""Statistics helpers shared by experiments and reports."""

from __future__ import annotations

import logging
from typing import Dict, Iterable, List, Sequence, Tuple

TileCoord = Tuple[int, int]

logger = logging.getLogger(__name__)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the standard aggregate for speedups).

    Only positive values contribute (a geometric mean is undefined at
    zero or below).  Non-positive entries usually mean a failed or
    skipped run leaked into the aggregate, so dropping them is logged
    rather than silent.
    """
    filtered = [v for v in values if v > 0]
    dropped = len(values) - len(filtered)
    if dropped:
        logger.warning(
            "geometric_mean dropped %d non-positive value(s) out of %d; "
            "the aggregate covers the remaining %d",
            dropped, len(values), len(filtered))
    if not filtered:
        return 0.0
    product = 1.0
    for value in filtered:
        product *= value
    return product ** (1.0 / len(filtered))


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain average; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def rebin_series(series: Sequence[int], factor: int) -> List[int]:
    """Sum consecutive groups of ``factor`` samples.

    The timing model records DRAM requests per simulation interval
    (1000 cycles); the paper's Figure 7 plots 5000-cycle bins, so the
    series is rebinned by a factor of 5.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    return [sum(series[i:i + factor]) for i in range(0, len(series), factor)]


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Std-dev over mean — the burstiness metric for DRAM demand series."""
    if not values:
        return 0.0
    mean = arithmetic_mean(list(values))
    if mean == 0.0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return variance ** 0.5 / mean


def per_tile_difference_cdf(frame_a: Dict[TileCoord, int],
                            frame_b: Dict[TileCoord, int],
                            thresholds: Iterable[float]
                            ) -> List[Tuple[float, float]]:
    """Cumulative fraction of tiles whose metric changed less than each
    threshold between two frames (the paper's Figure 8).

    The relative difference of a tile is |a - b| / max(a, b); tiles absent
    from both frames are ignored, tiles absent from one count as 100%
    changed (unless both are zero).
    """
    tiles = set(frame_a) | set(frame_b)
    diffs: List[float] = []
    for tile in tiles:
        a = frame_a.get(tile, 0)
        b = frame_b.get(tile, 0)
        top = max(a, b)
        if top == 0:
            continue
        diffs.append(abs(a - b) / top)
    if not diffs:
        return [(t, 1.0) for t in thresholds]
    out = []
    for threshold in thresholds:
        covered = sum(1 for d in diffs if d <= threshold)
        out.append((threshold, covered / len(diffs)))
    return out
