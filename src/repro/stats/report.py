"""Plain-text tables and series used by the benchmark harness.

Every experiment prints its results through these helpers so the output of
``pytest benchmarks/`` reads like the paper's tables: one row per
benchmark, one aggregate row, plus a short "paper says / we measure"
header that EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """A fixed-width table with an optional title line."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, values: Sequence[float],
                  max_points: int = 40) -> str:
    """A compact sparkline-style rendering of a numeric series."""
    if not values:
        return f"{name}: (empty)"
    step = max(len(values) // max_points, 1)
    sampled = [max(values[i:i + step]) for i in range(0, len(values), step)]
    peak = max(sampled) or 1.0
    blocks = " ▁▂▃▄▅▆▇█"
    chars = "".join(
        blocks[min(int(v / peak * (len(blocks) - 1)), len(blocks) - 1)]
        for v in sampled)
    return f"{name}: [{chars}] peak={peak:g}"


def experiment_header(figure: str, paper_claim: str) -> str:
    """The standard banner every benchmark prints before its table."""
    bar = "=" * 72
    return (f"\n{bar}\n"
            f"EXPERIMENT {figure}\n"
            f"paper: {paper_claim}\n"
            f"{bar}")


def summary_line(key: str, measured, paper=None) -> str:
    """One 'measured vs paper' line, grep-friendly for EXPERIMENTS.md."""
    if paper is None:
        return f"RESULT {key}: measured={_fmt(measured)}"
    return (f"RESULT {key}: measured={_fmt(measured)} "
            f"paper={_fmt(paper)}")


def percent(value: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.1f}%"


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def rows_from_dicts(dicts: List[Dict], keys: Sequence[str]) -> List[List]:
    """Extract table rows from dictionaries by key order."""
    return [[d.get(k, "") for k in keys] for d in dicts]
