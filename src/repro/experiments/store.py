"""Crash-safe sweep artifact store (checkpoint + resume).

One directory per sweep::

    <root>/
      manifest.json          # spec snapshot + grid fingerprint
      points/<point_id>.pkl  # one checksummed RunSummary per finished point
      breakers.json          # circuit-breaker state (trips survive resume)
      failures.json          # terminal per-point failures (service workers)

Every write goes through :mod:`repro.cachefile` (atomic replace +
SHA-256 checksum + advisory lock), so a SIGKILL of the sweep driver —
or of a worker process mid-write — can never leave a half-written
artifact that a resumed sweep would trust: a torn file fails the
checksum, is quarantined, and the point simply reruns.  The manifest
pins the grid fingerprint so a store can only be resumed by the spec
that created it; pointing a different grid at the same directory is an
error, not silent cross-contamination.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Dict, List, Optional, Union

from .. import cachefile
from ..errors import ConfigValidationError
from .spec import ExperimentSpec, SweepPoint

logger = logging.getLogger(__name__)

MANIFEST_NAME = "manifest.json"
POINTS_DIR = "points"
BREAKERS_NAME = "breakers.json"
FAILURES_NAME = "failures.json"


class ArtifactStore:
    """Per-point checkpoints of one sweep, keyed by ``point_id``."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    @property
    def manifest_path(self) -> Path:
        """Path of the manifest file."""
        return self.root / MANIFEST_NAME

    @property
    def points_dir(self) -> Path:
        """Directory holding the per-point artifacts."""
        return self.root / POINTS_DIR

    def point_path(self, point_id: str) -> Path:
        """Artifact path of one point."""
        return self.points_dir / f"{point_id}.pkl"

    # -- manifest -----------------------------------------------------------

    def initialize(self, spec: ExperimentSpec) -> bool:
        """Create or verify the manifest; True when resuming an old store.

        A fresh directory gets a manifest recording the spec and its
        grid fingerprint.  An existing manifest must carry the same
        fingerprint, otherwise a :class:`ConfigValidationError` explains
        the mismatch (the caller should pick a new ``--out`` directory
        or delete the stale one) — completed artifacts from one grid
        must never be served to another.
        """
        existing = self.read_manifest()
        if existing is None:
            manifest = {"fingerprint": spec.fingerprint(),
                        "spec": spec.to_dict(), "version": 1}
            cachefile.atomic_write_bytes(
                self.manifest_path,
                json.dumps(manifest, indent=2, sort_keys=True,
                           default=str).encode())
            self.points_dir.mkdir(parents=True, exist_ok=True)
            return False
        if existing.get("fingerprint") != spec.fingerprint():
            raise ConfigValidationError(
                f"artifact store {self.root} was created by a different "
                f"experiment grid (stored fingerprint "
                f"{existing.get('fingerprint')!r}, this spec "
                f"{spec.fingerprint()!r}); use a fresh --out directory")
        self.points_dir.mkdir(parents=True, exist_ok=True)
        return True

    def read_manifest(self) -> Optional[dict]:
        """The parsed manifest, or None when absent/unreadable.

        A corrupt manifest is quarantined (renamed aside) and treated as
        absent — the store re-initializes and completed artifacts are
        still honoured, because point artifacts carry their own
        checksums.
        """
        path = self.manifest_path
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            cachefile.quarantine(path, f"unreadable manifest: {exc}")
            return None

    # -- circuit-breaker state ----------------------------------------------

    @property
    def breakers_path(self) -> Path:
        """Path of the persisted circuit-breaker state."""
        return self.root / BREAKERS_NAME

    def record_breaker_state(self, state: dict) -> None:
        """Persist a :meth:`CircuitBreaker.to_state` snapshot (atomic).

        Written at the end of every supervised sweep, so a resumed
        sweep honours earlier trips: a (benchmark, config) combination
        quarantined yesterday stays quarantined until its cooldown —
        not until someone happens to rerun it three more times.
        """
        cachefile.atomic_write_bytes(
            self.breakers_path,
            json.dumps(state, indent=2, sort_keys=True,
                       default=str).encode())

    def load_breaker_state(self) -> Optional[dict]:
        """The persisted breaker snapshot, or None (absent/corrupt).

        A corrupt file is quarantined and treated as absent — losing
        breaker history merely costs a few retries, never correctness.
        """
        path = self.breakers_path
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            cachefile.quarantine(path, f"unreadable breaker state: {exc}")
            return None

    # -- terminal point failures --------------------------------------------

    @property
    def failures_path(self) -> Path:
        """Path of the recorded terminal per-point failures."""
        return self.root / FAILURES_NAME

    def record_point_failure(self, point_id: str, error: str,
                             error_type: str = "") -> None:
        """Persist one point's terminal failure (atomic, read-modify-write).

        A local ``run_sweep`` keeps failures in the returned
        :class:`~repro.experiments.engine.SweepResult`; the distributed
        service has no single driver process holding that object, so
        workers record terminal failures here and the aggregation step
        (:func:`~repro.experiments.engine.sweep_result_from_store`)
        reads them back.  The sidecar lock serializes concurrent workers
        on a shared store directory.
        """
        path = self.failures_path
        with cachefile.file_lock(path):
            failures = self._read_failures_unlocked()
            failures[point_id] = {"error": error, "error_type": error_type}
            cachefile.atomic_write_bytes(
                path, json.dumps(failures, indent=2,
                                 sort_keys=True).encode())

    def clear_point_failure(self, point_id: str) -> None:
        """Drop a recorded failure (a later attempt of the point passed)."""
        path = self.failures_path
        with cachefile.file_lock(path):
            failures = self._read_failures_unlocked()
            if point_id in failures:
                del failures[point_id]
                cachefile.atomic_write_bytes(
                    path, json.dumps(failures, indent=2,
                                     sort_keys=True).encode())

    def load_point_failures(self) -> Dict[str, dict]:
        """Recorded terminal failures keyed by point id (corrupt → empty)."""
        with cachefile.file_lock(self.failures_path):
            return self._read_failures_unlocked()

    def _read_failures_unlocked(self) -> Dict[str, dict]:
        path = self.failures_path
        if not path.exists():
            return {}
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            cachefile.quarantine(path, f"unreadable failure log: {exc}")
            return {}
        return data if isinstance(data, dict) else {}

    # -- point artifacts ----------------------------------------------------

    def save(self, point_id: str, summary) -> None:
        """Checkpoint one completed point (atomic, checksummed, locked)."""
        path = self.point_path(point_id)
        with cachefile.file_lock(path):
            cachefile.write_cache(summary, path)

    def load(self, point_id: str):
        """One point's summary, or None (missing or quarantined-corrupt)."""
        return cachefile.load_or_quarantine(self.point_path(point_id))

    def completed_ids(self) -> List[str]:
        """Point ids with an artifact on disk (content not yet verified)."""
        if not self.points_dir.is_dir():
            return []
        return sorted(p.stem for p in self.points_dir.glob("*.pkl"))

    def load_completed(self, points: List[SweepPoint]) -> Dict[str, object]:
        """Verified summaries for every already-completed point of a grid.

        Reads each artifact through the checksum layer; corrupt entries
        are quarantined and simply omitted, so the engine reruns them.
        """
        done: Dict[str, object] = {}
        on_disk = set(self.completed_ids())
        for point in points:
            if point.point_id in on_disk:
                summary = self.load(point.point_id)
                if summary is not None:
                    done[point.point_id] = summary
        return done
