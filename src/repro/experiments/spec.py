"""Declarative sweep specifications (the paper's parameter-sweep grids).

An :class:`ExperimentSpec` names *what* to measure — benchmarks, frame
count, screen geometry, the GPU-variant kinds to compare — and the
*axes* to grid over: named dimensions whose values are applied to each
point's :class:`~repro.config.GPUConfig` before simulation.  The spec is
a plain dataclass, loadable from YAML or JSON, so the Figure 18/19
sweeps become checked-in files instead of hand-written scripts.

Axis names are either a friendly alias from :data:`AXIS_ALIASES`
(``supertile``, ``dram_bandwidth``, ``resize_threshold``, ...), one of
the two organization knobs consumed by :meth:`GPUConfig.build`
(``raster_units``, ``cores_per_unit``), or any dotted attribute path
into :class:`~repro.config.GPUConfig` (``texture_cache.size_bytes``,
``dram.requests_per_cycle``).  :meth:`ExperimentSpec.expand` crosses
every axis with every benchmark and kind into :class:`SweepPoint`\\ s,
each with a deterministic ``point_id`` that keys the crash-safe artifact
store — the same spec always expands to the same ids, which is what
makes resume possible.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..config import GPUConfig, apply_settings, parse_kind
from ..errors import ConfigValidationError

#: Friendly axis names mapped to dotted :class:`GPUConfig` paths.
AXIS_ALIASES: Dict[str, str] = {
    "supertile": "scheduler.initial_supertile_size",
    "dram_bandwidth": "dram.requests_per_cycle",
    "hit_threshold": "scheduler.hit_ratio_threshold",
    "order_switch_threshold": "scheduler.order_switch_threshold",
    "resize_threshold": "scheduler.supertile_resize_threshold",
    "texture_l1_bytes": "texture_cache.size_bytes",
    "l2_bytes": "l2_cache.size_bytes",
    "tile_cache_bytes": "tile_cache.size_bytes",
}

#: Axis names consumed by :meth:`GPUConfig.build` itself (hardware
#: organization) rather than applied as dotted settings.
BUILD_AXES = ("raster_units", "cores_per_unit")


def resolve_axes(axes: Dict[str, Any]) -> Tuple[Dict[str, Any],
                                                Dict[str, Any]]:
    """Split one point's axis values into (build kwargs, dotted settings)."""
    build_kwargs: Dict[str, Any] = {}
    settings: Dict[str, Any] = {}
    for name, value in axes.items():
        if name in BUILD_AXES:
            build_kwargs[name] = value
        else:
            settings[AXIS_ALIASES.get(name, name)] = value
    return build_kwargs, settings


@dataclass(frozen=True)
class SweepPoint:
    """One fully-resolved grid point: a (benchmark, kind, axes) triple.

    Frozen and hashable so points can key dictionaries, and picklable so
    the process-pool backend can ship them to workers.  ``axes`` is
    stored as a sorted tuple of ``(name, value)`` pairs for both
    reasons; use :attr:`axis_values` for the dict view.
    """

    benchmark: str
    kind: str
    axes: Tuple[Tuple[str, Any], ...]
    frames: int
    width: int
    height: int

    @property
    def axis_values(self) -> Dict[str, Any]:
        """The axis assignment of this point as a dict."""
        return dict(self.axes)

    @property
    def point_id(self) -> str:
        """Deterministic id keying this point's artifact across runs."""
        blob = json.dumps(
            [self.benchmark, self.kind, sorted(self.axes),
             self.frames, self.width, self.height],
            sort_keys=True, default=str)
        digest = hashlib.sha1(blob.encode()).hexdigest()[:12]
        return f"{self.benchmark}-{self.kind}-{digest}"

    def resolved(self) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """(build kwargs, dotted settings) for :meth:`GPUConfig.build`."""
        return resolve_axes(self.axis_values)

    def describe(self) -> str:
        """``benchmark/kind axis=value ...`` for logs and reports."""
        tail = " ".join(f"{k}={v}" for k, v in self.axes)
        return f"{self.benchmark}/{self.kind}" + (f" {tail}" if tail else "")


@dataclass
class ExperimentSpec:
    """A declarative sweep: benchmarks x kinds x axis grid.

    ``axes`` maps axis names (see module docstring) to the list of
    values to grid over; an empty dict degenerates to a plain
    benchmark-by-kind comparison.  ``baseline_kind`` names the kind the
    aggregation helpers normalize speedups against and must be a member
    of ``kinds``.  The execution-policy fields (``workers``,
    ``timeout_s``, ``retries``, ``backoff_s``) are defaults the engine
    honours but callers may override per run; they are deliberately
    excluded from :meth:`fingerprint`, so rerunning the same grid with
    more workers still resumes the same artifact store.
    """

    name: str
    benchmarks: List[str]
    kinds: List[str] = field(default_factory=lambda: ["baseline", "libra"])
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    frames: int = 8
    width: int = 960
    height: int = 512
    baseline_kind: str = "baseline"
    workers: int = 1
    timeout_s: Optional[float] = None
    retries: int = 1
    backoff_s: float = 0.25

    # -- validation / expansion ---------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ConfigValidationError` on an unusable spec."""
        from ..workloads import benchmark_names, micro_benchmark_names
        if not self.name:
            raise ConfigValidationError("experiment needs a name")
        if not self.benchmarks:
            raise ConfigValidationError("experiment needs >= 1 benchmark")
        valid = benchmark_names() + micro_benchmark_names()
        unknown = [b for b in self.benchmarks if b not in valid]
        if unknown:
            raise ConfigValidationError(
                f"unknown benchmark(s) {', '.join(unknown)}; "
                f"valid: {', '.join(valid)}")
        if not self.kinds:
            raise ConfigValidationError("experiment needs >= 1 config kind")
        for kind in self.kinds:
            parse_kind(kind)
        if self.baseline_kind not in self.kinds:
            raise ConfigValidationError(
                f"baseline kind {self.baseline_kind!r} not among the "
                f"swept kinds {self.kinds}")
        if self.frames < 1:
            raise ConfigValidationError("frames must be >= 1")
        if self.width < 1 or self.height < 1:
            raise ConfigValidationError("screen must be at least 1x1")
        if self.retries < 0:
            raise ConfigValidationError("retries must be >= 0")
        if self.workers < 1:
            raise ConfigValidationError("workers must be >= 1")
        for axis, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ConfigValidationError(
                    f"axis {axis!r} needs a non-empty list of values")
            if axis not in BUILD_AXES:
                # Prove the dotted path exists before spending hours on
                # the grid; per-point value validation happens at build.
                path = AXIS_ALIASES.get(axis, axis)
                apply_settings(GPUConfig(), {path: values[0]})

    @property
    def num_points(self) -> int:
        """Grid size: benchmarks x kinds x the axis cross product."""
        total = len(self.benchmarks) * len(self.kinds)
        for values in self.axes.values():
            total *= len(values)
        return total

    def expand(self) -> List[SweepPoint]:
        """The full grid, in deterministic order.

        Kinds vary fastest so a point and its baseline sibling sit next
        to each other, then the axis combinations (axes in insertion
        order), then benchmarks.
        """
        names = list(self.axes)
        combos = list(itertools.product(
            *(self.axes[name] for name in names))) or [()]
        points = []
        for benchmark in self.benchmarks:
            for combo in combos:
                axes = tuple(sorted(zip(names, combo)))
                for kind in self.kinds:
                    points.append(SweepPoint(
                        benchmark=benchmark, kind=kind, axes=axes,
                        frames=self.frames, width=self.width,
                        height=self.height))
        return points

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON/YAML-ready mapping (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "benchmarks": list(self.benchmarks),
            "kinds": list(self.kinds),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "frames": self.frames,
            "width": self.width,
            "height": self.height,
            "baseline_kind": self.baseline_kind,
            "workers": self.workers,
            "timeout_s": self.timeout_s,
            "retries": self.retries,
            "backoff_s": self.backoff_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        """Build a spec from a parsed YAML/JSON mapping (strict keys)."""
        if not isinstance(data, dict):
            raise ConfigValidationError(
                f"experiment spec must be a mapping, got {type(data).__name__}")
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigValidationError(
                f"unknown spec key(s) {', '.join(sorted(unknown))}; "
                f"valid: {', '.join(sorted(known))}")
        if "name" not in data or "benchmarks" not in data:
            raise ConfigValidationError(
                "experiment spec needs at least 'name' and 'benchmarks'")
        spec = cls(**data)
        spec.validate()
        return spec

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ExperimentSpec":
        """Load a spec from a ``.yaml``/``.yml`` or ``.json`` file."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ConfigValidationError(
                f"cannot read experiment spec {path}: {exc}") from exc
        if path.suffix in (".yaml", ".yml"):
            try:
                import yaml
            except ImportError as exc:  # pragma: no cover - yaml is bundled
                raise ConfigValidationError(
                    f"{path}: YAML specs need PyYAML installed; "
                    "use a .json spec instead") from exc
            try:
                data = yaml.safe_load(text)
            except yaml.YAMLError as exc:
                raise ConfigValidationError(
                    f"{path}: invalid YAML ({exc})") from exc
        else:
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ConfigValidationError(
                    f"{path}: invalid JSON ({exc})") from exc
        return cls.from_dict(data)

    def fingerprint(self) -> str:
        """Identity of the *grid* (not the execution policy).

        Two specs with the same fingerprint expand to the same points,
        so their artifact stores are interchangeable; changing workers
        or timeouts must not orphan completed work.
        """
        grid = {k: v for k, v in self.to_dict().items()
                if k not in ("workers", "timeout_s", "retries", "backoff_s")}
        blob = json.dumps(grid, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


def parse_axis_value(text: str) -> Any:
    """``"4"`` → 4, ``"0.25"`` → 0.25, anything else verbatim.

    The CLI's ``--axis name=v1,v2`` values arrive as strings; config
    fields are numeric, so numbers are recognized eagerly.
    """
    for conv in (int, float):
        try:
            return conv(text)
        except ValueError:
            continue
    return text


def parse_axis_option(option: str) -> Tuple[str, List[Any]]:
    """Parse one ``--axis name=v1,v2,...`` occurrence."""
    name, sep, rest = option.partition("=")
    values = [parse_axis_value(v.strip())
              for v in rest.split(",") if v.strip()]
    if not sep or not name.strip() or not values:
        raise ConfigValidationError(
            f"bad axis {option!r}; expected name=value[,value...]")
    return name.strip(), values
