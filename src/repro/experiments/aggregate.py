"""Aggregation over sweep results: speedup matrices, geomeans, marginals.

A finished :class:`~repro.experiments.engine.SweepResult` is a flat list
of per-point summaries; the figures want them reshaped.  The helpers
here pivot the grid into a :class:`SpeedupMatrix` — one row per
(benchmark, axis combination), one speedup column per kind, normalized
against the spec's ``baseline_kind`` — and reduce it further into
geomeans and per-axis marginals (the Figure 18 "speedup vs number of
Raster Units" curve is exactly the ``raster_units`` marginal of a
two-axis sweep).

Provenance rides along: every cell knows whether its number came from a
clean run (``completed``/``resumed``), a recovery (``degraded`` —
marked ``†`` in tables), or is a hole (``✗`` failed, ``⊘`` quarantined
by the circuit breaker, ``—`` skipped/absent), and a matrix with any
hole renders a ``PARTIAL`` footer.  A degraded-mode sweep can therefore
never be mistaken for a complete one downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigValidationError
from ..stats import format_table, geometric_mean
from .engine import SweepResult


@dataclass
class MatrixRow:
    """One (benchmark, axis combination) with its per-kind numbers."""

    benchmark: str
    axes: Dict[str, Any]
    #: kind -> total simulated cycles (only kinds that completed).
    cycles: Dict[str, int] = field(default_factory=dict)
    #: kind -> speedup over the baseline kind at this same grid cell
    #: (empty when the baseline itself is missing).
    speedups: Dict[str, float] = field(default_factory=dict)
    #: kind -> how that cell's number was obtained (``completed``,
    #: ``resumed``, ``degraded``) or why it is missing (``failed``,
    #: ``tripped``, ``skipped``).  Kinds absent from the sweep are
    #: absent here too.
    provenance: Dict[str, str] = field(default_factory=dict)

    def cell_mark(self, kind: str) -> str:
        """Table marker for one cell ('' for a clean value)."""
        return {"degraded": "†", "failed": "✗",
                "tripped": "⊘"}.get(self.provenance.get(kind, ""), "")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot of this row (the service wire format)."""
        return {"benchmark": self.benchmark, "axes": dict(self.axes),
                "cycles": dict(self.cycles),
                "speedups": dict(self.speedups),
                "provenance": dict(self.provenance)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MatrixRow":
        """Rebuild a row from :meth:`to_dict` output."""
        return cls(benchmark=data["benchmark"],
                   axes=dict(data.get("axes", {})),
                   cycles={k: int(v)
                           for k, v in data.get("cycles", {}).items()},
                   speedups={k: float(v)
                             for k, v in data.get("speedups", {}).items()},
                   provenance=dict(data.get("provenance", {})))


@dataclass
class SpeedupMatrix:
    """The pivoted sweep: rows x kinds, normalized to ``baseline_kind``."""

    baseline_kind: str
    kinds: List[str]
    axis_names: List[str]
    rows: List[MatrixRow] = field(default_factory=list)
    #: Flat snapshot of the telemetry metrics merged across every
    #: completed grid point (None when no point carried a state —
    #: sweep ran with ``point_telemetry=False`` or from pre-g4
    #: artifacts).  Counters/histograms are grid-wide sums.
    telemetry: Optional[Dict[str, float]] = None

    @property
    def partial(self) -> bool:
        """True when any cell of the grid lacks a completed value."""
        return any(p in ("failed", "tripped", "skipped")
                   for row in self.rows
                   for p in row.provenance.values())

    def _footer(self) -> str:
        """Legend appended to rendered tables of a partial matrix."""
        counts: Dict[str, int] = {}
        for row in self.rows:
            for p in row.provenance.values():
                counts[p] = counts.get(p, 0) + 1
        parts = [f"{counts[p]} {p}" for p in
                 ("degraded", "failed", "tripped", "skipped")
                 if counts.get(p)]
        prefix = "PARTIAL matrix: " if self.partial else "annotations: "
        return (prefix + ", ".join(parts)
                + "  († degraded, ✗ failed, ⊘ breaker-tripped)")

    def geomeans(self) -> Dict[str, float]:
        """Geometric-mean speedup per kind over all complete rows."""
        means: Dict[str, float] = {}
        for kind in self.kinds:
            values = [row.speedups[kind] for row in self.rows
                      if kind in row.speedups]
            if values:
                means[kind] = geometric_mean(values)
        return means

    def marginal(self, axis: str) -> Dict[Any, Dict[str, float]]:
        """Per-kind geomean speedup at each value of one axis.

        Marginalizes every other dimension (benchmarks and remaining
        axes), answering "how does the speedup move along this axis" —
        e.g. the raster-unit scaling curve of Figure 18.
        """
        if axis not in self.axis_names:
            raise ConfigValidationError(
                f"unknown axis {axis!r}; swept axes: {self.axis_names}")
        out: Dict[Any, Dict[str, float]] = {}
        values = sorted({row.axes[axis] for row in self.rows},
                        key=lambda v: (str(type(v)), v))
        for value in values:
            rows = [r for r in self.rows if r.axes[axis] == value]
            out[value] = {}
            for kind in self.kinds:
                samples = [r.speedups[kind] for r in rows
                           if kind in r.speedups]
                if samples:
                    out[value][kind] = geometric_mean(samples)
        return out

    def format(self) -> str:
        """Fixed-width table: one row per grid cell plus a geomean row.

        Degraded cells carry a ``†``; holes show why (``✗`` failed,
        ``⊘`` breaker-tripped, ``—`` skipped/absent); any annotation
        adds a legend footer, and a matrix with holes says ``PARTIAL``
        in it.
        """
        headers = (["benchmark"] + list(self.axis_names)
                   + [f"{k} cycles" for k in self.kinds]
                   + [f"{k} speedup" for k in self.kinds])
        table: List[List[Any]] = []
        annotated = False
        for row in self.rows:
            line: List[Any] = [row.benchmark]
            line += [row.axes.get(a, "") for a in self.axis_names]
            for k in self.kinds:
                mark = row.cell_mark(k)
                annotated = annotated or bool(mark)
                line.append(f"{row.cycles[k]:,}{mark}"
                            if k in row.cycles else (mark or "—"))
            line += [f"{row.speedups[k]:.3f}{row.cell_mark(k)}"
                     if k in row.speedups
                     else (row.cell_mark(k) or "—")
                     for k in self.kinds]
            table.append(line)
        means = self.geomeans()
        table.append(["geomean"] + [""] * len(self.axis_names)
                     + [""] * len(self.kinds)
                     + [f"{means[k]:.3f}" if k in means else "—"
                        for k in self.kinds])
        rendered = format_table(headers, table,
                                title=f"speedup over {self.baseline_kind}")
        if annotated or self.partial:
            rendered += "\n" + self._footer()
        return rendered

    def format_marginals(self) -> str:
        """One compact table per swept axis (empty string when axis-free)."""
        blocks = []
        for axis in self.axis_names:
            headers = [axis] + [f"{k} speedup" for k in self.kinds]
            rows = []
            for value, by_kind in self.marginal(axis).items():
                rows.append([value] + [f"{by_kind[k]:.3f}"
                                       if k in by_kind else "—"
                                       for k in self.kinds])
            blocks.append(format_table(
                headers, rows, title=f"marginal over {axis} "
                f"(geomean across everything else)"))
        return "\n\n".join(blocks)

    def format_telemetry(self) -> str:
        """Grid-wide telemetry counter table ('' when none collected).

        Histogram bucket expansions (``.le_`` entries) are elided —
        they are for exporters, not for reading.
        """
        if not self.telemetry:
            return ""
        rows = [[name, f"{value:,.3f}".rstrip("0").rstrip(".")]
                for name, value in sorted(self.telemetry.items())
                if ".le_" not in name]
        return format_table(("metric", "value"), rows,
                            title="telemetry (merged across all "
                            "completed points)")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the whole matrix.

        This is what ``GET /v1/jobs/<id>/result`` serves and what
        :meth:`repro.service.SweepClient.result` reconstructs from;
        the schema is pinned by ``docs/service.md``.  Round-trips
        through :meth:`from_dict` preserve :meth:`to_markdown` output
        bit for bit.
        """
        return {"baseline_kind": self.baseline_kind,
                "kinds": list(self.kinds),
                "axis_names": list(self.axis_names),
                "rows": [row.to_dict() for row in self.rows],
                "telemetry": dict(self.telemetry)
                if self.telemetry is not None else None}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpeedupMatrix":
        """Rebuild a matrix from :meth:`to_dict` output."""
        telemetry = data.get("telemetry")
        return cls(baseline_kind=data["baseline_kind"],
                   kinds=list(data.get("kinds", [])),
                   axis_names=list(data.get("axis_names", [])),
                   rows=[MatrixRow.from_dict(r)
                         for r in data.get("rows", [])],
                   telemetry=dict(telemetry)
                   if telemetry is not None else None)

    def to_markdown(self) -> str:
        """GitHub-flavored markdown table (the EXPERIMENTS.md pathway).

        Carries the same provenance marks and PARTIAL footer as
        :meth:`format`, so published tables disclose degraded cells.
        """
        headers = (["benchmark"] + list(self.axis_names)
                   + [f"{k} speedup" for k in self.kinds])
        lines = ["| " + " | ".join(headers) + " |",
                 "|" + "---|" * len(headers)]
        annotated = False
        for row in self.rows:
            cells = [row.benchmark]
            cells += [str(row.axes.get(a, "")) for a in self.axis_names]
            for k in self.kinds:
                mark = row.cell_mark(k)
                annotated = annotated or bool(mark)
                cells.append(f"{row.speedups[k]:.3f}{mark}"
                             if k in row.speedups else (mark or "—"))
            lines.append("| " + " | ".join(cells) + " |")
        means = self.geomeans()
        cells = ["**geomean**"] + [""] * len(self.axis_names)
        cells += [f"**{means[k]:.3f}**" if k in means else "—"
                  for k in self.kinds]
        lines.append("| " + " | ".join(cells) + " |")
        if annotated or self.partial:
            lines.append("")
            lines.append(self._footer())
        return "\n".join(lines)


def speedup_matrix(result: SweepResult,
                   baseline_kind: Optional[str] = None) -> SpeedupMatrix:
    """Pivot a sweep result into a :class:`SpeedupMatrix`.

    Rows keep the spec's expansion order.  A cell whose baseline point
    failed gets cycles but no speedups; a failed non-baseline point is
    simply absent from its row.
    """
    spec = result.spec
    baseline = baseline_kind or spec.baseline_kind
    if baseline not in spec.kinds:
        raise ConfigValidationError(
            f"baseline kind {baseline!r} not among swept kinds "
            f"{spec.kinds}")
    cells: Dict[Tuple[str, Tuple], MatrixRow] = {}
    order: List[Tuple[str, Tuple]] = []
    for outcome in result.outcomes:
        point = outcome.point
        key = (point.benchmark, point.axes)
        if key not in cells:
            cells[key] = MatrixRow(benchmark=point.benchmark,
                                   axes=point.axis_values)
            order.append(key)
        if outcome.ok:
            cells[key].cycles[point.kind] = outcome.summary.total_cycles
        if outcome.provenance:
            cells[key].provenance[point.kind] = outcome.provenance
        elif outcome.resumed:
            cells[key].provenance[point.kind] = "resumed"
        else:
            cells[key].provenance[point.kind] = \
                "completed" if outcome.ok else outcome.status
    for key in order:
        row = cells[key]
        base = row.cycles.get(baseline)
        if not base:
            continue
        for kind, cycles in row.cycles.items():
            if cycles:
                row.speedups[kind] = base / cycles
    merged = result.merged_metrics()
    return SpeedupMatrix(baseline_kind=baseline, kinds=list(spec.kinds),
                         axis_names=list(spec.axes),
                         rows=[cells[k] for k in order],
                         telemetry=merged.snapshot() if merged else None)
