"""The sweep engine: expand, dedupe, execute, checkpoint, resume.

:func:`run_sweep` is the one entry point.  It expands an
:class:`~repro.experiments.spec.ExperimentSpec` into grid points, loads
whatever a previous (possibly killed) run already completed from the
:class:`~repro.experiments.store.ArtifactStore`, prebuilds each unique
frame trace exactly once, and executes the remaining points through
:func:`repro.harness.run_pairs` — the same supervised backend ``repro
suite`` uses, so every point inherits the per-run wall-clock timeout,
bounded retry with backoff, failure isolation and (with ``workers > 1``)
the process pool.  Each point's summary is checkpointed to the store
*from inside the runner*, i.e. in the worker process, the moment it
finishes — killing the driver mid-grid loses at most the points that
were in flight.

Parallel and chaos-mode runs go through the worker-lifecycle supervisor
(:mod:`repro.supervision`): monitored forked children with heartbeat
hang detection, adaptive deadlines, SIGTERM→SIGKILL preemption, and a
circuit breaker (keyed ``benchmark|kind``, persisted in the store as
``breakers.json``) that quarantines systematically failing
combinations.  Every outcome carries a provenance tag
(completed/resumed/degraded/failed/tripped/skipped) and a grid with
holes is reported ``[PARTIAL]`` — see ``docs/robustness.md``.  The
deterministic fault injector (:mod:`repro.chaos`, ``repro sweep
--chaos SEED``) exercises all of it end to end.

Telemetry: when the hub is enabled the engine emits a ``sweep`` span
plus one ``sweep.point.<id>`` span per executed point, and counts
``sweep.points.{total,resumed,executed,failed,tripped}``.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .. import chaos, harness, supervision
from ..config import GPUConfig
from ..gpu import GPUSimulator
from ..harness import RunSummary
from ..supervision import CircuitBreaker, SupervisionPolicy, Supervisor
from ..telemetry import HUB, HarnessSpan
from .spec import ExperimentSpec, SweepPoint
from .store import ArtifactStore

logger = logging.getLogger(__name__)


@dataclass
class PointOutcome:
    """What happened to one grid point (mirrors BenchmarkOutcome)."""

    point: SweepPoint
    #: ``ok`` (summary present), ``failed``, ``skipped`` or ``tripped``
    #: (quarantined by the circuit breaker, never attempted) — plus
    #: ``resumed`` as a flag, not a status: a resumed point is ``ok``.
    status: str
    summary: Optional[RunSummary] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    attempts: int = 0
    elapsed_s: float = 0.0
    resumed: bool = False
    #: How the result was obtained: ``completed`` (clean first
    #: attempt), ``resumed`` (artifact served from the store),
    #: ``degraded`` (ok, but only after retries or a preemption),
    #: ``failed``, ``tripped`` or ``skipped``.  Empty when the point
    #: ran on a legacy (unsupervised) backend.
    provenance: str = ""
    #: Times the supervisor had to SIGTERM/SIGKILL a worker for this
    #: point (supervised backend only).
    preemptions: int = 0

    @property
    def ok(self) -> bool:
        """True when the point has a summary (fresh or resumed)."""
        return self.status == "ok"


@dataclass
class SweepResult:
    """Everything a finished (or interrupted) sweep produced."""

    spec: ExperimentSpec
    store_root: Path
    outcomes: List[PointOutcome] = field(default_factory=list)

    @property
    def completed(self) -> List[PointOutcome]:
        """Points with a summary, resumed ones included."""
        return [o for o in self.outcomes if o.ok]

    @property
    def failed(self) -> List[PointOutcome]:
        """Points whose every attempt raised."""
        return [o for o in self.outcomes if o.status == "failed"]

    @property
    def skipped(self) -> List[PointOutcome]:
        """Points never attempted (interrupted sweep)."""
        return [o for o in self.outcomes if o.status == "skipped"]

    @property
    def tripped(self) -> List[PointOutcome]:
        """Points quarantined by the circuit breaker (never attempted)."""
        return [o for o in self.outcomes if o.status == "tripped"]

    @property
    def partial(self) -> bool:
        """True when any point lacks a summary (the matrix has holes)."""
        return len(self.completed) < len(self.outcomes)

    def provenance(self) -> Dict[str, str]:
        """point_id -> provenance for every point of the grid.

        Legacy-backend outcomes (empty provenance) are mapped from
        their status so downstream consumers (the speedup matrix) can
        always rely on a value being present.
        """
        fallback = {"ok": "completed", "failed": "failed",
                    "skipped": "skipped", "tripped": "tripped"}
        out: Dict[str, str] = {}
        for o in self.outcomes:
            if o.provenance:
                out[o.point.point_id] = o.provenance
            elif o.resumed:
                out[o.point.point_id] = "resumed"
            else:
                out[o.point.point_id] = fallback.get(o.status, o.status)
        return out

    @property
    def resumed(self) -> List[PointOutcome]:
        """Points served from the artifact store instead of re-executed."""
        return [o for o in self.outcomes if o.resumed]

    def summaries(self) -> Dict[str, RunSummary]:
        """point_id -> RunSummary for every completed point."""
        return {o.point.point_id: o.summary for o in self.completed}

    def merged_metrics(self) -> Optional["MetricsRegistry"]:
        """One registry aggregating every completed point's telemetry.

        Counters and histograms add across the grid (merged DRAM
        accesses equal the sum over the per-point artifacts); gauges
        keep the last point's value.  Returns None when no completed
        point carries a telemetry state — point telemetry disabled, or
        every artifact predates the ``telemetry_state`` field
        (``getattr`` guard: old pickles simply lack the attribute).
        """
        from ..telemetry import MetricsRegistry
        merged: Optional[MetricsRegistry] = None
        for outcome in self.completed:
            state = getattr(outcome.summary, "telemetry_state", None)
            if not state:
                continue
            if merged is None:
                merged = MetricsRegistry()
            merged.merge(state)
        return merged

    def format(self) -> str:
        """Human-readable per-point report.

        A sweep with any hole (failed/skipped/tripped point) carries a
        ``[PARTIAL]`` marker on the header line — scripts consuming
        sweep output must never mistake a degraded grid for a complete
        one.
        """
        tripped = f", {len(self.tripped)} tripped" if self.tripped else ""
        lines = [f"sweep {self.spec.name!r}: {len(self.completed)} ok "
                 f"({len(self.resumed)} resumed), {len(self.failed)} "
                 f"failed, {len(self.skipped)} skipped{tripped} "
                 f"of {len(self.outcomes)} points"
                 + (" [PARTIAL]" if self.partial else "")]
        for o in self.outcomes:
            tag = "resumed" if o.resumed else o.status
            if o.ok:
                detail = f"{o.summary.total_cycles:,} cycles"
                if o.provenance == "degraded":
                    detail += (f" (degraded: {o.attempts} attempts, "
                               f"{o.preemptions} preemptions)")
            else:
                detail = f"{o.error_type}: {o.error}"
            lines.append(f"  [{tag:>7}] {o.point.describe()} — {detail}")
        return "\n".join(lines)


def execute_point(point: SweepPoint) -> RunSummary:
    """Simulate one grid point (no caching, no store) and summarize it.

    The single source of truth for how axis values become a simulator:
    organization axes go to :meth:`GPUConfig.build`, everything else is
    applied as dotted settings *before* validation and scheduler
    construction, so threshold and supertile axes genuinely steer the
    LIBRA decision logic.  ``repro compare`` and the sweep engine both
    resolve configs through :meth:`GPUConfig.build`, which is what makes
    their numbers comparable point for point.
    """
    traces = harness.get_traces(point.benchmark, point.frames,
                                point.width, point.height)
    build_kwargs, settings = point.resolved()
    config, scheduler = GPUConfig.build(
        point.kind, screen_width=point.width, screen_height=point.height,
        settings=settings, **build_kwargs)
    simulator = GPUSimulator(config, scheduler=scheduler, name=point.kind)
    result = simulator.run(traces)
    return harness.summarize(point.benchmark, point.kind, result)


def _point_runner(benchmark: str, point_id: str, frames: int = 0,
                  points: Optional[Dict[str, SweepPoint]] = None,
                  store_root: str = "",
                  point_telemetry: bool = True,
                  driver_pid: Optional[int] = None,
                  trace_dir: str = "",
                  correlation: Optional[Dict[str, str]] = None
                  ) -> RunSummary:
    """The :func:`repro.harness.run_pairs` runner for sweep points.

    Module-level and picklable so the process-pool backend can ship it;
    ``point_id`` rides in the pair's *kind* slot and keys the full
    :class:`SweepPoint` in ``points``.  The summary is checkpointed to
    the artifact store here, inside the worker, so a completed point
    survives any later crash of the driver.  A concurrent or crashed
    predecessor may have finished the point already — the store is
    re-checked first and the artifact reused (idempotent under races).

    With ``point_telemetry`` the runner collects metrics *per point
    even in worker processes*, where the driver's hub does not reach:
    a disabled hub is enabled (sinkless) around the simulation and the
    registry reset before and disabled after, so each checkpointed
    artifact carries exactly its own point's counters.  A hub the
    caller already enabled (sequential in-process sweep) is left
    untouched — its accumulation is the caller's business — except the
    registry is snapshotted into the summary as before.

    ``driver_pid`` closes the inverse leak: forked workers inherit the
    driver's *enabled* hub, so ``point_telemetry=False`` alone used to
    leave inherited collection running in every child.  When the pid
    shows this process is a fork of the driver and telemetry was asked
    off, the inherited hub is disabled here — the child's copy only;
    the driver's own hub (same pid) is never touched.

    ``trace_dir``/``correlation`` (the sweep-service worker path): the
    runner's own telemetry session additionally streams every event to
    ``<trace_dir>/<point_id>.<pid>.jsonl`` stamped with the given
    correlation fields plus ``point_id``, so per-point streams from a
    whole fleet merge into one timeline
    (:func:`repro.telemetry.fleet_trace.fleet_chrome_trace`).  The
    pid-qualified name keeps a hung original and its adopting rerunner
    from clobbering each other's files.  The sink degrades on OSError
    — tracing never fails a point — and a local in-process sweep
    (no ``trace_dir``) is byte-for-byte unaffected.
    """
    point = points[point_id]
    if (not point_telemetry and driver_pid is not None
            and os.getpid() != driver_pid and HUB.enabled):
        HUB.disable()
    store = ArtifactStore(store_root)
    existing = store.load(point_id)
    if existing is not None:
        return existing
    # Chaos fires *after* the resume check (a completed point is never
    # re-faulted) and *before* any simulation work, so an injected
    # crash/hang costs nothing but the supervised retry.
    chaos.on_point_start(point_id, store_root)
    own_session = point_telemetry and not HUB.enabled
    trace_sink = None
    if own_session:
        HUB.metrics.reset()
        if trace_dir:
            from ..telemetry.fleet_trace import PointTraceSink
            trace_sink = PointTraceSink(
                Path(trace_dir) / f"{point_id}.{os.getpid()}.jsonl",
                extra={**(correlation or {}), "point_id": point_id})
            HUB.enable(trace_sink)
        else:
            HUB.enable()
    wall_start = time.time()
    try:
        summary = execute_point(point)
        if HUB.enabled:
            summary.telemetry = HUB.metrics.snapshot()
            summary.telemetry_state = HUB.metrics.dump()
            HUB.emit(HarnessSpan(
                name=f"sweep.point.{point_id}", wall_start_s=wall_start,
                wall_dur_s=time.time() - wall_start, status="ok",
                attempts=1,
                args={"benchmark": point.benchmark, "kind": point.kind,
                      **point.axis_values}))
            HUB.metrics.counter("sweep.points.executed").inc()
    finally:
        if own_session:
            HUB.disable()
        if trace_sink is not None:
            trace_sink.close()
    store.save(point_id, summary)
    # The crash_late chaos window: checkpoint durable, result not yet
    # returned.  The retry must be served from the store, not re-run.
    chaos.on_checkpoint_saved(point_id)
    return summary


def run_sweep(spec: ExperimentSpec,
              store_root: Union[str, Path, None] = None,
              workers: Optional[int] = None,
              timeout_s: Optional[float] = None,
              retries: Optional[int] = None,
              point_telemetry: bool = True,
              supervise: Optional[bool] = None,
              policy: Optional[SupervisionPolicy] = None) -> SweepResult:
    """Execute (or resume) the sweep a spec describes.

    ``store_root`` defaults to ``.repro_sweeps/<spec name>``; pointing a
    later invocation at the same directory resumes it — completed points
    are loaded from their checkpoints and only the remainder executes.
    ``workers``/``timeout_s``/``retries`` override the spec's execution
    policy when given.  Returns a :class:`SweepResult` whose outcome
    order matches ``spec.expand()`` regardless of resume state or
    completion order; an interrupted sweep (Ctrl-C) still returns, with
    untouched points ``skipped``.

    ``point_telemetry`` (default on) has every point — including ones
    executed in pool workers, whose processes the driver's hub never
    sees — record its own metrics state into its checkpointed artifact;
    :meth:`SweepResult.merged_metrics` then aggregates them across the
    whole grid.  Its cost is one sinkless hub session per point; pass
    ``False`` to run points with telemetry fully disabled.

    ``supervise`` selects the worker-lifecycle backend
    (:mod:`repro.supervision`): each point runs in a monitored forked
    child with heartbeat/hang detection, adaptive deadlines, escalating
    SIGTERM→SIGKILL preemption and a circuit breaker keyed by
    ``(benchmark, kind)`` whose state persists in the artifact store
    across resumes.  The default (None) auto-selects: supervised when
    ``workers > 1`` or a chaos plan (:mod:`repro.chaos`) is active —
    injected crashes in an unsupervised in-process sweep would kill the
    driver — and the legacy in-process path otherwise, which keeps
    sequential sweeps monkeypatch-friendly.  ``policy`` overrides the
    supervision tunables.
    """
    spec.validate()
    workers = spec.workers if workers is None else workers
    timeout_s = spec.timeout_s if timeout_s is None else timeout_s
    retries = spec.retries if retries is None else retries
    chaos_plan = chaos.active()
    if supervise is None:
        supervise = (workers > 1 or chaos_plan is not None) \
            and supervision.available()
    if chaos_plan is not None:
        logger.warning("sweep %s runs under %s", spec.name,
                       chaos_plan.describe())
    root = Path(store_root) if store_root is not None \
        else Path(".repro_sweeps") / spec.name
    store = ArtifactStore(root)
    resuming = store.initialize(spec)

    points = spec.expand()
    done = store.load_completed(points) if resuming else {}
    pending = [p for p in points if p.point_id not in done]
    wall_start = time.time()
    if HUB.enabled:
        HUB.metrics.counter("sweep.points.total").inc(len(points))
        HUB.metrics.counter("sweep.points.resumed").inc(len(done))
    logger.info("sweep %s: %d points (%d resumed, %d to run) -> %s",
                spec.name, len(points), len(done), len(pending), root)

    # Build each distinct trace set once up front: concurrent workers
    # would otherwise serialize on the trace-cache lock rebuilding the
    # same benchmark, and with the fork start method the in-process
    # memo is inherited for free.
    for key in sorted({(p.benchmark, p.frames, p.width, p.height)
                       for p in pending}):
        harness.get_traces(*key)

    by_id = {p.point_id: p for p in pending}
    run_pairs_kwargs = dict(
        frames=spec.frames, timeout_s=timeout_s,
        max_attempts=retries + 1, backoff_s=spec.backoff_s,
        runner=_point_runner, workers=workers,
        points=by_id, store_root=str(root),
        point_telemetry=point_telemetry, driver_pid=os.getpid())
    breaker: Optional[CircuitBreaker] = None
    if supervise:
        sup_policy = policy or SupervisionPolicy()
        breaker = CircuitBreaker.from_state(
            store.load_breaker_state(),
            threshold=sup_policy.breaker_threshold,
            cooldown_s=sup_policy.breaker_cooldown_s)
        kind_of = {p.point_id: p.kind for p in points}
        run_pairs_kwargs.update(
            supervisor=Supervisor(policy=sup_policy, breaker=breaker),
            # The pair's kind slot carries the point id; the breaker
            # quarantines per (benchmark, config kind) so one doomed
            # combination trips once instead of per grid point.
            breaker_key_for=lambda bench, pid:
                f"{bench}|{kind_of.get(pid, pid)}")
    report = harness.run_pairs(
        [(p.benchmark, p.point_id) for p in pending],
        **run_pairs_kwargs)
    if breaker is not None:
        store.record_breaker_state(breaker.to_state())

    executed = {o.kind: o for o in report.outcomes}  # kind slot = point_id
    result = SweepResult(spec=spec, store_root=root)
    for point in points:
        pid = point.point_id
        if pid in done:
            result.outcomes.append(PointOutcome(
                point=point, status="ok", summary=done[pid],
                resumed=True, provenance="resumed"))
            continue
        o = executed[pid]
        result.outcomes.append(PointOutcome(
            point=point, status=o.status, summary=o.summary,
            error=o.error, error_type=o.error_type,
            attempts=o.attempts, elapsed_s=o.elapsed_s,
            provenance=o.provenance,
            preemptions=getattr(o, "preemptions", 0)))
    if HUB.enabled:
        HUB.metrics.counter("sweep.points.failed").inc(len(result.failed))
        if result.tripped:
            HUB.metrics.counter("sweep.points.tripped").inc(
                len(result.tripped))
        HUB.emit(HarnessSpan(
            name=f"sweep.{spec.name}", wall_start_s=wall_start,
            wall_dur_s=time.time() - wall_start, status="done",
            attempts=len(points),
            args={"ok": len(result.completed),
                  "resumed": len(result.resumed),
                  "failed": len(result.failed),
                  "skipped": len(result.skipped),
                  "tripped": len(result.tripped)}))
    return result


def sweep_result_from_store(
        spec: ExperimentSpec,
        store_root: Union[str, Path]) -> SweepResult:
    """Rebuild a :class:`SweepResult` purely from on-disk artifacts.

    The distributed sweep service has no single driver process holding
    a live result object — points complete in whatever worker claimed
    them, possibly on another host.  Everything a result needs is in
    the shared store, though: checkpointed summaries (``points/``),
    terminal failures (``failures.json``) and the manifest's grid
    fingerprint, which this verifies against ``spec`` so a store is
    never aggregated under the wrong grid.  Points with an artifact are
    ``ok`` (provenance ``resumed`` — served from a checkpoint, which
    renders unmarked, exactly like a locally completed cell), recorded
    failures are ``failed``, everything else ``skipped``.  Feeding the
    result to :func:`~repro.experiments.aggregate.speedup_matrix`
    yields a matrix bit-identical to a local :func:`run_sweep` of the
    same spec once every point has checkpointed.
    """
    spec.validate()
    store = ArtifactStore(store_root)
    manifest = store.read_manifest()
    if manifest is not None \
            and manifest.get("fingerprint") != spec.fingerprint():
        from ..errors import ConfigValidationError
        raise ConfigValidationError(
            f"artifact store {store.root} belongs to a different grid "
            f"(stored fingerprint {manifest.get('fingerprint')!r}, "
            f"this spec {spec.fingerprint()!r})")
    points = spec.expand()
    done = store.load_completed(points)
    failures = store.load_point_failures()
    result = SweepResult(spec=spec, store_root=Path(store_root))
    for point in points:
        pid = point.point_id
        if pid in done:
            result.outcomes.append(PointOutcome(
                point=point, status="ok", summary=done[pid],
                resumed=True, provenance="resumed"))
        elif pid in failures:
            record = failures[pid]
            result.outcomes.append(PointOutcome(
                point=point, status="failed",
                error=str(record.get("error", "")),
                error_type=str(record.get("error_type", "")),
                provenance="failed"))
        else:
            result.outcomes.append(PointOutcome(
                point=point, status="skipped", provenance="skipped"))
    return result
