"""Declarative experiment/sweep engine (``repro sweep``).

The paper's headline evidence is parameter sweeps — raster-unit scaling
(Fig. 18), supertile-size and threshold sensitivity (Fig. 19), DRAM
bandwidth sensitivity.  This package makes those first-class:

* :class:`ExperimentSpec` — a declarative grid (benchmarks x kinds x
  axes), loadable from YAML/JSON.
* :func:`run_sweep` / :class:`SweepResult` — supervised execution of
  the grid through the :func:`repro.harness.run_pairs` backend, with
  per-point retry/timeout, process-pool parallelism, and crash-safe
  per-point checkpoints in an :class:`ArtifactStore` so an interrupted
  sweep *resumes* instead of restarting.
* :func:`speedup_matrix` / :class:`SpeedupMatrix` — aggregation:
  speedup-vs-baseline matrices, geomeans, per-axis marginals, with
  per-cell provenance (completed/degraded/tripped) and a PARTIAL
  marker on matrices with holes.

Parallel and chaos-mode sweeps run under the worker-lifecycle
supervisor (:mod:`repro.supervision`): heartbeat/hang detection,
adaptive deadlines, escalating preemption, and a circuit breaker whose
trips persist in the :class:`ArtifactStore` (see
``docs/robustness.md``).

See ``docs/experiments.md`` for the spec schema, the artifact layout
and a worked Figure 18/19 reproduction.
"""

from .aggregate import MatrixRow, SpeedupMatrix, speedup_matrix
from .engine import (PointOutcome, SweepResult, execute_point, run_sweep,
                     sweep_result_from_store)
from .spec import (AXIS_ALIASES, BUILD_AXES, ExperimentSpec, SweepPoint,
                   parse_axis_option, parse_axis_value, resolve_axes)
from .store import ArtifactStore

__all__ = [
    "ExperimentSpec",
    "SweepPoint",
    "AXIS_ALIASES",
    "BUILD_AXES",
    "resolve_axes",
    "parse_axis_option",
    "parse_axis_value",
    "ArtifactStore",
    "run_sweep",
    "sweep_result_from_store",
    "execute_point",
    "SweepResult",
    "PointOutcome",
    "MatrixRow",
    "SpeedupMatrix",
    "speedup_matrix",
]
