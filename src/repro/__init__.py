"""repro — a reproduction of "LIBRA: Memory Bandwidth- and Locality-Aware
Parallel Tile Rendering" (MICRO 2024).

A from-scratch Python model of a mobile Tile-Based Rendering GPU — full
graphics pipeline, cache/DRAM hierarchy and interval-based timing — plus
LIBRA itself: parallel Raster Units with an adaptive temperature-aware
supertile scheduler.

Typical use::

    import repro

    builder = repro.make_scene_builder("CCS")
    traces = repro.TraceBuilder(builder, 960, 512, 32).build_many(8)

    baseline = repro.GPUSimulator(repro.baseline_config())
    libra_cfg = repro.libra_config()
    libra = repro.GPUSimulator(
        libra_cfg, scheduler=repro.LibraScheduler(libra_cfg.scheduler))

    speedup = libra.run(traces).speedup_over(baseline.run(traces))
"""

from .config import (CACHE_LINE_BYTES, GPU_FREQUENCY_HZ, CacheConfig,
                     DRAMConfig, GPUConfig, RasterUnitConfig,
                     SchedulerConfig, ShaderCoreConfig, baseline_config,
                     libra_config, small_config)
from .core import (LibraScheduler, StaticSupertileScheduler,
                   TemperatureScheduler, TemperatureTable, TileScheduler,
                   ZOrderScheduler)
from .energy import EnergyCounts, EnergyModel, EnergyParams, EnergyReport
from .errors import (BenchmarkTimeoutError, CacheCorruptionError,
                     CircuitOpenError, ConfigValidationError, ReproError,
                     ServiceError, SimulationError, TraceFormatError,
                     WorkerCrashError, WorkerHungError)
from .geometry import (DrawCall, GeometryPipeline, Mesh, Primitive,
                       ShaderProfile)
from .gpu import (FrameResult, FrameTrace, GPUSimulator, RunResult,
                  TileWorkload)
from .memory import Cache, DRAM, SharedMemory
from .raster import FrameBuffer, RasterPipeline, Texture, TextureSet
from .tiling import SupertileGrid, TilingEngine, morton_order
from .workloads import (SceneBuilder, TraceBuilder, TraceCache,
                        benchmark_names, compute_intensive_names,
                        get_params, make_scene_builder,
                        memory_intensive_names)
# The curated façade (must come last: it composes the layers above).
from . import api
from .api import (ComparisonReport, ExperimentSpec, JobRecord, RunSummary,
                  SpeedupMatrix, SuiteReport, SweepClient, SweepPoint,
                  SweepResult, build_traces, compare, load_spec, run_suite,
                  run_worker, serve, simulate, speedup_matrix, sweep)

__version__ = "1.3.0"

__all__ = [
    "__version__",
    # configuration
    "GPUConfig", "CacheConfig", "DRAMConfig", "RasterUnitConfig",
    "ShaderCoreConfig", "SchedulerConfig", "baseline_config",
    "libra_config", "small_config", "CACHE_LINE_BYTES", "GPU_FREQUENCY_HZ",
    # LIBRA core
    "LibraScheduler", "TemperatureScheduler", "StaticSupertileScheduler",
    "ZOrderScheduler", "TileScheduler", "TemperatureTable",
    # simulator
    "GPUSimulator", "RunResult", "FrameResult", "FrameTrace",
    "TileWorkload",
    # substrates
    "GeometryPipeline", "Primitive", "DrawCall", "Mesh", "ShaderProfile",
    "TilingEngine", "SupertileGrid", "morton_order",
    "RasterPipeline", "FrameBuffer", "Texture", "TextureSet",
    "Cache", "DRAM", "SharedMemory",
    "EnergyModel", "EnergyParams", "EnergyCounts", "EnergyReport",
    # workloads
    "SceneBuilder", "TraceBuilder", "TraceCache", "benchmark_names",
    "memory_intensive_names", "compute_intensive_names", "get_params",
    "make_scene_builder",
    # error taxonomy
    "ReproError", "CacheCorruptionError", "TraceFormatError",
    "ConfigValidationError", "BenchmarkTimeoutError", "SimulationError",
    "WorkerCrashError", "WorkerHungError", "CircuitOpenError",
    "ServiceError",
    # the supported façade (see repro.api and docs/api.md)
    "api", "build_traces", "simulate", "compare", "sweep", "load_spec",
    "run_suite", "RunSummary", "SuiteReport", "ComparisonReport",
    "ExperimentSpec", "SweepPoint", "SweepResult", "SpeedupMatrix",
    "speedup_matrix",
    # the sweep service (see repro.service and docs/service.md)
    "serve", "run_worker", "SweepClient", "JobRecord",
]
