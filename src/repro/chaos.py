"""Deterministic chaos harness: seeded fault injection for sweeps.

Supervision code that is only ever exercised by real crashes is dead
code until the worst possible moment.  This module injects the failure
modes the supervisor (:mod:`repro.supervision`) claims to handle —
worker crashes, hangs, slow starts, cache corruption, ENOSPC on
checkpoint writes — *deterministically*, so CI can drive a full sweep
through scripted disasters and gate on three invariants:

1. **Termination** — every chaos run finishes; no fault may deadlock
   the driver.
2. **Convergence** — for every non-quarantined point the sweep's
   simulated metrics are bit-identical to a fault-free run: faults
   perturb *execution*, never *results*.
3. **Quarantine** — a systematically failing point (the ``curse``)
   trips the circuit breaker instead of burning retries grid-wide.

Determinism comes from hashing, not RNG state: the fault for a point is
``sha256(seed ‖ point_id)`` (stable across processes, machines and
``PYTHONHASHSEED``), and ordinary faults fire only on a point's *first*
invocation — tracked in lock-protected counter files under
``<store_root>/.chaos/`` so the count survives the worker process being
killed — which is what makes retries converge.  A ``curse`` substring
marks point ids that crash on *every* invocation (systematic failure →
breaker trip).

Activation is via environment variables (:func:`enable` /
:func:`disable` / the ``repro sweep --chaos`` flag) rather than
parameters, because worker processes are forked/spawned far from the
call site and must inherit the plan::

    REPRO_CHAOS_SEED    the integer seed (presence activates chaos)
    REPRO_CHAOS_FAULTS  comma list of fault kinds (default: all)
    REPRO_CHAOS_CURSE   substring of point ids that fail systematically
    REPRO_CHAOS_RATE    fraction of points that receive a fault

Injection sites: :func:`on_point_start` / :func:`on_checkpoint_saved`
in :func:`repro.experiments.engine._point_runner`, and an armed
single-shot fault consumed by :func:`repro.cachefile.write_cache`
(``corrupt`` flips a payload byte after the digest is computed, so the
next read detects the mismatch and quarantines; ``enospc`` raises
``OSError(ENOSPC)``).  This module must not import :mod:`repro.cachefile`
(which imports it) — the counter files use their own ``fcntl`` locking.
"""

from __future__ import annotations

import contextlib
import errno
import hashlib
import logging
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Tuple

try:  # POSIX-only advisory locks; counters degrade to unlocked elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

logger = logging.getLogger(__name__)

ENV_SEED = "REPRO_CHAOS_SEED"
ENV_FAULTS = "REPRO_CHAOS_FAULTS"
ENV_CURSE = "REPRO_CHAOS_CURSE"
ENV_RATE = "REPRO_CHAOS_RATE"

#: Every fault kind the harness can inject.
ALL_FAULTS: Tuple[str, ...] = ("crash", "crash_late", "hang", "slow",
                               "corrupt", "enospc")

#: Fraction of points that receive a fault (first invocation only).
DEFAULT_RATE = 0.75

#: How long a ``hang`` fault sleeps.  Far beyond any hang grace — the
#: supervisor must preempt it; tests shrink it for speed.
HANG_SLEEP_S = 600.0

#: Added startup latency of a ``slow`` fault.
SLOW_SLEEP_S = 0.25

#: Exit codes of injected crashes (distinctive in worker post-mortems).
CRASH_EXIT = 17
CRASH_LATE_EXIT = 19
CURSE_EXIT = 23


@dataclass(frozen=True)
class ChaosPlan:
    """The active fault schedule (decoded from the environment)."""

    seed: int
    faults: Tuple[str, ...] = ALL_FAULTS
    curse: str = ""
    rate: float = DEFAULT_RATE

    def cursed(self, point_id: str) -> bool:
        """Whether ``point_id`` fails systematically (every invocation)."""
        return bool(self.curse) and self.curse in point_id

    def fault_for(self, point_id: str) -> Optional[str]:
        """The fault injected on ``point_id``'s first invocation, if any.

        Pure function of ``(seed, point_id)``: two processes — or two
        machines — always agree.  The first 4 digest bytes decide
        *whether* a fault fires (against ``rate``), the next 4 decide
        *which*, so changing the fault list does not reshuffle which
        points are hit.
        """
        if not self.faults:
            return None
        digest = hashlib.sha256(
            f"{self.seed}:{point_id}".encode()).digest()
        roll = int.from_bytes(digest[:4], "big") / 2 ** 32
        if roll >= self.rate:
            return None
        pick = int.from_bytes(digest[4:8], "big")
        return self.faults[pick % len(self.faults)]

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        parts = [f"seed={self.seed}", f"rate={self.rate:g}",
                 f"faults={','.join(self.faults)}"]
        if self.curse:
            parts.append(f"curse={self.curse!r}")
        return "chaos(" + " ".join(parts) + ")"


def active() -> Optional[ChaosPlan]:
    """The plan the environment describes, or None (chaos off)."""
    raw_seed = os.environ.get(ENV_SEED)
    if raw_seed is None or raw_seed == "":
        return None
    try:
        seed = int(raw_seed)
    except ValueError:
        logger.warning("ignoring non-integer %s=%r", ENV_SEED, raw_seed)
        return None
    raw_faults = os.environ.get(ENV_FAULTS, "")
    if raw_faults.strip():
        faults = tuple(f for f in
                       (part.strip() for part in raw_faults.split(","))
                       if f in ALL_FAULTS)
    else:
        faults = ALL_FAULTS
    try:
        rate = float(os.environ.get(ENV_RATE, "") or DEFAULT_RATE)
    except ValueError:
        rate = DEFAULT_RATE
    return ChaosPlan(seed=seed, faults=faults,
                     curse=os.environ.get(ENV_CURSE, ""),
                     rate=min(max(rate, 0.0), 1.0))


def enable(seed: int, faults: Optional[Tuple[str, ...]] = None,
           curse: str = "", rate: Optional[float] = None) -> ChaosPlan:
    """Activate chaos process-wide (and for every future child)."""
    if faults is not None:
        unknown = [f for f in faults if f not in ALL_FAULTS]
        if unknown:
            raise ValueError(
                f"unknown chaos fault(s): {', '.join(unknown)} "
                f"(choose from {', '.join(ALL_FAULTS)})")
    os.environ[ENV_SEED] = str(int(seed))
    if faults is not None:
        os.environ[ENV_FAULTS] = ",".join(faults)
    else:
        os.environ.pop(ENV_FAULTS, None)
    if curse:
        os.environ[ENV_CURSE] = curse
    else:
        os.environ.pop(ENV_CURSE, None)
    if rate is not None:
        os.environ[ENV_RATE] = repr(rate)
    else:
        os.environ.pop(ENV_RATE, None)
    plan = active()
    logger.info("chaos enabled: %s", plan.describe())
    return plan


def disable() -> None:
    """Deactivate chaos (idempotent)."""
    for name in (ENV_SEED, ENV_FAULTS, ENV_CURSE, ENV_RATE):
        os.environ.pop(name, None)


@contextlib.contextmanager
def session(seed: int, faults: Optional[Tuple[str, ...]] = None,
            curse: str = "",
            rate: Optional[float] = None) -> Iterator[ChaosPlan]:
    """``enable`` for a ``with`` block, restoring the prior environment."""
    saved = {name: os.environ.get(name)
             for name in (ENV_SEED, ENV_FAULTS, ENV_CURSE, ENV_RATE)}
    try:
        yield enable(seed, faults=faults, curse=curse, rate=rate)
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


# -- persistent invocation counters ------------------------------------------

def counter_dir(store_root: os.PathLike) -> Path:
    """Where a sweep's invocation counters live."""
    return Path(store_root) / ".chaos"


def invocation(store_root: os.PathLike, point_id: str) -> int:
    """Count (and persist) one invocation of ``point_id``; 1-based.

    The counter must survive the worker being SIGKILLed a microsecond
    later — that is the whole point — so it lives in a file under the
    sweep's store, bumped under an exclusive ``fcntl`` lock before the
    fault fires.  Ordinary faults fire only when this returns 1, which
    is what makes every retry converge to the fault-free result.
    """
    root = counter_dir(store_root)
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"{point_id}.count"
    with open(path, "a+b") as handle:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            handle.seek(0)
            raw = handle.read().strip()
            count = (int(raw) if raw else 0) + 1
            handle.seek(0)
            handle.truncate()
            handle.write(str(count).encode())
            handle.flush()
            os.fsync(handle.fileno())
        finally:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
    return count


# -- armed single-shot cache faults ------------------------------------------

#: The next :func:`repro.cachefile.write_cache` in this process consumes
#: this ("corrupt" or "enospc").  Worker-process-local by construction.
_ARMED_CACHE_FAULT: Optional[str] = None


def arm_cache_fault(kind: str) -> None:
    """Arm a one-shot fault on the next cache write in this process."""
    global _ARMED_CACHE_FAULT
    _ARMED_CACHE_FAULT = kind


def consume_cache_fault() -> Optional[str]:
    """Pop the armed fault (None in the overwhelmingly common case)."""
    global _ARMED_CACHE_FAULT
    if _ARMED_CACHE_FAULT is None:
        return None
    fault, _ARMED_CACHE_FAULT = _ARMED_CACHE_FAULT, None
    logger.warning("chaos: cache write fault %r firing", fault)
    return fault


def corrupt_bytes(payload: bytes) -> bytes:
    """Flip one bit of ``payload`` (empty payloads gain a byte)."""
    if not payload:
        return b"\xff"
    return payload[:-1] + bytes([payload[-1] ^ 0x01])


def enospc_error(path: os.PathLike) -> OSError:
    """The injected no-space error for a checkpoint write."""
    return OSError(errno.ENOSPC,
                   f"chaos: injected ENOSPC writing {path}")


# -- worker-side injection points --------------------------------------------

#: Set by a ``crash_late`` fault: die after the checkpoint hits disk.
_CRASH_AFTER_CHECKPOINT = False


def on_point_start(point_id: str, store_root: os.PathLike) -> None:
    """Fault-injection site at the top of a point run (post store-check).

    Called from :func:`repro.experiments.engine._point_runner` after the
    resume check, so already-completed points are never re-faulted.
    Near-zero cost when chaos is off (one env lookup).
    """
    global _CRASH_AFTER_CHECKPOINT
    plan = active()
    if plan is None:
        return
    if plan.cursed(point_id):
        logger.warning("chaos: cursed point %s crashing (every "
                       "invocation)", point_id)
        os._exit(CURSE_EXIT)
    fault = plan.fault_for(point_id)
    if fault is None:
        return
    count = invocation(store_root, point_id)
    if count > 1:
        logger.info("chaos: %s already faulted (invocation %d); "
                    "running clean", point_id, count)
        return
    logger.warning("chaos: injecting %r into %s", fault, point_id)
    if fault == "crash":
        os._exit(CRASH_EXIT)
    elif fault == "hang":
        from .supervision import pause_heartbeat
        pause_heartbeat()
        time.sleep(HANG_SLEEP_S)
    elif fault == "slow":
        time.sleep(SLOW_SLEEP_S)
    elif fault in ("corrupt", "enospc"):
        arm_cache_fault(fault)
    elif fault == "crash_late":
        _CRASH_AFTER_CHECKPOINT = True


def on_checkpoint_saved(point_id: str) -> None:
    """Fault site right after a point's checkpoint reached the store.

    A pending ``crash_late`` kills the worker *here* — after the
    artifact is durable but before the result travels back to the
    driver — the nastiest crash window: the retry (or a resumed sweep)
    must serve the checkpoint instead of re-running the point.
    """
    if _CRASH_AFTER_CHECKPOINT:
        logger.warning("chaos: crash_late killing worker after %s "
                       "checkpointed", point_id)
        os._exit(CRASH_LATE_EXIT)
