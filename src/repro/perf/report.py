"""``repro report``: telemetry event stream -> markdown analysis.

Post-processes a recorded event stream (a live
:class:`~repro.telemetry.hub.RecordingSink` or a JSONL file read back
with :func:`~repro.telemetry.io.load_jsonl_events`) into the analyses
the paper argues from:

* **DRAM bandwidth over time** — the Figure 7 view: per-interval
  request series with a *burst factor* (peak over mean) and coefficient
  of variation.  LIBRA's claim is a flat profile; a bursty one is the
  immediate-mode failure mode.
* **Per-RU utilization and load balance** — busy cycles, tiles and
  DRAM lines per Raster Unit, with the load-imbalance percentage the
  paper's balanced-workload argument depends on.
* **FSM decision timeline** — every adaptive-scheduler state change
  and per-frame decision, in emit order.
* **Cache hit-ratio trend** — per-frame hit ratio of each cache.

Each analysis can raise an **anomaly flag** (imbalance above threshold,
burst factor above threshold, hit ratio collapsing between frames);
the flags are collected in a final section so a CI log grep — or a
human skimming the report — sees the problems first.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..telemetry.events import (CacheDelta, DRAMSample, FSMState,
                                FSMTransition, SchedulerDecision,
                                TelemetryEvent, TileRetire)

#: Imbalance above this many percent gets an anomaly flag (the paper's
#: balanced-RU claim is ~a few percent; 10% is clearly off).
IMBALANCE_THRESHOLD_PCT = 10.0
#: Peak-over-mean DRAM burst factor above this gets an anomaly flag.
BURST_THRESHOLD = 3.0
#: A frame-over-frame hit-ratio drop larger than this gets a flag.
HIT_RATIO_DROP = 0.15

_SPARK = " ▁▂▃▄▅▆▇█"


def _sparkline(values: Sequence[float], width: int = 60) -> str:
    """A unicode sparkline, resampled to at most ``width`` cells.

    Degenerate series render a stable placeholder instead of garbage:
    an empty series is ``(no samples)``, a zero-range (all-equal)
    series is a flat line — mid-height when positive, floor-height
    otherwise — and out-of-band values clamp to the glyph range rather
    than wrapping the index (a negative sample must not pick a glyph
    from the end of the scale).
    """
    if not values:
        return "(no samples)"
    if len(values) > width:
        stride = len(values) / width
        values = [max(values[int(i * stride):
                             max(int(i * stride) + 1,
                                 int((i + 1) * stride))])
                  for i in range(width)]
    peak = max(values)
    if peak == min(values):
        return _SPARK[4 if peak > 0 else 1] * len(values)
    if peak <= 0:
        return _SPARK[1] * len(values)
    return "".join(_SPARK[max(0, min(8, int(8 * v / peak + 0.5)))]
                   for v in values)


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _cv(values: Sequence[float]) -> float:
    """Coefficient of variation (stddev over mean).

    0.0 for the degenerate cases — an empty series, an all-equal
    series (no variation by definition), or a zero mean (the ratio is
    undefined; callers want "no signal", not a ZeroDivisionError).
    """
    if not values:
        return 0.0
    mean = _mean(values)
    if mean == 0 or min(values) == max(values):
        return 0.0
    var = _mean([(v - mean) ** 2 for v in values])
    return var ** 0.5 / mean


def _dram_section(samples: List[DRAMSample],
                  anomalies: List[str]) -> List[str]:
    lines = ["## DRAM bandwidth over time", ""]
    if not samples:
        lines += ["No DRAM interval samples in this stream.", ""]
        return lines
    series = [float(s.requests) for s in samples]
    peak, mean = max(series), _mean(series)
    burst = peak / mean if mean else 0.0
    cv = _cv(series)
    lines += [
        f"```\n{_sparkline(series)}\n```",
        "",
        f"- intervals: {len(series)}",
        f"- requests: mean {mean:.1f} / peak {peak:.0f} per interval",
        f"- burst factor (peak/mean): **{burst:.2f}**",
        f"- coefficient of variation: {cv:.3f}",
        f"- mean utilization: "
        f"{_mean([s.utilization for s in samples]):.3f}",
        "",
    ]
    if burst > BURST_THRESHOLD:
        anomalies.append(
            f"DRAM burst factor {burst:.2f} exceeds {BURST_THRESHOLD:.1f} "
            f"— bandwidth profile is bursty, not flat (cf. paper Fig. 7)")
    return lines


def _ru_section(retires: List[TileRetire],
                anomalies: List[str]) -> List[str]:
    lines = ["## Per-RU utilization and load balance", ""]
    if not retires:
        lines += ["No tile-retire events in this stream.", ""]
        return lines
    busy: Dict[int, int] = {}
    tiles: Dict[int, int] = {}
    dram: Dict[int, int] = {}
    for ev in retires:
        tiles[ev.ru] = tiles.get(ev.ru, 0) + 1
        dram[ev.ru] = dram.get(ev.ru, 0) + ev.dram_lines
        if ev.ts is not None and ev.start_ts is not None:
            busy[ev.ru] = busy.get(ev.ru, 0) + max(0, ev.ts - ev.start_ts)
    rus = sorted(tiles)
    lines += ["| RU | busy cycles | tiles | DRAM lines |",
              "|---:|---:|---:|---:|"]
    for ru in rus:
        lines.append(f"| ru{ru} | {busy.get(ru, 0):,} | {tiles[ru]:,} "
                     f"| {dram.get(ru, 0):,} |")
    loads = [busy.get(ru, 0) for ru in rus]
    if not any(loads):  # no cycle attribution: fall back to tile counts
        loads = [tiles[ru] for ru in rus]
    mean = _mean(loads)
    imbalance = (100.0 * (max(loads) - min(loads)) / mean) if mean else 0.0
    lines += ["",
              f"- load imbalance ((max-min)/mean): **{imbalance:.1f}%** "
              f"across {len(rus)} RU(s)",
              ""]
    if len(rus) > 1 and imbalance > IMBALANCE_THRESHOLD_PCT:
        anomalies.append(
            f"RU load imbalance {imbalance:.1f}% exceeds "
            f"{IMBALANCE_THRESHOLD_PCT:.0f}% — workload is not balanced "
            f"across Raster Units")
    return lines


def _fsm_section(timeline: List[TelemetryEvent]) -> List[str]:
    lines = ["## FSM decision timeline", ""]
    if not timeline:
        lines += ["No scheduler/FSM events in this stream.", ""]
        return lines
    lines += ["| seq | ts | event |", "|---:|---:|:---|"]
    for ev in timeline:
        ts = getattr(ev, "ts", None)
        ts_cell = f"{ts:,}" if ts is not None else "—"
        if isinstance(ev, SchedulerDecision):
            what = (f"frame {ev.frame}: order `{ev.order}`, "
                    f"supertile {ev.supertile_size}, "
                    f"{ev.batches} batch(es)")
        elif isinstance(ev, FSMTransition):
            what = (f"`{ev.machine}` "
                    + ("initial state " if ev.old is None else
                       f"{ev.old} -> ") + f"{ev.new}")
        else:  # FSMState
            what = (f"`{ev.machine}` frame {ev.frame}: "
                    f"state {ev.state}")
        lines.append(f"| {ev.seq} | {ts_cell} | {what} |")
    lines.append("")
    return lines


def _cache_section(deltas: List[CacheDelta],
                   anomalies: List[str]) -> List[str]:
    lines = ["## Cache hit-ratio trend", ""]
    if not deltas:
        lines += ["No cache delta events in this stream.", ""]
        return lines
    by_cache: Dict[str, List[CacheDelta]] = {}
    for ev in deltas:
        by_cache.setdefault(ev.name, []).append(ev)
    for name in sorted(by_cache):
        ratios: List[Tuple[Optional[int], float]] = [
            (ev.frame, ev.hits / ev.accesses)
            for ev in by_cache[name] if ev.accesses > 0]
        if not ratios:
            continue
        trend = " ".join(f"{r:.3f}" for _, r in ratios)
        lines.append(f"- `{name}`: {trend}  "
                     f"(mean {_mean([r for _, r in ratios]):.3f})")
        for (prev_f, prev_r), (cur_f, cur_r) in zip(ratios, ratios[1:]):
            if prev_r - cur_r > HIT_RATIO_DROP:
                anomalies.append(
                    f"cache `{name}` hit ratio dropped {prev_r:.3f} -> "
                    f"{cur_r:.3f} between frames {prev_f} and {cur_f}")
    lines.append("")
    return lines


def _metrics_section(metrics: Dict[str, float]) -> List[str]:
    lines = ["## Metrics snapshot", "",
             "| metric | value |", "|:---|---:|"]
    for name in sorted(metrics):
        if ".le_" in name:  # histogram bucket expansion; too noisy here
            continue
        value = metrics[name]
        cell = f"{value:,.3f}" if isinstance(value, float) \
            and value != int(value) else f"{int(value):,}"
        lines.append(f"| `{name}` | {cell} |")
    lines.append("")
    return lines


def build_report(events: Iterable[TelemetryEvent],
                 metrics: Optional[Dict[str, float]] = None,
                 title: str = "Telemetry analysis") -> str:
    """The markdown analysis report for one recorded run.

    ``events`` is any iterable of telemetry events (a
    ``RecordingSink.events`` list or the output of
    :func:`~repro.telemetry.load_jsonl_events`); ``metrics`` is an
    optional flat metrics snapshot appended as its own section.
    """
    events = sorted(events, key=lambda e: e.seq)
    samples = [e for e in events if isinstance(e, DRAMSample)]
    retires = [e for e in events if isinstance(e, TileRetire)]
    deltas = [e for e in events if isinstance(e, CacheDelta)]
    timeline = [e for e in events
                if isinstance(e, (SchedulerDecision, FSMTransition,
                                  FSMState))]

    anomalies: List[str] = []
    body: List[str] = [f"# {title}", "",
                       f"{len(events)} events analysed.", ""]
    body += _dram_section(samples, anomalies)
    body += _ru_section(retires, anomalies)
    body += _fsm_section(timeline)
    body += _cache_section(deltas, anomalies)
    if metrics:
        body += _metrics_section(metrics)

    body += ["## Anomalies", ""]
    if anomalies:
        body += [f"- **flag**: {a}" for a in anomalies]
    else:
        body.append("None — all analyses within thresholds.")
    body.append("")
    return "\n".join(body)
