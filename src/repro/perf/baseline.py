"""Performance-baseline tracking: ``repro perf record`` / ``compare``.

The recording discipline (gem5-style continuous benchmarking):

* a **curated case set** — simulator kernels (the same
  :func:`repro.perf.kernels.run_kernel` the profiler times) plus a
  short :func:`repro.harness.run_suite` macro run that exercises the
  supervisor — each timed ``repeat`` times after a warm-up;
* **median-of-k wall-clock** with the median absolute deviation (MAD)
  kept alongside, so a later comparison knows this machine's noise;
* **key simulated metrics** (total cycles, raster DRAM accesses, L1
  texture hit ratio) — deterministic, so any drift is a semantic change
  to the timing model, not noise;
* a **fingerprint** (git SHA, Python version, platform, CPU count) so a
  ``BENCH_<n>.json`` is traceable to the code and machine it measured.

Comparison applies a noise band per case: the larger of a relative
threshold and ``mad_factor`` times the baseline's MAD.  Wall-clock
above baseline + band is a regression; simulated-metric drift is always
a regression (rerecord the baseline when the timing model changes on
purpose).  The exit-code contract — 0 ok / 1 regression / 2 usage — is
what the CI ``perf-smoke`` job scripts against.
"""

from __future__ import annotations

import json
import os
import platform
import re
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .. import harness
from ..errors import ConfigValidationError, SimulationError
from .kernels import run_kernel

#: Schema version of the BENCH_*.json document.
SCHEMA_VERSION = 1

#: The simulated metrics recorded per case (all deterministic).  The
#: first three come from simulator cases; the rest from the synthetic
#: micro cases (hit/access counts and integer service cycles).  The
#: drift gate checks whichever names a case's record carries.
SIM_METRICS = ("total_cycles", "raster_dram_accesses", "texture_hit_ratio",
               "hits", "accesses", "row_hits", "service_cycles")


@dataclass(frozen=True)
class PerfCase:
    """One named, reproducible timing case of the curated set."""

    case_id: str
    benchmark: str
    #: A single kind for kernel cases; comma-separated kinds for suite
    #: cases (the macro run sweeps benchmark x kinds).
    kind: str
    frames: int
    width: int
    height: int
    #: ``kernel`` (bare simulator run), ``suite`` (supervised
    #: ``harness.run_suite`` macro run including its retry/span
    #: bookkeeping) or ``micro`` (synthetic stream through one batched
    #: memory kernel, see :mod:`repro.perf.micro`; ``width`` is the
    #: batch length and ``height`` the batch count).
    style: str = "kernel"


#: The quick set: what CI and the test suite run (seconds, not minutes).
#: The synthetic micro cases belong here — they build no traces, so
#: they cost milliseconds while still drift-gating the batched kernels.
QUICK_CASES: Tuple[PerfCase, ...] = (
    PerfCase("kernel.tri_overlap.libra", "tri_overlap", "libra",
             frames=2, width=256, height=128),
    PerfCase("suite.tri_overlap", "tri_overlap", "baseline,libra",
             frames=1, width=128, height=64, style="suite"),
    PerfCase("micro.cache_lru.batch", "synthetic", "cache_lru",
             frames=1, width=4096, height=48, style="micro"),
    PerfCase("micro.dram.interval_batch", "synthetic", "dram_batch",
             frames=1, width=4096, height=48, style="micro"),
)

#: The full curated set for real baseline records.
DEFAULT_CASES: Tuple[PerfCase, ...] = QUICK_CASES + (
    PerfCase("kernel.tri_overlap.baseline", "tri_overlap", "baseline",
             frames=2, width=256, height=128),
    PerfCase("kernel.GDL.libra", "GDL", "libra",
             frames=2, width=256, height=128),
    PerfCase("kernel.CCS.libra", "CCS", "libra",
             frames=2, width=256, height=128),
)


@dataclass
class CaseResult:
    """Measured numbers of one case (what the JSON document stores)."""

    case_id: str
    wall_median_s: float
    wall_mad_s: float
    wall_samples_s: List[float]
    metrics: Dict[str, float]

    def to_dict(self) -> dict:
        return {"wall_median_s": self.wall_median_s,
                "wall_mad_s": self.wall_mad_s,
                "wall_samples_s": self.wall_samples_s,
                "metrics": self.metrics}


@dataclass
class PerfBaseline:
    """One recorded baseline document (``BENCH_<n>.json``)."""

    fingerprint: Dict[str, Union[str, int]]
    repeat: int
    cases: Dict[str, CaseResult] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {"schema": self.schema,
                "fingerprint": self.fingerprint,
                "repeat": self.repeat,
                "cases": {cid: c.to_dict()
                          for cid, c in sorted(self.cases.items())}}

    @classmethod
    def from_dict(cls, doc: dict) -> "PerfBaseline":
        if not isinstance(doc, dict) or "cases" not in doc:
            raise ConfigValidationError(
                "not a perf baseline document (no 'cases' mapping)")
        cases = {}
        for cid, entry in doc["cases"].items():
            cases[cid] = CaseResult(
                case_id=cid,
                wall_median_s=float(entry["wall_median_s"]),
                wall_mad_s=float(entry.get("wall_mad_s", 0.0)),
                wall_samples_s=[float(s) for s in
                                entry.get("wall_samples_s", [])],
                metrics={k: v for k, v in entry.get("metrics", {}).items()})
        return cls(fingerprint=dict(doc.get("fingerprint", {})),
                   repeat=int(doc.get("repeat", 0)), cases=cases,
                   schema=int(doc.get("schema", SCHEMA_VERSION)))


def machine_fingerprint() -> Dict[str, Union[str, int]]:
    """Provenance of a record: code revision, interpreter, machine."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True,
            text=True, timeout=10).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    return {"git_sha": sha,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count() or 1,
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z")}


def _mad(samples: Sequence[float]) -> float:
    """Median absolute deviation (0.0 for fewer than 2 samples)."""
    if len(samples) < 2:
        return 0.0
    center = median(samples)
    return median(abs(s - center) for s in samples)


def _suite_runner(benchmark: str, kind: str, frames: int = 1,
                  width: int = 128, height: int = 64):
    """Small-geometry runner for the suite macro case (picklable)."""
    from ..experiments.spec import SweepPoint
    from ..experiments.engine import execute_point
    return execute_point(SweepPoint(benchmark=benchmark, kind=kind,
                                    axes=(), frames=frames,
                                    width=width, height=height))


def _run_case(case: PerfCase) -> Dict[str, float]:
    """Execute one case once; returns its simulated metrics."""
    if case.style == "kernel":
        traces = harness.get_traces(case.benchmark, case.frames,
                                    case.width, case.height)
        result = run_kernel(case.kind, traces, case.width, case.height)
        return {"total_cycles": result.total_cycles,
                "raster_dram_accesses": result.raster_dram_accesses,
                "texture_hit_ratio": round(result.mean_texture_hit_ratio,
                                           9)}
    if case.style == "suite":
        kinds = tuple(k.strip() for k in case.kind.split(",") if k.strip())
        report = harness.run_suite(
            [case.benchmark], kinds=kinds, frames=case.frames,
            runner=_suite_runner, known_benchmarks=[case.benchmark],
            width=case.width, height=case.height)
        if report.failed or report.skipped:
            bad = (report.failed + report.skipped)[0]
            raise SimulationError(
                f"perf case {case.case_id}: {bad.benchmark}/{bad.kind} "
                f"{bad.status} ({bad.error_type}: {bad.error})")
        summaries = [o.summary for o in report.succeeded]
        return {"total_cycles": sum(s.total_cycles for s in summaries),
                "raster_dram_accesses": sum(s.raster_dram_accesses
                                            for s in summaries),
                "texture_hit_ratio": round(
                    sum(s.texture_hit_ratio for s in summaries)
                    / len(summaries), 9)}
    if case.style == "micro":
        from .micro import run_micro
        return run_micro(case.kind, chunk=case.width, chunks=case.height)
    raise ConfigValidationError(
        f"perf case {case.case_id}: unknown style {case.style!r}")


def record_baseline(cases: Sequence[PerfCase] = DEFAULT_CASES,
                    repeat: int = 3,
                    timer: Callable[[], float] = time.perf_counter,
                    progress: Optional[Callable[[str], None]] = None
                    ) -> PerfBaseline:
    """Run every case ``repeat`` times; median wall-clock + metrics.

    Each case gets one untimed warm-up execution first — it builds (or
    loads) the disk-cached traces and warms the import graph, so the
    timed repetitions measure simulation, not one-time setup.  ``timer``
    exists for tests (inject a fake clock to synthesize regressions).
    """
    if repeat < 1:
        raise ConfigValidationError("repeat must be >= 1")
    baseline = PerfBaseline(fingerprint=machine_fingerprint(),
                            repeat=repeat)
    for case in cases:
        if progress:
            progress(f"recording {case.case_id} "
                     f"({case.frames}f {case.width}x{case.height}, "
                     f"median of {repeat})")
        metrics = _run_case(case)  # warm-up; metrics are deterministic
        samples = []
        for _ in range(repeat):
            start = timer()
            _run_case(case)
            samples.append(timer() - start)
        baseline.cases[case.case_id] = CaseResult(
            case_id=case.case_id,
            wall_median_s=median(samples),
            wall_mad_s=_mad(samples),
            wall_samples_s=[round(s, 6) for s in samples],
            metrics=metrics)
    return baseline


# -- persistence -------------------------------------------------------------

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def next_bench_path(root: Union[str, Path] = ".") -> Path:
    """The next free ``BENCH_<n>.json`` in the trajectory under ``root``."""
    root = Path(root)
    taken = [int(m.group(1)) for p in root.glob("BENCH_*.json")
             if (m := _BENCH_RE.match(p.name))]
    return root / f"BENCH_{max(taken, default=0) + 1}.json"


def write_baseline(baseline: PerfBaseline, path: Union[str, Path]) -> Path:
    """Write the baseline document as pretty JSON."""
    path = Path(path)
    path.write_text(json.dumps(baseline.to_dict(), indent=2,
                               sort_keys=True) + "\n")
    return path


def load_baseline(path: Union[str, Path]) -> PerfBaseline:
    """Read and validate a baseline document."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigValidationError(f"cannot read baseline {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise ConfigValidationError(
            f"baseline {path} is not valid JSON: {exc}")
    return PerfBaseline.from_dict(doc)


# -- comparison --------------------------------------------------------------

@dataclass
class CaseVerdict:
    """Outcome of one case's baseline-vs-current comparison."""

    case_id: str
    #: ``ok`` / ``faster`` / ``regression`` / ``metrics-drift`` /
    #: ``missing`` (in the baseline but not the current record).
    status: str
    detail: str = ""
    wall_base_s: float = 0.0
    wall_current_s: float = 0.0
    band_s: float = 0.0

    @property
    def failed(self) -> bool:
        return self.status in ("regression", "metrics-drift", "missing")


@dataclass
class CompareReport:
    """Every case verdict plus the CI exit-code contract."""

    baseline_fingerprint: Dict[str, Union[str, int]]
    verdicts: List[CaseVerdict] = field(default_factory=list)

    @property
    def regressions(self) -> List[CaseVerdict]:
        return [v for v in self.verdicts if v.failed]

    @property
    def exit_code(self) -> int:
        """0 when every case is within its noise band, 1 otherwise."""
        return 1 if self.regressions else 0

    def format(self) -> str:
        from ..stats import format_table
        rows = []
        for v in self.verdicts:
            delta = (f"{100.0 * (v.wall_current_s / v.wall_base_s - 1):+.1f}%"
                     if v.wall_base_s else "—")
            rows.append([v.case_id, v.status,
                         f"{v.wall_base_s:.3f}", f"{v.wall_current_s:.3f}",
                         delta, f"±{v.band_s:.3f}", v.detail])
        sha = str(self.baseline_fingerprint.get("git_sha", "unknown"))[:12]
        return format_table(
            ("case", "status", "base s", "now s", "delta", "band", "note"),
            rows, title=f"perf compare vs baseline @ {sha}")


def compare_baselines(current: PerfBaseline, baseline: PerfBaseline,
                      wall_threshold_pct: float = 10.0,
                      mad_factor: float = 3.0,
                      check_metrics: bool = True) -> CompareReport:
    """Compare a fresh record against a stored baseline.

    The per-case noise band is ``max(threshold%, mad_factor * MAD of
    the baseline samples)``; a current median above baseline + band is
    a regression, below baseline - band is reported as ``faster``
    (informational).  Simulated-metric drift is a failure regardless of
    wall-clock, because those numbers are deterministic.
    """
    report = CompareReport(baseline_fingerprint=baseline.fingerprint)
    for case_id, base in sorted(baseline.cases.items()):
        cur = current.cases.get(case_id)
        if cur is None:
            report.verdicts.append(CaseVerdict(
                case_id, "missing",
                detail="case not present in current record"))
            continue
        band = max(base.wall_median_s * wall_threshold_pct / 100.0,
                   mad_factor * base.wall_mad_s)
        verdict = CaseVerdict(case_id, "ok",
                              wall_base_s=base.wall_median_s,
                              wall_current_s=cur.wall_median_s,
                              band_s=band)
        drifted = [
            name for name in SIM_METRICS
            if check_metrics and name in base.metrics
            and name in cur.metrics
            and base.metrics[name] != cur.metrics[name]]
        if drifted:
            verdict.status = "metrics-drift"
            verdict.detail = ", ".join(
                f"{n}: {base.metrics[n]} -> {cur.metrics[n]}"
                for n in drifted)
        elif cur.wall_median_s > base.wall_median_s + band:
            verdict.status = "regression"
            verdict.detail = (f"wall {cur.wall_median_s:.3f}s above "
                              f"{base.wall_median_s:.3f}s + "
                              f"{band:.3f}s band")
        elif cur.wall_median_s < base.wall_median_s - band:
            verdict.status = "faster"
        report.verdicts.append(verdict)
    return report
