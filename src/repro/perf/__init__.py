"""Performance observability: baselines, comparisons, analysis reports.

``repro.perf`` closes the loop from *instrumented* to *measured,
tracked and explained* (the gem5-style continuous-benchmarking
discipline):

* :mod:`repro.perf.kernels` — the timing kernels shared by ``repro
  perf`` and ``benchmarks/profile_hotpath.py``.
* :mod:`repro.perf.baseline` — ``repro perf record`` / ``repro perf
  compare``: median-of-k wall-clock plus key simulated metrics per
  curated case, written to a fingerprinted ``BENCH_<n>.json`` and
  compared with MAD-based noise bands and a CI exit-code contract
  (0 ok / 1 regression / 2 usage).
* :mod:`repro.perf.report` — ``repro report``: post-processes a
  telemetry event stream into a markdown analysis report (DRAM
  bandwidth burstiness, per-RU load balance, FSM decision timeline,
  cache hit-ratio trends) with threshold-based anomaly flags.
"""

from .baseline import (PerfBaseline, PerfCase, CaseResult, CompareReport,
                       DEFAULT_CASES, QUICK_CASES, compare_baselines,
                       load_baseline, next_bench_path, record_baseline,
                       write_baseline)
from .kernels import run_kernel
from .report import build_report

__all__ = [
    "PerfBaseline", "PerfCase", "CaseResult", "CompareReport",
    "DEFAULT_CASES", "QUICK_CASES",
    "record_baseline", "compare_baselines", "load_baseline",
    "write_baseline", "next_bench_path",
    "run_kernel", "build_report",
]
