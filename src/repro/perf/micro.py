"""Synthetic micro perf cases for the batched memory kernels.

The curated ``repro perf`` set historically timed only end-to-end
simulator runs, whose interval-sized batches (tens of lines) never
reach the regime the vectorized kernels are built for.  These cases
time exactly that regime with deterministic synthetic streams:

* ``cache_lru`` — a sliding-window line stream through
  :class:`~repro.memory.lru_kernel.ArrayCache`: each batch touches a
  window of distinct lines (few per set, so the set-safety condition
  holds), re-touches part of the previous window (hits), and evicts
  the oldest residents (victim-safety holds: the about-to-be-evicted
  entries are two windows old and never re-touched).  This drives the
  vectorized ``np.unique`` + tag-match kernel end to end.
* ``dram_batch`` — interval-sized bursts through
  :meth:`~repro.memory.dram.DRAM.request_batch` followed by
  :meth:`~repro.memory.dram.DRAM.end_interval`: each burst mixes
  row-sequential runs (row hits) with cross-bank jumps (activations),
  exercising the stable-sort bank walk and the interval queueing model.

Streams are built once per call from a fixed seed; the returned
metrics (hit/row-hit counts, accesses, integer service cycles) are
deterministic, so the perf baseline's metric-drift gate applies to
them exactly as it does to the simulator cases.
"""

from __future__ import annotations

from typing import Dict

from ..compat import require_numpy
from ..config import CacheConfig, DRAMConfig
from ..errors import ConfigValidationError
from ..memory.dram import DRAM
from ..memory.lru_kernel import ArrayCache

np = require_numpy()

#: Geometry of the synthetic L1 the cache case streams through
#: (256 sets x 8 ways of 64-byte lines = 128 KiB).
_CACHE_CONFIG = CacheConfig(size_bytes=128 * 1024, ways=8)

#: New distinct lines introduced per batch window (4 per set).
_WINDOW = 1024
#: Window advance per batch; the 256-line overlap with the previous
#: window is the re-touch (hit) traffic.
_STRIDE = 768

#: Built streams, keyed by (kind, chunk, chunks).  Mirrors the trace
#: memo of the simulator cases: the untimed warm-up repetition builds
#: the streams, so the timed repetitions measure the kernels.
_STREAM_MEMO: Dict[tuple, list] = {}


def _cache_stream(chunk: int, chunks: int) -> list:
    key = ("cache_lru", chunk, chunks)
    batches = _STREAM_MEMO.get(key)
    if batches is None:
        rng = np.random.default_rng(2026)
        reps = -(-chunk // _WINDOW)
        batches = []
        for i in range(chunks):
            window = np.arange(i * _STRIDE, i * _STRIDE + _WINDOW,
                               dtype=np.int64)
            lines = np.tile(window, reps)[:chunk]
            batches.append(lines[rng.permutation(chunk)])
        _STREAM_MEMO[key] = batches
    return batches


def _dram_stream(chunk: int, chunks: int) -> list:
    key = ("dram_batch", chunk, chunks)
    bursts = _STREAM_MEMO.get(key)
    if bursts is None:
        rng = np.random.default_rng(4096)
        run = 16                  # sequential lines per row visit
        bursts = []
        for i in range(chunks):
            starts = rng.integers(0, 1 << 20, size=-(-chunk // run),
                                  dtype=np.int64) * 32
            burst = (starts[:, None]
                     + np.arange(run, dtype=np.int64)).ravel()
            bursts.append(burst[:chunk])
        _STREAM_MEMO[key] = bursts
    return bursts


def micro_cache_lru(chunk: int = 4096, chunks: int = 48) -> Dict[str, float]:
    """Stream ``chunks`` batches of ``chunk`` lines through ArrayCache."""
    if chunk < _WINDOW:
        raise ConfigValidationError(
            f"micro cache case needs chunk >= {_WINDOW}")
    cache = ArrayCache(_CACHE_CONFIG, name="micro-l1", min_batch=1024)
    hits = 0
    for lines in _cache_stream(chunk, chunks):
        hits += cache.lookup_batch(lines, write=False)
    stats = cache.stats
    return {"hits": float(hits), "accesses": float(stats.accesses)}


def micro_dram_batch(chunk: int = 4096,
                     chunks: int = 48) -> Dict[str, float]:
    """Drive interval-sized bursts through ``DRAM.request_batch``."""
    dram = DRAM(DRAMConfig(), interval_cycles=1000)
    service = 0.0
    for burst in _dram_stream(chunk, chunks):
        service += dram.request_batch(burst)
        dram.end_interval()
    stats = dram.stats
    return {"accesses": float(stats.accesses),
            "row_hits": float(stats.row_hits),
            "service_cycles": float(service)}


_MICRO_KERNELS = {
    "cache_lru": micro_cache_lru,
    "dram_batch": micro_dram_batch,
}


def run_micro(kind: str, chunk: int, chunks: int) -> Dict[str, float]:
    """Run one named micro kernel; returns its deterministic metrics."""
    kernel = _MICRO_KERNELS.get(kind)
    if kernel is None:
        raise ConfigValidationError(
            f"unknown micro perf kernel {kind!r} "
            f"(have: {', '.join(sorted(_MICRO_KERNELS))})")
    return kernel(chunk=chunk, chunks=chunks)
