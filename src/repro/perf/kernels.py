"""The timing kernels shared by ``repro perf`` and the profiler.

A *kernel* is the smallest thing worth timing: one simulator run over
prebuilt traces, with no cache reads, no summarization and no harness
supervision in the timed region.  ``benchmarks/profile_hotpath.py``
and :mod:`repro.perf.baseline` both time exactly this function, so the
profiler's numbers and the recorded baselines move together.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import GPUConfig
from ..gpu import FrameTrace, GPUSimulator, RunResult


def run_kernel(kind: str, traces: List[FrameTrace],
               width: int, height: int,
               batched: bool = True,
               settings: Optional[dict] = None) -> RunResult:
    """One fresh simulator run of ``kind`` over prebuilt ``traces``.

    Builds the configuration and simulator inside the call (their cost
    is part of what a baseline should see) but expects the traces —
    which are configuration-independent and disk-cached — to already
    exist, so repeated timings measure simulation, not scene generation.
    """
    config, scheduler = GPUConfig.build(
        kind, screen_width=width, screen_height=height,
        settings=settings or {})
    sim = GPUSimulator(config, scheduler=scheduler, name=kind,
                       batched=batched)
    return sim.run(traces)
