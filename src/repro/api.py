"""The supported public surface of :mod:`repro`.

Everything in ``__all__`` here is stable API: importing it emits no
warnings, its signatures only change with a deprecation cycle, and
``tests/test_api.py`` pins the contract.  Anything reachable elsewhere
in the package (simulator internals, scheduler plumbing, cache-file
layout) is implementation detail that may change between releases —
see ``docs/api.md`` for the full public/internal split.

The verbs:

* :func:`build_traces` — frame traces for a benchmark (disk-cached).
* :func:`simulate` — one benchmark under one GPU variant → RunSummary.
* :func:`compare` — several variants on identical traces, with
  speedups over the first (what ``repro compare`` prints).
* :func:`sweep` — a declarative, resumable parameter-grid sweep (what
  ``repro sweep`` runs); :func:`load_spec` reads the YAML/JSON spec.
* :func:`serve` / :func:`run_worker` / :class:`SweepClient` — the
  distributed sweep service (what ``repro serve``/``worker``/``submit``
  run): submit a spec over HTTP, a worker fleet sharing the store
  directory executes it, and the client returns the aggregated
  :class:`SpeedupMatrix`.  Failures raise :class:`ServiceError`
  carrying the HTTP status.  See ``docs/service.md``.

Configuration enters through :class:`~repro.config.GPUConfig` — either
a preset (:func:`baseline_config` / :func:`libra_config` /
:func:`small_config`) or the named-variant entry point
:meth:`GPUConfig.build`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from . import harness
from .config import (GPUConfig, baseline_config, libra_config, parse_kind,
                     small_config)
from .errors import ConfigValidationError, ReproError, ServiceError
from .experiments import (ExperimentSpec, SpeedupMatrix, SweepPoint,
                          SweepResult, execute_point, run_sweep,
                          speedup_matrix)
from .gpu import FrameTrace
from .harness import RunSummary, SuiteReport, run_suite
from .service import JobRecord, SweepClient, run_worker, serve

__all__ = [
    # verbs
    "build_traces",
    "simulate",
    "compare",
    "sweep",
    "load_spec",
    "run_suite",
    # the sweep service (repro serve / worker / submit / status)
    "serve",
    "run_worker",
    "SweepClient",
    "JobRecord",
    # configuration constructors
    "GPUConfig",
    "baseline_config",
    "libra_config",
    "small_config",
    "parse_kind",
    # report / result types
    "RunSummary",
    "SuiteReport",
    "ComparisonReport",
    "ExperimentSpec",
    "SweepPoint",
    "SweepResult",
    "SpeedupMatrix",
    "speedup_matrix",
    "FrameTrace",
    # error root (catch this to handle anything the package raises)
    "ReproError",
    "ServiceError",
]


def build_traces(benchmark: str, frames: int = harness.FRAMES,
                 width: int = harness.WIDTH,
                 height: int = harness.HEIGHT) -> List[FrameTrace]:
    """Frame traces for ``benchmark``, built once and cached on disk.

    Traces are configuration-independent, so every variant you simulate
    afterwards shares them; the cache lives under ``$REPRO_CACHE_DIR``
    (default ``.repro_cache/``) with checksummed crash-safe entries.
    """
    return harness.get_traces(benchmark, frames, width, height)


def simulate(benchmark: str, kind: str = "libra",
             frames: int = harness.FRAMES,
             width: int = harness.WIDTH, height: int = harness.HEIGHT,
             raster_units: int = 2, cores_per_unit: int = 4,
             settings: Optional[dict] = None) -> RunSummary:
    """Run one benchmark under one named GPU variant.

    ``kind`` follows the :func:`~repro.config.parse_kind` grammar
    (``baseline``, ``baseline8``, ``ptr``, ``libra``,
    ``temperature<N>``, ``supertile<N>``); ``settings`` takes dotted
    config overrides (``{"dram.requests_per_cycle": 0.16}``) exactly
    like a sweep axis.  Uses the shared trace cache; the simulation
    itself always executes (for the disk-cached variant with the
    standard geometry see :func:`repro.harness.run_simulation`).
    """
    axes = dict(settings or {})
    axes["raster_units"] = raster_units
    axes["cores_per_unit"] = cores_per_unit
    point = SweepPoint(benchmark=benchmark, kind=kind,
                       axes=tuple(sorted(axes.items())),
                       frames=frames, width=width, height=height)
    return execute_point(point)


@dataclass
class ComparisonReport:
    """Several GPU variants over identical traces, first = baseline."""

    benchmark: str
    kinds: List[str]
    summaries: Dict[str, RunSummary] = field(default_factory=dict)

    @property
    def baseline_kind(self) -> str:
        """The kind every speedup is normalized against."""
        return self.kinds[0]

    def speedups(self) -> Dict[str, float]:
        """kind -> execution-time speedup over the first kind."""
        base = self.summaries[self.baseline_kind].total_cycles
        return {kind: base / s.total_cycles
                for kind, s in self.summaries.items()}

    def format(self) -> str:
        """The ``repro compare`` table."""
        from .stats import format_table
        speedups = self.speedups()
        rows = []
        for kind in self.kinds:
            s = self.summaries[kind]
            rows.append([kind, s.frames, s.total_cycles, f"{s.fps:.1f}",
                         f"{s.texture_hit_ratio:.3f}",
                         f"{s.texture_latency:.1f}",
                         s.raster_dram_accesses,
                         f"{s.energy_j * 1000:.2f}",
                         f"{speedups[kind]:.3f}"])
        return format_table(
            ("config", "frames", "cycles", "fps", "tex hit", "tex lat",
             "dram", "energy mJ", "speedup"), rows,
            title=f"{self.benchmark}: {' vs '.join(self.kinds)}")


def compare(benchmark: str,
            kinds: Sequence[str] = ("baseline", "ptr", "libra"),
            frames: int = harness.FRAMES,
            width: int = harness.WIDTH,
            height: int = harness.HEIGHT) -> ComparisonReport:
    """Simulate ``kinds`` over identical traces; speedups vs the first.

    The same config-resolution path (:meth:`GPUConfig.build`) and trace
    cache the sweep engine uses, so a ``compare`` row equals the sweep
    point with the same settings.
    """
    if not kinds:
        raise ConfigValidationError("compare needs at least one kind")
    report = ComparisonReport(benchmark=benchmark, kinds=list(kinds))
    for kind in kinds:
        point = SweepPoint(benchmark=benchmark, kind=kind, axes=(),
                           frames=frames, width=width, height=height)
        report.summaries[kind] = execute_point(point)
    return report


def load_spec(path: Union[str, Path]) -> ExperimentSpec:
    """Load and validate an experiment spec from a YAML/JSON file."""
    return ExperimentSpec.from_file(path)


def sweep(spec: Union[ExperimentSpec, str, Path],
          store_root: Union[str, Path, None] = None,
          workers: Optional[int] = None,
          timeout_s: Optional[float] = None,
          retries: Optional[int] = None) -> SweepResult:
    """Execute (or resume) a declarative sweep.

    ``spec`` is an :class:`ExperimentSpec` or a path to one.  Completed
    points are checkpointed per point into ``store_root`` (default
    ``.repro_sweeps/<name>``); rerunning with the same spec and store
    resumes instead of restarting.  See :func:`repro.experiments.run_sweep`.
    """
    if not isinstance(spec, ExperimentSpec):
        spec = load_spec(spec)
    return run_sweep(spec, store_root=store_root, workers=workers,
                     timeout_s=timeout_s, retries=retries)
