"""Simulation configuration (the paper's Table I).

Every knob of the modeled GPU lives here as a frozen-by-convention dataclass
tree so experiments can derive variants with :func:`dataclasses.replace`.
The defaults reproduce Table I of the paper: an 800 MHz mobile TBR GPU
resembling an ARM Valhall part, rendering Full HD frames with 32x32-pixel
tiles, backed by an LPDDR4-like main memory.

Two presets are provided:

* :func:`baseline_config` — one Raster Unit with eight shader cores (the
  paper's baseline GPU).
* :func:`libra_config` — two Raster Units with four cores each (the LIBRA
  hardware organization; the scheduler itself is configured separately on
  :class:`repro.gpu.simulator.GPUSimulator`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Tuple

from .errors import ConfigValidationError

#: GPU core clock in Hz (Table I: 800 MHz, 1 V, 22 nm).
GPU_FREQUENCY_HZ = 800_000_000

#: Bytes per cache line everywhere in the hierarchy (Table I).
CACHE_LINE_BYTES = 64


@dataclass
class CacheConfig:
    """Geometry of one set-associative cache (sizes in bytes)."""

    size_bytes: int
    ways: int
    line_bytes: int = CACHE_LINE_BYTES
    latency_cycles: int = 1

    @property
    def num_lines(self) -> int:
        """Cache lines in the cache."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Sets in the cache."""
        return self.num_lines // self.ways

    def validate(self) -> None:
        """Raise ValueError on an inconsistent configuration."""
        if self.size_bytes % self.line_bytes:
            raise ConfigValidationError("cache size must be a multiple of the line size")
        if self.num_lines % self.ways:
            raise ConfigValidationError("cache lines must divide evenly into ways")
        if self.num_sets & (self.num_sets - 1):
            raise ConfigValidationError("number of sets must be a power of two")


@dataclass
class DRAMConfig:
    """LPDDR4-like main memory model parameters (Table I).

    ``row_hit_cycles`` / ``row_miss_cycles`` bound the unloaded access
    latency to the paper's 50-100 GPU-cycle range.  ``requests_per_cycle``
    is the sustainable service bandwidth in cache lines per GPU cycle; the
    effective latency grows with a queueing factor as utilization approaches
    one (Section III of the paper: "the response time of memory increases
    asymptotically as the utilization factor approaches 100%").
    """

    size_bytes: int = 8 * 1024 ** 3
    num_banks: int = 8
    row_bytes: int = 2048
    row_hit_cycles: int = 50
    row_miss_cycles: int = 100
    requests_per_cycle: float = 0.08
    max_queue_factor: float = 16.0

    def validate(self) -> None:
        """Raise ValueError on an inconsistent configuration."""
        if self.num_banks & (self.num_banks - 1):
            raise ConfigValidationError("number of DRAM banks must be a power of two")
        if self.row_bytes % CACHE_LINE_BYTES:
            raise ConfigValidationError("DRAM row must hold an integer number of lines")
        if not 0 < self.requests_per_cycle:
            raise ConfigValidationError("DRAM bandwidth must be positive")


@dataclass
class ShaderCoreConfig:
    """Throughput model of one shader core.

    The functional work of a fragment shader is abstracted as a cost
    (instructions and texture fetches); a core retires ``ipc`` instructions
    per cycle across its warps, and can keep ``mshrs`` outstanding misses in
    flight, which bounds how much DRAM latency multithreading can hide.
    """

    ipc: float = 1.0
    warps: int = 16
    mshrs: int = 3
    #: Fragments a primitive must offer before another core is engaged;
    #: models the limited per-tile parallelism that makes simply adding
    #: cores ineffective (the paper's Figure 4 motivation).
    min_fragments_per_core: int = 40


@dataclass
class RasterUnitConfig:
    """One Raster Unit: private rasterizer front-end plus shader cores."""

    num_cores: int = 4
    raster_rate_quads_per_cycle: float = 2.0
    input_queue_entries: int = 64
    #: Fixed cost to set up a tile (bind buffers, clear Z/Color), cycles.
    tile_setup_cycles: int = 32
    #: Fixed (non-overlapped) cost of the Color Buffer flush, cycles.
    tile_flush_cycles: int = 32
    #: Serial front-end cost per primitive (fetch, raster setup, Early-Z
    #: bookkeeping) — tiles full of tiny triangles become setup-bound.
    primitive_setup_cycles: float = 8.0


@dataclass
class SchedulerConfig:
    """LIBRA scheduler thresholds (Sections III-D and V-E).

    * ``hit_ratio_threshold`` — if the texture-L1 hit ratio of the previous
      frame exceeds this, memory congestion is unlikely and Z-order is used.
    * ``order_switch_threshold`` — relative Raster-Pipeline cycle change
      between consecutive frames that counts as a "significant performance
      variation" and triggers switching the traversal order (paper: 3%).
    * ``supertile_resize_threshold`` — relative performance change that
      counts as improvement/degradation for the supertile resize policy
      (paper: 0.25%).
    * ``supertile_sizes`` — allowed square supertile edge lengths in tiles.
    """

    hit_ratio_threshold: float = 0.80
    order_switch_threshold: float = 0.03
    supertile_resize_threshold: float = 0.0025
    supertile_sizes: Tuple[int, ...] = (2, 4, 8, 16)
    initial_supertile_size: int = 4


@dataclass
class GPUConfig:
    """Top-level simulated-GPU configuration (Table I defaults)."""

    screen_width: int = 1920
    screen_height: int = 1080
    tile_size: int = 32
    frequency_hz: int = GPU_FREQUENCY_HZ
    num_raster_units: int = 1
    raster_unit: RasterUnitConfig = field(
        default_factory=lambda: RasterUnitConfig(num_cores=8)
    )
    shader_core: ShaderCoreConfig = field(default_factory=ShaderCoreConfig)
    vertex_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(4 * 1024, 2, latency_cycles=1)
    )
    tile_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 4, latency_cycles=2)
    )
    texture_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 4, latency_cycles=2)
    )
    l2_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(2 * 1024 * 1024, 8, latency_cycles=18)
    )
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    interval_cycles: int = 1000
    #: AFBC-style frame-buffer compression: None disables it; a value in
    #: (0, 1] is the fraction of flush lines actually written (extension
    #: feature, off by default to match the paper's machine).
    fb_compression_ratio: Optional[float] = None

    @property
    def tiles_x(self) -> int:
        """Tile columns covering the screen."""
        return -(-self.screen_width // self.tile_size)

    @property
    def tiles_y(self) -> int:
        """Tile rows covering the screen."""
        return -(-self.screen_height // self.tile_size)

    @property
    def num_tiles(self) -> int:
        """Tiles covering the screen."""
        return self.tiles_x * self.tiles_y

    @property
    def total_cores(self) -> int:
        """Shader cores across all Raster Units."""
        return self.num_raster_units * self.raster_unit.num_cores

    def validate(self) -> None:
        """Raise :class:`ConfigValidationError` on an inconsistent config.

        Beyond the per-component checks, this enforces the cross-field
        invariants the simulator assumes: a consistent cache-line size
        across the whole hierarchy, screen dimensions that yield a
        non-empty tile grid, and scheduler thresholds/supertile sizes
        that the LIBRA decision logic can actually act on.
        """
        for cache in (self.vertex_cache, self.tile_cache,
                      self.texture_cache, self.l2_cache):
            cache.validate()
        self.dram.validate()
        line_sizes = {c.line_bytes for c in (
            self.vertex_cache, self.tile_cache, self.texture_cache,
            self.l2_cache)}
        if len(line_sizes) != 1:
            raise ConfigValidationError(
                f"cache hierarchy mixes line sizes {sorted(line_sizes)}")
        if self.dram.row_bytes % line_sizes.pop():
            raise ConfigValidationError(
                "DRAM row must hold an integer number of cache lines")
        if self.screen_width < 1 or self.screen_height < 1:
            raise ConfigValidationError(
                f"screen must be at least 1x1 pixel, got "
                f"{self.screen_width}x{self.screen_height}")
        if self.frequency_hz <= 0:
            raise ConfigValidationError("GPU frequency must be positive")
        if self.tile_size <= 0 or self.tile_size & (self.tile_size - 1):
            raise ConfigValidationError("tile size must be a positive power of two")
        if self.num_raster_units < 1:
            raise ConfigValidationError("at least one Raster Unit is required")
        if self.raster_unit.num_cores < 1:
            raise ConfigValidationError(
                "each Raster Unit needs at least one shader core")
        if self.shader_core.ipc <= 0 or self.shader_core.warps < 1 \
                or self.shader_core.mshrs < 1:
            raise ConfigValidationError(
                "shader core needs positive ipc, warps and mshrs")
        if self.interval_cycles < 1:
            raise ConfigValidationError("interval must be at least one cycle")
        if self.fb_compression_ratio is not None and not (
                0.0 < self.fb_compression_ratio <= 1.0):
            raise ConfigValidationError("fb compression ratio must be in (0, 1]")
        self._validate_scheduler()

    def _validate_scheduler(self) -> None:
        sched = self.scheduler
        if not 0.0 <= sched.hit_ratio_threshold <= 1.0:
            raise ConfigValidationError(
                f"hit-ratio threshold {sched.hit_ratio_threshold} "
                "outside [0, 1]")
        for name in ("order_switch_threshold",
                     "supertile_resize_threshold"):
            value = getattr(sched, name)
            if not 0.0 <= value < 1.0:
                raise ConfigValidationError(
                    f"{name} {value} outside [0, 1)")
        if not sched.supertile_sizes:
            raise ConfigValidationError("supertile_sizes must be non-empty")
        for size in sched.supertile_sizes:
            if size < 1 or size & (size - 1):
                raise ConfigValidationError(
                    f"supertile size {size} is not a positive power of two")
        if sched.initial_supertile_size not in sched.supertile_sizes:
            raise ConfigValidationError(
                f"initial supertile size {sched.initial_supertile_size} "
                f"not in the allowed sizes {sched.supertile_sizes}")

    def replace(self, **changes) -> "GPUConfig":
        """Return a copy with ``changes`` applied (deep enough for tests)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def build(cls, kind: str, raster_units: int = 2, cores_per_unit: int = 4,
              settings: Optional[Mapping[str, Any]] = None,
              **overrides) -> Tuple["GPUConfig", Optional[object]]:
        """The single named-variant entry point: ``(config, scheduler)``.

        ``kind`` names a GPU variant (see :func:`parse_kind` for the
        grammar): ``baseline``/``baseline<N>``, ``ptr``, ``libra``,
        ``temperature[<N>]``, ``supertile[<N>]``.  ``overrides`` are
        passed straight to the :class:`GPUConfig` constructor
        (``screen_width=...``, ``dram=...``); ``settings`` is a mapping
        of dotted attribute paths to values applied *after* construction
        (``{"dram.requests_per_cycle": 0.16,
        "scheduler.initial_supertile_size": 8}``), which is how sweep
        axes reach nested knobs.  The config is validated after every
        override is in place, and the scheduler is built from the final
        config, so threshold/supertile settings take effect.

        This subsumes the historical ``harness.make_config`` (now a
        deprecated shim) and the per-preset constructors, which remain
        as conveniences for the common cases.
        """
        family, param = parse_kind(kind)
        if family == "baseline":
            cores = param if param is not None \
                else raster_units * cores_per_unit
            overrides.setdefault("raster_unit",
                                 RasterUnitConfig(num_cores=cores))
            config = cls(num_raster_units=1, **overrides)
        else:
            overrides.setdefault("raster_unit",
                                 RasterUnitConfig(num_cores=cores_per_unit))
            config = cls(num_raster_units=raster_units, **overrides)
        apply_settings(config, settings or {})
        config.validate()
        return config, _scheduler_for(family, param, config)


#: Variant families :func:`parse_kind` understands (``baseline``,
#: ``temperature`` and ``supertile`` also accept a numeric suffix).
KIND_FAMILIES = ("baseline", "ptr", "libra", "temperature", "supertile")


def parse_kind(kind: str) -> Tuple[str, Optional[int]]:
    """Split a config-kind name into ``(family, numeric parameter)``.

    * ``baseline`` → ``("baseline", None)`` (core count chosen by the
      caller); ``baseline8`` → ``("baseline", 8)``.
    * ``ptr`` / ``libra`` — no parameter.
    * ``temperature`` / ``temperature<N>`` — hot/cold scheduling with
      supertile edge ``N`` (default 4).
    * ``supertile`` / ``supertile<N>`` — static supertiles of edge ``N``.

    Raises :class:`ConfigValidationError` on anything else, naming the
    valid families.
    """
    for family in ("baseline", "temperature", "supertile"):
        if kind == family:
            return family, None
        if kind.startswith(family) and kind[len(family):].isdigit():
            return family, int(kind[len(family):])
    if kind in ("ptr", "libra"):
        return kind, None
    raise ConfigValidationError(
        f"unknown config kind {kind!r}; valid: {', '.join(KIND_FAMILIES)} "
        "(baseline/temperature/supertile accept a numeric suffix)")


def apply_settings(config: GPUConfig,
                   settings: Mapping[str, Any]) -> GPUConfig:
    """Apply dotted-path overrides to ``config`` in place.

    ``{"dram.requests_per_cycle": 0.16, "texture_cache.size_bytes":
    65536}`` reaches into the nested dataclasses; an unknown path raises
    :class:`ConfigValidationError` instead of silently creating a new
    attribute.  Returns ``config`` for chaining.  Callers mutating a
    shared config should ``replace()`` first; the presets and
    :meth:`GPUConfig.build` always hand out fresh trees.
    """
    for path, value in settings.items():
        target: Any = config
        parts = path.split(".")
        for depth, part in enumerate(parts):
            if not hasattr(target, part):
                parent = ".".join(parts[:depth]) or "GPUConfig"
                raise ConfigValidationError(
                    f"unknown config setting {path!r} "
                    f"({parent} has no attribute {part!r})")
            if depth == len(parts) - 1:
                setattr(target, part, value)
            else:
                target = getattr(target, part)
    return config


def _scheduler_for(family: str, param: Optional[int], config: GPUConfig):
    """The scheduler a kind family implies, built against ``config``.

    Imported lazily because :mod:`repro.core` imports this module.
    """
    from .core import (LibraScheduler, StaticSupertileScheduler,
                       TemperatureScheduler, ZOrderScheduler)
    if family == "baseline":
        return None
    if family == "ptr":
        return ZOrderScheduler()
    if family == "libra":
        return LibraScheduler(config.scheduler)
    if family == "temperature":
        return TemperatureScheduler(param if param is not None else 4)
    return StaticSupertileScheduler(
        param if param is not None
        else config.scheduler.initial_supertile_size)


def baseline_config(**overrides) -> GPUConfig:
    """The paper's baseline: a single Raster Unit with eight cores."""
    overrides.setdefault("raster_unit", RasterUnitConfig(num_cores=8))
    cfg = GPUConfig(num_raster_units=1, **overrides)
    cfg.validate()
    return cfg


def libra_config(num_raster_units: int = 2, cores_per_unit: int = 4,
                 **overrides) -> GPUConfig:
    """LIBRA's organization: multiple Raster Units of four cores each."""
    cfg = GPUConfig(
        num_raster_units=num_raster_units,
        raster_unit=RasterUnitConfig(num_cores=cores_per_unit),
        **overrides,
    )
    cfg.validate()
    return cfg


def small_config(screen_width: int = 256, screen_height: int = 256,
                 tile_size: int = 32, **overrides) -> GPUConfig:
    """A reduced configuration for unit tests and quick examples."""
    cfg = GPUConfig(
        screen_width=screen_width,
        screen_height=screen_height,
        tile_size=tile_size,
        **overrides,
    )
    cfg.validate()
    return cfg
