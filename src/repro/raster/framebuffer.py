"""Color Buffer (on-chip, tile-sized) and Frame Buffer (main memory).

Once all the primitives of a tile have rendered, the Color Buffer's
content is flushed to the Frame Buffer exactly once per tile
(Section II-A) — this write stream is one of the four DRAM traffic
sources, and its line addresses are produced here for the timing model.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..config import CACHE_LINE_BYTES

#: Bytes per pixel in the Frame Buffer (RGBA8).
PIXEL_BYTES = 4
#: Pixels per cache line in the frame buffer's row-major layout.
PIXELS_PER_LINE = CACHE_LINE_BYTES // PIXEL_BYTES


class TileColorBuffer:
    """On-chip color buffer for the tile in flight."""

    def __init__(self, tile_size: int,
                 clear_color: Tuple[float, float, float, float]
                 = (0.0, 0.0, 0.0, 1.0)):
        self.tile_size = tile_size
        self.clear_color = np.asarray(clear_color, dtype=np.float64)
        self._color = np.empty((tile_size, tile_size, 4), dtype=np.float64)
        self._origin_x = 0
        self._origin_y = 0
        self.reset(0, 0)

    def reset(self, origin_x: int, origin_y: int) -> None:
        """Rebind to a new tile origin and clear to the clear color."""
        self._color[...] = self.clear_color
        self._origin_x = origin_x
        self._origin_y = origin_y

    def read(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Colors at the given pixel coordinates, (N, 4)."""
        return self._color[ys - self._origin_y, xs - self._origin_x]

    def write(self, xs: np.ndarray, ys: np.ndarray,
              colors: np.ndarray) -> None:
        """Store colors at the given pixel coordinates."""
        self._color[ys - self._origin_y, xs - self._origin_x] = colors

    def snapshot(self) -> np.ndarray:
        """Copy of the tile's pixels, (tile, tile, 4) float in [0, 1]."""
        return self._color.copy()


class FrameBuffer:
    """Main-memory frame buffer receiving Color Buffer flushes."""

    def __init__(self, width: int, height: int,
                 base_address: int = 0xC000_0000,
                 store_pixels: bool = True):
        if base_address % CACHE_LINE_BYTES:
            raise ValueError("frame buffer base must be line-aligned")
        self.width = width
        self.height = height
        self.base_address = base_address
        self.store_pixels = store_pixels
        self._pixels = (np.zeros((height, width, 4), dtype=np.float64)
                        if store_pixels else None)
        self.flushes = 0

    def flush_tile(self, origin_x: int, origin_y: int,
                   tile: TileColorBuffer) -> List[int]:
        """Write a tile's colors into the frame; returns the line addresses.

        Rows of the tile clipped to the screen are written; each screen row
        segment covers a contiguous byte range whose 64-byte lines are
        enumerated.
        """
        self.flushes += 1
        x1 = min(origin_x + tile.tile_size, self.width)
        y1 = min(origin_y + tile.tile_size, self.height)
        if origin_x >= self.width or origin_y >= self.height:
            return []
        if self.store_pixels and self._pixels is not None:
            self._pixels[origin_y:y1, origin_x:x1] = \
                tile.snapshot()[:y1 - origin_y, :x1 - origin_x]
        lines: List[int] = []
        base_line = self.base_address // CACHE_LINE_BYTES
        for y in range(origin_y, y1):
            start = (y * self.width + origin_x) * PIXEL_BYTES
            end = (y * self.width + x1) * PIXEL_BYTES
            first = start // CACHE_LINE_BYTES
            last = (end - 1) // CACHE_LINE_BYTES
            lines.extend(range(base_line + first, base_line + last + 1))
        return sorted(set(lines))

    def image(self) -> np.ndarray:
        """The full frame, (H, W, 4) float in [0, 1]."""
        if self._pixels is None:
            raise RuntimeError("frame buffer built with store_pixels=False")
        return self._pixels

    def image_u8(self) -> np.ndarray:
        """The frame as (H, W, 4) uint8."""
        return (np.clip(self.image(), 0.0, 1.0) * 255).astype(np.uint8)


def tile_flush_lines(origin_x: int, origin_y: int, tile_size: int,
                     width: int, height: int,
                     base_address: int = 0xC000_0000) -> List[int]:
    """Line addresses a tile flush writes, without touching pixel data.

    Used by the trace path (the timing model needs addresses only).
    """
    x1 = min(origin_x + tile_size, width)
    y1 = min(origin_y + tile_size, height)
    if origin_x >= width or origin_y >= height:
        return []
    lines: List[int] = []
    base_line = base_address // CACHE_LINE_BYTES
    for y in range(origin_y, y1):
        start = (y * width + origin_x) * PIXEL_BYTES
        end = (y * width + x1) * PIXEL_BYTES
        first = start // CACHE_LINE_BYTES
        last = (end - 1) // CACHE_LINE_BYTES
        lines.extend(range(base_line + first, base_line + last + 1))
    return sorted(set(lines))
