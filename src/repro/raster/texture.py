"""Textures: procedural images, mipmaps, sampling and cache-line layout.

Textures are stored (conceptually) in main memory in a blocked layout:
each 64-byte cache line holds a 4x4 block of RGBA8 texels, the layout
mobile GPUs use so that a screen-space-local fragment quad touches few
lines.  The same address math feeds both the functional sampler (which
needs actual texel data, generated procedurally from the texture's seed)
and the timing model (which only needs line addresses).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from ..config import CACHE_LINE_BYTES

#: Texels per side of the square block stored in one cache line (RGBA8).
BLOCK = 4
#: Texels per cache line.
TEXELS_PER_LINE = BLOCK * BLOCK


class Texture:
    """One mipmapped texture with a blocked main-memory layout."""

    def __init__(self, texture_id: int, width: int, height: int,
                 base_address: int, seed: int = 0, style: str = "noise"):
        if width < BLOCK or height < BLOCK:
            raise ValueError(f"texture must be at least {BLOCK}x{BLOCK}")
        if width & (width - 1) or height & (height - 1):
            raise ValueError("texture dimensions must be powers of two")
        if base_address % CACHE_LINE_BYTES:
            raise ValueError("texture base must be line-aligned")
        self.texture_id = texture_id
        self.width = width
        self.height = height
        self.base_address = base_address
        self.seed = seed
        self.style = style
        self.levels = int(math.log2(min(width, height) // BLOCK)) + 1
        self._level_line_offsets: List[int] = []
        offset = 0
        for level in range(self.levels):
            self._level_line_offsets.append(offset)
            offset += self.blocks_x(level) * self.blocks_y(level)
        self._total_lines = offset
        self._data: Dict[int, np.ndarray] = {}

    # -- geometry ---------------------------------------------------------
    def level_width(self, level: int) -> int:
        """Texel width of a mip level."""
        return max(self.width >> level, BLOCK)

    def level_height(self, level: int) -> int:
        """Texel height of a mip level."""
        return max(self.height >> level, BLOCK)

    def blocks_x(self, level: int) -> int:
        """4x4-texel blocks per row of a mip level."""
        return self.level_width(level) // BLOCK

    def blocks_y(self, level: int) -> int:
        """4x4-texel block rows of a mip level."""
        return self.level_height(level) // BLOCK

    def size_bytes(self) -> int:
        """Total footprint of all mip levels in main memory."""
        return self._total_lines * CACHE_LINE_BYTES

    def clamp_level(self, level: int) -> int:
        """Clamp a mip level into the texture's valid range."""
        return min(max(level, 0), self.levels - 1)

    # -- addressing ---------------------------------------------------------
    def level_base_line(self, level: int) -> int:
        """First cache-line address of a mip level's block array."""
        level = self.clamp_level(level)
        return (self.base_address // CACHE_LINE_BYTES
                + self._level_line_offsets[level])

    def line_address(self, level: int, bx: int, by: int) -> int:
        """Cache-line address of block (bx, by) of a mip level."""
        level = self.clamp_level(level)
        bx %= self.blocks_x(level)
        by %= self.blocks_y(level)
        index = (self._level_line_offsets[level]
                 + by * self.blocks_x(level) + bx)
        return self.base_address // CACHE_LINE_BYTES + index

    def footprint_lines(self, u0: float, v0: float, u1: float, v1: float,
                        level: int = 0) -> List[int]:
        """Line addresses covering the UV rectangle at a mip level.

        Texture addressing wraps (GL_REPEAT); a UV span >= 1 covers the
        whole level.  Lines come back in row-major block order, which is
        the order a scanline of fragment quads first touches them.
        """
        level = self.clamp_level(level)
        nbx, nby = self.blocks_x(level), self.blocks_y(level)
        bxs = self._wrapped_block_range(u0, u1, nbx)
        bys = self._wrapped_block_range(v0, v1, nby)
        base = self.base_address // CACHE_LINE_BYTES
        offset = self._level_line_offsets[level]
        return [base + offset + by * nbx + bx for by in bys for bx in bxs]

    @staticmethod
    def _wrapped_block_range(c0: float, c1: float, nblocks: int) -> List[int]:
        if c1 < c0:
            c0, c1 = c1, c0
        if c1 - c0 >= 1.0:
            return list(range(nblocks))
        b0 = int(math.floor(c0 * nblocks)) % nblocks
        b1 = int(math.floor(c1 * nblocks - 1e-12)) % nblocks
        if b0 <= b1:
            return list(range(b0, b1 + 1))
        return list(range(b0, nblocks)) + list(range(0, b1 + 1))

    # -- functional sampling -------------------------------------------------
    def data(self, level: int = 0) -> np.ndarray:
        """Procedural texel data for a mip level, (H, W, 4) uint8."""
        level = self.clamp_level(level)
        cached = self._data.get(level)
        if cached is not None:
            return cached
        w, h = self.level_width(level), self.level_height(level)
        rng = np.random.default_rng(
            (self.seed * 1_000_003 + level) & 0xFFFF_FFFF)
        if self.style == "noise":
            texels = rng.integers(0, 256, size=(h, w, 4), dtype=np.uint8)
        elif self.style == "checker":
            ys, xs = np.mgrid[0:h, 0:w]
            check = ((xs // BLOCK + ys // BLOCK) % 2).astype(np.uint8)
            texels = np.empty((h, w, 4), dtype=np.uint8)
            base = rng.integers(64, 192, size=4, dtype=np.uint8)
            texels[...] = base
            texels[check == 1] = 255 - base
        elif self.style == "gradient":
            ys, xs = np.mgrid[0:h, 0:w]
            texels = np.empty((h, w, 4), dtype=np.uint8)
            texels[..., 0] = (255 * xs / max(w - 1, 1)).astype(np.uint8)
            texels[..., 1] = (255 * ys / max(h - 1, 1)).astype(np.uint8)
            texels[..., 2] = rng.integers(0, 256)
            texels[..., 3] = 255
        else:
            raise ValueError(f"unknown texture style {self.style!r}")
        texels[..., 3] = 255  # opaque alpha by default
        self._data[level] = texels
        return texels

    def sample(self, u: float, v: float, level: int = 0) -> np.ndarray:
        """Point-sample (wrapped) — returns float RGBA in [0, 1]."""
        data = self.data(level)
        h, w = data.shape[:2]
        x = int(math.floor(u * w)) % w
        y = int(math.floor(v * h)) % h
        return data[y, x].astype(np.float64) / 255.0

    def sample_bilinear(self, u: float, v: float,
                        level: int = 0) -> np.ndarray:
        """Bilinear sample (wrapped) — returns float RGBA in [0, 1]."""
        data = self.data(level)
        h, w = data.shape[:2]
        x = u * w - 0.5
        y = v * h - 0.5
        x0, y0 = int(math.floor(x)), int(math.floor(y))
        fx, fy = x - x0, y - y0
        c00 = data[y0 % h, x0 % w].astype(np.float64)
        c10 = data[y0 % h, (x0 + 1) % w].astype(np.float64)
        c01 = data[(y0 + 1) % h, x0 % w].astype(np.float64)
        c11 = data[(y0 + 1) % h, (x0 + 1) % w].astype(np.float64)
        top = c00 * (1 - fx) + c10 * fx
        bottom = c01 * (1 - fx) + c11 * fx
        return (top * (1 - fy) + bottom * fy) / 255.0


def select_mip(texture: Texture, uv_area: float, pixel_area: float) -> int:
    """Choose the mip level for ~1 texel per pixel.

    ``uv_area`` is the area of the primitive's UV footprint (UV units²),
    ``pixel_area`` its screen coverage in pixels.  The level halves the
    texel density per step, so level = ½ log2(texels / pixels).
    """
    if pixel_area <= 0.0:
        return texture.levels - 1
    texels = abs(uv_area) * texture.width * texture.height
    if texels <= 0.0:
        return 0
    ratio = texels / pixel_area
    if ratio <= 1.0:
        return 0
    # Standard LOD selection: level = floor(log2(texels-per-pixel-axis)),
    # keeping the sampled density in [1, 4) texels per pixel.
    return texture.clamp_level(int(0.5 * math.log2(ratio)))


class TextureSet:
    """All textures bound for a frame, addressable by ID.

    Allocates non-overlapping main-memory regions; the workload generator
    sizes this set per benchmark (the "memory footprint" column of
    Table II).
    """

    def __init__(self, base_address: int = 0x8000_0000):
        self._base = base_address
        self._next = base_address
        self._textures: Dict[int, Texture] = {}

    def add(self, width: int, height: int, seed: int = 0,
            style: str = "noise",
            texture_id: Optional[int] = None) -> Texture:
        """Allocate a new texture after the previous one; returns it."""
        if texture_id is None:
            texture_id = len(self._textures)
        if texture_id in self._textures:
            raise ValueError(f"texture id {texture_id} already in use")
        tex = Texture(texture_id, width, height, self._next,
                      seed=seed, style=style)
        self._next += tex.size_bytes()
        self._textures[texture_id] = tex
        return tex

    def __getitem__(self, texture_id: int) -> Texture:
        return self._textures[texture_id]

    def __contains__(self, texture_id: int) -> bool:
        return texture_id in self._textures

    def __len__(self) -> int:
        return len(self._textures)

    def ids(self) -> List[int]:
        """Sorted texture IDs in the set."""
        return sorted(self._textures)

    def total_bytes(self) -> int:
        """Main-memory footprint of the whole set."""
        return sum(t.size_bytes() for t in self._textures.values())
