"""Functional per-tile Raster Pipeline.

Runs the right-hand pipeline of the paper's Figure 3 for one tile:
Rasterizer -> Early-Z -> Fragment Stage -> Blending -> Color Buffer, then
flushes the Color Buffer to the Frame Buffer.  Two uses:

* **Rendering** — with ``shade_colors=True`` it produces actual frame
  images (examples, correctness tests).
* **Tracing** — with ``shade_colors=False`` it measures, per tile, exactly
  what the timing model needs: shaded fragment counts, instruction and
  texture-fetch totals, and the ordered texture-line footprint of every
  primitive (see :mod:`repro.workloads.traces`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..geometry.primitive import Primitive
from .blending import blend
from .fragment import FragmentProcessor, pick_mip_level, touched_lines
from .framebuffer import FrameBuffer, TileColorBuffer
from .rasterizer import rasterize_in_region, rasterize_tile
from .texture import TextureSet
from .zbuffer import TileZBuffer, filter_batch

TileCoord = Tuple[int, int]


@dataclass
class TileRenderResult:
    """Measurements (and optionally pixels) from rendering one tile."""

    tile: TileCoord
    fragments_rasterized: int = 0
    fragments_early_rejected: int = 0
    fragments_shaded: int = 0
    quads: int = 0
    instructions: int = 0
    texture_fetches: int = 0
    #: Ordered texture cache-line footprint (per primitive, concatenated).
    texture_lines: List[int] = field(default_factory=list)
    #: Frame-buffer lines written by this tile's Color Buffer flush.
    framebuffer_lines: List[int] = field(default_factory=list)
    #: Tile pixels (tile_size, tile_size, 4) when shading was enabled.
    pixels: Optional[np.ndarray] = None
    #: Primitives in this tile's list (all of them cost raster setup).
    num_primitives: int = 0
    #: Shaded-fragment count per primitive that shaded anything.
    prim_fragments: List[int] = field(default_factory=list)
    #: Instruction count per primitive, aligned with ``prim_fragments``.
    prim_instructions: List[int] = field(default_factory=list)


class RasterPipeline:
    """Functional raster pipeline over a tile grid."""

    def __init__(self, width: int, height: int, tile_size: int,
                 textures: TextureSet, shade_colors: bool = True,
                 collect_lines: bool = True,
                 framebuffer: Optional[FrameBuffer] = None,
                 batched: bool = True):
        self.width = width
        self.height = height
        self.tile_size = tile_size
        self.textures = textures
        self.shade_colors = shade_colors
        self.collect_lines = collect_lines
        #: Rasterize all of a tile's primitives in one broadcast kernel
        #: (:func:`rasterize_tile`); ``False`` keeps the per-primitive
        #: scalar path, the parity oracle the batched path is checked
        #: against (the two are bit-identical).
        self.batched = batched
        self.framebuffer = framebuffer or FrameBuffer(
            width, height, store_pixels=shade_colors)
        self._zbuffer = TileZBuffer(tile_size)
        self._colorbuffer = TileColorBuffer(tile_size)

    def process_tile(self, tile: TileCoord,
                     primitives: List[Primitive]) -> TileRenderResult:
        """Render one tile's primitive list in program order."""
        x0 = tile[0] * self.tile_size
        y0 = tile[1] * self.tile_size
        self._zbuffer.reset(x0, y0)
        self._colorbuffer.reset(x0, y0)
        processor = FragmentProcessor(self.textures)
        result = TileRenderResult(tile=tile, num_primitives=len(primitives))

        packed = rasterize_tile(primitives, x0, y0, self.tile_size,
                                self.tile_size) if self.batched else None
        for index, prim in enumerate(primitives):
            batch = (packed.batch_for(index) if packed is not None
                     else rasterize_in_region(prim, x0, y0,
                                              self.tile_size,
                                              self.tile_size))
            result.fragments_rasterized += batch.count
            if batch.count == 0:
                continue
            if prim.late_z:
                # Late-Z: the shader may modify depth, so every fragment
                # is shaded and the visibility test runs afterwards.
                # (Our cost model never actually changes depth values,
                # so the test outcome is the same — but the *cost* is
                # charged for all fragments, as in hardware.)
                passed = self._zbuffer.test(batch,
                                            depth_write=prim.depth_write)
                visible = batch
                blend_mask = passed
            else:
                passed = self._zbuffer.test(batch,
                                            depth_write=prim.depth_write)
                visible = filter_batch(batch, passed)
                blend_mask = None
                result.fragments_early_rejected += \
                    batch.count - visible.count
            if visible.count == 0:
                continue
            quads = visible.quad_count()
            result.quads += quads
            result.prim_fragments.append(visible.count)
            result.prim_instructions.append(
                visible.count * prim.shader.fragment_instructions)
            # The texture unit works at quad granularity (one coalesced
            # access per quad per sampled texture).
            result.texture_fetches += quads * prim.shader.texture_fetches
            if self.collect_lines and prim.texture_id in self.textures:
                result.texture_lines.extend(
                    self._footprint(prim, visible))
            if self.shade_colors:
                colors = processor.shade(prim, visible)
                survivors = visible if blend_mask is None \
                    else filter_batch(visible, blend_mask)
                if survivors.count:
                    surviving_colors = (colors if blend_mask is None
                                        else colors[blend_mask])
                    dst = self._colorbuffer.read(survivors.xs,
                                                 survivors.ys)
                    self._colorbuffer.write(
                        survivors.xs, survivors.ys,
                        blend(dst, surviving_colors, prim.blend))
            else:
                processor.charge(prim, visible.count)

        result.fragments_shaded = processor.fragments_shaded
        result.instructions = processor.instructions
        result.framebuffer_lines = self.framebuffer.flush_tile(
            x0, y0, self._colorbuffer)
        if self.shade_colors:
            result.pixels = self._colorbuffer.snapshot()
        return result

    def _footprint(self, prim, visible) -> List[int]:
        """Texture lines the primitive's fragments touch, all textures.

        A shader with ``texture_fetches`` > 1 is multitexturing (albedo +
        normal/detail maps); the extra maps are the consecutively-bound
        textures of the set, each adding its own footprint.
        """
        lines: List[int] = []
        ids = self.textures.ids()
        base_index = ids.index(prim.texture_id)
        for j in range(max(prim.shader.texture_fetches, 1)):
            texture = self.textures[ids[(base_index + j) % len(ids)]]
            level = pick_mip_level(texture, visible)
            lines.extend(touched_lines(texture, visible, level))
        return lines

    def render_frame(self, tiled_frame) -> np.ndarray:
        """Render every tile of a tiled frame; returns the image (H, W, 4).

        ``tiled_frame`` is a :class:`repro.tiling.engine.TiledFrame`; tiles
        are processed in its default traversal order (results do not
        depend on tile order — a property the test suite checks).
        """
        for tile in tiled_frame.default_order:
            self.process_tile(tile, tiled_frame.primitives_for(tile))
        return self.framebuffer.image()
