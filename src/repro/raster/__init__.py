"""Raster Pipeline substrate: rasterizer, Z-buffer, fragment stage,
blending, color/frame buffers and textures."""

from .blending import BLEND_MODES, blend
from .fragment import FragmentProcessor, pick_mip_level, touched_lines
from .framebuffer import FrameBuffer, TileColorBuffer, tile_flush_lines
from .pipeline import RasterPipeline, TileRenderResult
from .rasterizer import (FragmentBatch, TileFragments, rasterize_in_region,
                         rasterize_tile)
from .texture import BLOCK, TEXELS_PER_LINE, Texture, TextureSet, select_mip
from .zbuffer import TileZBuffer, filter_batch

__all__ = [
    "blend",
    "BLEND_MODES",
    "FragmentProcessor",
    "pick_mip_level",
    "touched_lines",
    "FrameBuffer",
    "TileColorBuffer",
    "tile_flush_lines",
    "RasterPipeline",
    "TileRenderResult",
    "FragmentBatch",
    "TileFragments",
    "rasterize_in_region",
    "rasterize_tile",
    "Texture",
    "TextureSet",
    "select_mip",
    "BLOCK",
    "TEXELS_PER_LINE",
    "TileZBuffer",
    "filter_batch",
]
