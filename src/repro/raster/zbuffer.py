"""Tile-sized Z-Buffer and the Early-Z / Late-Z visibility tests.

The Z-Buffer is an on-chip, tile-sized buffer (Section II-A): it never
touches main memory, which is why TBR GPUs get depth testing "for free"
bandwidth-wise.  Early-Z rejects fragments occluded by previously processed
ones; when a shader modifies depth, the test must instead run after shading
(Late-Z), which the pipeline selects per draw call.
"""

from __future__ import annotations

import numpy as np

from .rasterizer import FragmentBatch


class TileZBuffer:
    """Depth buffer covering one tile, depth test LESS, cleared to +inf."""

    def __init__(self, tile_size: int):
        if tile_size < 1:
            raise ValueError("tile size must be positive")
        self.tile_size = tile_size
        self._depth = np.full((tile_size, tile_size), np.inf)
        self._origin_x = 0
        self._origin_y = 0

    def reset(self, origin_x: int, origin_y: int) -> None:
        """Rebind the buffer to a new tile and clear it."""
        self._depth.fill(np.inf)
        self._origin_x = origin_x
        self._origin_y = origin_y

    def test(self, batch: FragmentBatch,
             depth_write: bool = True) -> np.ndarray:
        """Run the depth test for a fragment batch.

        Returns the boolean pass mask; passing fragments update the buffer
        when ``depth_write`` is set.  Fragments must lie inside the bound
        tile.
        """
        if batch.count == 0:
            return np.zeros(0, dtype=bool)
        lx = batch.xs - self._origin_x
        ly = batch.ys - self._origin_y
        if (lx < 0).any() or (ly < 0).any() \
                or (lx >= self.tile_size).any() \
                or (ly >= self.tile_size).any():
            raise ValueError("fragment outside the bound tile")
        current = self._depth[ly, lx]
        passed = batch.depth < current
        if depth_write and passed.any():
            # np.minimum.at handles duplicate pixels within one batch
            # (top-left rule prevents them for a single triangle, but a
            # batch may alias after clipping splits).
            np.minimum.at(self._depth, (ly[passed], lx[passed]),
                          batch.depth[passed])
        return passed

    def depth_at(self, x: int, y: int) -> float:
        """Stored depth at a pixel of the bound tile."""
        return float(self._depth[y - self._origin_y, x - self._origin_x])


def filter_batch(batch: FragmentBatch, mask: np.ndarray) -> FragmentBatch:
    """Keep only the fragments selected by ``mask``."""
    return FragmentBatch(
        xs=batch.xs[mask], ys=batch.ys[mask], depth=batch.depth[mask],
        u=batch.u[mask], v=batch.v[mask])
