"""The Blending Unit: combines shaded colors into the Color Buffer.

Supports the three modes the workload generator emits: ``opaque``
(replace), ``alpha`` (source-over) and ``additive`` (saturating add) —
enough to express the sprite stacks, UI overlays and particle effects of
the modeled mobile games.
"""

from __future__ import annotations

import numpy as np

BLEND_MODES = ("opaque", "alpha", "additive")


def blend(dst: np.ndarray, src: np.ndarray, mode: str) -> np.ndarray:
    """Blend source RGBA over destination RGBA (float arrays in [0, 1]).

    Works element-wise on arrays of shape (..., 4); returns the new
    destination values (the caller stores them back into the Color
    Buffer).
    """
    if mode == "opaque":
        return src.copy()
    if mode == "alpha":
        alpha = src[..., 3:4]
        out = src[..., :3] * alpha + dst[..., :3] * (1.0 - alpha)
        out_a = alpha + dst[..., 3:4] * (1.0 - alpha)
        return np.concatenate([out, out_a], axis=-1)
    if mode == "additive":
        return np.clip(dst + src, 0.0, 1.0)
    raise ValueError(f"unknown blend mode {mode!r}; "
                     f"choose from {BLEND_MODES}")
