"""The Fragment Stage: shading fragments and deriving their texture traffic.

Shaders are cost models (see :class:`~repro.geometry.mesh.ShaderProfile`),
so "executing" one means (a) producing a color functionally — a textured
lookup modulated per draw — and (b) accounting its instructions and
texture fetches, including the exact set of texture cache lines the
fragments touch (vectorized over the fragment batch).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..geometry.primitive import Primitive
from .rasterizer import FragmentBatch
from .texture import BLOCK, Texture, TextureSet, select_mip


def pick_mip_level(texture: Texture, batch: FragmentBatch) -> int:
    """Mip level for one primitive's fragments in one tile.

    Derived from the batch's UV footprint versus its pixel count — the
    per-batch analogue of the per-quad derivative hardware uses.
    """
    if batch.count == 0:
        return 0
    u_span = float(batch.u.max() - batch.u.min())
    v_span = float(batch.v.max() - batch.v.min())
    uv_area = u_span * v_span
    if uv_area <= 0.0:
        return 0
    return select_mip(texture, uv_area, float(batch.count))


def touched_lines(texture: Texture, batch: FragmentBatch,
                  level: int) -> List[int]:
    """Texture cache lines the batch touches, in first-touch order."""
    if batch.count == 0:
        return []
    level = texture.clamp_level(level)
    w = texture.level_width(level)
    h = texture.level_height(level)
    nbx = texture.blocks_x(level)
    tx = (np.floor(batch.u * w).astype(np.int64) % w) // BLOCK
    ty = (np.floor(batch.v * h).astype(np.int64) % h) // BLOCK
    block_index = ty * nbx + tx
    _, first_pos = np.unique(block_index, return_index=True)
    ordered = block_index[np.sort(first_pos)]
    base = texture.level_base_line(level)
    return [int(base + b) for b in ordered]


class FragmentProcessor:
    """Shades fragment batches against the bound texture set."""

    def __init__(self, textures: TextureSet):
        self.textures = textures
        self.instructions = 0
        self.texture_fetches = 0
        self.fragments_shaded = 0

    def charge(self, prim: Primitive, count: int) -> None:
        """Account the cost of shading ``count`` fragments of a primitive."""
        self.fragments_shaded += count
        self.instructions += count * prim.shader.fragment_instructions
        self.texture_fetches += count * prim.shader.texture_fetches

    def shade(self, prim: Primitive, batch: FragmentBatch) -> np.ndarray:
        """Produce (N, 4) RGBA colors for the batch (functional path)."""
        self.charge(prim, batch.count)
        if batch.count == 0:
            return np.empty((0, 4))
        if prim.texture_id in self.textures:
            texture = self.textures[prim.texture_id]
            level = pick_mip_level(texture, batch)
            colors = _sample_batch(texture, batch, level)
        else:
            # Untextured draw: flat color derived from the texture id so
            # output is deterministic and visually distinguishable.
            rng = np.random.default_rng(prim.texture_id)
            colors = np.tile(rng.uniform(0.2, 1.0, size=4), (batch.count, 1))
        if prim.blend == "alpha":
            colors = colors.copy()
            colors[:, 3] *= 0.8
        return colors


def _sample_batch(texture: Texture, batch: FragmentBatch,
                  level: int) -> np.ndarray:
    """Vectorized point-sampling of a whole batch (wrapped addressing)."""
    data = texture.data(level)
    h, w = data.shape[:2]
    xs = np.floor(batch.u * w).astype(np.int64) % w
    ys = np.floor(batch.v * h).astype(np.int64) % h
    return data[ys, xs].astype(np.float64) / 255.0


def batch_uv_bounds(batch: FragmentBatch) -> Tuple[float, float, float, float]:
    """(min_u, min_v, max_u, max_v) of a non-empty batch."""
    if batch.count == 0:
        raise ValueError("empty batch has no UV bounds")
    return (float(batch.u.min()), float(batch.v.min()),
            float(batch.u.max()), float(batch.v.max()))
