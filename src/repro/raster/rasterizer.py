"""Edge-function triangle rasterization (the Rasterizer stage).

Discretizes screen-space primitives into fragments inside a rectangular
region (a tile), producing per-fragment perspective-correct interpolants.
Two entry points share the same arithmetic:

* :func:`rasterize_in_region` — one primitive against the region.  This
  is the scalar reference (the *parity oracle* of the batched path).
* :func:`rasterize_tile` — every primitive of a tile in one shot: the
  edge functions of all P primitives are evaluated as one (P, H, W)
  broadcast and the covered fragments come back as packed
  structure-of-arrays (:class:`TileFragments`), sliceable per primitive.
  Because every elementwise operation runs on exactly the same operand
  values as the scalar path (broadcasting never changes per-element
  IEEE arithmetic) and the bounding-box clip is applied as an explicit
  mask, each slice is *bit-identical* to the corresponding
  :func:`rasterize_in_region` call — a property the test suite checks.

Fill convention is the top-left rule, so triangles sharing an edge never
double-shade a pixel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..geometry.primitive import Primitive


@dataclass
class FragmentBatch:
    """Fragments of one primitive inside one region (tile)."""

    #: Pixel coordinates, int arrays of equal length.
    xs: np.ndarray
    ys: np.ndarray
    #: Interpolated NDC depth per fragment.
    depth: np.ndarray
    #: Perspective-correct texture coordinates per fragment.
    u: np.ndarray
    v: np.ndarray

    @property
    def count(self) -> int:
        """Number of fragments in the batch."""
        return len(self.xs)

    def quad_count(self) -> int:
        """Number of 2x2 quads touched (the Early-Z work unit)."""
        if self.count == 0:
            return 0
        # Pack each (x // 2, y // 2) quad coordinate into one integer so
        # the distinct count is a single np.unique over a flat array
        # instead of a Python set of tuples.  Screen coordinates are far
        # below 2**32, so the multiplicative packing cannot collide.
        keys = ((np.asarray(self.xs, dtype=np.int64) >> 1) << 32) \
            + (np.asarray(self.ys, dtype=np.int64) >> 1)
        return int(np.unique(keys).size)


_EMPTY = FragmentBatch(
    xs=np.empty(0, dtype=np.int64), ys=np.empty(0, dtype=np.int64),
    depth=np.empty(0), u=np.empty(0), v=np.empty(0))


def rasterize_in_region(prim: Primitive, x0: int, y0: int,
                        width: int, height: int) -> FragmentBatch:
    """Rasterize ``prim`` clipped to the pixel region [x0, x0+width) x
    [y0, y0+height).

    Returns the covered fragments with perspective-correct depth and UV.
    """
    xy = prim.xy
    area2 = prim.signed_area()
    if area2 == 0.0:
        return _EMPTY
    if area2 < 0.0:
        # Normalize to counter-clockwise (positive area) winding so the
        # edge tests below are uniform.
        order = (0, 2, 1)
        area2 = -area2
    else:
        order = (0, 1, 2)
    ax, ay = xy[order[0]]
    bx, by = xy[order[1]]
    cx, cy = xy[order[2]]

    # Intersect the primitive's bounding box with the region.
    min_x = max(int(np.floor(min(ax, bx, cx))), x0)
    max_x = min(int(np.ceil(max(ax, bx, cx))), x0 + width)
    min_y = max(int(np.floor(min(ay, by, cy))), y0)
    max_y = min(int(np.ceil(max(ay, by, cy))), y0 + height)
    if min_x >= max_x or min_y >= max_y:
        return _EMPTY

    px, py = np.meshgrid(
        np.arange(min_x, max_x, dtype=np.float64) + 0.5,
        np.arange(min_y, max_y, dtype=np.float64) + 0.5)

    # Edge functions; e_i >= 0 means inside edge i for CCW winding.
    e0 = (cx - bx) * (py - by) - (cy - by) * (px - bx)
    e1 = (ax - cx) * (py - cy) - (ay - cy) * (px - cx)
    e2 = (bx - ax) * (py - ay) - (by - ay) * (px - ax)

    mask = _inside(e0, bx, by, cx, cy) \
        & _inside(e1, cx, cy, ax, ay) \
        & _inside(e2, ax, ay, bx, by)
    if not mask.any():
        return _EMPTY

    w0 = e0[mask] / area2
    w1 = e1[mask] / area2
    w2 = e2[mask] / area2

    d = prim.depth[list(order)]
    iw = prim.inv_w[list(order)]
    uvw = prim.uv_over_w[list(order)]

    depth = w0 * d[0] + w1 * d[1] + w2 * d[2]
    inv_w = w0 * iw[0] + w1 * iw[1] + w2 * iw[2]
    inv_w = np.where(inv_w == 0.0, 1e-30, inv_w)
    u = (w0 * uvw[0, 0] + w1 * uvw[1, 0] + w2 * uvw[2, 0]) / inv_w
    v = (w0 * uvw[0, 1] + w1 * uvw[1, 1] + w2 * uvw[2, 1]) / inv_w

    ys_grid, xs_grid = np.nonzero(mask)
    return FragmentBatch(
        xs=xs_grid + min_x,
        ys=ys_grid + min_y,
        depth=depth,
        u=u,
        v=v,
    )


@dataclass
class TileFragments:
    """All fragments of one tile, packed primitive-major (SoA layout).

    Fragments of primitive ``i`` occupy the contiguous slice
    ``offsets[i]:offsets[i+1]`` of every array, in the same row-major
    pixel order :func:`rasterize_in_region` produces.
    """

    xs: np.ndarray
    ys: np.ndarray
    depth: np.ndarray
    u: np.ndarray
    v: np.ndarray
    #: Primitive index (into the tile's list) per fragment.
    prim_id: np.ndarray
    #: (P + 1,) prefix sums of per-primitive fragment counts.
    offsets: np.ndarray

    @property
    def count(self) -> int:
        """Total fragments across all primitives."""
        return len(self.xs)

    def batch_for(self, index: int) -> FragmentBatch:
        """The fragments of one primitive as a :class:`FragmentBatch`.

        Returns array *views* into the packed storage (no copies).
        """
        sl = slice(int(self.offsets[index]), int(self.offsets[index + 1]))
        return FragmentBatch(xs=self.xs[sl], ys=self.ys[sl],
                             depth=self.depth[sl], u=self.u[sl],
                             v=self.v[sl])


def rasterize_tile(prims: Sequence[Primitive], x0: int, y0: int,
                   width: int, height: int) -> TileFragments:
    """Rasterize every primitive of a tile in one broadcast evaluation.

    Equivalent to calling :func:`rasterize_in_region` per primitive and
    concatenating the results (each slice is bit-identical, see module
    docstring), but the edge functions, fill-rule masks and
    perspective-correct interpolation all run once over a (P, H, W)
    grid instead of P times over per-primitive grids.
    """
    num = len(prims)
    izeros = np.zeros(0, dtype=np.int64)
    fzeros = np.zeros(0)
    if num == 0:
        return TileFragments(xs=izeros, ys=izeros, depth=fzeros,
                             u=fzeros, v=fzeros, prim_id=izeros,
                             offsets=np.zeros(1, dtype=np.int64))

    # Per-primitive setup mirrors the scalar path exactly: winding
    # normalization, then the bounding box clipped to the region.
    # Degenerate primitives keep an empty box (never selected).
    verts = np.zeros((num, 3, 2))
    area2s = np.ones(num)
    boxes = np.zeros((num, 4), dtype=np.int64)    # min_x max_x min_y max_y
    d = np.zeros((num, 3))
    iw = np.zeros((num, 3))
    uvw = np.zeros((num, 3, 2))
    for i, prim in enumerate(prims):
        area2 = prim.signed_area()
        if area2 == 0.0:
            continue
        order = (0, 2, 1) if area2 < 0.0 else (0, 1, 2)
        xy = prim.xy[list(order)]
        min_x = max(int(np.floor(xy[:, 0].min())), x0)
        max_x = min(int(np.ceil(xy[:, 0].max())), x0 + width)
        min_y = max(int(np.floor(xy[:, 1].min())), y0)
        max_y = min(int(np.ceil(xy[:, 1].max())), y0 + height)
        if min_x >= max_x or min_y >= max_y:
            continue
        verts[i] = xy
        area2s[i] = abs(area2)
        boxes[i] = (min_x, max_x, min_y, max_y)
        sel = list(order)
        d[i] = prim.depth[sel]
        iw[i] = prim.inv_w[sel]
        uvw[i] = prim.uv_over_w[sel]

    live = boxes[:, 0] < boxes[:, 1]
    if not live.any():
        return TileFragments(xs=izeros, ys=izeros, depth=fzeros,
                             u=fzeros, v=fzeros, prim_id=izeros,
                             offsets=np.zeros(num + 1, dtype=np.int64))

    ax, ay = verts[:, 0, 0, None, None], verts[:, 0, 1, None, None]
    bx, by = verts[:, 1, 0, None, None], verts[:, 1, 1, None, None]
    cx, cy = verts[:, 2, 0, None, None], verts[:, 2, 1, None, None]

    gx = np.arange(x0, x0 + width, dtype=np.int64)
    gy = np.arange(y0, y0 + height, dtype=np.int64)
    px = (gx.astype(np.float64) + 0.5)[None, None, :]
    py = (gy.astype(np.float64) + 0.5)[None, :, None]

    # Edge functions of every primitive over the whole tile; each element
    # is computed with the exact operand values of the scalar path.
    e0 = (cx - bx) * (py - by) - (cy - by) * (px - bx)
    e1 = (ax - cx) * (py - cy) - (ay - cy) * (px - cx)
    e2 = (bx - ax) * (py - ay) - (by - ay) * (px - ax)

    mask = _inside_many(e0, bx, by, cx, cy) \
        & _inside_many(e1, cx, cy, ax, ay) \
        & _inside_many(e2, ax, ay, bx, by)
    # The scalar path only ever evaluates pixels inside the clipped
    # bounding box; masking to the same rectangle makes the fragment
    # sets equal by construction (not just up to rounding).
    mask &= (gx[None, None, :] >= boxes[:, 0, None, None]) \
        & (gx[None, None, :] < boxes[:, 1, None, None]) \
        & (gy[None, :, None] >= boxes[:, 2, None, None]) \
        & (gy[None, :, None] < boxes[:, 3, None, None])

    pid, ys_grid, xs_grid = np.nonzero(mask)
    w0 = e0[mask] / area2s[pid]
    w1 = e1[mask] / area2s[pid]
    w2 = e2[mask] / area2s[pid]

    depth = w0 * d[pid, 0] + w1 * d[pid, 1] + w2 * d[pid, 2]
    inv_w = w0 * iw[pid, 0] + w1 * iw[pid, 1] + w2 * iw[pid, 2]
    inv_w = np.where(inv_w == 0.0, 1e-30, inv_w)
    u = (w0 * uvw[pid, 0, 0] + w1 * uvw[pid, 1, 0]
         + w2 * uvw[pid, 2, 0]) / inv_w
    v = (w0 * uvw[pid, 0, 1] + w1 * uvw[pid, 1, 1]
         + w2 * uvw[pid, 2, 1]) / inv_w

    counts = np.bincount(pid, minlength=num)
    offsets = np.zeros(num + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return TileFragments(xs=xs_grid + x0, ys=ys_grid + y0, depth=depth,
                         u=u, v=v, prim_id=pid, offsets=offsets)


def _inside_many(edge_values: np.ndarray, ex0: np.ndarray, ey0: np.ndarray,
                 ex1: np.ndarray, ey1: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_inside`: per-primitive top-left fill rule.

    ``edge_values`` is (P, H, W); the vertex coordinates are (P, 1, 1),
    so the inclusive/exclusive choice broadcasts per primitive.
    """
    dx = ex1 - ex0
    dy = ey1 - ey0
    inclusive = ((dy == 0.0) & (dx > 0.0)) | (dy < 0.0)
    return np.where(inclusive, edge_values >= 0.0, edge_values > 0.0)


def _inside(edge_values: np.ndarray, ex0: float, ey0: float,
            ex1: float, ey1: float) -> np.ndarray:
    """Edge test with the top-left fill rule.

    An edge is *top* when horizontal and going right (in a y-down CCW
    triangle) and *left* when going up; fragments exactly on such edges are
    inside, on others outside — the standard rule that makes adjacent
    triangles partition the plane.
    """
    dx = ex1 - ex0
    dy = ey1 - ey0
    top = (dy == 0.0) and (dx > 0.0)
    left = dy < 0.0
    if top or left:
        return edge_values >= 0.0
    return edge_values > 0.0
