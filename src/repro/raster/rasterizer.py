"""Edge-function triangle rasterization (the Rasterizer stage).

Discretizes a screen-space primitive into fragments inside a rectangular
region (a tile), producing per-fragment perspective-correct interpolants.
Vectorized with numpy over the region so the functional path can render
real frames; the same routine drives trace generation for the timing model.

Fill convention is the top-left rule, so triangles sharing an edge never
double-shade a pixel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.primitive import Primitive


@dataclass
class FragmentBatch:
    """Fragments of one primitive inside one region (tile)."""

    #: Pixel coordinates, int arrays of equal length.
    xs: np.ndarray
    ys: np.ndarray
    #: Interpolated NDC depth per fragment.
    depth: np.ndarray
    #: Perspective-correct texture coordinates per fragment.
    u: np.ndarray
    v: np.ndarray

    @property
    def count(self) -> int:
        """Number of fragments in the batch."""
        return len(self.xs)

    def quad_count(self) -> int:
        """Number of 2x2 quads touched (the Early-Z work unit)."""
        if self.count == 0:
            return 0
        # Pack each (x // 2, y // 2) quad coordinate into one integer so
        # the distinct count is a single np.unique over a flat array
        # instead of a Python set of tuples.  Screen coordinates are far
        # below 2**32, so the multiplicative packing cannot collide.
        keys = ((np.asarray(self.xs, dtype=np.int64) >> 1) << 32) \
            + (np.asarray(self.ys, dtype=np.int64) >> 1)
        return int(np.unique(keys).size)


_EMPTY = FragmentBatch(
    xs=np.empty(0, dtype=np.int64), ys=np.empty(0, dtype=np.int64),
    depth=np.empty(0), u=np.empty(0), v=np.empty(0))


def rasterize_in_region(prim: Primitive, x0: int, y0: int,
                        width: int, height: int) -> FragmentBatch:
    """Rasterize ``prim`` clipped to the pixel region [x0, x0+width) x
    [y0, y0+height).

    Returns the covered fragments with perspective-correct depth and UV.
    """
    xy = prim.xy
    area2 = prim.signed_area()
    if area2 == 0.0:
        return _EMPTY
    if area2 < 0.0:
        # Normalize to counter-clockwise (positive area) winding so the
        # edge tests below are uniform.
        order = (0, 2, 1)
        area2 = -area2
    else:
        order = (0, 1, 2)
    ax, ay = xy[order[0]]
    bx, by = xy[order[1]]
    cx, cy = xy[order[2]]

    # Intersect the primitive's bounding box with the region.
    min_x = max(int(np.floor(min(ax, bx, cx))), x0)
    max_x = min(int(np.ceil(max(ax, bx, cx))), x0 + width)
    min_y = max(int(np.floor(min(ay, by, cy))), y0)
    max_y = min(int(np.ceil(max(ay, by, cy))), y0 + height)
    if min_x >= max_x or min_y >= max_y:
        return _EMPTY

    px, py = np.meshgrid(
        np.arange(min_x, max_x, dtype=np.float64) + 0.5,
        np.arange(min_y, max_y, dtype=np.float64) + 0.5)

    # Edge functions; e_i >= 0 means inside edge i for CCW winding.
    e0 = (cx - bx) * (py - by) - (cy - by) * (px - bx)
    e1 = (ax - cx) * (py - cy) - (ay - cy) * (px - cx)
    e2 = (bx - ax) * (py - ay) - (by - ay) * (px - ax)

    mask = _inside(e0, bx, by, cx, cy) \
        & _inside(e1, cx, cy, ax, ay) \
        & _inside(e2, ax, ay, bx, by)
    if not mask.any():
        return _EMPTY

    w0 = e0[mask] / area2
    w1 = e1[mask] / area2
    w2 = e2[mask] / area2

    d = prim.depth[list(order)]
    iw = prim.inv_w[list(order)]
    uvw = prim.uv_over_w[list(order)]

    depth = w0 * d[0] + w1 * d[1] + w2 * d[2]
    inv_w = w0 * iw[0] + w1 * iw[1] + w2 * iw[2]
    inv_w = np.where(inv_w == 0.0, 1e-30, inv_w)
    u = (w0 * uvw[0, 0] + w1 * uvw[1, 0] + w2 * uvw[2, 0]) / inv_w
    v = (w0 * uvw[0, 1] + w1 * uvw[1, 1] + w2 * uvw[2, 1]) / inv_w

    ys_grid, xs_grid = np.nonzero(mask)
    return FragmentBatch(
        xs=xs_grid + min_x,
        ys=ys_grid + min_y,
        depth=depth,
        u=u,
        v=v,
    )


def _inside(edge_values: np.ndarray, ex0: float, ey0: float,
            ex1: float, ey1: float) -> np.ndarray:
    """Edge test with the top-left fill rule.

    An edge is *top* when horizontal and going right (in a y-down CCW
    triangle) and *left* when going up; fragments exactly on such edges are
    inside, on others outside — the standard rule that makes adjacent
    triangles partition the plane.
    """
    dx = ex1 - ex0
    dy = ey1 - ey0
    top = (dy == 0.0) and (dx > 0.0)
    left = dy < 0.0
    if top or left:
        return edge_values >= 0.0
    return edge_values > 0.0
