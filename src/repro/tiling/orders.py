"""Tile traversal orders: scanline, Morton (Z-order) and Hilbert.

The baseline GPU traverses tiles in Morton order (Section II-B of the
paper); scanline and Hilbert are provided for comparison experiments and as
references in related-work ablations (DTexL uses Hilbert).  All orders are
permutations of the tile grid — a property the test suite checks for every
grid shape, including non-square and non-power-of-two grids.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

TileCoord = Tuple[int, int]


def morton_encode(x: int, y: int) -> int:
    """Interleave the bits of (x, y) into a Morton (Z-order) code."""
    if x < 0 or y < 0:
        raise ValueError("Morton codes are defined for non-negative coords")
    code = 0
    shift = 0
    while x or y:
        code |= (x & 1) << (2 * shift)
        code |= (y & 1) << (2 * shift + 1)
        x >>= 1
        y >>= 1
        shift += 1
    return code


def morton_decode(code: int) -> TileCoord:
    """Inverse of :func:`morton_encode`."""
    if code < 0:
        raise ValueError("Morton codes are non-negative")
    x = y = 0
    shift = 0
    while code:
        x |= (code & 1) << shift
        code >>= 1
        y |= (code & 1) << shift
        code >>= 1
        shift += 1
    return x, y


def scanline_order(tiles_x: int, tiles_y: int) -> List[TileCoord]:
    """Row-major traversal."""
    return [(x, y) for y in range(tiles_y) for x in range(tiles_x)]


def morton_order(tiles_x: int, tiles_y: int) -> List[TileCoord]:
    """Z-order traversal of an arbitrary rectangular grid.

    Coordinates are sorted by their Morton code; for non-power-of-two grids
    this is the standard "sorted Z" traversal hardware uses (skip codes that
    fall outside the grid).
    """
    coords = [(x, y) for y in range(tiles_y) for x in range(tiles_x)]
    coords.sort(key=lambda c: morton_encode(c[0], c[1]))
    return coords


def _hilbert_d2xy(order: int, d: int) -> TileCoord:
    """Convert a distance along the Hilbert curve of 2**order size to x/y."""
    rx = ry = 0
    x = y = 0
    t = d
    s = 1
    while s < (1 << order):
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def hilbert_order(tiles_x: int, tiles_y: int) -> List[TileCoord]:
    """Hilbert-curve traversal, restricted to the grid."""
    side = 1
    order = 0
    while side < max(tiles_x, tiles_y):
        side *= 2
        order += 1
    out: List[TileCoord] = []
    for d in range(side * side):
        x, y = _hilbert_d2xy(order, d)
        if x < tiles_x and y < tiles_y:
            out.append((x, y))
    return out


def boustrophedon_order(tiles_x: int, tiles_y: int) -> List[TileCoord]:
    """Serpentine scanline (alternate row direction); cheap locality order."""
    out: List[TileCoord] = []
    for y in range(tiles_y):
        row = range(tiles_x) if y % 2 == 0 else range(tiles_x - 1, -1, -1)
        out.extend((x, y) for x in row)
    return out


_ORDERS = {
    "scanline": scanline_order,
    "morton": morton_order,
    "zorder": morton_order,
    "hilbert": hilbert_order,
    "boustrophedon": boustrophedon_order,
}


def traversal_order(name: str, tiles_x: int, tiles_y: int) -> List[TileCoord]:
    """Look up a traversal order by name."""
    try:
        fn = _ORDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown traversal order {name!r}; "
            f"choose from {sorted(set(_ORDERS))}") from None
    return fn(tiles_x, tiles_y)


def iter_order_names() -> Iterator[str]:
    """Names of the available traversal orders."""
    yield from sorted(set(_ORDERS) - {"zorder"})
