"""The Polygon List Builder and Parameter Buffer (Tiling Engine).

Bins every screen-space primitive into the tiles it overlaps, keeping
program order within each tile's list (Section II-A: "a list in program
order for each tile with all the primitives that totally (or partially)
fall inside it").  The per-tile lists live in the Parameter Buffer, a main
memory region; reads of it during tile fetch are one of the four DRAM
traffic sources the paper identifies, so the model synthesizes line
addresses for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..config import CACHE_LINE_BYTES
from ..geometry.primitive import Primitive

TileCoord = Tuple[int, int]


def triangle_overlaps_rect(xy, rx0: float, ry0: float,
                           rx1: float, ry1: float) -> bool:
    """Exact triangle/axis-aligned-rectangle overlap test (separating axes).

    ``xy`` is the (3, 2) vertex array of a screen-space triangle; the
    rectangle is [rx0, rx1) x [ry0, ry1).  Used to refine the conservative
    bounding-box bin so thin diagonal triangles are not binned into tiles
    they never touch.
    """
    (ax, ay), (bx, by), (cx, cy) = xy
    # Axis-aligned separating axes (the rectangle's edges).
    if max(ax, bx, cx) <= rx0 or min(ax, bx, cx) >= rx1:
        return False
    if max(ay, by, cy) <= ry0 or min(ay, by, cy) >= ry1:
        return False
    # Triangle-edge separating axes.
    corners = ((rx0, ry0), (rx1, ry0), (rx1, ry1), (rx0, ry1))
    vertices = ((ax, ay), (bx, by), (cx, cy))
    for i in range(3):
        ex0, ey0 = vertices[i]
        ex1, ey1 = vertices[(i + 1) % 3]
        nx, ny = ey1 - ey0, ex0 - ex1  # outward-ish normal of the edge
        # Which side is the triangle's third vertex on?
        ox, oy = vertices[(i + 2) % 3]
        tri_side = nx * (ox - ex0) + ny * (oy - ey0)
        if tri_side == 0.0:
            continue  # degenerate edge; no separation information
        if tri_side < 0.0:
            nx, ny = -nx, -ny
        # If every rectangle corner is strictly outside this edge, separated.
        if all(nx * (px - ex0) + ny * (py - ey0) < 0.0
               for px, py in corners):
            return False
    return True


@dataclass
class ParameterBuffer:
    """Model of the main-memory Parameter Buffer.

    Stores, per tile, the primitive list produced by binning, and exposes
    the line addresses the Tile Fetcher reads when streaming that list into
    the Raster Pipeline.  Entries are ``entry_bytes`` each (a compressed
    triangle record: three vertices of screen position, depth, 1/w and UV).
    """

    base_address: int = 0x4000_0000
    entry_bytes: int = 48
    lists: Dict[TileCoord, List[Primitive]] = field(default_factory=dict)
    _offsets: Dict[TileCoord, int] = field(default_factory=dict)
    total_entries: int = 0

    def finalize(self) -> None:
        """Lay per-tile lists out contiguously and record their offsets."""
        offset = 0
        self._offsets.clear()
        for tile in sorted(self.lists):
            self._offsets[tile] = offset
            offset += len(self.lists[tile])
        self.total_entries = offset

    def size_bytes(self) -> int:
        """Total Parameter Buffer size in bytes."""
        return self.total_entries * self.entry_bytes

    def fetch_addresses(self, tile: TileCoord) -> List[int]:
        """Cache-line addresses read to fetch one tile's primitive list."""
        primitives = self.lists.get(tile, [])
        if not primitives:
            return []
        start_byte = (self.base_address
                      + self._offsets.get(tile, 0) * self.entry_bytes)
        end_byte = start_byte + len(primitives) * self.entry_bytes
        first_line = start_byte // CACHE_LINE_BYTES
        last_line = (end_byte - 1) // CACHE_LINE_BYTES
        return list(range(first_line, last_line + 1))


@dataclass
class BinningStats:
    """Counters produced while binning one frame."""
    primitives_binned: int = 0
    tile_entries: int = 0
    max_entries_per_tile: int = 0
    nonempty_tiles: int = 0


class PolygonListBuilder:
    """Bins screen-space primitives into per-tile, program-ordered lists."""

    def __init__(self, tiles_x: int, tiles_y: int, tile_size: int,
                 exact: bool = True):
        if tiles_x < 1 or tiles_y < 1:
            raise ValueError("grid must have at least one tile per axis")
        self.tiles_x = tiles_x
        self.tiles_y = tiles_y
        self.tile_size = tile_size
        self.exact = exact

    def bin(self, primitives: Sequence[Primitive]
            ) -> Tuple[ParameterBuffer, BinningStats]:
        """Bin primitives into per-tile lists; returns (buffer, stats)."""
        buffer = ParameterBuffer()
        stats = BinningStats()
        size = self.tile_size
        for prim in primitives:
            min_x, min_y, max_x, max_y = prim.bounding_box()
            tx0 = max(int(min_x // size), 0)
            ty0 = max(int(min_y // size), 0)
            tx1 = min(int(max_x // size), self.tiles_x - 1)
            ty1 = min(int(max_y // size), self.tiles_y - 1)
            if tx1 < tx0 or ty1 < ty0:
                continue  # entirely off-screen
            stats.primitives_binned += 1
            for ty in range(ty0, ty1 + 1):
                for tx in range(tx0, tx1 + 1):
                    if self.exact and not triangle_overlaps_rect(
                            prim.xy, tx * size, ty * size,
                            (tx + 1) * size, (ty + 1) * size):
                        continue
                    buffer.lists.setdefault((tx, ty), []).append(prim)
                    stats.tile_entries += 1
        buffer.finalize()
        stats.nonempty_tiles = len(buffer.lists)
        if buffer.lists:
            stats.max_entries_per_tile = max(
                len(lst) for lst in buffer.lists.values())
        return buffer, stats
