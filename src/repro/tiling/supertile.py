"""Supertiles: square groups of adjacent tiles scheduled as a unit.

A supertile of size ``s`` covers an ``s x s`` block of tiles (Section III-C).
The grid maps tiles to supertile IDs and back, aggregates per-tile metrics
to supertile granularity (the stats-buffer update of Section III-E), and
enumerates a supertile's member tiles in Z-order ("tiles within a supertile
are always traversed in Z-order", Section III-D).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .orders import morton_encode

TileCoord = Tuple[int, int]


class SupertileGrid:
    """Tile <-> supertile mapping for one frame resolution and size."""

    def __init__(self, tiles_x: int, tiles_y: int, size: int):
        if size < 1:
            raise ValueError("supertile size must be >= 1")
        if tiles_x < 1 or tiles_y < 1:
            raise ValueError("grid must have at least one tile per axis")
        self.tiles_x = tiles_x
        self.tiles_y = tiles_y
        self.size = size
        self.supertiles_x = -(-tiles_x // size)
        self.supertiles_y = -(-tiles_y // size)

    @property
    def num_supertiles(self) -> int:
        """Supertiles covering the grid."""
        return self.supertiles_x * self.supertiles_y

    def supertile_of(self, tile: TileCoord) -> int:
        """Supertile ID containing a tile coordinate."""
        tx, ty = tile
        if not (0 <= tx < self.tiles_x and 0 <= ty < self.tiles_y):
            raise ValueError(f"tile {tile} outside {self.tiles_x}x{self.tiles_y}")
        sx, sy = tx // self.size, ty // self.size
        return sy * self.supertiles_x + sx

    def supertile_coord(self, supertile_id: int) -> TileCoord:
        """(sx, sy) coordinate of a supertile ID."""
        if not 0 <= supertile_id < self.num_supertiles:
            raise ValueError("supertile id out of range")
        return (supertile_id % self.supertiles_x,
                supertile_id // self.supertiles_x)

    def tiles_of(self, supertile_id: int) -> List[TileCoord]:
        """Member tiles of a supertile, in Z-order within the block."""
        sx, sy = self.supertile_coord(supertile_id)
        tiles = []
        for dy in range(self.size):
            ty = sy * self.size + dy
            if ty >= self.tiles_y:
                break
            for dx in range(self.size):
                tx = sx * self.size + dx
                if tx >= self.tiles_x:
                    break
                tiles.append((tx, ty))
        tiles.sort(key=lambda t: morton_encode(t[0] - sx * self.size,
                                               t[1] - sy * self.size))
        return tiles

    def aggregate(self, per_tile: Dict[TileCoord, float]) -> List[float]:
        """Sum a per-tile metric up to supertile granularity.

        This is the hardware buffer update of Section III-E: "the per-tile
        memory accesses and instruction count metrics of the previous frame
        are first aggregated at the chosen supertile granularity".
        """
        totals = [0.0] * self.num_supertiles
        for tile, value in per_tile.items():
            totals[self.supertile_of(tile)] += value
        return totals

    def all_supertiles_zorder(self) -> List[int]:
        """All supertile IDs in Z-order over the supertile grid."""
        coords = [(x, y) for y in range(self.supertiles_y)
                  for x in range(self.supertiles_x)]
        coords.sort(key=lambda c: morton_encode(c[0], c[1]))
        return [y * self.supertiles_x + x for x, y in coords]


def flatten_supertiles_to_tiles(grid: SupertileGrid,
                                supertile_ids: Sequence[int]
                                ) -> List[TileCoord]:
    """Expand an ordered supertile schedule into the tile schedule."""
    tiles: List[TileCoord] = []
    for sid in supertile_ids:
        tiles.extend(grid.tiles_of(sid))
    return tiles
