"""Tiling Engine substrate: traversal orders, binning, supertiles."""

from .binning import (BinningStats, ParameterBuffer, PolygonListBuilder,
                      triangle_overlaps_rect)
from .engine import TiledFrame, TilingEngine
from .orders import (boustrophedon_order, hilbert_order, morton_decode,
                     morton_encode, morton_order, scanline_order,
                     traversal_order)
from .supertile import SupertileGrid, flatten_supertiles_to_tiles

__all__ = [
    "PolygonListBuilder",
    "ParameterBuffer",
    "BinningStats",
    "triangle_overlaps_rect",
    "TilingEngine",
    "TiledFrame",
    "morton_encode",
    "morton_decode",
    "morton_order",
    "scanline_order",
    "hilbert_order",
    "boustrophedon_order",
    "traversal_order",
    "SupertileGrid",
    "flatten_supertiles_to_tiles",
]
