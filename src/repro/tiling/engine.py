"""The Tiling Engine: binning + Parameter Buffer + default traversal.

Ties the Polygon List Builder to a traversal order and exposes the
per-tile data the Tile Fetcher consumes.  This is the middle pipeline of
the paper's Figure 3 (sort-middle architecture).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..geometry.primitive import Primitive
from .binning import BinningStats, ParameterBuffer, PolygonListBuilder
from .orders import traversal_order

TileCoord = Tuple[int, int]


@dataclass
class TiledFrame:
    """One frame's worth of tiled geometry, ready for the Raster Pipeline."""

    tiles_x: int
    tiles_y: int
    tile_size: int
    parameter_buffer: ParameterBuffer
    binning_stats: BinningStats
    default_order: List[TileCoord]

    @property
    def num_tiles(self) -> int:
        """Tiles in the frame's grid."""
        return self.tiles_x * self.tiles_y

    def primitives_for(self, tile: TileCoord) -> List[Primitive]:
        """The program-ordered primitive list of one tile."""
        return self.parameter_buffer.lists.get(tile, [])

    def nonempty_tiles(self) -> List[TileCoord]:
        """Tiles with primitives, in traversal order."""
        return [t for t in self.default_order
                if t in self.parameter_buffer.lists]


class TilingEngine:
    """Runs the tiling process for each frame."""

    def __init__(self, tiles_x: int, tiles_y: int, tile_size: int,
                 order: str = "morton", exact_binning: bool = True):
        self.tiles_x = tiles_x
        self.tiles_y = tiles_y
        self.tile_size = tile_size
        self.order = order
        self._builder = PolygonListBuilder(tiles_x, tiles_y, tile_size,
                                           exact=exact_binning)
        self._default_order = traversal_order(order, tiles_x, tiles_y)

    def tile_frame(self, primitives: Sequence[Primitive]) -> TiledFrame:
        """Bin a frame's primitives; returns the TiledFrame."""
        buffer, stats = self._builder.bin(primitives)
        return TiledFrame(
            tiles_x=self.tiles_x,
            tiles_y=self.tiles_y,
            tile_size=self.tile_size,
            parameter_buffer=buffer,
            binning_stats=stats,
            default_order=list(self._default_order),
        )
