"""Shared expectation constants for the reproduced paper figures.

Single source of truth for (a) the values the paper reports and (b) the
*shape thresholds* this reproduction asserts — orderings, signs and
ratio bands.  Both consumers import from here, so they cannot drift:

* ``benchmarks/test_fig*.py`` — the pytest benches assert the shape
  claims while regenerating each figure;
* :mod:`repro.figures.registry` — the ``repro figures`` pipeline
  evaluates the same claims from checkpointed sweep artifacts and
  renders the paper-vs-ours delta tables.

Naming convention: ``<FIG>_PAPER_*`` is a value the paper reports
(quoted in the delta tables, never asserted — absolute numbers are not
comparable across simulators); every other constant parameterizes an
asserted shape claim.
"""

from __future__ import annotations

# -- Figure 1: execution-time breakdown --------------------------------------
#: The paper's headline: ~88% of GPU time goes to the raster process.
FIG1_PAPER_RASTER_FRACTION = 0.88
#: Shape: raster dominates on average...
FIG1_MIN_MEAN_RASTER_FRACTION = 0.70
#: ...and for every single benchmark.
FIG1_MIN_RASTER_FRACTION = 0.50

# -- Figure 2: per-tile DRAM heatmap -----------------------------------------
#: Shape: the hottest 10% of tiles carry well over 10% of the traffic.
FIG2_HOT_FRACTION = 0.1
FIG2_MIN_HOT_SHARE = 0.2
#: Shape: most hot tiles touch another hot tile (spatial clustering).
FIG2_MIN_CLUSTERING = 0.5
#: Percentile above which a tile counts as hot for the clustering check.
FIG2_HOT_PERCENTILE = 80

# -- Figure 7: DRAM requests per interval (burstiness) -----------------------
#: Simulation interval is 1000 cycles; the paper plots 5000-cycle bins.
FIG7_REBIN = 5
#: Shape: visible burstiness on the baseline (peaks well above mean).
FIG7_MIN_PEAK_OVER_MEAN = 1.5
FIG7_MIN_BASELINE_COV = 0.2

# -- Figure 11: LIBRA speedup, memory-intensive half -------------------------
FIG11_PAPER_PTR_SPEEDUP = 1.132
FIG11_PAPER_LIBRA_SPEEDUP = 1.209
FIG11_PAPER_SCHEDULER_GAIN = 1.077
#: Shape: PTR alone clearly beats the baseline.
FIG11_MIN_PTR_SPEEDUP = 1.03
#: Shape: per-benchmark, LIBRA < PTR*this counts as a regression...
FIG11_REGRESSION_TOLERANCE = 0.98
#: ...and at most this many benchmarks may regress.
FIG11_MAX_REGRESSIONS = 3

# -- Figure 12: texture access latency ---------------------------------------
FIG12_PAPER_LIBRA_LATENCY_DECREASE = 0.135
#: Shape: PTR alone *raises* latency on at least this many benchmarks.
FIG12_MIN_PTR_LATENCY_REGRESSIONS = 4

# -- Figure 13: texture cache hit ratio --------------------------------------
FIG13_PAPER_LIBRA_HIT_GAIN = 0.106
#: Shape: LIBRA's mean hit-ratio change stays within this additive
#: tolerance of PTR's (the supertile mechanism must not lose locality).
FIG13_PTR_TOLERANCE = 0.01

# -- Figure 14: DRAM accesses, LIBRA normalized to PTR -----------------------
FIG14_PAPER_NORMALIZED_DRAM = 1.0
#: Shape: the mean normalized access count stays near 1.0...
FIG14_MEAN_BAND = (0.85, 1.10)
#: ...and no single benchmark strays far from it.
FIG14_PER_BENCH_BAND = (0.70, 1.25)

# -- Figure 15: total GPU energy ---------------------------------------------
FIG15_PAPER_PTR_SAVING = 0.055
FIG15_PAPER_LIBRA_SAVING = 0.092
#: Shape: LIBRA saves at least as much energy as PTR, within this
#: additive tolerance.
FIG15_PTR_TOLERANCE = 0.005

# -- Figure 17: compute-intensive half ---------------------------------------
FIG17_PAPER_PTR_SPEEDUP = 1.099
FIG17_PAPER_LIBRA_SPEEDUP = 1.116
FIG17_PAPER_SCHEDULER_GAIN = 1.017
FIG17_MIN_PTR_SPEEDUP = 1.03
#: Shape: the scheduler's extra contribution stays small...
FIG17_MAX_SCHEDULER_GAIN = 1.05
#: ...and LIBRA never harms: geomean within 1% of PTR, every
#: benchmark within 3%.
FIG17_MEAN_TOLERANCE = 0.99
FIG17_PER_BENCH_TOLERANCE = 0.97

# -- Table I: simulation parameters ------------------------------------------
TABLE1_FREQUENCY_HZ = 800_000_000
TABLE1_TILE_SIZE = 32
TABLE1_VERTEX_CACHE_BYTES = 4 * 1024
TABLE1_TILE_CACHE_BYTES = 32 * 1024
TABLE1_TEXTURE_CACHE_BYTES = 32 * 1024
TABLE1_L2_CACHE_BYTES = 2 * 1024 * 1024
TABLE1_DRAM_ROW_HIT_CYCLES = 50
TABLE1_DRAM_ROW_MISS_CYCLES = 100
TABLE1_TOTAL_CORES = 8

# -- Table II: benchmark suite -----------------------------------------------
TABLE2_SUITE_SIZE = 32
TABLE2_MEMORY_INTENSIVE_COUNT = 16
TABLE2_MIN_MEAN_FOOTPRINT_MB = 4.0
