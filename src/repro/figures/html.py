"""Self-contained HTML dashboard for the figure pipeline.

:func:`render_dashboard` turns a
:class:`~repro.figures.runner.FiguresReport` into **one** HTML file:
inline CSS (light + dark via ``prefers-color-scheme``), inline-SVG
plots (bars, sparklines, heatmaps — native ``<title>`` tooltips per
mark), per-figure paper-vs-ours delta tables with pass/fail shape
verdicts, the backing sweeps' :class:`SpeedupMatrix` grids with their
provenance marks and ``PARTIAL`` footers, merged sweep telemetry, and
the ``repro.perf.build_report`` analysis.  No scripts, no external
assets, no new dependencies — the file can be archived as a CI
artifact and opened anywhere.

Every number shown in a plot also appears in an adjacent table, series
identity is never carried by color alone (legend + direct labels), and
status is always icon + label.
"""

from __future__ import annotations

import html as _html
from typing import Any, Dict, List, Optional, Sequence

from .render import format_value

#: Sequential blue ramp (steps 100→700) for heatmap magnitude.
HEAT_RAMP = ("#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec",
             "#5598e7", "#3987e5", "#2a78d6", "#256abf", "#1c5cab",
             "#184f95", "#104281", "#0d366b")

STATUS = {
    "pass": ("✓", "PASS", "good"),
    "fail": ("✗", "FAIL", "critical"),
    "partial": ("⚠", "PARTIAL", "warning"),
    "error": ("⚠", "ERROR", "warning"),
}

CSS = """
:root {
  color-scheme: light;
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --muted: #898781; --gridline: #e1e0d9; --axisline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --good: #0ca30c; --warning: #fab219; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --page: #0d0d0d; --surface-1: #1a1a19;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --muted: #898781; --gridline: #2c2c2a; --axisline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page);
  color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 1080px; margin: 0 auto; }
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 17px; margin: 0 0 2px; }
h3 { font-size: 14px; margin: 18px 0 6px; }
.sub { color: var(--text-secondary); margin: 0 0 18px; }
.sub code { font-size: 12px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 0 0 20px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 16px; min-width: 120px;
}
.tile .v { font-size: 24px; font-weight: 600; }
.tile .k { color: var(--text-secondary); font-size: 12px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 18px; margin: 0 0 16px;
}
.card .claim { color: var(--text-secondary); margin: 2px 0 10px; }
.card .commentary { color: var(--text-secondary); margin: 10px 0 0; }
.badge {
  display: inline-block; border: 1.5px solid; border-radius: 999px;
  padding: 1px 10px; font-size: 12px; font-weight: 600;
  vertical-align: 2px; margin-left: 8px;
}
.badge-good { border-color: var(--good); }
.badge-good .ico { color: var(--good); }
.badge-critical { border-color: var(--critical); }
.badge-critical .ico { color: var(--critical); }
.badge-warning { border-color: var(--warning); }
.badge-warning .ico { color: var(--warning); }
table { border-collapse: collapse; margin: 8px 0; font-size: 13px; }
th, td { padding: 4px 10px; text-align: left;
  border-bottom: 1px solid var(--gridline); }
th { color: var(--text-secondary); font-weight: 600; }
td.num, th.num { text-align: right;
  font-variant-numeric: tabular-nums; }
tr.total td { font-weight: 600; border-top: 1.5px solid
  var(--axisline); }
.verdicts { list-style: none; padding: 0; margin: 8px 0; }
.verdicts li { margin: 2px 0; }
.verdicts .ico-pass { color: var(--good); font-weight: 700; }
.verdicts .ico-fail { color: var(--critical); font-weight: 700; }
.verdicts .detail { color: var(--text-secondary); font-size: 12px; }
.prov { color: var(--muted); font-size: 12px; margin: 8px 0 0; }
.legend { display: flex; gap: 16px; font-size: 12px;
  color: var(--text-secondary); margin: 10px 0 2px; }
.legend .sw { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 5px; }
.plot { margin: 4px 0 2px; overflow-x: auto; }
svg text { font: 10px system-ui, -apple-system, "Segoe UI",
  sans-serif; fill: var(--muted); }
svg .tick { font-variant-numeric: tabular-nums; }
.footer-note { color: var(--muted); font-size: 12px; }
details { margin: 10px 0; }
details summary { cursor: pointer; color: var(--text-secondary); }
details pre {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px; overflow-x: auto;
  font-size: 12px; line-height: 1.45;
}
"""


def esc(text: Any) -> str:
    return _html.escape(str(text), quote=True)


def _series_var(index: int) -> str:
    """Categorical slot (fixed order, capped at 3 — never cycled)."""
    return f"var(--series-{min(index + 1, 3)})"


# -- SVG plots ---------------------------------------------------------------

def _ticks(lo: float, hi: float, count: int = 4) -> List[float]:
    if hi <= lo:
        hi = lo + 1.0
    step = (hi - lo) / count
    return [lo + i * step for i in range(count + 1)]


def _bar_path(x: float, y0: float, y1: float, w: float,
              r: float = 4.0) -> str:
    """A bar anchored square at the baseline (y0), rounded 4px at the
    data end (y1); handles bars growing either direction."""
    r = min(r, abs(y0 - y1), w / 2)
    sign = -1.0 if y1 <= y0 else 1.0
    return (f"M{x:.1f},{y0:.1f} V{y1 + sign * r:.1f} "
            f"Q{x:.1f},{y1:.1f} {x + r:.1f},{y1:.1f} "
            f"H{x + w - r:.1f} "
            f"Q{x + w:.1f},{y1:.1f} {x + w:.1f},{y1 + sign * r:.1f} "
            f"V{y0:.1f} Z")


def svg_bars(plot: Dict[str, Any], height: int = 190) -> str:
    """Grouped bar chart: thin bars, rounded data ends, hairline grid,
    a dashed reference line at the no-change baseline."""
    labels: Sequence[str] = plot["labels"]
    series: Dict[str, Sequence[float]] = plot["series"]
    unit = plot.get("unit", "")
    baseline = plot.get("baseline")
    names = list(series)
    nseries, ngroups = len(names), len(labels)
    barw = 14 if nseries > 1 else 18
    groupw = nseries * barw + (nseries - 1) * 2
    ggap, left, top, bottom = 14, 46, 10, 26
    width = left + ngroups * (groupw + ggap) + ggap + 8
    values = [v for vs in series.values() for v in vs]
    lo = min(0.0, min(values))
    hi = max(values + ([baseline] if baseline else []))
    hi = max(hi, plot.get("ymax", hi)) * 1.05 or 1.0
    span = hi - lo

    def y(v: float) -> float:
        return top + (hi - v) / span * (height - top - bottom)

    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'width="{width}" height="{height}" '
             f'aria-label="{esc(plot.get("label", "bar chart"))}">']
    for tick in _ticks(lo, hi):
        ty = y(tick)
        parts.append(f'<line x1="{left}" y1="{ty:.1f}" x2="{width - 8}" '
                     f'y2="{ty:.1f}" stroke="var(--gridline)" '
                     f'stroke-width="1"/>')
        parts.append(f'<text class="tick" x="{left - 6}" '
                     f'y="{ty + 3:.1f}" text-anchor="end">'
                     f'{format_value(round(tick, 3))}</text>')
    if baseline is not None and baseline != 0:
        by = y(baseline)
        parts.append(f'<line x1="{left}" y1="{by:.1f}" '
                     f'x2="{width - 8}" y2="{by:.1f}" '
                     f'stroke="var(--axisline)" stroke-width="1" '
                     f'stroke-dasharray="4 3"/>')
    y0 = y(max(0.0, lo))
    for g, label in enumerate(labels):
        gx = left + ggap + g * (groupw + ggap)
        for s, name in enumerate(names):
            v = series[name][g]
            x = gx + s * (barw + 2)
            tip = f"{label} · {name}: {format_value(v)}{unit}"
            parts.append(
                f'<path d="{_bar_path(x, y0, y(v), barw)}" '
                f'fill="{_series_var(s)}"><title>{esc(tip)}</title>'
                f'</path>')
        parts.append(f'<text x="{gx + groupw / 2:.1f}" '
                     f'y="{height - 8}" text-anchor="middle">'
                     f'{esc(label)}</text>')
    parts.append(f'<line x1="{left}" y1="{y0:.1f}" x2="{width - 8}" '
                 f'y2="{y0:.1f}" stroke="var(--axisline)" '
                 f'stroke-width="1"/>')
    parts.append("</svg>")
    return "".join(parts)


def svg_sparkline(plot: Dict[str, Any], width: int = 640,
                  height: int = 120) -> str:
    """Overlaid 2px line series (the Fig. 7 interval traces)."""
    series: Dict[str, Sequence[float]] = plot["series"]
    left, top, bottom = 46, 8, 18
    peak = max((max(vs) for vs in series.values() if vs), default=1.0)
    peak = peak or 1.0
    longest = max((len(vs) for vs in series.values()), default=1)

    def xy(i: int, v: float) -> str:
        x = left + i / max(longest - 1, 1) * (width - left - 8)
        y = top + (1 - v / peak) * (height - top - bottom)
        return f"{x:.1f},{y:.1f}"

    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'width="{width}" height="{height}" '
             f'aria-label="{esc(plot.get("label", "line chart"))}">']
    for frac in (0.0, 0.5, 1.0):
        gy = top + frac * (height - top - bottom)
        parts.append(f'<line x1="{left}" y1="{gy:.1f}" '
                     f'x2="{width - 8}" y2="{gy:.1f}" '
                     f'stroke="var(--gridline)" stroke-width="1"/>')
        parts.append(f'<text class="tick" x="{left - 6}" '
                     f'y="{gy + 3:.1f}" text-anchor="end">'
                     f'{format_value(round(peak * (1 - frac)))}</text>')
    for s, (name, vs) in enumerate(series.items()):
        points = " ".join(xy(i, v) for i, v in enumerate(vs))
        tip = (f"{name}: {len(vs)} intervals, peak "
               f"{format_value(max(vs) if vs else 0)}")
        parts.append(f'<polyline points="{points}" fill="none" '
                     f'stroke="{_series_var(s)}" stroke-width="2" '
                     f'stroke-linejoin="round">'
                     f'<title>{esc(tip)}</title></polyline>')
    parts.append("</svg>")
    return "".join(parts)


def svg_heatmap(plot: Dict[str, Any]) -> str:
    """Per-tile magnitude grid on the sequential blue ramp."""
    matrix: Sequence[Sequence[float]] = plot["matrix"]
    rows, cols = len(matrix), len(matrix[0]) if matrix else 0
    cell = max(7, min(22, 440 // max(cols, 1)))
    width, height = cols * cell + 2, rows * cell + 2
    peak = max((v for row in matrix for v in row), default=1) or 1
    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'width="{width}" height="{height}" '
             f'aria-label="{esc(plot.get("label", "heatmap"))}">']
    for yi, row in enumerate(matrix):
        for xi, v in enumerate(row):
            shade = HEAT_RAMP[min(len(HEAT_RAMP) - 1,
                                  int(v / peak * (len(HEAT_RAMP) - 1)
                                      + 0.5))]
            tip = f"tile ({xi},{yi}): {format_value(v)} accesses"
            parts.append(
                f'<rect x="{xi * cell + 1}" y="{yi * cell + 1}" '
                f'width="{cell - 1}" height="{cell - 1}" '
                f'fill="{shade}"><title>{esc(tip)}</title></rect>')
    parts.append("</svg>")
    return "".join(parts)


def _legend(names: Sequence[str]) -> str:
    if len(names) < 2:
        return ""
    items = "".join(
        f'<span><span class="sw" style="background:'
        f'{_series_var(i)}"></span>{esc(name)}</span>'
        for i, name in enumerate(names))
    return f'<div class="legend">{items}</div>'


def render_plot(plot: Optional[Dict[str, Any]]) -> str:
    if not plot:
        return ""
    kind = plot.get("type")
    if kind == "bars":
        svg = svg_bars(plot)
        legend = _legend(list(plot["series"]))
    elif kind == "sparkline":
        svg = svg_sparkline(plot)
        legend = _legend(list(plot["series"]))
    elif kind == "heatmap":
        svg = svg_heatmap(plot)
        legend = ""
    else:
        return ""
    label = plot.get("label")
    caption = (f'<div class="footer-note">{esc(label)}</div>'
               if label else "")
    return f'{legend}<div class="plot">{svg}</div>{caption}'


# -- HTML sections -----------------------------------------------------------

def _badge(status: str) -> str:
    ico, label, cls = STATUS.get(status, ("?", status.upper(),
                                          "warning"))
    return (f'<span class="badge badge-{cls}">'
            f'<span class="ico">{ico}</span> {label}</span>')


def _delta_table(outcome) -> str:
    if not outcome.metrics:
        return ""
    paper = {e.key: e.paper for e in outcome.expectations
             if e.paper is not None}
    rows = []
    for key, value in outcome.metrics.items():
        delta = (format_value(value - paper[key]) if key in paper
                 else "—")
        rows.append(f"<tr><td><code>{esc(key)}</code></td>"
                    f'<td class="num">{format_value(value)}</td>'
                    f'<td class="num">{format_value(paper.get(key))}'
                    f'</td><td class="num">{delta}</td></tr>')
    return ('<table><thead><tr><th>metric</th>'
            '<th class="num">measured</th><th class="num">paper</th>'
            '<th class="num">delta</th></tr></thead><tbody>'
            + "".join(rows) + "</tbody></table>")


def _verdict_list(outcome) -> str:
    if not outcome.expectations:
        return ""
    items = []
    for e in outcome.expectations:
        ico = ('<span class="ico-pass">✓</span>' if e.passed
               else '<span class="ico-fail">✗</span>')
        seeded = " (seeded regression)" if e.seeded else ""
        items.append(
            f"<li>{ico} {esc(e.claim or e.key)}{seeded} "
            f'<span class="detail">— <code>{esc(e.key)}</code> = '
            f"{format_value(e.measured)}, expected {esc(e.check)}"
            f"</span></li>")
    return f'<ul class="verdicts">{"".join(items)}</ul>'


def _provenance_line(outcome) -> str:
    if not outcome.spec_name:
        return ('<p class="prov">config-only check — no simulation '
                'needed</p>')
    p = outcome
    bits = [f"sweep <code>{esc(p.spec_name)}</code>",
            f"fingerprint <code>{esc(p.spec_fingerprint)}</code>",
            f"{p.points_total} points ({p.points_resumed} resumed, "
            f"{p.points_executed} executed"
            + (f", {p.points_degraded} degraded"
               if p.points_degraded else "")
            + (f", {p.points_failed} missing"
               if p.points_failed else "") + ")",
            f"store <code>{esc(p.store)}</code>"]
    return f'<p class="prov">{" · ".join(bits)}</p>'


def _figure_card(outcome) -> str:
    error = (f'<p class="claim"><strong>{esc(outcome.error)}</strong>'
             f"</p>" if outcome.error else "")
    return (f'<section class="card" id="{esc(outcome.fid)}">'
            f"<h2>{esc(outcome.title)}{_badge(outcome.status)}</h2>"
            f'<p class="claim"><strong>Paper:</strong> '
            f"{esc(outcome.paper_claim)}</p>"
            + error
            + render_plot(outcome.plot)
            + _delta_table(outcome)
            + _verdict_list(outcome)
            + _provenance_line(outcome)
            + f'<p class="commentary">{esc(outcome.commentary)}</p>'
            + "</section>")


def _matrix_table(name: str, matrix) -> str:
    headers = (["benchmark"] + list(matrix.axis_names)
               + [f"{k} speedup" for k in matrix.kinds])
    num_cls = ' class="num"'
    head = "".join(
        f"<th{'' if i == 0 else num_cls}>{esc(h)}</th>"
        for i, h in enumerate(headers))
    body = []
    annotated = False
    for row in matrix.rows:
        cells = [f"<td>{esc(row.benchmark)}</td>"]
        cells += [f'<td class="num">{esc(row.axes.get(a, ""))}</td>'
                  for a in matrix.axis_names]
        for k in matrix.kinds:
            mark = row.cell_mark(k)
            annotated = annotated or bool(mark)
            text = (f"{row.speedups[k]:.3f}{mark}"
                    if k in row.speedups else (mark or "—"))
            cells.append(f'<td class="num">{esc(text)}</td>')
        body.append(f"<tr>{''.join(cells)}</tr>")
    means = matrix.geomeans()
    cells = ["<td>geomean</td>"]
    cells += ["<td></td>"] * len(matrix.axis_names)
    cells += [f'<td class="num">'
              f'{format(means[k], ".3f") if k in means else "—"}</td>'
              for k in matrix.kinds]
    body.append(f'<tr class="total">{"".join(cells)}</tr>')
    footer = (f'<p class="footer-note">{esc(matrix._footer())}</p>'
              if annotated or matrix.partial else "")
    return (f"<h3>Sweep matrix: {esc(name)} (speedup over "
            f"{esc(matrix.baseline_kind)})</h3>"
            f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{''.join(body)}</tbody></table>{footer}")


def _telemetry_table(name: str, telemetry: Dict[str, float]) -> str:
    rows = "".join(
        f"<tr><td><code>{esc(key)}</code></td>"
        f'<td class="num">{value:,g}</td></tr>'
        for key, value in sorted(telemetry.items())
        if ".le_" not in key)
    return (f"<details><summary>Merged telemetry — {esc(name)} "
            f"(summed across all completed points)</summary>"
            f"<table><thead><tr><th>metric</th>"
            f'<th class="num">value</th></tr></thead>'
            f"<tbody>{rows}</tbody></table></details>")


def _tiles(report) -> str:
    executed = sum(len(r.completed) - len(r.resumed)
                   for r in report.sweeps.values())
    resumed = sum(len(r.resumed) for r in report.sweeps.values())
    tiles = [
        (f"{len(report.passed)}/{len(report.figures)}",
         "figures pass"),
        (f"{executed}", "points executed"),
        (f"{resumed}", "points resumed"),
        ("quick" if report.quick else "full", "profile"),
    ]
    return ('<div class="tiles">'
            + "".join(f'<div class="tile"><div class="v">{esc(v)}'
                      f'</div><div class="k">{esc(k)}</div></div>'
                      for v, k in tiles)
            + "</div>")


def render_dashboard(report, perf_markdown: Optional[str] = None) -> str:
    """The complete single-file dashboard for one pipeline run."""
    sha = (report.git_sha or "unknown")[:12]
    cards = "".join(_figure_card(f) for f in report.figures)
    matrices = "".join(_matrix_table(name, matrix)
                       for name, matrix in
                       sorted(report.matrices().items()))
    telemetry_parts = []
    for name, result in sorted(report.sweeps.items()):
        merged = result.merged_metrics()
        if merged is not None:
            telemetry_parts.append(
                _telemetry_table(name, merged.snapshot()))
    telemetry = "".join(telemetry_parts)
    perf = ""
    if perf_markdown:
        perf = ("<details open><summary>Telemetry analysis "
                "(repro.perf.build_report)</summary>"
                f"<pre>{esc(perf_markdown)}</pre></details>")
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>LIBRA reproduction — figures dashboard</title>
<style>{CSS}</style>
</head>
<body>
<main>
<h1>LIBRA reproduction — figures dashboard</h1>
<p class="sub">Generated by <code>repro figures</code> ·
commit <code>{esc(sha)}</code> · {esc(report.generated)} ·
store <code>{esc(report.store_root)}</code>. Shape claims are
compared, not absolute numbers (see EXPERIMENTS.md).</p>
{_tiles(report)}
{cards}
{matrices}
{telemetry}
{perf}
</main>
</body>
</html>
"""
