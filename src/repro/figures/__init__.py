"""Paper-reproduction figure pipeline (``repro figures``).

One command maps every reproduced LIBRA figure/table to a committed
:class:`~repro.experiments.spec.ExperimentSpec`, executes the shared
grids through the checkpointed sweep engine (resume, supervision and
chaos-mode hardening come for free), evaluates each figure's *shape
claims* against the constants in :mod:`repro.figures.expectations`,
and renders the evidence three ways from the same
:class:`~repro.figures.runner.FiguresReport`:

* ``figures_manifest.json`` — machine-readable per-figure
  pass/fail/delta with full provenance (git SHA, spec fingerprints,
  resumed/degraded point counts) — the CI gate;
* a **single self-contained HTML dashboard** (inline CSS + SVG, no
  dependencies) — delta tables, verdicts, plots, speedup matrices,
  merged telemetry, perf analyses;
* **EXPERIMENTS.md** — the committed markdown fallback, so the file
  and the dashboard can never drift.

See ``docs/figures.md`` for the registry format and how to add a
figure.
"""

from .registry import (Expectation, FigureData, FigureSpec,
                       describe_check, evaluate_check, figure_ids,
                       figure_registry)
from .runner import (ExpectationResult, FigureOutcome, FiguresReport,
                     record_perf_analysis, run_figures, select_figures)
from .render import (md_table, parse_results, render,
                     render_experiments_md, render_sweep)
from .html import render_dashboard

__all__ = [
    "Expectation",
    "FigureData",
    "FigureSpec",
    "describe_check",
    "evaluate_check",
    "figure_ids",
    "figure_registry",
    "ExpectationResult",
    "FigureOutcome",
    "FiguresReport",
    "record_perf_analysis",
    "run_figures",
    "select_figures",
    "md_table",
    "parse_results",
    "render",
    "render_experiments_md",
    "render_sweep",
    "render_dashboard",
]
