"""The figure registry: one committed spec + expectations per figure.

Every reproduced paper figure/table is a :class:`FigureSpec`:

* an :class:`~repro.experiments.spec.ExperimentSpec` naming the grid of
  (benchmark, kind) points the figure needs — executed through the
  resumable sweep engine, so figures *share* checkpointed artifacts
  (the headline Figures 11–15 all read the same memory-intensive
  sweep);
* a ``compute`` function reducing the checkpointed
  :class:`~repro.harness.RunSummary` objects to the figure's named
  measured values plus an optional plot payload for the dashboard;
* a tuple of :class:`Expectation` records, each encoding one *shape
  claim* — an ordering, sign or ratio band from
  :mod:`repro.figures.expectations` — plus the paper's reported value
  for the delta table.

Config-only tables (Tables I–II) carry no sweep spec; their compute
functions read :mod:`repro.config` / :mod:`repro.workloads` directly.

Two profiles: the **full** profile matches the ``benchmarks/`` suite
(960x512, 8 frames, full benchmark classes); the **quick** profile
(``repro figures --quick``) shrinks geometry, frames and suites to CI
scale.  Quick-profile shape checks may be looser (small grids are
noisier); each :class:`Expectation` can carry a ``quick_check``
override.  Spec names carry a ``-quick`` suffix so the two profiles
never share (or fight over) an artifact store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple)

from ..errors import ConfigValidationError
from ..experiments import ExperimentSpec
from ..stats import arithmetic_mean, coefficient_of_variation, \
    geometric_mean, rebin_series, tile_matrix
from . import expectations as X

#: (benchmark, kind) -> RunSummary, the pivot the runner hands compute().
SummaryMap = Dict[Tuple[str, str], Any]

# -- profiles ----------------------------------------------------------------

#: Full profile matches the ``benchmarks/`` harness geometry.
FULL_WIDTH, FULL_HEIGHT, FULL_FRAMES = 960, 512, 8
#: Quick profile: CI scale (seconds per point, not tens of seconds).
QUICK_WIDTH, QUICK_HEIGHT, QUICK_FRAMES = 256, 128, 2

#: Quick-profile benchmark subsets (must keep CCS for Fig. 7 and SuS
#: for Fig. 2; memory/compute subsets stay within their full classes).
QUICK_MEMORY = ("CCS", "GrT", "SuS", "HoW")
QUICK_COMPUTE = ("GDL", "Jet", "PzQ", "CrS")
QUICK_BASELINE = ("CCS", "SuS", "GrT", "GDL", "Jet", "PzQ")


# -- expectation records -----------------------------------------------------

#: Check grammar (declarative, JSON-serializable):
#:
#: * ``("gt", b)`` / ``("ge", b)`` / ``("lt", b)`` / ``("le", b)`` —
#:   compare the measured value against a constant bound;
#: * ``("range", lo, hi)`` — ``lo < measured < hi``;
#: * ``("eq", v)`` — exact equality (config tables);
#: * ``("gt_key", other[, scale[, offset]])`` (and ``ge_key`` /
#:   ``lt_key`` / ``le_key``) — compare against another measured key:
#:   ``measured[key] OP measured[other] * scale + offset``.
Check = Tuple


@dataclass(frozen=True)
class Expectation:
    """One shape claim of a figure, plus the paper's reported value."""

    key: str
    check: Check
    #: Looser (or different) check for the quick profile; None reuses
    #: ``check`` unchanged.
    quick_check: Optional[Check] = None
    #: The value the paper reports for this metric (delta-table column;
    #: never asserted — absolute values differ across simulators).
    paper: Optional[float] = None
    #: Human wording of the shape claim, shown next to the verdict.
    claim: str = ""

    def active_check(self, quick: bool) -> Check:
        """The check this profile evaluates."""
        if quick and self.quick_check is not None:
            return self.quick_check
        return self.check


_OPS = {"gt": (lambda a, b: a > b, ">"),
        "ge": (lambda a, b: a >= b, ">="),
        "lt": (lambda a, b: a < b, "<"),
        "le": (lambda a, b: a <= b, "<="),
        "eq": (lambda a, b: a == b, "==")}


def describe_check(check: Check) -> str:
    """Human-readable form of one check tuple."""
    op = check[0]
    if op == "range":
        return f"{check[1]:g} < value < {check[2]:g}"
    if op.endswith("_key"):
        base, symbol = _OPS[op[:-4]]
        scale = check[2] if len(check) > 2 else 1.0
        offset = check[3] if len(check) > 3 else 0.0
        rhs = check[1]
        if scale != 1.0:
            rhs = f"{rhs}*{scale:g}"
        if offset:
            rhs = f"{rhs}{offset:+g}"
        return f"value {symbol} {rhs}"
    _, symbol = _OPS[op]
    return f"value {symbol} {check[1]:g}"


def evaluate_check(check: Check, key: str,
                   measured: Dict[str, float]) -> bool:
    """Evaluate one check tuple against the figure's measured values.

    Raises :class:`ConfigValidationError` on a malformed check or a
    reference to a missing measured key — a registry bug, not a shape
    regression, and it must not masquerade as one.
    """
    if key not in measured:
        raise ConfigValidationError(
            f"expectation references unmeasured key {key!r}")
    value = measured[key]
    op = check[0]
    if op == "range":
        return check[1] < value < check[2]
    if op.endswith("_key"):
        other = check[1]
        if other not in measured:
            raise ConfigValidationError(
                f"check for {key!r} references unmeasured key {other!r}")
        scale = check[2] if len(check) > 2 else 1.0
        offset = check[3] if len(check) > 3 else 0.0
        fn, _ = _OPS[op[:-4]]
        return fn(value, measured[other] * scale + offset)
    if op not in _OPS:
        raise ConfigValidationError(f"unknown check op {op!r} for {key!r}")
    fn, _ = _OPS[op]
    return fn(value, check[1])


# -- figure specification ----------------------------------------------------

@dataclass
class FigureData:
    """What one figure's compute() yields from the sweep artifacts."""

    #: Named measured values the expectations are evaluated against.
    metrics: Dict[str, float]
    #: Dashboard plot payload (``{"type": "bars"|"sparkline"|"heatmap",
    #: ...}``) or None for table-only figures.
    plot: Optional[Dict[str, Any]] = None


@dataclass
class FigureSpec:
    """One reproduced figure/table: spec + compute + shape claims."""

    fid: str
    title: str
    paper_claim: str
    commentary: str
    #: The sweep grid this figure reads; None for config-only tables.
    #: Figures may share a spec *object* — the runner dedupes by spec
    #: name and executes each grid once.
    spec: Optional[ExperimentSpec]
    compute: Callable[[SummaryMap], FigureData]
    expectations: Tuple[Expectation, ...] = ()

    def kinds_used(self) -> Sequence[str]:
        """Config kinds this figure's spec sweeps ([] for tables)."""
        return self.spec.kinds if self.spec is not None else []


# -- per-figure compute functions --------------------------------------------

def _speedups(summaries: SummaryMap, suite: Sequence[str],
              kind: str) -> Dict[str, float]:
    return {name: (summaries[(name, "baseline")].total_cycles
                   / summaries[(name, kind)].total_cycles)
            for name in suite}


def _fig1_compute(suite: Sequence[str]):
    def compute(summaries: SummaryMap) -> FigureData:
        fractions = []
        for name in suite:
            s = summaries[(name, "baseline")]
            fractions.append(s.raster_cycles / s.total_cycles)
        return FigureData(
            metrics={"mean_raster_fraction": arithmetic_mean(fractions),
                     "min_raster_fraction": min(fractions)},
            plot={"type": "bars", "labels": list(suite),
                  "series": {"raster fraction": fractions},
                  "ymax": 1.0, "unit": ""})
    return compute


def _fig2_compute(benchmark: str):
    def compute(summaries: SummaryMap) -> FigureData:
        import numpy as np

        from ..stats import hot_cold_summary
        per_tile = summaries[(benchmark, "baseline")].per_tile_dram_last
        tiles_x = max(t[0] for t in per_tile) + 1
        tiles_y = max(t[1] for t in per_tile) + 1
        matrix = tile_matrix(per_tile, tiles_x, tiles_y)
        stats = hot_cold_summary(per_tile, hot_fraction=X.FIG2_HOT_FRACTION)
        hot_threshold = np.percentile(matrix[matrix > 0],
                                      X.FIG2_HOT_PERCENTILE)
        hot_mask = matrix >= hot_threshold
        neighbor_hot = hot_total = 0
        for y in range(tiles_y):
            for x in range(tiles_x):
                if not hot_mask[y, x]:
                    continue
                hot_total += 1
                for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    nx, ny = x + dx, y + dy
                    if 0 <= nx < tiles_x and 0 <= ny < tiles_y \
                            and hot_mask[ny, nx]:
                        neighbor_hot += 1
                        break
        return FigureData(
            metrics={"top10pct_tile_share_of_dram": stats["hot_share"],
                     "hot_tile_clustering":
                         neighbor_hot / max(hot_total, 1)},
            plot={"type": "heatmap",
                  "matrix": [[int(v) for v in row] for row in matrix],
                  "label": f"{benchmark} per-tile DRAM accesses"})
    return compute


def _fig7_compute(benchmark: str):
    def compute(summaries: SummaryMap) -> FigureData:
        base = rebin_series(
            summaries[(benchmark, "baseline")].last_frame_intervals,
            X.FIG7_REBIN)
        libra = rebin_series(
            summaries[(benchmark, "libra")].last_frame_intervals,
            X.FIG7_REBIN)
        mean = sum(base) / len(base) if base else 0.0
        return FigureData(
            metrics={"baseline_interval_cov":
                         coefficient_of_variation(base),
                     "libra_interval_cov":
                         coefficient_of_variation(libra),
                     "baseline_peak_over_mean":
                         (max(base) / mean) if mean else 0.0},
            plot={"type": "sparkline",
                  "series": {"baseline": [int(v) for v in base],
                             "libra": [int(v) for v in libra]},
                  "label": f"{benchmark} DRAM requests per "
                           f"{X.FIG7_REBIN * 1000}-cycle interval"})
    return compute


def _fig11_compute(suite: Sequence[str]):
    def compute(summaries: SummaryMap) -> FigureData:
        ptr = _speedups(summaries, suite, "ptr")
        libra = _speedups(summaries, suite, "libra")
        ptr_mean = geometric_mean(list(ptr.values()))
        libra_mean = geometric_mean(list(libra.values()))
        regressions = sum(
            1 for n in suite
            if libra[n] < ptr[n] * X.FIG11_REGRESSION_TOLERANCE)
        return FigureData(
            metrics={"ptr_speedup": ptr_mean,
                     "libra_speedup": libra_mean,
                     "scheduler_gain": libra_mean / ptr_mean,
                     "libra_regressions": float(regressions)},
            plot={"type": "bars", "labels": list(suite),
                  "series": {"PTR": [ptr[n] for n in suite],
                             "LIBRA": [libra[n] for n in suite]},
                  "baseline": 1.0, "unit": "x"})
    return compute


def _fig12_compute(suite: Sequence[str]):
    def compute(summaries: SummaryMap) -> FigureData:
        ptr_deltas, libra_deltas = [], []
        for name in suite:
            base = summaries[(name, "baseline")].texture_latency
            ptr_deltas.append(
                1 - summaries[(name, "ptr")].texture_latency / base)
            libra_deltas.append(
                1 - summaries[(name, "libra")].texture_latency / base)
        return FigureData(
            metrics={"mean_libra_latency_decrease":
                         arithmetic_mean(libra_deltas),
                     "mean_ptr_latency_decrease":
                         arithmetic_mean(ptr_deltas),
                     "ptr_latency_regressions":
                         float(sum(1 for d in ptr_deltas if d < 0))},
            plot={"type": "bars", "labels": list(suite),
                  "series": {"PTR": [d * 100 for d in ptr_deltas],
                             "LIBRA": [d * 100 for d in libra_deltas]},
                  "baseline": 0.0, "unit": "%"})
    return compute


def _fig13_compute(suite: Sequence[str]):
    def compute(summaries: SummaryMap) -> FigureData:
        ptr_deltas, libra_deltas = [], []
        for name in suite:
            base = summaries[(name, "baseline")].texture_hit_ratio
            ptr = summaries[(name, "ptr")].texture_hit_ratio
            libra = summaries[(name, "libra")].texture_hit_ratio
            ptr_deltas.append((ptr - base) / base if base else 0.0)
            libra_deltas.append((libra - base) / base if base else 0.0)
        return FigureData(
            metrics={"mean_libra_hit_ratio_change":
                         arithmetic_mean(libra_deltas),
                     "mean_ptr_hit_ratio_change":
                         arithmetic_mean(ptr_deltas)},
            plot={"type": "bars", "labels": list(suite),
                  "series": {"PTR": [d * 100 for d in ptr_deltas],
                             "LIBRA": [d * 100 for d in libra_deltas]},
                  "baseline": 0.0, "unit": "%"})
    return compute


def _fig14_compute(suite: Sequence[str]):
    def compute(summaries: SummaryMap) -> FigureData:
        ratios = []
        for name in suite:
            ptr = summaries[(name, "ptr")].raster_dram_accesses
            libra = summaries[(name, "libra")].raster_dram_accesses
            ratios.append(libra / ptr if ptr else 1.0)
        return FigureData(
            metrics={"mean_normalized_dram": arithmetic_mean(ratios),
                     "min_normalized_dram": min(ratios),
                     "max_normalized_dram": max(ratios)},
            plot={"type": "bars", "labels": list(suite),
                  "series": {"LIBRA / PTR": ratios},
                  "baseline": 1.0, "unit": "x"})
    return compute


def _fig15_compute(suite: Sequence[str]):
    def compute(summaries: SummaryMap) -> FigureData:
        ptr_savings, libra_savings = [], []
        for name in suite:
            base = summaries[(name, "baseline")].energy_j
            ptr_savings.append(
                1 - summaries[(name, "ptr")].energy_j / base)
            libra_savings.append(
                1 - summaries[(name, "libra")].energy_j / base)
        return FigureData(
            metrics={"ptr_energy_saving": arithmetic_mean(ptr_savings),
                     "libra_energy_saving":
                         arithmetic_mean(libra_savings)},
            plot={"type": "bars", "labels": list(suite),
                  "series": {"PTR": [s * 100 for s in ptr_savings],
                             "LIBRA": [s * 100 for s in libra_savings]},
                  "baseline": 0.0, "unit": "%"})
    return compute


def _fig17_compute(suite: Sequence[str]):
    def compute(summaries: SummaryMap) -> FigureData:
        ptr = _speedups(summaries, suite, "ptr")
        libra = _speedups(summaries, suite, "libra")
        ptr_mean = geometric_mean(list(ptr.values()))
        libra_mean = geometric_mean(list(libra.values()))
        worst = min(libra[n] / ptr[n] for n in suite)
        return FigureData(
            metrics={"ptr_speedup": ptr_mean,
                     "libra_speedup": libra_mean,
                     "scheduler_gain": libra_mean / ptr_mean,
                     "worst_bench_libra_vs_ptr": worst},
            plot={"type": "bars", "labels": list(suite),
                  "series": {"PTR": [ptr[n] for n in suite],
                             "LIBRA": [libra[n] for n in suite]},
                  "baseline": 1.0, "unit": "x"})
    return compute


def _table1_compute(summaries: SummaryMap) -> FigureData:
    from ..config import baseline_config, libra_config
    base, libra = baseline_config(), libra_config()
    return FigureData(metrics={
        "frequency_hz": float(base.frequency_hz),
        "tile_size": float(base.tile_size),
        "vertex_cache_bytes": float(base.vertex_cache.size_bytes),
        "tile_cache_bytes": float(base.tile_cache.size_bytes),
        "texture_cache_bytes": float(base.texture_cache.size_bytes),
        "l2_cache_bytes": float(base.l2_cache.size_bytes),
        "dram_row_hit_cycles": float(base.dram.row_hit_cycles),
        "dram_row_miss_cycles": float(base.dram.row_miss_cycles),
        "baseline_total_cores": float(base.total_cores),
        "libra_total_cores": float(libra.total_cores),
    })


def _table2_compute(summaries: SummaryMap) -> FigureData:
    from ..workloads import table2_rows
    rows = table2_rows()
    memory_count = sum(1 for r in rows if r["memory_intensive"])
    mean_mb = sum(r["texture_mb"] for r in rows) / len(rows)
    return FigureData(metrics={
        "suite_size": float(len(rows)),
        "memory_intensive_count": float(memory_count),
        "style_count": float(len({r["style"] for r in rows})),
        "mean_texture_footprint_mb": mean_mb,
    })


# -- the registry ------------------------------------------------------------

def figure_registry(quick: bool = False) -> Dict[str, FigureSpec]:
    """All reproduced figures, keyed by figure id, for one profile.

    Three shared sweep grids back the eleven figures: the full-suite
    baseline run (Figs. 1–2), the memory-intensive headline comparison
    (Figs. 7, 11–15) and the compute-intensive comparison (Fig. 17);
    Tables I–II are config-only.  The runner executes each grid once
    and every figure reads the same checkpointed artifacts.
    """
    if quick:
        width, height, frames = QUICK_WIDTH, QUICK_HEIGHT, QUICK_FRAMES
        baseline_suite = list(QUICK_BASELINE)
        memory_suite = list(QUICK_MEMORY)
        compute_suite = list(QUICK_COMPUTE)
        suffix = "-quick"
    else:
        from ..workloads import (benchmark_names, compute_intensive_names,
                                 memory_intensive_names)
        width, height, frames = FULL_WIDTH, FULL_HEIGHT, FULL_FRAMES
        baseline_suite = benchmark_names()
        memory_suite = memory_intensive_names()
        compute_suite = compute_intensive_names()
        suffix = ""

    baseline_spec = ExperimentSpec(
        name=f"figures-baseline{suffix}", benchmarks=baseline_suite,
        kinds=["baseline"], frames=frames, width=width, height=height,
        baseline_kind="baseline")
    memory_spec = ExperimentSpec(
        name=f"figures-headline-memory{suffix}", benchmarks=memory_suite,
        kinds=["baseline", "ptr", "libra"], frames=frames, width=width,
        height=height, baseline_kind="baseline")
    compute_spec = ExperimentSpec(
        name=f"figures-headline-compute{suffix}",
        benchmarks=compute_suite, kinds=["baseline", "ptr", "libra"],
        frames=frames, width=width, height=height,
        baseline_kind="baseline")

    figures: List[FigureSpec] = [
        FigureSpec(
            fid="fig1",
            title="Figure 1 — execution-time breakdown",
            paper_claim="≈88% of GPU time is spent in the raster "
                        "process.",
            commentary="Our synthetic scenes are vertex-light compared "
                       "to commercial games; the geometry share comes "
                       "mostly from per-draw-call overhead. The "
                       "qualitative claim (raster dominates for every "
                       "benchmark) holds.",
            spec=baseline_spec,
            compute=_fig1_compute(baseline_suite),
            expectations=(
                Expectation("mean_raster_fraction",
                            ("gt", X.FIG1_MIN_MEAN_RASTER_FRACTION),
                            paper=X.FIG1_PAPER_RASTER_FRACTION,
                            claim="raster dominates on average"),
                Expectation("min_raster_fraction",
                            ("gt", X.FIG1_MIN_RASTER_FRACTION),
                            claim="raster dominates for every "
                                  "benchmark"),
            )),
        FigureSpec(
            fid="fig2",
            title="Figure 2 — per-tile DRAM heatmap",
            paper_claim="Hot tiles cluster around the character, HUD "
                        "and detailed props; background tiles are "
                        "cold.",
            commentary="The regenerated heatmap shows the same "
                       "structure: a hot cluster share far above "
                       "uniform, and hot tiles overwhelmingly adjacent "
                       "to other hot tiles.",
            spec=baseline_spec,
            compute=_fig2_compute("SuS"),
            expectations=(
                Expectation("top10pct_tile_share_of_dram",
                            ("gt", X.FIG2_MIN_HOT_SHARE),
                            claim="hottest 10% of tiles carry well "
                                  "over 10% of the traffic"),
                Expectation("hot_tile_clustering",
                            ("gt", X.FIG2_MIN_CLUSTERING),
                            claim="most hot tiles touch another hot "
                                  "tile"),
            )),
        FigureSpec(
            fid="fig7",
            title="Figure 7 — DRAM requests per 5000-cycle interval "
                  "(CCS)",
            paper_claim="Within-frame DRAM demand is strongly bursty.",
            commentary="Clear burstiness on the baseline (peak ≫ "
                       "mean); LIBRA's temperature scheduling lowers "
                       "the coefficient of variation.",
            spec=memory_spec,
            compute=_fig7_compute("CCS"),
            expectations=(
                Expectation("baseline_peak_over_mean",
                            ("gt", X.FIG7_MIN_PEAK_OVER_MEAN),
                            claim="peaks well above the interval mean"),
                Expectation("baseline_interval_cov",
                            ("gt", X.FIG7_MIN_BASELINE_COV),
                            claim="high within-frame variation on the "
                                  "baseline"),
            )),
        FigureSpec(
            fid="fig11",
            title="Figure 11 — LIBRA speedup (memory-intensive)",
            paper_claim="PTR alone +13.2%; scheduler +7.7% more; "
                        "total +20.9%.",
            commentary="Shape reproduced: PTR alone gives a solid "
                       "speedup and the adaptive scheduler adds on top "
                       "for almost every benchmark. Our scheduler "
                       "margin is smaller than the paper's — our "
                       "interval-grain DRAM model understates how "
                       "catastrophic fine-grain congestion is on real "
                       "hardware.",
            spec=memory_spec,
            compute=_fig11_compute(memory_suite),
            expectations=(
                Expectation("ptr_speedup",
                            ("gt", X.FIG11_MIN_PTR_SPEEDUP),
                            paper=X.FIG11_PAPER_PTR_SPEEDUP,
                            claim="PTR alone beats the baseline"),
                Expectation("libra_speedup",
                            ("gt_key", "ptr_speedup"),
                            paper=X.FIG11_PAPER_LIBRA_SPEEDUP,
                            claim="the scheduler adds on top of PTR"),
                Expectation("libra_regressions",
                            ("le", float(X.FIG11_MAX_REGRESSIONS)),
                            claim="LIBRA helps (or is neutral) for "
                                  "almost every benchmark"),
            )),
        FigureSpec(
            fid="fig12",
            title="Figure 12 — texture access latency",
            paper_claim="PTR alone raises latency on several apps; "
                        "LIBRA cuts it by 13.5% on average (up to "
                        "40%).",
            commentary="The first half of the claim reproduces "
                       "cleanly: PTR alone increases texture latency. "
                       "LIBRA recovers part of that increase but not "
                       "the paper's full 13.5% average — our "
                       "interval-grain congestion model understates "
                       "the latency LIBRA saves at fine grain.",
            spec=memory_spec,
            compute=_fig12_compute(memory_suite),
            expectations=(
                Expectation(
                    "ptr_latency_regressions",
                    ("ge", float(X.FIG12_MIN_PTR_LATENCY_REGRESSIONS)),
                    quick_check=("ge", 1.0),
                    claim="PTR alone raises latency on several "
                          "benchmarks"),
                Expectation("mean_libra_latency_decrease",
                            ("gt_key", "mean_ptr_latency_decrease"),
                            paper=X.FIG12_PAPER_LIBRA_LATENCY_DECREASE,
                            claim="LIBRA recovers latency versus PTR "
                                  "alone"),
            )),
        FigureSpec(
            fid="fig13",
            title="Figure 13 — texture cache hit ratio",
            paper_claim="LIBRA raises the overall texture hit ratio "
                        "(avg +10.6%).",
            commentary="LIBRA preserves the hit ratio relative to PTR. "
                       "The paper's +10.6% gain over the *baseline* "
                       "does not reproduce: in our model the "
                       "baseline's aggregated L1 is already "
                       "replication-free, so there is less for "
                       "supertiles to win back.",
            spec=memory_spec,
            compute=_fig13_compute(memory_suite),
            expectations=(
                Expectation("mean_libra_hit_ratio_change",
                            ("ge_key", "mean_ptr_hit_ratio_change",
                             1.0, -X.FIG13_PTR_TOLERANCE),
                            paper=X.FIG13_PAPER_LIBRA_HIT_GAIN,
                            claim="the supertile mechanism does not "
                                  "lose texture locality vs PTR"),
            )),
        FigureSpec(
            fid="fig14",
            title="Figure 14 — DRAM accesses, LIBRA vs PTR",
            paper_claim="No significant change in access count "
                        "(balance, not volume).",
            commentary="Reproduced: the normalized access count stays "
                       "near 1.0 for every benchmark.",
            spec=memory_spec,
            compute=_fig14_compute(memory_suite),
            expectations=(
                Expectation("mean_normalized_dram",
                            ("range",) + X.FIG14_MEAN_BAND,
                            paper=X.FIG14_PAPER_NORMALIZED_DRAM,
                            claim="mean access count stays near 1.0"),
                Expectation("min_normalized_dram",
                            ("gt", X.FIG14_PER_BENCH_BAND[0]),
                            claim="no benchmark's traffic collapses"),
                Expectation("max_normalized_dram",
                            ("lt", X.FIG14_PER_BENCH_BAND[1]),
                            claim="no benchmark's traffic inflates"),
            )),
        FigureSpec(
            fid="fig15",
            title="Figure 15 — total GPU energy",
            paper_claim="PTR saves 5.5%; LIBRA 9.2% total.",
            commentary="Reproduced in shape: both save energy (mostly "
                       "static energy from shorter execution), LIBRA "
                       "at least as much as PTR.",
            spec=memory_spec,
            compute=_fig15_compute(memory_suite),
            expectations=(
                Expectation("ptr_energy_saving", ("gt", 0.0),
                            paper=X.FIG15_PAPER_PTR_SAVING,
                            claim="PTR alone saves energy"),
                Expectation("libra_energy_saving",
                            ("ge_key", "ptr_energy_saving",
                             1.0, -X.FIG15_PTR_TOLERANCE),
                            paper=X.FIG15_PAPER_LIBRA_SAVING,
                            claim="LIBRA saves at least as much as "
                                  "PTR"),
            )),
        FigureSpec(
            fid="fig17",
            title="Figure 17 — compute-intensive apps",
            paper_claim="PTR +9.9%, scheduler only +1.7% more; never "
                        "harmful.",
            commentary="Reproduced: the adaptive controller keeps "
                       "Z-order on high-hit-ratio apps, so LIBRA == "
                       "PTR within noise.",
            spec=compute_spec,
            compute=_fig17_compute(compute_suite),
            expectations=(
                Expectation("ptr_speedup",
                            ("gt", X.FIG17_MIN_PTR_SPEEDUP),
                            paper=X.FIG17_PAPER_PTR_SPEEDUP,
                            claim="PTR helps compute-bound apps"),
                Expectation("libra_speedup",
                            ("ge_key", "ptr_speedup",
                             X.FIG17_MEAN_TOLERANCE),
                            paper=X.FIG17_PAPER_LIBRA_SPEEDUP,
                            claim="the scheduler never harms overall"),
                Expectation("scheduler_gain",
                            ("lt", X.FIG17_MAX_SCHEDULER_GAIN),
                            paper=X.FIG17_PAPER_SCHEDULER_GAIN,
                            claim="the scheduler's extra contribution "
                                  "stays small"),
                Expectation("worst_bench_libra_vs_ptr",
                            ("ge", X.FIG17_PER_BENCH_TOLERANCE),
                            claim="no single benchmark is harmed"),
            )),
        FigureSpec(
            fid="table1",
            title="Table I — simulation parameters",
            paper_claim="See paper Table I.",
            commentary="All cache/DRAM/organization parameters match "
                       "Table I exactly (checked by assertions).",
            spec=None,
            compute=_table1_compute,
            expectations=(
                Expectation("frequency_hz",
                            ("eq", float(X.TABLE1_FREQUENCY_HZ)),
                            paper=float(X.TABLE1_FREQUENCY_HZ),
                            claim="800 MHz GPU clock"),
                Expectation("tile_size",
                            ("eq", float(X.TABLE1_TILE_SIZE)),
                            paper=float(X.TABLE1_TILE_SIZE),
                            claim="32x32 px tiles"),
                Expectation("texture_cache_bytes",
                            ("eq", float(X.TABLE1_TEXTURE_CACHE_BYTES)),
                            paper=float(X.TABLE1_TEXTURE_CACHE_BYTES),
                            claim="32KB texture L1 per core"),
                Expectation("l2_cache_bytes",
                            ("eq", float(X.TABLE1_L2_CACHE_BYTES)),
                            paper=float(X.TABLE1_L2_CACHE_BYTES),
                            claim="2MB shared L2"),
                Expectation("dram_row_hit_cycles",
                            ("eq", float(X.TABLE1_DRAM_ROW_HIT_CYCLES)),
                            paper=float(X.TABLE1_DRAM_ROW_HIT_CYCLES),
                            claim="50-cycle DRAM row hit"),
                Expectation("baseline_total_cores",
                            ("eq", float(X.TABLE1_TOTAL_CORES)),
                            paper=float(X.TABLE1_TOTAL_CORES),
                            claim="equal total core count across "
                                  "variants"),
                Expectation("libra_total_cores",
                            ("eq_key", "baseline_total_cores"),
                            claim="LIBRA uses no extra cores"),
            )),
        FigureSpec(
            fid="table2",
            title="Table II — benchmark suite",
            paper_claim="32 games, 2D/2.5D/3D, >4MB average per-frame "
                        "footprint.",
            commentary="Reconstruction: 16 codes from the paper text "
                       "plus 16 synthetic additions; the 16/16 "
                       "memory/compute split is enforced by design.",
            spec=None,
            compute=_table2_compute,
            expectations=(
                Expectation("suite_size",
                            ("eq", float(X.TABLE2_SUITE_SIZE)),
                            paper=float(X.TABLE2_SUITE_SIZE),
                            claim="32 benchmarks"),
                Expectation("memory_intensive_count",
                            ("eq",
                             float(X.TABLE2_MEMORY_INTENSIVE_COUNT)),
                            paper=float(
                                X.TABLE2_MEMORY_INTENSIVE_COUNT),
                            claim="16/16 memory/compute split"),
                Expectation("style_count", ("eq", 3.0),
                            claim="2D, 2.5D and 3D styles all "
                                  "represented"),
                Expectation("mean_texture_footprint_mb",
                            ("gt", X.TABLE2_MIN_MEAN_FOOTPRINT_MB),
                            paper=X.TABLE2_MIN_MEAN_FOOTPRINT_MB,
                            claim=">4MB average texture footprint"),
            )),
    ]
    return {f.fid: f for f in figures}


def figure_ids(quick: bool = False) -> List[str]:
    """All registered figure ids, in registry order."""
    return list(figure_registry(quick))
