"""Execute the figure registry through the checkpointed sweep engine.

The runner is deliberately thin glue: it dedupes the registry's shared
:class:`~repro.experiments.spec.ExperimentSpec` grids, executes each
one **once** through :func:`~repro.experiments.run_sweep` (so SIGKILL
resume, supervision and ``--chaos`` come for free and a re-run against
the same store serves every completed point from its checkpoint),
pivots the checkpointed summaries for the figures' compute functions,
evaluates every shape claim, and packs the verdicts into a
:class:`FiguresReport` with full provenance — the object both the HTML
dashboard and the ``EXPERIMENTS.md`` renderer consume, and the source
of the machine-readable ``figures_manifest.json``.
"""

from __future__ import annotations

import logging
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigValidationError
from ..experiments import SpeedupMatrix, SweepResult, run_sweep, \
    speedup_matrix
from .registry import (Expectation, FigureSpec, describe_check,
                       evaluate_check, figure_registry)

log = logging.getLogger(__name__)

#: figures_manifest.json schema version; bump on breaking layout change.
MANIFEST_SCHEMA = 1

#: Default artifact-store root for figure sweeps (sibling of the
#: ``repro sweep`` default so the two never collide).
DEFAULT_STORE_ROOT = ".repro_figures"


@dataclass
class ExpectationResult:
    """One evaluated shape claim."""

    key: str
    measured: float
    passed: bool
    check: str
    claim: str = ""
    paper: Optional[float] = None
    #: measured - paper when the paper reports a value, else None.
    delta: Optional[float] = None
    #: True when ``--seed-regression`` inverted this verdict.
    seeded: bool = False

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"key": self.key, "measured": self.measured,
                             "passed": self.passed, "check": self.check,
                             "claim": self.claim}
        if self.paper is not None:
            d["paper"] = self.paper
            d["delta"] = self.delta
        if self.seeded:
            d["seeded"] = True
        return d


@dataclass
class FigureOutcome:
    """Everything one figure produced: verdicts, metrics, provenance."""

    fid: str
    title: str
    paper_claim: str
    commentary: str
    #: ``pass`` (every shape claim holds), ``fail`` (>=1 claim broken),
    #: ``partial`` (the backing sweep has holes, claims not evaluable)
    #: or ``error`` (compute raised on a complete sweep).
    status: str
    expectations: List[ExpectationResult] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)
    plot: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: Backing sweep provenance (all empty/zero for config-only tables).
    spec_name: Optional[str] = None
    spec_fingerprint: Optional[str] = None
    store: Optional[str] = None
    points_total: int = 0
    points_resumed: int = 0
    points_executed: int = 0
    points_failed: int = 0
    points_degraded: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "pass"

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "id": self.fid, "title": self.title, "status": self.status,
            "paper_claim": self.paper_claim,
            "metrics": dict(self.metrics),
            "expectations": [e.to_dict() for e in self.expectations],
        }
        if self.error:
            d["error"] = self.error
        if self.spec_name:
            d["sweep"] = {
                "spec": self.spec_name,
                "fingerprint": self.spec_fingerprint,
                "store": self.store,
                "points": {"total": self.points_total,
                           "resumed": self.points_resumed,
                           "executed": self.points_executed,
                           "failed": self.points_failed,
                           "degraded": self.points_degraded},
            }
        return d


@dataclass
class FiguresReport:
    """The full pipeline result: per-figure outcomes + run provenance."""

    figures: List[FigureOutcome]
    quick: bool = False
    git_sha: Optional[str] = None
    generated: str = ""
    store_root: str = ""
    #: Sweep results keyed by spec name — kept for the renderers
    #: (matrices, telemetry, Fig. 7 series); not serialized.
    sweeps: Dict[str, SweepResult] = field(default_factory=dict)

    @property
    def passed(self) -> List[FigureOutcome]:
        return [f for f in self.figures if f.status == "pass"]

    @property
    def failed(self) -> List[FigureOutcome]:
        return [f for f in self.figures if f.status != "pass"]

    @property
    def exit_code(self) -> int:
        """The CLI/CI contract: 0 all shapes hold, 1 any regression."""
        return 0 if not self.failed else 1

    def matrices(self) -> Dict[str, SpeedupMatrix]:
        """Speedup matrices for every multi-kind backing sweep."""
        out: Dict[str, SpeedupMatrix] = {}
        for name, result in self.sweeps.items():
            if len(result.spec.kinds) > 1:
                out[name] = speedup_matrix(result)
        return out

    def to_manifest(self) -> Dict[str, Any]:
        """The machine-readable ``figures_manifest.json`` payload."""
        counts = {"pass": 0, "fail": 0, "partial": 0, "error": 0}
        for f in self.figures:
            counts[f.status] = counts.get(f.status, 0) + 1
        return {
            "schema": MANIFEST_SCHEMA,
            "generated": self.generated,
            "git_sha": self.git_sha,
            "quick": self.quick,
            "store_root": self.store_root,
            "exit_code": self.exit_code,
            "counts": counts,
            "figures": [f.to_dict() for f in self.figures],
        }


def _git_sha() -> Optional[str]:
    """Current commit, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def select_figures(registry: Dict[str, FigureSpec],
                   only: Optional[Sequence[str]]) -> List[FigureSpec]:
    """Resolve ``--only`` ids against the registry (usage errors raise)."""
    if not only:
        return list(registry.values())
    unknown = [fid for fid in only if fid not in registry]
    if unknown:
        raise ConfigValidationError(
            f"unknown figure id(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(registry)}")
    # Registry order, not --only order: renderers want stable layout.
    wanted = set(only)
    return [f for f in registry.values() if f.fid in wanted]


def _evaluate(figure: FigureSpec, metrics: Dict[str, float],
              quick: bool, seeded: bool) -> List[ExpectationResult]:
    results = []
    for exp in figure.expectations:
        check = exp.active_check(quick)
        passed = evaluate_check(check, exp.key, metrics)
        if seeded:
            passed = False
        measured = metrics[exp.key]
        results.append(ExpectationResult(
            key=exp.key, measured=measured, passed=passed,
            check=describe_check(check), claim=exp.claim,
            paper=exp.paper,
            delta=(measured - exp.paper
                   if exp.paper is not None else None),
            seeded=seeded))
    return results


def run_figures(only: Optional[Sequence[str]] = None,
                quick: bool = False,
                store_root: Optional[str] = None,
                workers: Optional[int] = None,
                timeout_s: Optional[float] = None,
                retries: Optional[int] = None,
                seed_regression: Optional[Sequence[str]] = None,
                ) -> FiguresReport:
    """Run (or resume) the registry and evaluate every shape claim.

    ``seed_regression`` names figure ids whose verdicts are inverted to
    *fail* after evaluation — a testing hook that exercises the whole
    regression path (dashboard rendering, manifest, exit code) without
    corrupting any artifact.
    """
    registry = figure_registry(quick=quick)
    figures = select_figures(registry, only)
    seeded = set(seed_regression or ())
    root = Path(store_root or DEFAULT_STORE_ROOT)

    # One sweep per unique spec, shared by every figure that reads it.
    specs = {}
    for figure in figures:
        if figure.spec is not None and figure.spec.name not in specs:
            specs[figure.spec.name] = figure.spec
    sweeps: Dict[str, SweepResult] = {}
    for name, spec in specs.items():
        log.info("figures: sweeping %s (%d points)", name,
                 spec.num_points)
        sweeps[name] = run_sweep(
            spec, store_root=root / name, workers=workers,
            timeout_s=timeout_s, retries=retries)

    outcomes = []
    for figure in figures:
        outcomes.append(
            _evaluate_figure(figure, sweeps, quick,
                             figure.fid in seeded))
    return FiguresReport(
        figures=outcomes, quick=quick, git_sha=_git_sha(),
        generated=datetime.now(timezone.utc)
        .strftime("%Y-%m-%d %H:%M UTC"),
        store_root=str(root), sweeps=sweeps)


def record_perf_analysis(quick: bool = False,
                         benchmark: str = "CCS",
                         kind: str = "baseline") -> str:
    """One telemetry-recorded run fed through ``perf.build_report``.

    The sweep checkpoints keep merged telemetry *counters* but not the
    event stream the perf analyses need (DRAM interval samples, tile
    retires, FSM decisions), so the dashboard records one short run of
    the Fig. 7 benchmark at the active profile's geometry.
    """
    from ..config import GPUConfig
    from ..gpu import GPUSimulator
    from ..perf import build_report
    from ..telemetry import HUB, RecordingSink, telemetry_session
    from ..workloads import TraceBuilder, make_scene_builder
    from .registry import (FULL_FRAMES, FULL_HEIGHT, FULL_WIDTH,
                           QUICK_FRAMES, QUICK_HEIGHT, QUICK_WIDTH)
    if quick:
        width, height, frames = QUICK_WIDTH, QUICK_HEIGHT, QUICK_FRAMES
    else:
        width, height, frames = FULL_WIDTH, FULL_HEIGHT, FULL_FRAMES
    builder = make_scene_builder(benchmark, width, height)
    traces = TraceBuilder(builder, width, height, 32).build_many(frames)
    config, scheduler = GPUConfig.build(kind, screen_width=width,
                                        screen_height=height)
    sim = GPUSimulator(config, scheduler=scheduler, name=kind)
    sink = RecordingSink()
    with telemetry_session(sink):
        sim.run(traces)
        metrics = HUB.metrics.snapshot()
    return build_report(
        sink.events, metrics=metrics,
        title=f"{benchmark} on {kind} ({frames} frames, "
              f"{width}x{height})")


def _evaluate_figure(figure: FigureSpec,
                     sweeps: Dict[str, SweepResult],
                     quick: bool, seeded: bool) -> FigureOutcome:
    result: Optional[SweepResult] = None
    pivot: Dict[Tuple[str, str], Any] = {}
    outcome = FigureOutcome(
        fid=figure.fid, title=figure.title, status="error",
        paper_claim=figure.paper_claim, commentary=figure.commentary)
    if figure.spec is not None:
        result = sweeps[figure.spec.name]
        provenance = result.provenance()
        outcome.spec_name = figure.spec.name
        outcome.spec_fingerprint = figure.spec.fingerprint()
        outcome.store = str(result.store_root)
        outcome.points_total = len(result.outcomes)
        outcome.points_resumed = len(result.resumed)
        outcome.points_executed = (len(result.completed)
                                   - len(result.resumed))
        outcome.points_failed = (len(result.failed)
                                 + len(result.tripped)
                                 + len(result.skipped))
        outcome.points_degraded = sum(
            1 for p in provenance.values() if p == "degraded")
        pivot = {(o.point.benchmark, o.point.kind): o.summary
                 for o in result.completed}
    try:
        data = figure.compute(pivot)
        outcome.metrics = data.metrics
        outcome.plot = data.plot
        outcome.expectations = _evaluate(figure, data.metrics, quick,
                                         seeded)
        outcome.status = ("pass" if all(e.passed
                                        for e in outcome.expectations)
                          else "fail")
    except ConfigValidationError:
        raise  # registry bug (malformed check) — not a figure verdict
    except Exception as exc:  # missing points, compute errors
        if result is not None and result.partial:
            outcome.status = "partial"
            outcome.error = (f"backing sweep incomplete "
                             f"({len(result.completed)}/"
                             f"{len(result.outcomes)} points): {exc}")
        else:
            outcome.status = "error"
            outcome.error = f"{type(exc).__name__}: {exc}"
        log.warning("figures: %s not evaluable: %s", figure.fid,
                    outcome.error)
    return outcome
