"""Markdown rendering for the reproduction evidence.

One home for everything that turns measured results into committed
markdown, shared by the ``repro figures --format md`` pipeline and the
legacy ``scripts/make_experiments_md.py`` wrapper:

* :func:`render_experiments_md` — ``EXPERIMENTS.md`` from a
  :class:`~repro.figures.runner.FiguresReport` (the registry-backed
  figures, their delta tables and shape verdicts, the speedup matrices
  and merged telemetry of the backing sweeps, plus the bench-only
  sections the registry does not cover yet);
* :func:`parse_results` / :func:`render` — the legacy bench-log flow
  (``RESULT <key>: measured=<v> [paper=<v>]`` lines from
  ``pytest benchmarks/ -s``);
* :func:`render_sweep` — one section for a completed ``repro sweep``
  artifact store, read from its checkpoints (no re-simulation).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

RESULT_RE = re.compile(
    r"RESULT (?P<key>[\w.%+-]+): measured=(?P<measured>[-\w.%]+)"
    r"(?: paper=(?P<paper>[-\w.%]+))?")

#: (section title, paper claim, result-key prefix, commentary) for the
#: bench-log flow.  The sections whose prefix appears in
#: :data:`REGISTRY_PREFIXES` are also covered by the ``repro figures``
#: registry; the rest are asserted by ``pytest benchmarks/`` only.
SECTIONS = [
    ("Figure 1 — execution-time breakdown",
     "≈88% of GPU time is spent in the raster process.",
     "fig1.",
     "Our synthetic scenes are vertex-light compared to commercial games; "
     "the geometry share comes mostly from per-draw-call overhead. The "
     "qualitative claim (raster dominates for every benchmark) holds."),
    ("Figure 2 — per-tile DRAM heatmap",
     "Hot tiles cluster around the character, HUD and detailed props; "
     "background tiles are cold.",
     "fig2.",
     "The regenerated heatmap shows the same structure: a hot cluster "
     "share far above uniform, and hot tiles overwhelmingly adjacent to "
     "other hot tiles."),
    ("Figure 4 — doubling cores in one Raster Unit",
     "16 of 32 benchmarks gain <1.50x from 4→8 cores; some <1.10x.",
     "fig4.",
     "Reproduced directionally: every speedup is far from the ideal 2x, "
     "and the memory-bound half scales worst. Our per-tile parallelism "
     "model is milder than the paper's real games, so fewer benchmarks "
     "fall below 1.5x."),
    ("Figure 6 — memory intensiveness vs PTR speedup",
     "Time-on-memory and PTR speedup are strongly anticorrelated; 16/32 "
     "benchmarks spend ≥25% of time on memory.",
     "fig6.",
     "The anticorrelation reproduces with the same ideal-L1 methodology. "
     "Our suite's memory fractions span 0–0.4."),
    ("Figure 7 — DRAM requests per 5000-cycle interval (CCS)",
     "Within-frame DRAM demand is strongly bursty.",
     "fig7.",
     "Clear burstiness on the baseline (peak ≫ mean); LIBRA's temperature "
     "scheduling lowers the coefficient of variation."),
    ("Figure 8 — frame-to-frame coherence",
     ">80% of tiles change their DRAM accesses by <20% between frames.",
     "fig8.",
     "The procedural workloads were built to have this property and the "
     "measured CDF confirms it — the temperature predictor's premise."),
    ("Table I — simulation parameters", "See paper Table I.", "table1.",
     "All cache/DRAM/organization parameters match Table I exactly "
     "(checked by assertions)."),
    ("Table II — benchmark suite",
     "32 games, 2D/2.5D/3D, >4MB average per-frame footprint.",
     "table2.",
     "Reconstruction: 16 codes from the paper text plus 16 synthetic "
     "additions; the 16/16 memory/compute split is enforced by design "
     "and verified by the Figure 6 measurement."),
    ("Figure 11 — LIBRA speedup (memory-intensive)",
     "PTR alone +13.2%; scheduler +7.7% more; total +20.9%.",
     "fig11.",
     "Shape reproduced: PTR alone gives a solid speedup and the adaptive "
     "scheduler adds on top for almost every benchmark. Our scheduler "
     "margin is smaller than the paper's — our interval-grain DRAM model "
     "understates how catastrophic fine-grain congestion is on real "
     "hardware."),
    ("Figure 12 — texture access latency",
     "PTR alone raises latency on several apps; LIBRA cuts it by 13.5% "
     "on average (up to 40%).",
     "fig12.",
     "The first half of the claim reproduces cleanly: PTR alone "
     "increases texture latency. LIBRA recovers part of that increase "
     "(and up to 12% on individual benchmarks like GrT/SuS) but not the "
     "paper's full 13.5% average — our interval-grain congestion model "
     "understates the latency LIBRA saves at fine grain."),
    ("Figure 13 — texture cache hit ratio",
     "LIBRA raises the overall texture hit ratio (avg +10.6%).",
     "fig13.",
     "LIBRA preserves the hit ratio relative to PTR (losing less than "
     "PTR does against the 8-core baseline, whose single larger L1 "
     "naturally hits more). The paper's +10.6% gain over the *baseline* "
     "does not reproduce: in our model the baseline's aggregated L1 is "
     "already replication-free, so there is less for supertiles to win "
     "back."),
    ("Figure 14 — DRAM accesses, LIBRA vs PTR",
     "No significant change in access count (balance, not volume).",
     "fig14.",
     "Reproduced: the normalized access count stays near 1.0 for every "
     "benchmark."),
    ("Figure 15 — total GPU energy",
     "PTR saves 5.5%; LIBRA 9.2% total.",
     "fig15.",
     "Reproduced in shape: both save energy (mostly static energy from "
     "shorter execution), LIBRA at least as much as PTR."),
    ("Figure 16 — static supertiles vs dynamic",
     "Static 2/4/8/16 supertiles: +0.6/2.1/2.8/3.2% over PTR; LIBRA ~+7%.",
     "fig16.",
     "LIBRA beats every static size on average; in our model large "
     "static supertiles are roughly neutral because cross-unit L2 "
     "sharing offsets their intra-unit locality gain."),
    ("Figure 17 — compute-intensive apps",
     "PTR +9.9%, scheduler only +1.7% more; never harmful.",
     "fig17.",
     "Reproduced: the adaptive controller keeps Z-order on "
     "high-hit-ratio apps, so LIBRA == PTR within noise."),
    ("Figure 18 — scaling Raster Units",
     "2/3/4 units: +20.9/31.3/28.8% over equal-core baselines.",
     "fig18.",
     "More units help and returns diminish, matching the paper's trend."),
    ("Figure 19 — threshold sensitivity",
     "Best thresholds: 0.25% (resize), 3% (ordering); curves are flat.",
     "fig19",
     "Reproduced: all threshold settings land within a narrow band, so "
     "the mechanism is robust to its tuning — same conclusion as the "
     "paper."),
    ("Section III-E — hardware overhead",
     "510×64-bit stats buffer (≈4KB, <0.2% of L2); ranking 13761 cycles, "
     "hidden under geometry.",
     "hw.",
     "All three numbers match the paper exactly (they are arithmetic "
     "properties of the design, independent of workloads)."),
    ("Figure 9 — tile vs supertile heat (HCR)",
     "Hotspots cover clusters of neighboring tiles; supertile "
     "aggregation preserves the heat structure.",
     "fig9.",
     "Reproduced: supertile heat keeps a strong hot/median contrast and "
     "correlates tightly with tile-level heat."),
    ("Ablations (beyond the paper)",
     "—",
     "ablation.",
     "Extra studies this reproduction adds: the scheduling design space "
     "(Hilbert / reverse-frame / random / oracle-predictor) and LIBRA vs "
     "PFR-style inter-frame parallelism. Notable honest findings: the "
     "adaptive LIBRA matches or beats the perfect-predictor oracle "
     "(frame coherence costs nothing), and on this model both "
     "reverse-frame traversal (cross-frame L2 reuse) and PFR "
     "(inter-frame parallelism) are strong competitors — at the price, "
     "for PFR, of a full frame of added latency that a speedup metric "
     "does not show."),
    ("Model robustness (beyond the paper)",
     "—",
     "robust.",
     "The LIBRA >= PTR > baseline ordering survives halving/doubling the "
     "coupling interval and enabling AFBC-style FB compression."),
]

#: Result-key prefixes whose figures the ``repro figures`` registry
#: reproduces from checkpointed sweeps (mapped to their figure ids).
REGISTRY_PREFIXES = {
    "fig1.": "fig1", "fig2.": "fig2", "fig7.": "fig7",
    "fig11.": "fig11", "fig12.": "fig12", "fig13.": "fig13",
    "fig14.": "fig14", "fig15.": "fig15", "fig17.": "fig17",
    "table1.": "table1", "table2.": "table2",
}

HEADER = """# EXPERIMENTS — paper vs. measured

Generated from a benchmark-suite log
(`pytest benchmarks/ --benchmark-only -q -s | tee bench.log`, then
`python scripts/make_experiments_md.py bench.log`). The maintained
one-command flow is `repro figures --format md`, which regenerates this
file from checkpointed sweep artifacts instead of a log — see
docs/figures.md.

Absolute cycle counts are not comparable to the paper (different
simulator, synthetic workloads, reduced 960x512 resolution — see
DESIGN.md); what is compared is the *shape* of each result: orderings,
signs, splits, and rough magnitudes. Every row below is also asserted by
the corresponding bench, so `pytest benchmarks/` failing means a shape
regressed.
"""


def md_table(headers: Sequence[str],
             rows: Iterable[Sequence[str]]) -> List[str]:
    """A GitHub-markdown table as a list of lines."""
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines += ["| " + " | ".join(str(c) for c in row) + " |"
              for row in rows]
    return lines


def format_value(value) -> str:
    """Compact numeric formatting for delta tables (4 sig figs)."""
    if value is None:
        return "—"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


# -- legacy bench-log flow ---------------------------------------------------

def parse_results(path: str) -> Dict[str, Tuple[str, Optional[str]]]:
    """``RESULT`` lines of a bench log as {key: (measured, paper)}."""
    results: Dict[str, Tuple[str, Optional[str]]] = {}
    with open(path) as handle:
        for line in handle:
            match = RESULT_RE.search(line)
            if match:
                results[match.group("key")] = (match.group("measured"),
                                               match.group("paper"))
    return results


def render(results: Dict[str, Tuple[str, Optional[str]]]) -> str:
    """EXPERIMENTS.md text from parsed bench-log results."""
    out = [HEADER]
    used = set()
    for title, claim, prefix, commentary in SECTIONS:
        rows = {k: v for k, v in results.items() if k.startswith(prefix)}
        used.update(rows)
        out.append(f"\n## {title}\n")
        out.append(f"**Paper:** {claim}\n")
        if rows:
            out += md_table(
                ("metric", "measured", "paper"),
                [(key[len(prefix):].lstrip("."), measured, paper or "—")
                 for key, (measured, paper) in sorted(rows.items())])
            out.append("")
        else:
            out.append("*(no RESULT lines found in the log for this "
                       "experiment)*\n")
        out.append(f"{commentary}\n")
    leftovers = {k: v for k, v in results.items() if k not in used}
    if leftovers:
        out.append("\n## Other recorded results\n")
        out += md_table(
            ("metric", "measured", "paper"),
            [(key, measured, paper or "—")
             for key, (measured, paper) in sorted(leftovers.items())])
        out.append("")
    return "\n".join(out)


def render_sweep(store_root: str) -> str:
    """One markdown section for a completed ``repro sweep`` store.

    Reads the manifest and the per-point checkpoints (through the
    checksum layer — corrupt artifacts are reported as missing cells,
    never rendered) and pivots them with the same aggregation ``repro
    sweep`` prints, so the committed table equals the CLI output.
    """
    from ..experiments import (ArtifactStore, ExperimentSpec,
                               PointOutcome, SweepResult, speedup_matrix)
    store = ArtifactStore(store_root)
    manifest = store.read_manifest()
    if manifest is None:
        raise SystemExit(f"{store_root}: not a sweep artifact store "
                         "(no readable manifest.json)")
    spec = ExperimentSpec.from_dict(manifest["spec"])
    points = spec.expand()
    done = store.load_completed(points)
    result = SweepResult(spec=spec, store_root=Path(store_root))
    for point in points:
        summary = done.get(point.point_id)
        if summary is None:
            result.outcomes.append(PointOutcome(
                point=point, status="skipped", error="no artifact",
                error_type="missing"))
        else:
            result.outcomes.append(PointOutcome(
                point=point, status="ok", summary=summary, resumed=True))
    matrix = speedup_matrix(result)
    out = [f"\n## Sweep: {spec.name}\n",
           f"Grid: benchmarks={', '.join(spec.benchmarks)}; "
           f"kinds={', '.join(spec.kinds)}; "
           + "; ".join(f"{a}={v}" for a, v in spec.axes.items())
           + f"; frames={spec.frames} at {spec.width}x{spec.height} "
           f"({len(done)}/{len(points)} points on disk in "
           f"`{store_root}`).\n",
           matrix.to_markdown(), ""]
    out += telemetry_section(matrix.telemetry)
    return "\n".join(out)


def telemetry_section(telemetry: Optional[Dict[str, float]],
                      heading: str = "### Merged telemetry (summed "
                                     "across all completed points)",
                      ) -> List[str]:
    """Markdown lines for a merged-telemetry table ([] when absent)."""
    if not telemetry:
        return []
    lines = [f"\n{heading}\n"]
    lines += md_table(
        ("metric", "value"),
        [(f"`{name}`", f"{value:,g}")
         for name, value in sorted(telemetry.items())
         if ".le_" not in name])
    lines.append("")
    return lines


# -- registry-backed flow (repro figures --format md) ------------------------

STATUS_BADGE = {"pass": "✅ PASS", "fail": "❌ FAIL",
                "partial": "⚠️ PARTIAL", "error": "⚠️ ERROR"}


def verdict_lines(outcome) -> List[str]:
    """The shape-claim checklist of one FigureOutcome."""
    lines = []
    for exp in outcome.expectations:
        mark = "✅" if exp.passed else "❌"
        claim = exp.claim or exp.key
        detail = f"`{exp.key}` = {format_value(exp.measured)}, " \
                 f"expected {exp.check}"
        seeded = " *(seeded regression)*" if exp.seeded else ""
        lines.append(f"- {mark} {claim} ({detail}){seeded}")
    return lines


def render_experiments_md(report) -> str:
    """EXPERIMENTS.md from a :class:`~repro.figures.runner.FiguresReport`.

    Registry-backed figures render with measured-vs-paper delta tables
    and per-claim verdicts straight from the checkpointed sweeps; the
    bench-only sections (Figs. 4/6/8/9/16/18/19, hardware overhead,
    ablations, robustness) keep their claims and commentary with a
    pointer to the asserting bench, so no evidence is silently dropped.
    """
    profile = "quick profile" if report.quick else "full profile"
    sha = (report.git_sha or "unknown")[:12]
    out = [f"""# EXPERIMENTS — paper vs. measured

Generated by `repro figures --format md` ({profile}, commit `{sha}`,
{report.generated}) from checkpointed sweep artifacts in
`{report.store_root}` — one command regenerates this file and the HTML
dashboard from the same figure registry, so they cannot drift (see
docs/figures.md).

Absolute cycle counts are not comparable to the paper (different
simulator, synthetic workloads, reduced resolution — see DESIGN.md);
what is compared is the *shape* of each result: orderings, signs,
splits, and rough magnitudes. Every shape claim below is evaluated by
`repro figures` (exit 1 on any regression) and the same constants are
asserted by `pytest benchmarks/`.
"""]
    covered = {}
    for outcome in report.figures:
        covered[outcome.fid] = outcome
        out.append(f"\n## {outcome.title}\n")
        out.append(f"**Paper:** {outcome.paper_claim}\n")
        out.append(f"**Shape verdict:** "
                   f"{STATUS_BADGE.get(outcome.status, outcome.status)}"
                   f"\n")
        if outcome.error:
            out.append(f"*{outcome.error}*\n")
        if outcome.metrics:
            paper = {e.key: e.paper for e in outcome.expectations
                     if e.paper is not None}
            out += md_table(
                ("metric", "measured", "paper", "delta"),
                [(key, format_value(value),
                  format_value(paper.get(key)),
                  format_value(value - paper[key]
                               if key in paper else None))
                 for key, value in outcome.metrics.items()])
            out.append("")
        if outcome.expectations:
            out += verdict_lines(outcome)
            out.append("")
        out.append(f"{outcome.commentary}\n")

    bench_only = [(title, claim, prefix, commentary)
                  for title, claim, prefix, commentary in SECTIONS
                  if REGISTRY_PREFIXES.get(prefix) not in covered]
    if bench_only:
        out.append("\n## Asserted by the benchmark suite "
                   "(not yet in the registry)\n")
        out.append("The following results are still asserted by "
                   "`pytest benchmarks/` and rendered from its log via "
                   "`scripts/make_experiments_md.py`; migrating them "
                   "into the figure registry is tracked in ROADMAP "
                   "open items.\n")
        for title, claim, prefix, commentary in bench_only:
            out.append(f"### {title}\n")
            if claim != "—":
                out.append(f"**Paper:** {claim}\n")
            out.append(f"{commentary}\n")

    matrices = report.matrices()
    for name, matrix in sorted(matrices.items()):
        out.append(f"\n## Sweep matrix: {name}\n")
        out.append(matrix.to_markdown())
        out.append("")
        out += telemetry_section(matrix.telemetry)
    return "\n".join(out)
