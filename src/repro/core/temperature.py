"""The temperature statistics buffer (Section III-E hardware model).

LIBRA's only storage overhead is a small on-chip buffer with one entry per
*base* supertile (2x2 tiles — at most 510 entries for a Full HD frame).
Each 64-bit entry packs:

* 16 bits — DRAM accesses observed in the supertile last frame,
* 24 bits — instructions executed,
* 15 bits — the computed accesses-per-instruction ratio (fixed point),
*  9 bits — the supertile ID used by the ranking network.

All counters saturate rather than wrap, as the hardware would.  Larger
supertile granularities are produced by aggregating base entries, matching
the paper: "the per-tile memory accesses and instruction count metrics of
the previous frame are first aggregated at the chosen supertile
granularity".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..tiling.supertile import SupertileGrid

TileCoord = Tuple[int, int]

#: Bit widths of one buffer entry (Section III-E).
ACCESS_BITS = 16
INSTRUCTION_BITS = 24
RATIO_BITS = 15
ID_BITS = 9

ACCESS_MAX = (1 << ACCESS_BITS) - 1
INSTRUCTION_MAX = (1 << INSTRUCTION_BITS) - 1
RATIO_MAX = (1 << RATIO_BITS) - 1
MAX_ENTRIES = 1 << ID_BITS

#: Fixed-point fractional bits of the accesses-per-instruction field.
RATIO_FRACTION_BITS = 10
RATIO_SCALE = 1 << RATIO_FRACTION_BITS

#: Base granularity of the buffer, in tiles per supertile side.
BASE_SUPERTILE = 2


def saturate(value: int, maximum: int) -> int:
    """Clamp a counter the way a saturating hardware counter would."""
    if value < 0:
        raise ValueError("counters never go negative")
    return min(value, maximum)


def fixed_point_ratio(accesses: int, instructions: int) -> int:
    """Accesses-per-instruction as the hardware's 15-bit fixed point."""
    if instructions <= 0:
        # No instructions but some accesses: treat as maximally hot.
        return RATIO_MAX if accesses > 0 else 0
    return saturate(int(accesses * RATIO_SCALE / instructions), RATIO_MAX)


@dataclass
class BufferEntry:
    """One 64-bit entry of the statistics buffer."""

    supertile_id: int
    accesses: int = 0
    instructions: int = 0

    @property
    def ratio_fixed(self) -> int:
        """The 15-bit fixed-point accesses-per-instruction field."""
        return fixed_point_ratio(self.accesses, self.instructions)

    @property
    def temperature(self) -> float:
        """The decoded accesses-per-instruction ratio."""
        return self.ratio_fixed / RATIO_SCALE


class TemperatureTable:
    """The per-frame statistics buffer, at base (2x2) granularity."""

    def __init__(self, tiles_x: int, tiles_y: int):
        self.base_grid = SupertileGrid(tiles_x, tiles_y, BASE_SUPERTILE)
        if self.base_grid.num_supertiles > MAX_ENTRIES:
            raise ValueError(
                f"frame needs {self.base_grid.num_supertiles} entries, "
                f"but the {ID_BITS}-bit supertile ID allows only "
                f"{MAX_ENTRIES}")
        self.entries: List[BufferEntry] = [
            BufferEntry(supertile_id=i)
            for i in range(self.base_grid.num_supertiles)]
        self.frames_recorded = 0

    @property
    def num_entries(self) -> int:
        """Number of base (2x2) supertile entries."""
        return len(self.entries)

    def storage_bits(self) -> int:
        """Total storage of the buffer (64 bits per entry)."""
        return self.num_entries * (ACCESS_BITS + INSTRUCTION_BITS
                                   + RATIO_BITS + ID_BITS)

    def update(self, per_tile_dram: Dict[TileCoord, int],
               per_tile_instructions: Dict[TileCoord, int]) -> None:
        """Overwrite the buffer with one frame's per-tile measurements."""
        accesses = [0] * self.num_entries
        instructions = [0] * self.num_entries
        for tile, count in per_tile_dram.items():
            accesses[self.base_grid.supertile_of(tile)] += count
        for tile, count in per_tile_instructions.items():
            instructions[self.base_grid.supertile_of(tile)] += count
        for entry, acc, inst in zip(self.entries, accesses, instructions):
            entry.accesses = saturate(acc, ACCESS_MAX)
            entry.instructions = saturate(inst, INSTRUCTION_MAX)
        self.frames_recorded += 1

    @property
    def has_data(self) -> bool:
        """True once at least one frame has been recorded."""
        return self.frames_recorded > 0

    def aggregate(self, size: int) -> Tuple[SupertileGrid, List[float]]:
        """Temperatures at a coarser supertile granularity.

        Returns the grid of ``size x size``-tile supertiles and one
        temperature value per supertile, computed from summed base-entry
        counters (ratios are recomputed after summation, as the hardware
        divider would).
        """
        if size % BASE_SUPERTILE and size != BASE_SUPERTILE:
            raise ValueError(
                f"supertile size must be a multiple of {BASE_SUPERTILE}")
        grid = SupertileGrid(self.base_grid.tiles_x, self.base_grid.tiles_y,
                             size)
        accesses = [0] * grid.num_supertiles
        instructions = [0] * grid.num_supertiles
        factor = size // BASE_SUPERTILE
        for entry in self.entries:
            bx, by = self.base_grid.supertile_coord(entry.supertile_id)
            sx, sy = bx // factor, by // factor
            sid = sy * grid.supertiles_x + sx
            accesses[sid] += entry.accesses
            instructions[sid] += entry.instructions
        temperatures = [
            fixed_point_ratio(acc, inst) / RATIO_SCALE
            for acc, inst in zip(accesses, instructions)]
        return grid, temperatures
