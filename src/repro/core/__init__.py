"""LIBRA core: temperature stats buffer, ranking, schedulers, adaptivity."""

from .adaptive import (FrameObservation, OrderSelector, SupertileResizer,
                       TEMPERATURE, Z_ORDER)
from .alternatives import (OracleTemperatureScheduler, RandomScheduler,
                           ReverseFrameScheduler, TraversalScheduler)
from .libra import LibraFrameLog, LibraScheduler
from .ranking import hides_under_geometry, rank_by_temperature, ranking_cycles
from .scheduler import (AffinityQueueDispenser, Dispenser, FrameFeedback,
                        HotColdDispenser, QueueDispenser, ScheduleDecision,
                        StaticSupertileScheduler, TemperatureScheduler,
                        TileScheduler, ZOrderScheduler,
                        supertile_batches_zorder, zorder_tile_batches)
from .temperature import (BufferEntry, TemperatureTable, fixed_point_ratio,
                          saturate)

__all__ = [
    "LibraScheduler",
    "LibraFrameLog",
    "TileScheduler",
    "ZOrderScheduler",
    "StaticSupertileScheduler",
    "TemperatureScheduler",
    "ScheduleDecision",
    "FrameFeedback",
    "Dispenser",
    "QueueDispenser",
    "AffinityQueueDispenser",
    "OracleTemperatureScheduler",
    "RandomScheduler",
    "ReverseFrameScheduler",
    "TraversalScheduler",
    "HotColdDispenser",
    "zorder_tile_batches",
    "supertile_batches_zorder",
    "TemperatureTable",
    "BufferEntry",
    "saturate",
    "fixed_point_ratio",
    "rank_by_temperature",
    "ranking_cycles",
    "hides_under_geometry",
    "OrderSelector",
    "SupertileResizer",
    "FrameObservation",
    "Z_ORDER",
    "TEMPERATURE",
]
