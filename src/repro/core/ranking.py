"""Supertile ranking and its hardware timing estimate (Section III-E).

The ranking itself is a sort by temperature (hottest first).  The paper's
hardware does it with a sequential compare-and-swap network costing
O(n log n) comparisons at 3 cycles each (two reads, one compare, up to two
writes, conservatively pipelined to 3 cycles per comparison); that latency
must hide entirely under the Geometry Pipeline, which this module lets
experiments verify.
"""

from __future__ import annotations

import math
from typing import List, Sequence

#: Cycles the hardware spends per compare-and-swap (paper's conservative
#: estimate: two reads, one comparison, two potential writes -> 3 cycles).
CYCLES_PER_COMPARISON = 3


def rank_by_temperature(temperatures: Sequence[float]) -> List[int]:
    """Supertile IDs ordered hottest -> coldest.

    Ties break by ID so the ranking is deterministic (and matches what a
    stable hardware sorting network produces).
    """
    return sorted(range(len(temperatures)),
                  key=lambda i: (-temperatures[i], i))


def ranking_cycles(n: int) -> int:
    """Upper-bound latency of ranking ``n`` entries in hardware.

    ``3 x n x log2(n)`` cycles; the paper's example: n = 510 gives
    4587 comparisons and 13761 cycles.
    """
    if n <= 1:
        return 0
    comparisons = int(n * math.log2(n))
    return CYCLES_PER_COMPARISON * comparisons


def hides_under_geometry(n: int, geometry_cycles: int) -> bool:
    """True when the ranking fits inside the Geometry phase's shadow."""
    return ranking_cycles(n) <= geometry_cycles
