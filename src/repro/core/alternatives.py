"""Alternative scheduling policies for ablation studies.

None of these are part of LIBRA; they bracket its design space:

* :class:`TraversalScheduler` — any plain traversal order (scanline,
  Hilbert, boustrophedon) from a shared queue.  Hilbert is the order
  DTexL (MICRO'22) uses for texture locality; comparing it against
  Z-order isolates the traversal-locality effect from the
  temperature-balancing effect.
* :class:`RandomScheduler` — supertiles in a seeded random order from a
  shared queue: destroys locality *and* balance; the lower bracket.
* :class:`OracleTemperatureScheduler` — temperature scheduling with a
  *perfect* predictor: it peeks at the current frame's workload
  (instructions and texture-line counts) instead of using last frame's
  measurements.  The gap between this and
  :class:`~repro.core.scheduler.TemperatureScheduler` measures how much
  the frame-to-frame-coherence prediction loses — the paper's bet is
  "almost nothing".
* :class:`ReverseFrameScheduler` — renders each frame in the reverse tile
  order of the previous frame (Boustrophedonic Frames, PACT'23, from the
  paper's related work): improves cross-frame L2 reuse, ignores balance.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..gpu.workload import FrameTrace
from ..tiling.orders import traversal_order
from ..tiling.supertile import SupertileGrid
from .ranking import rank_by_temperature
from .scheduler import (Batch, HotColdDispenser, QueueDispenser,
                        ScheduleDecision, TileScheduler,
                        supertile_batches_zorder)


class TraversalScheduler(TileScheduler):
    """Plain traversal in any named order (scanline/hilbert/...)."""

    def __init__(self, order: str):
        self.order = order

    def begin_frame(self, trace: FrameTrace) -> ScheduleDecision:
        """Build this policy's dispenser for the coming frame."""
        tiles = traversal_order(self.order, trace.tiles_x, trace.tiles_y)
        return ScheduleDecision(
            dispenser=QueueDispenser([[tile] for tile in tiles]),
            order=self.order, supertile_size=1)


class RandomScheduler(TileScheduler):
    """Seeded random supertile order — the no-locality, no-balance bracket."""

    def __init__(self, size: int = 2, seed: int = 0):
        if size < 1:
            raise ValueError("supertile size must be >= 1")
        self.size = size
        self.seed = seed
        self._frame = 0

    def begin_frame(self, trace: FrameTrace) -> ScheduleDecision:
        """Build this policy's dispenser for the coming frame."""
        batches = supertile_batches_zorder(trace, self.size)
        rng = random.Random(self.seed * 1_000_003 + self._frame)
        rng.shuffle(batches)
        self._frame += 1
        return ScheduleDecision(dispenser=QueueDispenser(batches),
                                order="random", supertile_size=self.size)


class OracleTemperatureScheduler(TileScheduler):
    """Temperature scheduling with a perfect (same-frame) predictor.

    Hardware could never build this — it needs the frame's workload
    before rendering it — but it upper-bounds what any temperature
    predictor can achieve, isolating prediction error from the rest of
    the mechanism.
    """

    def __init__(self, size: int = 4):
        if size < 1:
            raise ValueError("supertile size must be >= 1")
        self.size = size

    def begin_frame(self, trace: FrameTrace) -> ScheduleDecision:
        """Build this policy's dispenser for the coming frame."""
        grid = SupertileGrid(trace.tiles_x, trace.tiles_y, self.size)
        accesses = [0.0] * grid.num_supertiles
        instructions = [0.0] * grid.num_supertiles
        for tile, workload in trace.workloads.items():
            sid = grid.supertile_of(tile)
            # Texture-line footprint is the best same-frame proxy for the
            # DRAM demand the tile will generate.
            accesses[sid] += len(workload.texture_lines)
            instructions[sid] += workload.instructions
        temperatures = [
            (a / i) if i else (1e9 if a else 0.0)
            for a, i in zip(accesses, instructions)]
        ranked = rank_by_temperature(temperatures)
        batches: List[Batch] = [grid.tiles_of(sid) for sid in ranked]
        return ScheduleDecision(dispenser=HotColdDispenser(batches),
                                order="temperature",
                                supertile_size=self.size)


class ReverseFrameScheduler(TileScheduler):
    """Each frame traverses tiles in the reverse order of the previous.

    The "Boustrophedonic Frames" idea from the paper's related work: the
    tiles rendered *last* in frame N are rendered *first* in frame N+1,
    so their texture lines are still L2-resident.
    """

    def __init__(self) -> None:
        self._previous: Optional[List] = None

    def begin_frame(self, trace: FrameTrace) -> ScheduleDecision:
        """Build this policy's dispenser for the coming frame."""
        if self._previous is None:
            tiles = traversal_order("morton", trace.tiles_x, trace.tiles_y)
        else:
            tiles = list(reversed(self._previous))
        self._previous = tiles
        return ScheduleDecision(
            dispenser=QueueDispenser([[tile] for tile in tiles]),
            order="reverse-frame", supertile_size=1)
