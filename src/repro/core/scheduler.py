"""Tile schedulers and the dispensers that feed the Raster Units.

A scheduler decides, once per frame, the order in which tiles reach the
Raster Units and how they are grouped (single tiles or supertiles); a
*dispenser* is the per-frame object the Tile Fetcher polls: whenever a
Raster Unit runs dry, the dispenser hands it the next batch of tiles.
Dynamic dispatch (rather than a static split) is what balances the load —
a unit chewing a heavy batch simply asks less often.

Schedulers provided:

* :class:`ZOrderScheduler` — the baseline / PTR policy: tiles in Morton
  order from one shared queue (the paper's "interleaved tile assignment").
* :class:`StaticSupertileScheduler` — supertile batches in Z-order from a
  shared queue, temperature ranking disabled (Figure 16's static bars).
* :class:`TemperatureScheduler` — supertiles ranked hot->cold each frame
  from the temperature table; one unit drains the hot end while the others
  drain the cold end (Section III-B), with a fixed supertile size.

The full adaptive LIBRA policy lives in :mod:`repro.core.libra`.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..gpu.workload import FrameTrace
from ..telemetry import HUB, SchedulerRanking
from ..tiling.orders import morton_order
from ..tiling.supertile import SupertileGrid
from .ranking import rank_by_temperature
from .temperature import TemperatureTable

TileCoord = Tuple[int, int]
Batch = List[TileCoord]


@dataclass
class FrameFeedback:
    """What the hardware measured while rendering one frame."""

    frame_index: int
    raster_cycles: int
    texture_hit_ratio: float
    per_tile_dram: Dict[TileCoord, int] = field(default_factory=dict)
    per_tile_instructions: Dict[TileCoord, int] = field(default_factory=dict)


class Dispenser(abc.ABC):
    """Per-frame work source polled by idle Raster Units."""

    @abc.abstractmethod
    def next_batch(self, ru_index: int) -> Optional[Batch]:
        """The next batch for Raster Unit ``ru_index`` (None when dry)."""

    @abc.abstractmethod
    def remaining(self) -> int:
        """Batches not yet handed out."""


class QueueDispenser(Dispenser):
    """A single shared queue: any idle unit takes the next batch."""

    def __init__(self, batches: List[Batch]):
        self._batches = list(batches)
        self._next = 0

    def next_batch(self, ru_index: int) -> Optional[Batch]:
        """Next batch for Raster Unit ``ru_index`` (None when dry)."""
        if self._next >= len(self._batches):
            return None
        batch = self._batches[self._next]
        self._next += 1
        return batch

    def remaining(self) -> int:
        """Work not yet handed out."""
        return len(self._batches) - self._next


class AffinityQueueDispenser(Dispenser):
    """Shared supertile queue with per-unit tile-grain dispatch.

    Each unit owns the supertile it is working on and receives its tiles
    one by one (locality); when it finishes one it takes the next
    supertile from the shared queue (balance).  At the tail, an idle unit
    steals single tiles from the busiest private queue so no unit idles
    while work remains.
    """

    def __init__(self, batches: List[Batch]):
        self._pool = deque(list(batch) for batch in batches)
        self._queues: Dict[int, deque] = {}
        self._remaining = sum(len(batch) for batch in batches)

    def next_batch(self, ru_index: int) -> Optional[Batch]:
        """Next batch for Raster Unit ``ru_index`` (None when dry)."""
        if self._remaining == 0:
            return None
        queue = self._queues.setdefault(ru_index, deque())
        if not queue:
            if self._pool:
                queue.extend(self._pool.popleft())
            else:
                victim = max((q for q in self._queues.values() if q),
                             key=len, default=None)
                if victim is None:
                    return None
                self._remaining -= 1
                return [victim.pop()]  # steal from the far end
        self._remaining -= 1
        return [queue.popleft()]

    def remaining(self) -> int:
        """Work not yet handed out."""
        return self._remaining


class HotColdDispenser(Dispenser):
    """Ranked supertiles: unit 0 drains the hot end, the rest the cold end.

    "LIBRA allocates one Raster Unit to process hot tiles, while the rest
    are dedicated to the cold ones.  This means that only one Raster Unit
    handles the hottest tiles at any given time." (Section V-D)

    Tiles are handed out one at a time (the Tile Fetcher dispatches tiles,
    not whole supertiles); each unit consumes its current supertile's
    tiles consecutively, preserving locality.  When one end runs dry the
    unit steals from the other end's queue so nobody idles at the frame
    tail.
    """

    def __init__(self, ranked_batches: List[Batch]):
        self._pool = deque(list(batch) for batch in ranked_batches)
        self._hot_queue = deque()
        self._cold_queue = deque()
        self._remaining = sum(len(b) for b in ranked_batches)

    def next_batch(self, ru_index: int) -> Optional[Batch]:
        """Next batch for Raster Unit ``ru_index`` (None when dry)."""
        if self._remaining == 0:
            return None
        self._remaining -= 1
        if ru_index == 0:
            if not self._hot_queue:
                if self._pool:
                    self._hot_queue.extend(self._pool.popleft())
                else:
                    return [self._cold_queue.popleft()]  # steal
            return [self._hot_queue.popleft()]
        if not self._cold_queue:
            if self._pool:
                self._cold_queue.extend(self._pool.pop())
            else:
                return [self._hot_queue.pop()]  # steal
        return [self._cold_queue.popleft()]

    def remaining(self) -> int:
        """Work not yet handed out."""
        return self._remaining


@dataclass
class ScheduleDecision:
    """What a scheduler chose for one frame (logged by experiments)."""

    dispenser: Dispenser
    order: str  # 'zorder' or 'temperature'
    supertile_size: int


class TileScheduler(abc.ABC):
    """Per-frame tile scheduling policy."""

    #: Raster Units being fed; set by the driver via :meth:`configure`.
    num_raster_units: int = 1

    def configure(self, num_raster_units: int) -> None:
        """Called once by the frame driver before the first frame."""
        if num_raster_units < 1:
            raise ValueError("need at least one Raster Unit")
        self.num_raster_units = num_raster_units

    @abc.abstractmethod
    def begin_frame(self, trace: FrameTrace) -> ScheduleDecision:
        """Build the dispenser for the coming frame."""

    def end_frame(self, feedback: FrameFeedback) -> None:
        """Receive the finished frame's measurements (default: ignore)."""


def zorder_tile_batches(trace: FrameTrace) -> List[Batch]:
    """Every tile as its own batch, in Morton order."""
    return [[tile] for tile in morton_order(trace.tiles_x, trace.tiles_y)]


def supertile_batches_zorder(trace: FrameTrace, size: int) -> List[Batch]:
    """Supertile batches, supertiles and their member tiles in Z-order."""
    grid = SupertileGrid(trace.tiles_x, trace.tiles_y, size)
    return [grid.tiles_of(sid) for sid in grid.all_supertiles_zorder()]


class ZOrderScheduler(TileScheduler):
    """Baseline / PTR: interleaved Z-order dispatch from a shared queue."""

    def begin_frame(self, trace: FrameTrace) -> ScheduleDecision:
        """Build the dispenser for the coming frame."""
        return ScheduleDecision(
            dispenser=QueueDispenser(zorder_tile_batches(trace)),
            order="zorder", supertile_size=1)


class StaticSupertileScheduler(TileScheduler):
    """Fixed-size supertiles in Z-order, no temperature ranking."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("supertile size must be >= 1")
        self.size = size

    def begin_frame(self, trace: FrameTrace) -> ScheduleDecision:
        """Build the dispenser for the coming frame."""
        return ScheduleDecision(
            dispenser=AffinityQueueDispenser(
                supertile_batches_zorder(trace, self.size)),
            order="zorder", supertile_size=self.size)


class TemperatureScheduler(TileScheduler):
    """Hot/cold supertile dispatch with a fixed supertile size.

    The first frame has no history, so it falls back to Z-order; from the
    second frame on, supertiles are ranked by the previous frame's
    accesses-per-instruction (frame-to-frame coherence).
    """

    def __init__(self, size: int = 4):
        if size < 2:
            raise ValueError("temperature scheduling needs supertiles >= 2x2")
        self.size = size
        self._table: Optional[TemperatureTable] = None

    def begin_frame(self, trace: FrameTrace) -> ScheduleDecision:
        """Build the dispenser for the coming frame."""
        if self._table is None:
            self._table = TemperatureTable(trace.tiles_x, trace.tiles_y)
        if not self._table.has_data:
            return ScheduleDecision(
                dispenser=AffinityQueueDispenser(
                    supertile_batches_zorder(trace, self.size)),
                order="zorder", supertile_size=self.size)
        grid, temperatures = self._table.aggregate(self.size)
        ranked = rank_by_temperature(temperatures)
        batches = [grid.tiles_of(sid) for sid in ranked]
        if HUB.enabled:
            HUB.emit(SchedulerRanking(supertiles=len(ranked),
                                      hottest=tuple(ranked[:4])))
        return ScheduleDecision(dispenser=HotColdDispenser(batches),
                                order="temperature",
                                supertile_size=self.size)

    def end_frame(self, feedback: FrameFeedback) -> None:
        """Record the finished frame's measurements."""
        if self._table is not None:
            self._table.update(feedback.per_tile_dram,
                               feedback.per_tile_instructions)
