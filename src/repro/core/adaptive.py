"""LIBRA's per-frame adaptive control (Section III-D).

Two small state machines, both driven purely by frame-to-frame feedback:

* :class:`OrderSelector` implements the Figure 10 decision diagram that
  picks the tile traversal order for the coming frame — conventional
  Z-order when the texture L1 hit ratio was high (>80%: congestion is
  unlikely), temperature-aware otherwise, with two refinements from the
  paper: switches only happen on a significant performance variation
  (>3%), and when *both* hit ratio and performance degraded, the
  alternative ordering is tried regardless.

* :class:`SupertileResizer` implements the grow-while-improving /
  shrink-on-regression policy over the allowed supertile sizes, with a
  0.25% hysteresis threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..config import SchedulerConfig
from ..telemetry import FSMTransition, HUB

Z_ORDER = "zorder"
TEMPERATURE = "temperature"


@dataclass
class FrameObservation:
    """The two metrics the FSMs consume, for one finished frame."""

    raster_cycles: int
    texture_hit_ratio: float


class OrderSelector:
    """Chooses Z-order vs temperature order for the next frame."""

    def __init__(self, config: SchedulerConfig):
        self.config = config
        self.current = Z_ORDER  # no history yet -> conventional order
        self._last: Optional[FrameObservation] = None
        self._previous: Optional[FrameObservation] = None

    def observe(self, observation: FrameObservation) -> None:
        """Record one finished frame's metrics."""
        self._previous = self._last
        self._last = observation

    def decide(self) -> str:
        """The traversal order for the coming frame (Figure 10)."""
        previous_order = self.current
        order = self._decide()
        if order != previous_order and HUB.enabled:
            HUB.emit(FSMTransition(machine="order", old=previous_order,
                                   new=order))
        return order

    def _decide(self) -> str:
        last, previous = self._last, self._previous
        if last is None:
            return self.current
        # Preferred order from the hit-ratio test: a high texture hit
        # ratio makes main-memory congestion unlikely -> Z-order.
        if last.texture_hit_ratio > self.config.hit_ratio_threshold:
            preferred = Z_ORDER
        else:
            preferred = TEMPERATURE
        if previous is None:
            self.current = preferred
            return self.current
        cycles_delta = _relative_change(previous.raster_cycles,
                                        last.raster_cycles)
        hit_delta = last.texture_hit_ratio - previous.texture_hit_ratio
        # The hit-ratio drop needs a small epsilon so concurrent supertile
        # resizing experiments do not masquerade as ordering failures.
        degraded = (cycles_delta > self.config.order_switch_threshold
                    and hit_delta < -0.005)
        if degraded:
            # Both performance and locality got worse: the current scheme
            # is failing regardless of what the hit-ratio test says -> try
            # the alternative ordering.
            self.current = _other(self.current)
            return self.current
        if abs(cycles_delta) > self.config.order_switch_threshold:
            # Significant performance variation: re-evaluate the ordering.
            self.current = preferred
        return self.current


class SupertileResizer:
    """Dynamic supertile sizing (grow while improving, else back off)."""

    def __init__(self, config: SchedulerConfig):
        self.config = config
        sizes: Sequence[int] = config.supertile_sizes
        if not sizes:
            raise ValueError("need at least one supertile size")
        self.sizes: Tuple[int, ...] = tuple(sorted(sizes))
        if config.initial_supertile_size not in self.sizes:
            raise ValueError("initial supertile size not in allowed sizes")
        self._index = self.sizes.index(config.initial_supertile_size)
        self._direction = 1  # start by growing
        self._last_cycles: Optional[int] = None

    @property
    def size(self) -> int:
        """The currently selected supertile size (tiles per side)."""
        return self.sizes[self._index]

    def invalidate(self) -> None:
        """Drop the comparison baseline (e.g. after an ordering switch)."""
        self._last_cycles = None

    def observe(self, raster_cycles: int) -> None:
        """Feed one finished frame's cycle count; may change the size."""
        last = self._last_cycles
        self._last_cycles = raster_cycles
        if last is None:
            return
        size_before = self.size
        delta = _relative_change(last, raster_cycles)
        threshold = self.config.supertile_resize_threshold
        if delta < -threshold:
            # Performance improved: keep moving in the current direction.
            self._step()
        elif delta > threshold:
            # Performance degraded: reverse course.
            self._direction = -self._direction
            self._step()
        # Within the hysteresis band: hold the current size.
        if self.size != size_before and HUB.enabled:
            HUB.emit(FSMTransition(machine="supertile_size",
                                   old=size_before, new=self.size))

    def _step(self) -> None:
        new_index = self._index + self._direction
        if 0 <= new_index < len(self.sizes):
            self._index = new_index
        else:
            # Bounce off the end of the allowed range.
            self._direction = -self._direction


def _relative_change(before: float, after: float) -> float:
    """(after - before) / before; positive means 'after' is worse/bigger."""
    if before == 0:
        return 0.0
    return (after - before) / before


def _other(order: str) -> str:
    return TEMPERATURE if order == Z_ORDER else Z_ORDER
