"""The full LIBRA controller: adaptive, temperature-aware tile scheduling.

Glues together the pieces of Section III: the temperature statistics
buffer (III-E), the hot/cold supertile ranking (III-B), supertiles (III-C)
and the per-frame adaptive order/size decisions (III-D).  Drop it into
:class:`repro.gpu.simulator.GPUSimulator` as the scheduler of a
multi-Raster-Unit GPU and you have the paper's proposed architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..config import SchedulerConfig
from ..gpu.workload import FrameTrace
from ..telemetry import FSMState, HUB, SchedulerRanking
from .adaptive import (FrameObservation, OrderSelector, SupertileResizer,
                       TEMPERATURE, Z_ORDER)
from .ranking import rank_by_temperature, ranking_cycles
from .scheduler import (AffinityQueueDispenser, FrameFeedback,
                        HotColdDispenser, QueueDispenser,
                        ScheduleDecision, TileScheduler,
                        supertile_batches_zorder, zorder_tile_batches)
from .temperature import TemperatureTable


@dataclass
class LibraFrameLog:
    """One line of the controller's decision log (for analysis/tests)."""

    frame_index: int
    order: str
    supertile_size: int
    ranking_cycles: int


class LibraScheduler(TileScheduler):
    """LIBRA's adaptive temperature-aware scheduler."""

    def __init__(self, config: SchedulerConfig):
        self.config = config
        self.order_selector = OrderSelector(config)
        self.resizer = SupertileResizer(config)
        self._table: Optional[TemperatureTable] = None
        self.log: List[LibraFrameLog] = []
        self._frame_index = 0

    def begin_frame(self, trace: FrameTrace) -> ScheduleDecision:
        """Decide order and supertile size; build the frame's dispenser."""
        if self._table is None:
            self._table = TemperatureTable(trace.tiles_x, trace.tiles_y)
        order = self.order_selector.decide()
        size = self._clamp_size(self.resizer.size, trace)
        rank_latency = 0
        if order == TEMPERATURE and self._table.has_data:
            grid, temperatures = self._table.aggregate(size)
            ranked = rank_by_temperature(temperatures)
            rank_latency = ranking_cycles(len(temperatures))
            batches = [grid.tiles_of(sid) for sid in ranked]
            dispenser: object = HotColdDispenser(batches)
            if HUB.enabled:
                HUB.emit(SchedulerRanking(supertiles=len(ranked),
                                          hottest=tuple(ranked[:4])))
        elif order == TEMPERATURE:
            # Temperature order requested but no history yet (first
            # frame): fall back to supertile Z-order for this frame.
            dispenser = AffinityQueueDispenser(
                supertile_batches_zorder(trace, size))
            order = Z_ORDER
        else:
            # Conventional Z-order: interleaved single-tile dispatch.
            dispenser = QueueDispenser(zorder_tile_batches(trace))
            size = 1
        self.log.append(LibraFrameLog(
            frame_index=self._frame_index, order=order,
            supertile_size=size, ranking_cycles=rank_latency))
        if HUB.enabled:
            # Per-frame state snapshots of both adaptive FSMs (the
            # transitions themselves are emitted by repro.core.adaptive).
            HUB.emit(FSMState(machine="order", state=order,
                              frame=self._frame_index))
            HUB.emit(FSMState(machine="supertile_size", state=size,
                              frame=self._frame_index))
        return ScheduleDecision(dispenser=dispenser, order=order,
                                supertile_size=size)

    def end_frame(self, feedback: FrameFeedback) -> None:
        """Update the stats buffer and both adaptive FSMs."""
        assert self._table is not None, "end_frame before begin_frame"
        self._table.update(feedback.per_tile_dram,
                           feedback.per_tile_instructions)
        observation = FrameObservation(
            raster_cycles=feedback.raster_cycles,
            texture_hit_ratio=feedback.texture_hit_ratio)
        self.order_selector.observe(observation)
        # The resize policy compares like with like: only frames rendered
        # under the temperature order carry a supertile-size signal.
        if (len(self.log) >= 2 and self.log[-1].order == TEMPERATURE
                and self.log[-2].order == TEMPERATURE):
            self.resizer.observe(feedback.raster_cycles)
        elif self.log and self.log[-1].order == TEMPERATURE:
            # First temperature frame after a switch: future comparisons
            # start from here.
            self.resizer.invalidate()
            self.resizer.observe(feedback.raster_cycles)
        else:
            self.resizer.invalidate()
        self._frame_index += 1

    def _clamp_size(self, size: int, trace: FrameTrace) -> int:
        """Largest allowed size that still yields enough supertiles.

        A supertile covering (almost) the whole screen would serialize the
        frame onto one Raster Unit; the paper notes such sizes "would be
        ineffective", so the controller never schedules fewer than two
        supertile batches per Raster Unit.
        """
        allowed = [s for s in self.resizer.sizes if s <= size]
        for candidate in sorted(set(allowed), reverse=True):
            per_axis_x = -(-trace.tiles_x // candidate)
            per_axis_y = -(-trace.tiles_y // candidate)
            if per_axis_x * per_axis_y >= 2 * self.num_raster_units:
                return candidate
        return min(self.resizer.sizes)

    @property
    def table(self) -> Optional[TemperatureTable]:
        """The temperature statistics buffer (None before the first frame)."""
        return self._table
