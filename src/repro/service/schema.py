"""The ``job`` JSON wire format, version 1.

Everything the service persists and serves about a job is one JSON
object with a ``schema`` discriminator (``repro.job/v1``).  The record
travels three ways — on disk as ``jobs/<job_id>/job.json``, over HTTP
from every ``/v1/jobs`` endpoint, and inside
:class:`~repro.service.client.SweepClient` — and all three speak
exactly this shape:

``job_id``
    Content-addressed: ``<spec name slug>-<grid fingerprint[:12]>``.
    Resubmitting the same grid therefore lands on the *same* job and
    resumes its store instead of burning the points again.
``state``
    ``queued`` → ``running`` → ``done`` | ``failed`` | ``cancelled``.
``spec`` / ``fingerprint``
    The full :meth:`~repro.experiments.ExperimentSpec.to_dict` snapshot
    and its grid fingerprint (also pinned by the sweep store manifest).
``generation``
    Mirrors :data:`repro.harness.RESULT_GENERATION` at submission.
    Workers refuse jobs from a different generation — a fleet running
    mixed code versions must never mix artifact layouts in one store.
``point_telemetry``
    Whether workers collect per-point telemetry into the artifacts.
``total_points`` / ``submitted_at`` / ``updated_at`` / ``finished_at``
    Bookkeeping; timestamps are UNIX seconds (float).
``error``
    One line of diagnosis on a ``failed`` job, empty otherwise.

Compatibility contract: readers must ignore unknown keys (a newer
writer may add fields) and reject unknown ``schema`` values.  Breaking
changes bump the suffix to ``/v2`` — they never mutate ``/v1``.
"""

from __future__ import annotations

import re
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

from ..errors import ConfigValidationError
from ..experiments import ExperimentSpec
from ..harness import RESULT_GENERATION

#: The wire-format discriminator every job record carries.
JOB_SCHEMA = "repro.job/v1"

#: Legal job lifecycle states.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job can never leave.
TERMINAL_STATES = ("done", "failed", "cancelled")


def job_id_for(spec: ExperimentSpec) -> str:
    """Deterministic, content-addressed job id for a spec's grid.

    The id hashes only what the grid *is* (benchmarks, kinds, axes,
    scene geometry — via :meth:`ExperimentSpec.fingerprint`), not how
    it runs, so the same experiment resubmitted with different worker
    counts is recognized as the same job.
    """
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", spec.name).strip("-") or "sweep"
    return f"{slug}-{spec.fingerprint()[:12]}"


@dataclass
class JobRecord:
    """One durable job, exactly as serialized on disk and over HTTP."""

    job_id: str
    spec: Dict[str, Any]
    fingerprint: str
    state: str = "queued"
    generation: int = RESULT_GENERATION
    point_telemetry: bool = True
    total_points: int = 0
    submitted_at: float = 0.0
    updated_at: float = 0.0
    finished_at: Optional[float] = None
    error: str = ""
    schema: str = field(default=JOB_SCHEMA)

    @classmethod
    def create(cls, spec: ExperimentSpec,
               point_telemetry: bool = True) -> "JobRecord":
        """A fresh ``queued`` record for a validated spec."""
        spec.validate()
        now = round(time.time(), 6)
        return cls(job_id=job_id_for(spec), spec=spec.to_dict(),
                   fingerprint=spec.fingerprint(),
                   point_telemetry=bool(point_telemetry),
                   total_points=spec.num_points,
                   submitted_at=now, updated_at=now)

    def experiment_spec(self) -> ExperimentSpec:
        """The typed spec this job executes."""
        return ExperimentSpec.from_dict(self.spec)

    @property
    def terminal(self) -> bool:
        """True once the job can never change state again."""
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot (the exact wire format)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRecord":
        """Parse and validate a wire-format record.

        Unknown keys are ignored (forward compatibility); a missing or
        foreign ``schema``, an unknown ``state`` or a missing required
        field raise :class:`ConfigValidationError` — a job store must
        never half-load a record it does not understand.
        """
        if not isinstance(data, dict):
            raise ConfigValidationError(
                f"job record must be a JSON object, got "
                f"{type(data).__name__}")
        schema = data.get("schema", JOB_SCHEMA)
        if schema != JOB_SCHEMA:
            raise ConfigValidationError(
                f"unsupported job schema {schema!r} (this build speaks "
                f"{JOB_SCHEMA!r})")
        for key in ("job_id", "spec", "fingerprint"):
            if key not in data:
                raise ConfigValidationError(
                    f"job record is missing required field {key!r}")
        state = data.get("state", "queued")
        if state not in JOB_STATES:
            raise ConfigValidationError(
                f"unknown job state {state!r}; expected one of "
                f"{JOB_STATES}")
        known = {f.name for f in
                 cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        kwargs = {k: v for k, v in data.items() if k in known}
        record = cls(**kwargs)
        record.state = state
        return record
