"""Lease-based point claiming over a shared job store.

The distribution unit is one grid point.  Claiming works like a DHCP
lease: a worker scans the job's pending points under a queue-wide
``fcntl`` lock, writes ``leases/<point_id>.lease`` naming itself, and
then keeps the lease's *mtime* fresh from a renewal thread — literally
a :class:`repro.supervision.HeartbeatWriter` pointed at the lease file,
with a payload that rewrites the lease body (owner, pid, host, claim
time) on every beat.  Liveness and ownership ride on the same
mechanics the in-process supervisor already trusts.

Crash-safety falls out of the mtime rule: a SIGKILLed worker stops
renewing, its lease goes stale after ``lease_ttl_s``, and the next
scanning worker *adopts* the point — records the previous owner in the
fresh lease and in the job's event stream, then reruns the point.  The
rerun is idempotent because the point runner re-checks the artifact
store first and every checkpoint write is atomic: at worst the fleet
burns one duplicate simulation, never a torn artifact.

Nothing here talks HTTP; workers sharing the store directory (one host
or many, over a shared filesystem) coordinate purely through these
files.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from .. import cachefile
from ..experiments import ExperimentSpec
from ..experiments.spec import SweepPoint
from ..supervision import HeartbeatWriter
from .jobs import JobStore

logger = logging.getLogger(__name__)

#: Default seconds without renewal before a lease counts as abandoned.
#: Renewal beats every ``ttl/4``, so a live worker has three missed
#: beats of slack before anyone tries to steal its point.
DEFAULT_LEASE_TTL_S = 30.0


@dataclass
class PointClaim:
    """One successfully claimed point and its lease bookkeeping."""

    job_id: str
    point: SweepPoint
    lease_path: Path
    worker_id: str
    #: Worker id found on a stale lease this claim adopted ('' for a
    #: first claim).
    adopted_from: str = ""

    def lease_body(self) -> str:
        """The JSON the lease file (re)writes on claim and renewal."""
        return json.dumps(
            {"point_id": self.point.point_id, "owner": self.worker_id,
             "pid": os.getpid(), "host": socket.gethostname(),
             "renewed_at": round(time.time(), 6)},
            sort_keys=True) + "\n"

    def renewer(self, ttl_s: float) -> HeartbeatWriter:
        """A started lease-renewal thread (caller must ``stop()`` it)."""
        thread = HeartbeatWriter(self.lease_path, interval_s=ttl_s / 4.0,
                                 payload=self.lease_body)
        thread.start()
        return thread

    def release(self) -> None:
        """Drop the lease (point finished or terminally failed)."""
        try:
            self.lease_path.unlink()
        except OSError:
            pass


def read_lease(path: Path) -> dict:
    """The lease file's parsed body ({} when unreadable/torn)."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    return data if isinstance(data, dict) else {}


def claim_point(store: JobStore, job_id: str, spec: ExperimentSpec,
                worker_id: str,
                lease_ttl_s: float = DEFAULT_LEASE_TTL_S) -> \
        Optional[PointClaim]:
    """Claim one pending point of a job, or None when none remains.

    Runs under the job's queue lock so concurrent workers scanning the
    same job serialize on the claim itself (the expensive part — the
    simulation — runs outside the lock).  Scan order follows the
    spec's deterministic expansion; a point is claimable when it has no
    checkpointed artifact, no recorded terminal failure, and no lease
    renewed within ``lease_ttl_s``.
    """
    leases = store.leases_dir(job_id)
    leases.mkdir(parents=True, exist_ok=True)
    sweep_store = store.sweep_store(job_id)
    queue_lock = leases / ".queue"
    with cachefile.file_lock(queue_lock):
        done = set(sweep_store.completed_ids())
        failed = set(sweep_store.load_point_failures())
        now = time.time()
        for point in spec.expand():
            pid = point.point_id
            if pid in done or pid in failed:
                continue
            lease_path = leases / f"{pid}.lease"
            adopted_from = ""
            if lease_path.exists():
                try:
                    age = now - lease_path.stat().st_mtime
                except OSError:
                    age = lease_ttl_s + 1.0  # vanished mid-scan: stale
                if age <= lease_ttl_s:
                    continue  # live owner, keep scanning
                adopted_from = str(read_lease(lease_path).get("owner", ""))
            claim = PointClaim(job_id=job_id, point=point,
                               lease_path=lease_path,
                               worker_id=worker_id,
                               adopted_from=adopted_from)
            cachefile.atomic_write_bytes(lease_path,
                                         claim.lease_body().encode())
            if adopted_from:
                logger.info("worker %s adopted point %s from stale "
                            "lease of %s", worker_id, pid, adopted_from)
                store.events(job_id).emit(
                    "lease_adopted", job_id=job_id, point_id=pid,
                    owner=worker_id, previous_owner=adopted_from)
            return claim
    return None
