"""Worker health reporting and job progress/ETA for the sweep service.

Workers never talk to the server — everything they know reaches it
through files in the shared store.  Health reporting keeps that shape:
each :func:`~repro.service.worker.run_worker` loop carries a
:class:`FleetReporter` that periodically writes an atomic, checksummed
``<root>/fleet/<worker_id>.json`` snapshot (heartbeat, current
job/point, throughput, failure/degradation tallies).  The server's
``GET /v1/fleet`` is then just :func:`read_fleet` — aggregate the
directory, flag workers whose file mtime went stale, exactly the
lease-mtime liveness convention the queue already uses.

Like every observability surface here, reporting must never take a
worker down: write failures flip ``degraded`` and stop, they do not
raise into the claim/execute loop.  Readers verify the embedded
SHA-256 before trusting a snapshot; torn or corrupt bytes (power loss
mid-replace on a non-atomic network filesystem) are quarantined aside
via :func:`repro.cachefile.quarantine` and the worker simply looks
stale until its next beat.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import re
import socket
import threading
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Union

from .. import cachefile

logger = logging.getLogger(__name__)

#: Subdirectory of the service root holding one file per worker.
FLEET_DIR = "fleet"

#: Wire discriminator of a worker status snapshot.
WORKER_SCHEMA = "repro.worker/v1"

#: Default heartbeat cadence of a worker's status file.
DEFAULT_FLEET_INTERVAL_S = 2.0

#: Default staleness horizon — matches the lease TTL convention
#: (:data:`repro.service.queue.DEFAULT_LEASE_TTL_S`): a worker that
#: cannot refresh an mtime for this long is presumed gone.
DEFAULT_STALE_AFTER_S = 30.0

#: Completion timestamps kept for the throughput window.
_RATE_SAMPLES = 64

#: Throughput is measured over this trailing window (seconds).
RATE_WINDOW_S = 120.0


def worker_file_name(worker_id: str) -> str:
    """Filesystem-safe file name for a worker id."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", worker_id) + ".json"


def _checksummed(payload: Dict[str, object]) -> bytes:
    """Canonical JSON bytes of ``payload`` with a ``checksum`` field."""
    body = dict(payload)
    body.pop("checksum", None)
    canonical = json.dumps(body, sort_keys=True)
    body["checksum"] = hashlib.sha256(canonical.encode()).hexdigest()
    return json.dumps(body, indent=2, sort_keys=True).encode()


def _verify(payload: Dict[str, object]) -> bool:
    """True when the embedded checksum matches the payload."""
    digest = payload.get("checksum")
    body = {k: v for k, v in payload.items() if k != "checksum"}
    canonical = json.dumps(body, sort_keys=True)
    return digest == hashlib.sha256(canonical.encode()).hexdigest()


class FleetReporter:
    """One worker's periodic health snapshot (a daemon beat thread).

    The public mutators (:meth:`point_started`, :meth:`point_finished`,
    :meth:`idle`, :meth:`note`) update the status and write through
    immediately; the background thread re-writes every ``interval_s``
    regardless, which is what keeps the file's mtime — the liveness
    signal — fresh while a slow point simulates for minutes.
    """

    def __init__(self, root: Union[str, Path], worker_id: str,
                 interval_s: float = DEFAULT_FLEET_INTERVAL_S):
        self.path = Path(root) / FLEET_DIR / worker_file_name(worker_id)
        self.worker_id = worker_id
        self.interval_s = interval_s
        self.degraded = False
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._completions: deque = deque(maxlen=_RATE_SAMPLES)
        self.status: Dict[str, object] = {
            "schema": WORKER_SCHEMA,
            "worker_id": worker_id,
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "started_at": round(time.time(), 6),
            "state": "idle",
            "job_id": "",
            "point_id": "",
            "points_completed": 0,
            "points_failed": 0,
            "attempts_extra": 0,
            "chaos_events": 0,
            "degraded_writes": 0,
        }

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "FleetReporter":
        """Write the first snapshot and start the beat thread."""
        self.write()
        self._thread = threading.Thread(
            target=self._run, name=f"fleet-reporter-{self.worker_id}",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop beating and leave a final ``exited`` snapshot."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval_s + 1.0)
            self._thread = None
        with self._lock:
            self.status["state"] = "exited"
            self.status["job_id"] = ""
            self.status["point_id"] = ""
        self.write()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.write()

    # -- status mutators ----------------------------------------------------

    def point_started(self, job_id: str, point_id: str) -> None:
        """Record the point this worker is now executing."""
        with self._lock:
            self.status.update(state="running", job_id=job_id,
                               point_id=point_id)
        self.write()

    def point_finished(self, ok: bool, attempts: int = 1) -> None:
        """Account one executed point (throughput sample included)."""
        with self._lock:
            key = "points_completed" if ok else "points_failed"
            self.status[key] = int(self.status.get(key, 0)) + 1
            if attempts > 1:
                self.status["attempts_extra"] = (
                    int(self.status.get("attempts_extra", 0))
                    + attempts - 1)
            self._completions.append(time.time())
            self.status.update(state="idle", point_id="")
        self.write()

    def idle(self) -> None:
        """Back to scanning for work."""
        with self._lock:
            self.status.update(state="idle", job_id="", point_id="")
        self.write()

    def note(self, **fields) -> None:
        """Merge arbitrary JSON-serializable status fields."""
        with self._lock:
            self.status.update(fields)
        self.write()

    # -- persistence --------------------------------------------------------

    def points_per_s(self, now: Optional[float] = None) -> float:
        """Completions per second over the trailing window."""
        now = time.time() if now is None else now
        recent = [t for t in self._completions
                  if now - t <= RATE_WINDOW_S]
        if not recent:
            return 0.0
        span = now - min(recent)
        if span <= 0:
            return 0.0
        return round(len(recent) / span, 4)

    def write(self) -> None:
        """Atomically persist the current snapshot (never raises)."""
        if self.degraded:
            return
        with self._lock:
            payload = dict(self.status)
            payload["heartbeat_at"] = round(time.time(), 6)
            payload["points_per_s"] = self.points_per_s()
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            cachefile.atomic_write_bytes(self.path, _checksummed(payload))
        except OSError as exc:
            self.degraded = True
            logger.debug("fleet status %s unwritable (%s); health "
                         "reporting disabled for this worker",
                         self.path, exc)


def read_worker_status(path: Union[str, Path]) -> Optional[dict]:
    """One verified worker snapshot, or None (corrupt → quarantined)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        cachefile.quarantine(path, f"unreadable worker status: {exc}")
        return None
    if not isinstance(payload, dict) or not _verify(payload):
        cachefile.quarantine(path, "worker status failed its checksum")
        return None
    if payload.get("schema") != WORKER_SCHEMA:
        return None
    payload.pop("checksum", None)
    return payload


def read_fleet(root: Union[str, Path],
               stale_after_s: float = DEFAULT_STALE_AFTER_S,
               now: Optional[float] = None) -> dict:
    """Aggregate every worker snapshot under ``<root>/fleet``.

    Staleness goes by file **mtime**, not any timestamp inside the
    payload — same convention as lease liveness, and immune to clock
    skew between the writing and reading host as long as they share
    the filesystem's clock.
    """
    now = time.time() if now is None else now
    fleet_dir = Path(root) / FLEET_DIR
    workers: List[dict] = []
    if fleet_dir.is_dir():
        for path in sorted(fleet_dir.glob("*.json")):
            status = read_worker_status(path)
            if status is None:
                continue
            try:
                age = max(0.0, now - path.stat().st_mtime)
            except OSError:
                continue
            status["age_s"] = round(age, 3)
            status["stale"] = (age > stale_after_s
                               or status.get("state") == "exited")
            workers.append(status)
    live = sum(1 for w in workers if not w["stale"])
    return {"workers": workers, "live": live,
            "stale": len(workers) - live,
            "stale_after_s": stale_after_s,
            "generated_at": round(now, 6)}


def job_progress(counts: Dict[str, int], events: List[dict],
                 now: Optional[float] = None,
                 window_s: float = RATE_WINDOW_S) -> dict:
    """Progress percentage plus a throughput-windowed ETA for one job.

    ``counts`` is :meth:`repro.service.jobs.JobStore.counts` output;
    ``events`` the job's progress records.  The rate is completions
    (``point_done``/``point_failed``) inside the trailing window — or,
    for a job idle longer than the window, over the whole run, so a
    finished job still reports its average throughput.  ``eta_s`` is
    None until at least one completion establishes a rate.
    """
    now = time.time() if now is None else now
    total = int(counts.get("total", 0))
    finished = (int(counts.get("completed", 0))
                + int(counts.get("failed", 0)))
    remaining = int(counts.get("pending", 0)) + int(counts.get("leased", 0))
    done_ts = sorted(
        e["ts"] for e in events
        if e.get("event") in ("point_done", "point_failed")
        and isinstance(e.get("ts"), (int, float)))
    recent = [t for t in done_ts if now - t <= window_s] or done_ts
    rate = None
    if recent:
        span = now - recent[0]
        if span > 0:
            rate = len(recent) / span
    eta_s = (round(remaining / rate, 3)
             if rate and remaining else (0.0 if not remaining else None))
    return {"percent": round(100.0 * finished / total, 2) if total else 0.0,
            "points_per_s": round(rate, 4) if rate else 0.0,
            "eta_s": eta_s,
            "window_s": window_s}


__all__ = ["DEFAULT_FLEET_INTERVAL_S", "DEFAULT_STALE_AFTER_S",
           "FLEET_DIR", "FleetReporter", "RATE_WINDOW_S",
           "WORKER_SCHEMA", "job_progress", "read_fleet",
           "read_worker_status", "worker_file_name"]
