"""``SweepClient``: the typed Python face of a running sweep service.

Wraps the ``/v1`` wire format (see ``docs/service.md``) in the repo's
own types — submit an :class:`~repro.experiments.ExperimentSpec`, get
:class:`~repro.service.schema.JobRecord` status back, and receive the
final matrix as a real :class:`~repro.experiments.SpeedupMatrix`
(reconstructed via ``SpeedupMatrix.from_dict``, so ``to_markdown()``
output is byte-identical to what a local ``run_sweep`` +
``speedup_matrix`` would have printed).

Transport is stdlib ``http.client`` via ``urllib.request`` — chunked
transfer-encoding on the ``/events`` stream is decoded transparently,
which is what makes :meth:`SweepClient.events` a plain iterator of
dicts.  Every failure surfaces as :class:`~repro.errors.ServiceError`
carrying the HTTP status (0 when the request never reached a server),
whose ``transient`` flag tells retry loops whether backing off can
help.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional

from ..errors import ServiceError
from ..experiments import ExperimentSpec, SpeedupMatrix
from .jobs import TERMINAL_EVENTS
from .schema import JobRecord

#: Events whose arrival means the job's stream is over.
_DONE_EVENTS = TERMINAL_EVENTS


class SweepClient:
    """Talks to one ``repro serve`` instance."""

    def __init__(self, base_url: str, timeout_s: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- transport ----------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None,
                 timeout_s: Optional[float] = None):
        body = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers={"Content-Type": "application/json"}
            if body is not None else {})
        try:
            return urllib.request.urlopen(
                request, timeout=timeout_s or self.timeout_s)
        except urllib.error.HTTPError as exc:
            raise ServiceError(self._error_message(exc),
                               status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"{method} {self.base_url}{path}: {exc.reason}",
                status=0) from exc

    @staticmethod
    def _error_message(exc: urllib.error.HTTPError) -> str:
        try:
            detail = json.loads(exc.read().decode("utf-8",
                                                  "replace"))["error"]
        except Exception:
            detail = exc.reason
        return f"HTTP {exc.code}: {detail}"

    def _json(self, method: str, path: str,
              payload: Optional[dict] = None) -> dict:
        with self._request(method, path, payload) as response:
            try:
                return json.loads(response.read().decode("utf-8"))
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    f"{method} {path}: server sent unparsable JSON "
                    f"({exc})", status=response.status)

    # -- API ----------------------------------------------------------------

    def ping(self) -> dict:
        """Liveness + version/generation handshake of the server."""
        return self._json("GET", "/v1/ping")

    def submit(self, spec: ExperimentSpec,
               point_telemetry: bool = True,
               wait: bool = False,
               poll_s: float = 0.5,
               timeout_s: Optional[float] = None) -> JobRecord:
        """Submit a spec; idempotent per grid fingerprint.

        With ``wait`` the call blocks (polling every ``poll_s``) until
        the job reaches a terminal state and returns that final record.
        """
        record = JobRecord.from_dict(self._json(
            "POST", "/v1/jobs",
            {"spec": spec.to_dict(), "point_telemetry": point_telemetry}))
        if wait:
            return self.wait(record.job_id, poll_s=poll_s,
                             timeout_s=timeout_s)
        return record

    def jobs(self) -> List[JobRecord]:
        """Every job the service knows, newest first."""
        return [JobRecord.from_dict(data)
                for data in self._json("GET", "/v1/jobs")["jobs"]]

    def status(self, job_id: str) -> JobRecord:
        """One job's current record (live point counts in ``.points``,
        progress/ETA in ``.progress``)."""
        data = self._json("GET", f"/v1/jobs/{job_id}")
        record = JobRecord.from_dict(data)
        record.points = data.get("points", {})  # type: ignore[attr-defined]
        record.progress = data.get(  # type: ignore[attr-defined]
            "progress", {})
        return record

    def fleet(self, stale_after_s: Optional[float] = None) -> dict:
        """The worker health roster (``GET /v1/fleet``)."""
        path = "/v1/fleet"
        if stale_after_s is not None:
            path += f"?stale_after={stale_after_s}"
        return self._json("GET", path)

    def metrics_text(self) -> str:
        """The raw Prometheus exposition document (``GET /v1/metrics``)."""
        with self._request("GET", "/v1/metrics") as response:
            return response.read().decode("utf-8")

    def result(self, job_id: str) -> SpeedupMatrix:
        """The finished job's matrix (:class:`ServiceError` 409 until
        every point is accounted for)."""
        return SpeedupMatrix.from_dict(
            self._json("GET", f"/v1/jobs/{job_id}/result")["matrix"])

    def result_payload(self, job_id: str) -> dict:
        """The full ``result.json`` wire payload (matrix + markdown +
        counts + provenance metadata)."""
        return self._json("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> JobRecord:
        """Ask the fleet to stop the job at the next point boundary."""
        return JobRecord.from_dict(
            self._json("POST", f"/v1/jobs/{job_id}/cancel"))

    def events(self, job_id: str, follow: bool = True,
               timeout_s: float = 60.0,
               heartbeat_s: Optional[float] = None,
               include_heartbeats: bool = False) -> Iterator[Dict]:
        """Progress events as dicts, streamed while the job runs.

        With ``follow`` the iterator ends at the job's terminal event
        (or after ``timeout_s`` server-side); without it, it yields the
        current snapshot and stops.  The server injects synthetic
        ``heartbeat`` records on idle streams (cadence overridable via
        ``heartbeat_s``; 0 disables) — they keep the connection warm
        through proxies and are filtered out here unless
        ``include_heartbeats`` is set.
        """
        path = (f"/v1/jobs/{job_id}/events?follow={int(follow)}"
                f"&timeout={timeout_s}")
        if heartbeat_s is not None:
            path += f"&heartbeat={heartbeat_s}"
        with self._request("GET", path,
                           timeout_s=timeout_s + 10.0) as response:
            buffer = b""
            while True:
                chunk = response.read1(65536) if hasattr(
                    response, "read1") else response.read(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if not line.strip():
                        continue
                    try:
                        event = json.loads(line.decode("utf-8"))
                    except (UnicodeDecodeError,
                            json.JSONDecodeError):
                        continue
                    if not isinstance(event, dict):
                        continue
                    if (event.get("event") == "heartbeat"
                            and not include_heartbeats):
                        continue
                    yield event

    def wait(self, job_id: str, poll_s: float = 0.5,
             timeout_s: Optional[float] = None) -> JobRecord:
        """Poll until the job is terminal; returns the final record.

        Transient transport failures (server restarting) are retried
        within the deadline; a definite server verdict propagates.
        """
        deadline = None if timeout_s is None else time.time() + timeout_s
        while True:
            try:
                record = self.status(job_id)
                if record.terminal:
                    return record
            except ServiceError as exc:
                if not exc.transient:
                    raise
            if deadline is not None and time.time() >= deadline:
                raise ServiceError(
                    f"job {job_id!r} not finished after {timeout_s}s")
            time.sleep(poll_s)
