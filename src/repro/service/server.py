"""The HTTP face of the sweep service (``repro serve``).

A deliberately boring server: stdlib ``ThreadingHTTPServer`` (one
thread per connection, no new runtime deps), JSON in and out, and —
crucially — **read-mostly**.  The server never executes a simulation;
it validates submissions into the durable job store and reads state the
workers wrote.  Killing it loses nothing: workers keep draining the
queue, and a restarted server picks the directory back up.  The only
write paths are submission, cancellation, and lazily finalizing a job
whose workers all exited after checkpointing the last point but before
aggregating.

Endpoints (all under ``/v1``, schema pinned in ``docs/service.md``):

====================================  =======================================
``GET  /v1/ping``                     liveness + version/generation handshake
``POST /v1/jobs``                     submit a spec (idempotent per grid)
``GET  /v1/jobs``                     list job records
``GET  /v1/jobs/<id>``                one record + live point counts + ETA
``GET  /v1/jobs/<id>/result``         aggregated matrix (409 until finished)
``GET  /v1/jobs/<id>/events``         chunked JSONL progress stream
``POST /v1/jobs/<id>/cancel``         request cancellation
``GET  /v1/metrics``                  Prometheus text exposition
``GET  /v1/fleet``                    worker health roster (live + stale)
====================================  =======================================

Live observability: every request is counted and timed into the
server's :class:`~repro.telemetry.metrics.MetricsRegistry` (a lock
guards it — ``ThreadingHTTPServer`` handles connections concurrently),
and a ``/v1/metrics`` scrape refreshes store-derived gauges (jobs by
state, queue depth, breaker state) plus event counters (completions,
lease adoptions) before rendering the registry through
:func:`repro.telemetry.exposition.render_exposition`.

Error contract: every failure is a JSON object with an ``error`` key —
a malformed spec is HTTP 400 with the validation message, an unknown
job 404, a not-ready result 409, and an unexpected server bug 500 with
a one-line diagnosis.  A stack trace never crosses the wire.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from ..errors import ConfigValidationError
from ..experiments import ExperimentSpec
from ..harness import RESULT_GENERATION
from ..telemetry.exposition import (EXPOSITION_CONTENT_TYPE,
                                    render_exposition)
from ..telemetry.metrics import MetricsRegistry
from .fleet import DEFAULT_STALE_AFTER_S, job_progress, read_fleet
from .jobs import TERMINAL_EVENTS, JobStore
from .queue import DEFAULT_LEASE_TTL_S
from .schema import JOB_SCHEMA, JOB_STATES, JobRecord, job_id_for
from .worker import _maybe_finalize

logger = logging.getLogger(__name__)

#: Submissions larger than this are rejected (413) before parsing.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Ceiling on how long one ``/events`` follower may hold a thread.
MAX_FOLLOW_S = 3600.0

#: Default cadence of synthetic heartbeat chunks on an idle
#: ``/events?follow=1`` stream (``heartbeat=0`` disables them).
DEFAULT_HEARTBEAT_S = 15.0

#: Latency histogram buckets for request timing (seconds).
HTTP_LATENCY_BUCKETS = (0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0)


def _package_version() -> str:
    from .. import __version__
    return __version__


class SweepServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`JobStore`.

    Carries the process-wide service metrics: request counters and
    latency histograms updated per request, store-derived gauges
    refreshed at scrape time.  ``metrics_lock`` serializes all access
    — handler threads run concurrently.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], store: JobStore):
        super().__init__(address, SweepServiceHandler)
        self.store = store
        self.metrics = MetricsRegistry()
        self.metrics_lock = threading.Lock()
        self.started_at = time.time()
        #: Per-job byte offsets into events.jsonl, so event counters
        #: advance incrementally across scrapes instead of recounting.
        self._event_offsets: Dict[str, int] = {}

    def observe_request(self, label: str, method: str, status: int,
                        elapsed_s: float) -> None:
        """Count and time one finished HTTP request."""
        with self.metrics_lock:
            self.metrics.counter(
                f"http.requests.{label}.{method}.{status}").inc()
            self.metrics.histogram(f"http.latency_s.{label}",
                                   HTTP_LATENCY_BUCKETS).observe(elapsed_s)

    def refresh_store_metrics(self) -> None:
        """Fold the job store's current state into the registry.

        Called under ``metrics_lock`` by the scrape handler.  Gauges
        (jobs by state, queue depth, breaker state) are recomputed
        wholesale; event counters advance by the records appended
        since the previous scrape, so they are monotonic for the
        lifetime of this server process (a restart is an ordinary
        Prometheus counter reset).
        """
        store = self.store
        records = store.list_jobs()
        by_state = {state: 0 for state in JOB_STATES}
        pending = leased = 0
        breaker_trips = breaker_open = 0
        for record in records:
            by_state[record.state] = by_state.get(record.state, 0) + 1
            if record.state in ("queued", "running"):
                try:
                    counts = store.counts(
                        record.job_id, lease_ttl_s=DEFAULT_LEASE_TTL_S)
                    pending += counts.get("pending", 0)
                    leased += counts.get("leased", 0)
                except ConfigValidationError:
                    pass
            state = store.sweep_store(record.job_id).load_breaker_state()
            if isinstance(state, dict):
                breaker_trips += len(state.get("trips") or [])
                cells = state.get("cells")
                if isinstance(cells, dict):
                    breaker_open += sum(
                        1 for cell in cells.values()
                        if isinstance(cell, dict)
                        and cell.get("state") == "open")
            log = store.events(record.job_id)
            offset = self._event_offsets.get(record.job_id, 0)
            for event, offset in log._scan(offset):
                kind = event.get("event")
                if isinstance(kind, str) and kind:
                    self.metrics.counter(f"service.events.{kind}").inc()
            self._event_offsets[record.job_id] = offset
        self.metrics.gauge("service.jobs.total").set(len(records))
        for state, n in sorted(by_state.items()):
            self.metrics.gauge(f"service.jobs.{state}").set(n)
        self.metrics.gauge("service.points.pending").set(pending)
        self.metrics.gauge("service.points.leased").set(leased)
        self.metrics.gauge("service.queue.depth").set(pending + leased)
        self.metrics.gauge("service.breaker.trips").set(breaker_trips)
        self.metrics.gauge("service.breaker.open_cells").set(breaker_open)
        self.metrics.gauge("service.uptime_s").set(
            round(time.time() - self.started_at, 3))


class SweepServiceHandler(BaseHTTPRequestHandler):
    """Routes one connection's requests against the job store."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    @property
    def store(self) -> JobStore:
        return self.server.store  # type: ignore[attr-defined]

    # Access logs flow through the ``repro`` logging hierarchy rather
    # than the stdlib's bare stderr writes: request lines at DEBUG
    # (``repro -vv`` surfaces live traffic), failures at WARNING so
    # they are visible at the default level.
    def log_message(self, fmt, *args):  # noqa: N802 (stdlib name)
        logger.debug("%s %s", self.address_string(), fmt % args)

    def log_error(self, fmt, *args):  # noqa: N802 (stdlib name)
        logger.warning("%s %s", self.address_string(), fmt % args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def send_response(self, code, message=None):
        self._status = code  # remembered for the request metrics
        super().send_response(code, message)

    def _dispatch(self, method: str) -> None:
        started = time.monotonic()
        self._status = 0
        label = "other"
        try:
            url = urlparse(self.path)
            parts = [p for p in url.path.split("/") if p]
            query = parse_qs(url.query)
            label = self._route_label(parts)
            handler = self._route(method, parts)
            if handler is None:
                self._error(404, f"no such endpoint: "
                            f"{method} {url.path}")
                return
            handler(parts, query)
        except ConfigValidationError as exc:
            self._error(400, str(exc))
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to answer
        except Exception as exc:  # never a traceback on the wire
            logger.exception("unhandled error serving %s %s",
                             method, self.path)
            self._error(500, f"internal error: {type(exc).__name__}")
        finally:
            self.server.observe_request(  # type: ignore[attr-defined]
                label, method, self._status,
                time.monotonic() - started)

    @staticmethod
    def _route_label(parts) -> str:
        """A low-cardinality route label for the request metrics."""
        if parts[:1] != ["v1"]:
            return "other"
        if len(parts) == 2 and parts[1] in ("ping", "jobs", "metrics",
                                            "fleet"):
            return parts[1]
        if len(parts) == 3 and parts[1] == "jobs":
            return "job"
        if len(parts) == 4 and parts[1] == "jobs" and parts[3] in (
                "result", "events", "cancel"):
            return f"job.{parts[3]}"
        return "other"

    def _route(self, method: str, parts):
        if parts == ["v1", "ping"] and method == "GET":
            return self._ping
        if parts == ["v1", "metrics"] and method == "GET":
            return self._metrics
        if parts == ["v1", "fleet"] and method == "GET":
            return self._fleet
        if parts == ["v1", "jobs"]:
            return {"GET": self._list_jobs,
                    "POST": self._submit}.get(method)
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            return self._job_status if method == "GET" else None
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"]:
            tail = parts[3]
            if method == "GET" and tail == "result":
                return self._job_result
            if method == "GET" and tail == "events":
                return self._job_events
            if method == "POST" and tail == "cancel":
                return self._job_cancel
        return None

    def do_GET(self):  # noqa: N802
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802
        self._dispatch("POST")

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ConfigValidationError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit")
        return self.rfile.read(length) if length else b""

    def _record_or_404(self, job_id: str) -> Optional[JobRecord]:
        record = self.store.read(job_id)
        if record is None:
            self._error(404, f"unknown job {job_id!r}")
        return record

    # -- endpoints ----------------------------------------------------------

    def _ping(self, parts, query) -> None:
        self._send_json(200, {
            "service": "repro-sweep-service",
            "version": _package_version(),
            "schema": JOB_SCHEMA,
            "generation": RESULT_GENERATION})

    def _metrics(self, parts, query) -> None:
        server = self.server  # type: ignore[assignment]
        with server.metrics_lock:  # type: ignore[attr-defined]
            server.refresh_store_metrics()  # type: ignore[attr-defined]
            body = render_exposition(
                server.metrics).encode()  # type: ignore[attr-defined]
        self.send_response(200)
        self.send_header("Content-Type", EXPOSITION_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _fleet(self, parts, query) -> None:
        try:
            stale_after = float(
                query.get("stale_after", [DEFAULT_STALE_AFTER_S])[0])
        except (TypeError, ValueError):
            raise ConfigValidationError(
                "stale_after must be a number of seconds")
        self._send_json(200, read_fleet(self.store.root,
                                        stale_after_s=stale_after))

    def _submit(self, parts, query) -> None:
        try:
            payload = json.loads(self._read_body() or b"null")
        except json.JSONDecodeError as exc:
            raise ConfigValidationError(
                f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ConfigValidationError(
                "request body must be a JSON object (a spec, or "
                "{'spec': ..., 'point_telemetry': bool})")
        point_telemetry = True
        spec_data = payload
        if "spec" in payload and isinstance(payload["spec"], dict):
            spec_data = payload["spec"]
            point_telemetry = bool(payload.get("point_telemetry", True))
        spec = ExperimentSpec.from_dict(spec_data)
        spec.validate()
        created = self.store.read(job_id_for(spec)) is None
        record = self.store.submit(spec, point_telemetry=point_telemetry)
        self._send_json(201 if created else 200, record.to_dict())

    def _list_jobs(self, parts, query) -> None:
        self._send_json(200, {
            "jobs": [r.to_dict() for r in self.store.list_jobs()]})

    def _job_status(self, parts, query) -> None:
        record = self._record_or_404(parts[2])
        if record is None:
            return
        payload = record.to_dict()
        try:
            payload["points"] = self.store.counts(
                record.job_id, lease_ttl_s=DEFAULT_LEASE_TTL_S)
        except ConfigValidationError:
            payload["points"] = {}
        if payload["points"]:
            payload["progress"] = job_progress(
                payload["points"],
                self.store.events(record.job_id).read())
        self._send_json(200, payload)

    def _job_result(self, parts, query) -> None:
        record = self._record_or_404(parts[2])
        if record is None:
            return
        path = self.store.result_path(record.job_id)
        if not path.exists() and record.state in ("queued", "running"):
            # Workers may all have exited between the last checkpoint
            # and aggregation; finalizing here is pure store-reading.
            try:
                spec = record.experiment_spec()
                if _maybe_finalize(self.store, record.job_id, spec,
                                   DEFAULT_LEASE_TTL_S):
                    record = self.store.read(record.job_id) or record
            except ConfigValidationError:
                pass
        if not path.exists():
            self._error(409, f"job {record.job_id!r} has no result yet "
                        f"(state {record.state!r})")
            return
        try:
            self._send_json(200, json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError) as exc:
            self._error(500, f"stored result unreadable: {exc}")

    def _job_cancel(self, parts, query) -> None:
        self._read_body()  # drain so keep-alive stays usable
        record = self.store.cancel(parts[2])
        if record is None:
            self._error(404, f"unknown job {parts[2]!r}")
            return
        self._send_json(200, record.to_dict())

    def _job_events(self, parts, query) -> None:
        record = self._record_or_404(parts[2])
        if record is None:
            return
        follow = (query.get("follow", ["1"])[0] or "1") not in ("0",
                                                                "false")
        timeout_s = min(float(query.get("timeout", ["60"])[0] or 60),
                        MAX_FOLLOW_S)
        heartbeat_s = float(query.get(
            "heartbeat", [DEFAULT_HEARTBEAT_S])[0] or 0)
        log = self.store.events(record.job_id)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            if follow:
                # Heartbeat chunks keep read-timeout proxies from
                # dropping an idle follower while a slow point runs.
                stream = log.tail(done_events=TERMINAL_EVENTS,
                                  timeout_s=timeout_s,
                                  heartbeat_s=heartbeat_s or None)
            else:
                stream = iter(log.read())
            for event in stream:
                self._write_chunk(
                    (json.dumps(event, sort_keys=True) + "\n").encode())
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
        self.wfile.flush()


def create_server(root: Union[str, Path], host: str = "127.0.0.1",
                  port: int = 8023) -> SweepServiceServer:
    """A bound (not yet serving) server over the store at ``root``.

    Split from :func:`serve` so embedders and tests can bind port 0,
    read back ``server.server_address``, and drive ``serve_forever``
    from their own thread.
    """
    store = JobStore(root)
    store.jobs_dir.mkdir(parents=True, exist_ok=True)
    return SweepServiceServer((host, port), store)


def serve(root: Union[str, Path], host: str = "127.0.0.1",
          port: int = 8023,
          ready: Optional[threading.Event] = None) -> None:
    """Run the service at ``http://host:port`` until interrupted.

    Blocks the calling thread in ``serve_forever``; ``ready`` (when
    given) is set once the socket is bound and requests will be
    answered.  SIGINT/SIGTERM handling is the CLI's business
    (:mod:`repro.cli` translates both into a clean shutdown, exit 0).
    """
    server = create_server(root, host, port)
    bound = server.server_address
    logger.info("repro serve: http://%s:%s -> %s", bound[0], bound[1],
                root)
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
