"""Distributed sweep service: HTTP API + durable queue + worker fleet.

The local sweep engine (:mod:`repro.experiments`) already solved the
hard distribution problems — SIGKILL-safe per-point checkpoints,
supervised execution, deterministic chaos.  This package makes them
reachable over the network with three cooperating roles that share
nothing but a store directory:

* ``repro serve`` (:mod:`.server`) — a stdlib ``ThreadingHTTPServer``
  speaking the versioned ``/v1`` JSON API: submit specs, poll status,
  stream progress events (chunked JSONL), fetch aggregated matrices.
* ``repro worker`` (:mod:`.worker`) — any number of processes, on any
  number of hosts, claiming grid points under renewable leases
  (:mod:`.queue`) and executing them through the exact local sweep
  stack; a worker SIGKILLed mid-point simply stops renewing and a peer
  adopts the lease.
* :class:`SweepClient` (:mod:`.client`) — the typed client the
  ``repro submit``/``repro status`` subcommands and tests use.

Durability lives in :mod:`.jobs` (cachefile-backed job records, the
queue-is-the-store design) and the wire format in :mod:`.schema`
(``repro.job/v1``).  Live observability lives in :mod:`.fleet`
(per-worker health snapshots behind ``GET /v1/fleet``, progress/ETA
behind ``GET /v1/jobs/<id>``) and the server's ``GET /v1/metrics``
Prometheus exposition.  ``docs/service.md`` has the architecture
diagram, lease semantics and curl examples.
"""

from .client import SweepClient
from .fleet import (DEFAULT_STALE_AFTER_S, FleetReporter, job_progress,
                    read_fleet)
from .jobs import JobStore, TERMINAL_EVENTS
from .queue import DEFAULT_LEASE_TTL_S, PointClaim, claim_point
from .schema import JOB_SCHEMA, JOB_STATES, JobRecord, job_id_for
from .server import create_server, serve
from .worker import default_worker_id, run_worker

__all__ = [
    "SweepClient",
    "serve",
    "create_server",
    "run_worker",
    "default_worker_id",
    "JobStore",
    "JobRecord",
    "JOB_SCHEMA",
    "JOB_STATES",
    "TERMINAL_EVENTS",
    "job_id_for",
    "claim_point",
    "PointClaim",
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_STALE_AFTER_S",
    "FleetReporter",
    "job_progress",
    "read_fleet",
]
