"""Durable, cachefile-backed job store shared by server and workers.

One directory per service instance (the ``--root`` every ``repro
serve`` / ``repro worker`` / multi-host deployment points at, typically
over a shared filesystem)::

    <root>/jobs/<job_id>/
      job.json       # the JobRecord (schema.py), atomically replaced
      events.jsonl   # ProgressLog: submitted/claimed/point_done/...
      store/         # the sweep ArtifactStore (checkpoints, failures)
      leases/        # one <point_id>.lease per in-flight point
      traces/        # correlated per-point telemetry streams (JSONL)

plus one ``<root>/fleet/<worker_id>.json`` health snapshot per worker
(:mod:`repro.service.fleet`), aggregated by ``GET /v1/fleet``.

There is deliberately **no queue datastructure**: the queue *is* the
store.  A point is pending iff it has neither an artifact in
``store/points/`` nor a fresh lease in ``leases/`` nor a terminal
failure in ``store/failures.json`` — all derived from files whose
writes are atomic (:mod:`repro.cachefile`), so the whole service state
survives SIGKILL of any process at any instruction and needs no
recovery step beyond reading the directory again.

Job-record updates are read-modify-write under the record's sidecar
lock; every transition is mirrored into ``events.jsonl`` so clients can
follow a job without polling ``job.json``.
"""

from __future__ import annotations

import json
import logging
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from .. import cachefile
from ..errors import ConfigValidationError
from ..experiments import ArtifactStore, ExperimentSpec
from ..telemetry.progress import ProgressLog
from .schema import JobRecord

logger = logging.getLogger(__name__)

JOBS_DIR = "jobs"
RECORD_NAME = "job.json"
EVENTS_NAME = "events.jsonl"
STORE_DIR = "store"
LEASES_DIR = "leases"
RESULT_NAME = "result.json"
TRACES_DIR = "traces"

#: Events that end a job's event stream (used by followers to stop).
TERMINAL_EVENTS = frozenset({"job_done", "job_failed", "job_cancelled"})


class JobStore:
    """All durable jobs under one service root."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # -- paths --------------------------------------------------------------

    @property
    def jobs_dir(self) -> Path:
        """Directory holding one subdirectory per job."""
        return self.root / JOBS_DIR

    def job_dir(self, job_id: str) -> Path:
        """One job's directory."""
        return self.jobs_dir / job_id

    def record_path(self, job_id: str) -> Path:
        """Path of one job's record file."""
        return self.job_dir(job_id) / RECORD_NAME

    def sweep_store(self, job_id: str) -> ArtifactStore:
        """The job's sweep artifact store (checkpoints + failures)."""
        return ArtifactStore(self.job_dir(job_id) / STORE_DIR)

    def leases_dir(self, job_id: str) -> Path:
        """Directory of the job's per-point lease files."""
        return self.job_dir(job_id) / LEASES_DIR

    def events(self, job_id: str) -> ProgressLog:
        """The job's progress event stream."""
        return ProgressLog(self.job_dir(job_id) / EVENTS_NAME)

    def result_path(self, job_id: str) -> Path:
        """Path of the cached aggregated matrix."""
        return self.job_dir(job_id) / RESULT_NAME

    def traces_dir(self, job_id: str) -> Path:
        """Directory of the job's correlated per-point trace streams."""
        return self.job_dir(job_id) / TRACES_DIR

    @property
    def fleet_dir(self) -> Path:
        """Directory of the per-worker health snapshots (`/v1/fleet`)."""
        from .fleet import FLEET_DIR
        return self.root / FLEET_DIR

    # -- submission ---------------------------------------------------------

    def submit(self, spec: ExperimentSpec,
               point_telemetry: bool = True) -> JobRecord:
        """Persist a job for ``spec``; idempotent per grid fingerprint.

        The job id is content-addressed, so submitting the same grid
        twice returns the existing job — a client retrying a timed-out
        submit can never fork a duplicate sweep.  A terminal
        ``failed``/``cancelled`` job is re-queued instead (its completed
        checkpoints are still in the store, so only the missing points
        rerun); a ``done`` job is returned as-is and its cached result
        is immediately servable.
        """
        record = JobRecord.create(spec, point_telemetry=point_telemetry)
        path = self.record_path(record.job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        with cachefile.file_lock(path):
            existing = self._read_unlocked(record.job_id)
            if existing is not None:
                if existing.state in ("failed", "cancelled"):
                    existing.state = "queued"
                    existing.error = ""
                    existing.finished_at = None
                    existing.updated_at = round(time.time(), 6)
                    self._write_unlocked(existing)
                    # Recorded failures made those points non-pending;
                    # a requeue is an explicit request to try them again.
                    store = self.sweep_store(record.job_id)
                    for point_id in list(store.load_point_failures()):
                        store.clear_point_failure(point_id)
                    try:
                        self.result_path(record.job_id).unlink()
                    except OSError:
                        pass
                    self.events(record.job_id).emit(
                        "job_requeued", job_id=record.job_id)
                return existing
            self._write_unlocked(record)
        self.sweep_store(record.job_id).initialize(spec)
        self.leases_dir(record.job_id).mkdir(parents=True, exist_ok=True)
        self.events(record.job_id).emit(
            "job_submitted", job_id=record.job_id, spec_name=spec.name,
            total_points=record.total_points,
            fingerprint=record.fingerprint)
        return record

    # -- record I/O ---------------------------------------------------------

    def read(self, job_id: str) -> Optional[JobRecord]:
        """One job's record, or None when unknown."""
        with cachefile.file_lock(self.record_path(job_id)):
            return self._read_unlocked(job_id)

    def update(self, job_id: str,
               mutate: Callable[[JobRecord], None]) -> Optional[JobRecord]:
        """Atomically read-modify-write one record (None when unknown).

        ``mutate`` runs under the record lock; concurrent workers
        transitioning the same job (two workers finishing the last two
        points at once) serialize here instead of losing updates.
        """
        path = self.record_path(job_id)
        with cachefile.file_lock(path):
            record = self._read_unlocked(job_id)
            if record is None:
                return None
            mutate(record)
            record.updated_at = round(time.time(), 6)
            self._write_unlocked(record)
            return record

    def list_jobs(self) -> List[JobRecord]:
        """Every readable job, newest submission first."""
        if not self.jobs_dir.is_dir():
            return []
        records = []
        for entry in sorted(self.jobs_dir.iterdir()):
            if not (entry / RECORD_NAME).exists():
                continue
            record = self.read(entry.name)
            if record is not None:
                records.append(record)
        records.sort(key=lambda r: (-r.submitted_at, r.job_id))
        return records

    def _read_unlocked(self, job_id: str) -> Optional[JobRecord]:
        path = self.record_path(job_id)
        if not path.exists():
            return None
        try:
            return JobRecord.from_dict(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError,
                ConfigValidationError) as exc:
            cachefile.quarantine(path, f"unreadable job record: {exc}")
            return None

    def _write_unlocked(self, record: JobRecord) -> None:
        cachefile.atomic_write_bytes(
            self.record_path(record.job_id),
            json.dumps(record.to_dict(), indent=2,
                       sort_keys=True).encode())

    # -- lifecycle ----------------------------------------------------------

    def cancel(self, job_id: str) -> Optional[JobRecord]:
        """Move a non-terminal job to ``cancelled`` (workers stop at the
        next point boundary; in-flight points finish and checkpoint).

        Idempotent: cancelling an already-terminal job changes nothing
        and emits no second terminal event (followers stop at the first
        one, so a duplicate would strand late readers mid-stream)."""
        transitioned = []

        def mutate(record: JobRecord) -> None:
            if not record.terminal:
                record.state = "cancelled"
                record.finished_at = round(time.time(), 6)
                transitioned.append(True)

        record = self.update(job_id, mutate)
        if record is not None and transitioned:
            self.events(job_id).emit("job_cancelled", job_id=job_id)
        return record

    def counts(self, job_id: str,
               spec: Optional[ExperimentSpec] = None,
               lease_ttl_s: float = 30.0) -> Dict[str, int]:
        """Live point accounting: completed/failed/leased/pending."""
        record = self.read(job_id)
        if record is None:
            return {}
        spec = spec or record.experiment_spec()
        store = self.sweep_store(job_id)
        ids = [p.point_id for p in spec.expand()]
        done = set(store.completed_ids()) & set(ids)
        failed = set(store.load_point_failures()) & set(ids) - done
        leased = set()
        now = time.time()
        leases = self.leases_dir(job_id)
        if leases.is_dir():
            for lease in leases.glob("*.lease"):
                try:
                    fresh = now - lease.stat().st_mtime <= lease_ttl_s
                except OSError:
                    continue
                if fresh and lease.stem in ids:
                    leased.add(lease.stem)
        leased -= done | failed
        pending = [i for i in ids if i not in done | failed | leased]
        return {"total": len(ids), "completed": len(done),
                "failed": len(failed), "leased": len(leased),
                "pending": len(pending)}
