"""The worker fleet: claim, execute, checkpoint, finalize.

``repro worker --root DIR`` runs this loop.  Any number of workers —
started before or after the jobs they serve, on one host or many
sharing the store directory — cooperate with **no coordinator
process**: each scans the job store, claims one pending point under a
lease (:mod:`repro.service.queue`), executes it through the *exact*
local sweep stack, and the worker that accounts for the last point
aggregates the matrix and finalizes the job.  The server
(:mod:`repro.service.server`) only reads; killing it mid-sweep costs
nothing but the API.

"Exact local stack" is the correctness argument of the whole service:
a claimed point runs through :func:`repro.harness.run_pairs` with the
same ``_point_runner``, the same supervised fork backend
(:class:`repro.supervision.Supervisor` — heartbeat hang detection,
SIGTERM→SIGKILL preemption, jittered retries), the same store-persisted
circuit breaker, and the same chaos injection sites as a local ``repro
sweep``.  A chaos plan in the worker's environment therefore fires
per-point exactly as it does locally, which is what lets the e2e suite
demand bit-identical matrices between the two paths.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import time
from pathlib import Path
from typing import Optional, Set, Union

from .. import cachefile, chaos, harness, supervision
from ..errors import ConfigValidationError
from ..experiments import ExperimentSpec, speedup_matrix
from ..experiments.engine import _point_runner, sweep_result_from_store
from ..harness import RESULT_GENERATION
from ..supervision import CircuitBreaker, SupervisionPolicy, Supervisor
from .fleet import DEFAULT_FLEET_INTERVAL_S, FleetReporter
from .jobs import JobStore
from .queue import DEFAULT_LEASE_TTL_S, PointClaim, claim_point
from .schema import JobRecord

logger = logging.getLogger(__name__)

#: Wire discriminator of the cached ``result.json`` payload.
RESULT_SCHEMA = "repro.result/v1"


def default_worker_id() -> str:
    """Host-qualified worker identity (shows up in leases and events)."""
    return f"{socket.gethostname()}-{os.getpid()}"


def run_worker(root: Union[str, Path],
               worker_id: Optional[str] = None,
               poll_s: float = 0.5,
               lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
               idle_exit_s: Optional[float] = None,
               max_points: Optional[int] = None,
               once: bool = False,
               policy: Optional[SupervisionPolicy] = None,
               stop=None,
               fleet_interval_s: float = DEFAULT_FLEET_INTERVAL_S) -> int:
    """Serve the job store at ``root`` until told (or idle) to stop.

    Returns the number of points this worker executed.  Exit
    conditions: ``stop`` (a ``threading.Event``) is set, ``max_points``
    points were executed, ``once`` is set and a full scan found no
    claimable work, or ``idle_exit_s`` seconds pass without any work
    (None = wait forever — the daemon default).

    For the whole run a :class:`~repro.service.fleet.FleetReporter`
    beats an atomic ``<root>/fleet/<worker_id>.json`` health snapshot
    every ``fleet_interval_s`` seconds — the raw material of the
    server's ``GET /v1/fleet`` — and a SIGKILL simply stops the beat,
    so the fleet view flags this worker stale by mtime exactly like an
    abandoned lease.
    """
    store = JobStore(root)
    worker_id = worker_id or default_worker_id()
    logger.info("worker %s serving %s", worker_id, store.root)
    reporter = FleetReporter(store.root, worker_id,
                             interval_s=fleet_interval_s).start()
    if os.environ.get(chaos.ENV_SEED) is not None:
        reporter.note(chaos_active=True)
    try:
        return _worker_loop(store, worker_id, poll_s, lease_ttl_s,
                            idle_exit_s, max_points, once, policy, stop,
                            reporter)
    finally:
        reporter.stop()


def _worker_loop(store: JobStore, worker_id: str, poll_s: float,
                 lease_ttl_s: float, idle_exit_s: Optional[float],
                 max_points: Optional[int], once: bool,
                 policy: Optional[SupervisionPolicy], stop,
                 reporter: FleetReporter) -> int:
    executed = 0
    idle_since: Optional[float] = None
    refused: Set[str] = set()
    while not (stop is not None and stop.is_set()):
        claimed_any = False
        for record in store.list_jobs():
            if stop is not None and stop.is_set():
                break
            if record.state not in ("queued", "running"):
                continue
            spec = _job_spec(store, record, refused)
            if spec is None:
                continue
            ran = _drain_job(store, record.job_id, spec, worker_id,
                             lease_ttl_s, policy, stop,
                             remaining=None if max_points is None
                             else max_points - executed,
                             reporter=reporter)
            executed += ran
            claimed_any = claimed_any or ran > 0
            if max_points is not None and executed >= max_points:
                return executed
        if claimed_any:
            idle_since = None
            continue
        if once:
            return executed
        now = time.time()
        idle_since = idle_since if idle_since is not None else now
        if idle_exit_s is not None and now - idle_since >= idle_exit_s:
            logger.info("worker %s idle for %.1fs, exiting",
                        worker_id, idle_exit_s)
            return executed
        if stop is not None:
            stop.wait(poll_s)
        else:
            time.sleep(poll_s)
    return executed


def _job_spec(store: JobStore, record: JobRecord,
              refused: Set[str]) -> Optional[ExperimentSpec]:
    """The job's validated spec, or None when this worker must not run it.

    A generation mismatch is refused (logged + one event, the job is
    left for a matching worker); an unparsable spec fails the job —
    no worker will ever be able to run it.
    """
    if record.generation != RESULT_GENERATION:
        if record.job_id not in refused:
            refused.add(record.job_id)
            logger.warning(
                "job %s was submitted at generation %s; this worker "
                "runs generation %s and refuses it", record.job_id,
                record.generation, RESULT_GENERATION)
            store.events(record.job_id).emit(
                "generation_refused", job_id=record.job_id,
                job_generation=record.generation,
                worker_generation=RESULT_GENERATION)
        return None
    try:
        spec = record.experiment_spec()
        spec.validate()
        store.sweep_store(record.job_id).initialize(spec)
        return spec
    except (ConfigValidationError, KeyError, TypeError) as exc:
        _finish_job(store, record.job_id, "failed",
                    error=f"{type(exc).__name__}: {exc}")
        return None


def _drain_job(store: JobStore, job_id: str, spec: ExperimentSpec,
               worker_id: str, lease_ttl_s: float,
               policy: Optional[SupervisionPolicy], stop,
               remaining: Optional[int],
               reporter: Optional[FleetReporter] = None) -> int:
    """Claim and execute points of one job until none remains."""
    ran = 0
    while not (stop is not None and stop.is_set()):
        if remaining is not None and ran >= remaining:
            return ran
        fresh = store.read(job_id)
        if fresh is None or fresh.terminal:
            return ran
        claim = claim_point(store, job_id, spec, worker_id,
                            lease_ttl_s=lease_ttl_s)
        if claim is None:
            if _maybe_finalize(store, job_id, spec, lease_ttl_s):
                return ran
            # Finalize declined: either another worker still holds a
            # live lease (it will finalize), or verification just
            # quarantined a torn artifact and re-opened its point.
            # One more scan tells the two apart.
            claim = claim_point(store, job_id, spec, worker_id,
                                lease_ttl_s=lease_ttl_s)
            if claim is None:
                return ran
        _mark_running(store, job_id, worker_id)
        store.events(job_id).emit(
            "point_claimed", job_id=job_id,
            point_id=claim.point.point_id, owner=worker_id,
            adopted_from=claim.adopted_from)
        if reporter is not None:
            reporter.point_started(job_id, claim.point.point_id)
        try:
            outcome = _execute_claim(store, fresh, spec, claim,
                                     lease_ttl_s, policy)
        finally:
            claim.release()
        if reporter is not None:
            reporter.point_finished(outcome.status == "ok",
                                    attempts=outcome.attempts)
        ran += 1
        _maybe_finalize(store, job_id, spec, lease_ttl_s)
        if reporter is not None:
            reporter.idle()
    return ran


def _mark_running(store: JobStore, job_id: str, worker_id: str) -> None:
    """``queued`` → ``running`` exactly once (first claimer wins)."""
    transitioned = []

    def mutate(record: JobRecord) -> None:
        if record.state == "queued":
            record.state = "running"
            transitioned.append(True)

    store.update(job_id, mutate)
    if transitioned:
        store.events(job_id).emit("job_started", job_id=job_id,
                                  worker=worker_id)


def _execute_claim(store: JobStore, record: JobRecord,
                   spec: ExperimentSpec, claim: PointClaim,
                   lease_ttl_s: float,
                   policy: Optional[SupervisionPolicy]):
    """Run one claimed point through the local sweep stack.

    The lease renewer beats for the whole execution (simulation plus
    supervised retries), so a live worker grinding a slow point is
    never mistaken for a dead one; it stops before the lease is
    released either way.  Returns the harness outcome of the point.

    With per-point telemetry on, the runner also writes a correlated
    trace stream to ``<job>/traces/<point_id>.<pid>.jsonl`` — every
    record stamped with this job/worker/point — which is what lets
    ``repro trace --store DIR`` merge a whole fleet's execution into
    one timeline afterwards.
    """
    point = claim.point
    sweep_store = store.sweep_store(claim.job_id)
    events = store.events(claim.job_id)
    renewer = claim.renewer(lease_ttl_s)
    wall_start = time.time()
    try:
        run_kwargs = dict(
            frames=spec.frames, timeout_s=spec.timeout_s,
            max_attempts=spec.retries + 1, backoff_s=spec.backoff_s,
            runner=_point_runner, workers=1,
            points={point.point_id: point},
            store_root=str(sweep_store.root),
            point_telemetry=record.point_telemetry,
            driver_pid=os.getpid())
        if record.point_telemetry:
            run_kwargs.update(
                trace_dir=str(store.traces_dir(claim.job_id)),
                correlation={"job_id": claim.job_id,
                             "worker_id": claim.worker_id})
        breaker: Optional[CircuitBreaker] = None
        if supervision.available():
            sup_policy = policy or SupervisionPolicy()
            breaker = CircuitBreaker.from_state(
                sweep_store.load_breaker_state(),
                threshold=sup_policy.breaker_threshold,
                cooldown_s=sup_policy.breaker_cooldown_s)
            run_kwargs.update(
                supervisor=Supervisor(policy=sup_policy, breaker=breaker),
                breaker_key_for=lambda bench, _pid:
                    f"{bench}|{point.kind}")
        report = harness.run_pairs([(point.benchmark, point.point_id)],
                                   **run_kwargs)
        if breaker is not None:
            sweep_store.record_breaker_state(breaker.to_state())
        outcome = report.outcomes[0]
    finally:
        renewer.stop()
    elapsed = round(time.time() - wall_start, 6)
    if outcome.status == "ok":
        events.emit("point_done", job_id=claim.job_id,
                    point_id=point.point_id, owner=claim.worker_id,
                    cycles=outcome.summary.total_cycles,
                    attempts=outcome.attempts,
                    provenance=outcome.provenance or "completed",
                    elapsed_s=elapsed)
    else:
        sweep_store.record_point_failure(
            point.point_id, error=outcome.error or "",
            error_type=outcome.error_type or outcome.status)
        events.emit("point_failed", job_id=claim.job_id,
                    point_id=point.point_id, owner=claim.worker_id,
                    error=outcome.error or "",
                    error_type=outcome.error_type or outcome.status,
                    attempts=outcome.attempts, elapsed_s=elapsed)
    return outcome


def _maybe_finalize(store: JobStore, job_id: str, spec: ExperimentSpec,
                    lease_ttl_s: float) -> bool:
    """Aggregate and finish the job once every point is accounted for.

    Safe to call from any worker at any time: the counts gate rejects
    jobs with pending or actively-leased points, the matrix is a pure
    function of the store (two racing finalizers write identical
    bytes), and the state transition is guarded so events fire once.
    """
    counts = store.counts(job_id, spec, lease_ttl_s=lease_ttl_s)
    if not counts or counts["pending"] or counts["leased"]:
        return False
    # The counts gate goes by artifact existence, which a torn write
    # (power loss, chaos 'corrupt') satisfies with bytes that fail
    # their checksum.  Read every completed point through the checksum
    # layer first: a corrupt artifact is quarantined aside, which
    # re-opens its point, and the re-checked gate declines so the
    # caller rescans and reruns it instead of serving a partial matrix.
    store.sweep_store(job_id).load_completed(spec.expand())
    counts = store.counts(job_id, spec, lease_ttl_s=lease_ttl_s)
    if counts["pending"] or counts["leased"]:
        return False
    result = sweep_result_from_store(spec,
                                     store.sweep_store(job_id).root)
    matrix = speedup_matrix(result)
    payload = {"schema": RESULT_SCHEMA,
               "generation": RESULT_GENERATION, "job_id": job_id,
               "fingerprint": spec.fingerprint(),
               "partial": matrix.partial,
               "counts": counts, "matrix": matrix.to_dict(),
               "markdown": matrix.to_markdown()}
    cachefile.atomic_write_bytes(
        store.result_path(job_id),
        json.dumps(payload, indent=2, sort_keys=True).encode())
    state = "failed" if counts["failed"] else "done"
    error = (f"{counts['failed']} of {counts['total']} points failed"
             if counts["failed"] else "")
    return _finish_job(store, job_id, state, error=error, counts=counts)


def _finish_job(store: JobStore, job_id: str, state: str,
                error: str = "", counts: Optional[dict] = None) -> bool:
    """Terminal transition + event, exactly once across the fleet."""
    transitioned = []

    def mutate(record: JobRecord) -> None:
        if record.terminal:
            return
        record.state = state
        record.error = error
        record.finished_at = round(time.time(), 6)
        transitioned.append(True)

    store.update(job_id, mutate)
    if transitioned:
        store.events(job_id).emit(
            f"job_{state}", job_id=job_id, error=error,
            **({"counts": counts} if counts else {}))
        logger.info("job %s finished: %s%s", job_id, state,
                    f" ({error})" if error else "")
    return bool(transitioned)
