"""Command-line interface: ``repro`` (or ``python -m repro``).

Subcommands:

* ``repro list`` — show the benchmark suite (Table II reconstruction).
* ``repro run --benchmark CCS --config libra --frames 8`` — simulate one
  benchmark under one GPU configuration and print the frame summary.
* ``repro compare --benchmark CCS --frames 8`` — baseline vs PTR vs LIBRA
  side by side.
* ``repro heatmap --benchmark SuS`` — ASCII per-tile DRAM heatmap (Fig. 2).
* ``repro trace tri_overlap --out trace.json`` — run with telemetry on
  and export a Chrome/Perfetto trace (``repro trace --benchmark GDL
  --out traces.jsonl.gz`` keeps the original frame-trace export).
* ``repro suite --benchmarks CCS,GDL --config libra [--workers N]`` —
  supervised sweep (timeouts, retries, graceful degradation, optional
  process-parallel execution; see ``repro.harness.run_suite``).
* ``repro sweep --spec fig18.yaml`` (or inline: ``repro sweep
  --benchmarks tri_overlap --axis raster_units=1,2,4 --axis
  supertile=2,4``) — declarative, resumable parameter-grid sweep with
  per-point crash-safe checkpoints, a speedup-matrix report and
  grid-wide merged telemetry counters (see ``repro.experiments``).
* ``repro perf record [--quick]`` / ``repro perf compare --baseline
  BENCH_1.json`` — record a fingerprinted performance baseline
  (median-of-k wall-clock + key simulated metrics over a curated case
  set) and compare a later run against it with MAD-based noise bands.
  Compare exits 0 when clean, 1 on a regression or simulated-metric
  drift, 2 on usage errors (see ``repro.perf``).
* ``repro report tri_overlap`` (or ``--events run.jsonl``) — run with
  telemetry (or post-process an exported JSONL stream) and emit a
  markdown analysis: DRAM bandwidth burstiness, per-RU load balance,
  FSM decision timeline, cache hit-ratio trends, anomaly flags.
* ``repro figures [--only FIG,...] [--quick] [--out DIR]`` — the
  one-command paper-reproduction pipeline: run the committed figure
  registry through the resumable sweep engine, evaluate every shape
  claim, and write ``figures_manifest.json`` plus a self-contained
  HTML dashboard (``--format md`` regenerates EXPERIMENTS.md instead).
  Exit 0 when every shape claim holds, 1 on any regression, 2 on
  usage errors (see ``repro.figures`` and ``docs/figures.md``).
* ``repro serve [--root DIR] [--host H] [--port P]`` / ``repro worker
  --root DIR`` / ``repro submit --server URL ...`` / ``repro status
  [JOB]`` — the distributed sweep service: a stdlib HTTP API accepting
  experiment specs as jobs, a worker fleet (any number of processes or
  hosts sharing the store directory) executing the grid under
  crash-safe point leases, and client commands that submit, stream
  progress and fetch the aggregated speedup matrix (see
  ``repro.service`` and ``docs/service.md``).
* ``repro fleet [--watch]`` — live service observability: the worker
  health roster (``GET /v1/fleet``) plus per-job progress and ETA,
  optionally as a self-refreshing terminal view; ``repro trace --store
  DIR`` merges a job's correlated per-point telemetry into one
  cross-worker Chrome/Perfetto timeline.

Flag conventions, shared across subcommands: single-target commands
take ``--benchmark``, sweep-style commands take ``--benchmarks`` (comma
list or ``all``); GPU variants are always ``--config KIND`` where KIND
follows the ``repro.config.parse_kind`` grammar (``baseline[N]``,
``ptr``, ``libra``, ``temperature[N]``, ``supertile[N]``);
``--frames/--width/--height`` work both globally and per subcommand,
and ``--workers/--timeout/--retries`` are shared by ``suite`` and
``sweep``.  The historical spellings (``--benchmarks`` on single-target
commands, ``--benchmark`` on sweep commands, ``--kind`` for
``--config``) still parse as hidden aliases that warn once per process.

Diagnostics go through the ``repro`` :mod:`logging` hierarchy; ``-v``
raises the level to INFO, ``-vv`` to DEBUG.

Exit-code contract, uniform across every subcommand (the full table
lives in ``docs/api.md``): **0** success (including a clean
SIGINT/SIGTERM shutdown of ``serve``/``worker``), **1** the work itself
failed — a :class:`~repro.errors.ReproError`, a perf/figures
regression, a sweep with failed points, a service job that ended
``failed``/``cancelled`` under ``submit --wait`` or ``status`` —
reported as a one-line stderr diagnostic, never a traceback, **2**
usage errors: unknown names or flags, an invalid spec or grid, an
unbindable ``serve`` address.
"""

from __future__ import annotations

import argparse
import contextlib
import logging
import sys
import warnings
from typing import List, Optional

from .config import GPUConfig, parse_kind
from .errors import ConfigValidationError, ReproError
from .gpu import GPUSimulator, RunResult
from .stats import format_table, render_ascii, tile_matrix
from .workloads import (TraceBuilder, benchmark_names,
                        make_scene_builder, micro_benchmark_names,
                        table2_rows)

DEFAULT_WIDTH = 960
DEFAULT_HEIGHT = 512
DEFAULT_TILE = 32

#: Historical tuple of the most common kinds (the full grammar is wider;
#: see :func:`repro.config.parse_kind`).  Kept for import compatibility.
CONFIG_NAMES = ("baseline", "ptr", "libra", "temperature")

logger = logging.getLogger("repro.cli")


class _DynamicStderrHandler(logging.StreamHandler):
    """StreamHandler that resolves ``sys.stderr`` at emit time.

    The stream must not be captured at handler-construction time: test
    harnesses (pytest's capsys) and daemonizing wrappers swap
    ``sys.stderr`` per scope, and a cached reference would write to a
    stale object.
    """

    def __init__(self):
        logging.Handler.__init__(self)

    @property
    def stream(self):
        return sys.stderr


class _DiagnosticFormatter(logging.Formatter):
    """``level: message`` with a lowercase level name.

    Keeps the CLI's long-standing one-line diagnostic shape
    (``error: SimulationError: frame 3 of GDL failed``) now that the
    lines are emitted through :mod:`logging`.
    """

    def format(self, record: logging.LogRecord) -> str:
        record.levelname = record.levelname.lower()
        return super().format(record)


_HANDLER = _DynamicStderrHandler()
_HANDLER.setFormatter(_DiagnosticFormatter("%(levelname)s: %(message)s"))


def configure_logging(verbosity: int = 0) -> None:
    """Wire the ``repro`` logger hierarchy to stderr.

    Idempotent; ``verbosity`` counts ``-v`` flags (0 → WARNING,
    1 → INFO, 2+ → DEBUG).  Everything under the ``repro`` logger
    (harness retries, cachefile quarantines, CLI diagnostics) flows
    through one handler.
    """
    root = logging.getLogger("repro")
    if _HANDLER not in root.handlers:
        root.addHandler(_HANDLER)
    if verbosity >= 2:
        root.setLevel(logging.DEBUG)
    elif verbosity == 1:
        root.setLevel(logging.INFO)
    else:
        root.setLevel(logging.WARNING)


#: Option strings whose deprecation warning already fired this process.
_WARNED_ALIASES: set = set()


class _DeprecatedAlias(argparse.Action):
    """A hidden alias option that warns once, then behaves normally.

    Stores into the canonical option's ``dest``; the first use per
    process emits a one-line diagnostic (and a ``DeprecationWarning``
    for programmatic callers), later uses are silent.
    """

    def __init__(self, option_strings, dest, canonical="", **kwargs):
        kwargs.setdefault("help", argparse.SUPPRESS)
        super().__init__(option_strings, dest, **kwargs)
        self.canonical = canonical

    def __call__(self, parser, namespace, values, option_string=None):
        if option_string not in _WARNED_ALIASES:
            _WARNED_ALIASES.add(option_string)
            message = (f"option {option_string} is deprecated and will "
                       f"be removed in 2.0; use {self.canonical}")
            warnings.warn(message, DeprecationWarning, stacklevel=2)
            logger.warning("%s", message)
        setattr(namespace, self.dest, values)


def _kind_arg(value: str) -> str:
    """argparse type for ``--config``: any kind :func:`parse_kind` accepts."""
    try:
        parse_kind(value)
    except ConfigValidationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _common_parent(frames_default: int = 8) -> argparse.ArgumentParser:
    """Shared ``--frames/--width/--height`` options for every subcommand.

    ``--width/--height`` default to ``SUPPRESS`` so a value given at the
    top level (``repro --width 256 run ...``) survives when the
    subcommand spelling (``repro run --width 256 ...``) is not used.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--frames", type=int, default=frames_default,
                        help="frames to simulate")
    parent.add_argument("--width", type=int, default=argparse.SUPPRESS,
                        help="screen width in pixels")
    parent.add_argument("--height", type=int, default=argparse.SUPPRESS,
                        help="screen height in pixels")
    return parent


def _supervision_parent() -> argparse.ArgumentParser:
    """Shared ``--workers/--timeout/--retries`` for suite and sweep."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = sequential)")
    parent.add_argument("--timeout", type=float, default=None,
                        help="per-run wall-clock budget, seconds")
    parent.add_argument("--retries", type=int, default=1,
                        help="extra attempts for transient failures")
    return parent


def _add_config_option(parser, default: str = "libra") -> None:
    """The canonical ``--config KIND`` plus its ``--kind`` alias."""
    parser.add_argument(
        "--config", default=default, type=_kind_arg, metavar="KIND",
        help="GPU variant kind: baseline[N], ptr, libra, "
             "temperature[N], supertile[N]")
    parser.add_argument("--kind", dest="config", type=_kind_arg,
                        action=_DeprecatedAlias, canonical="--config",
                        metavar="KIND")


def _add_benchmark_option(parser, choices, required: bool = True) -> None:
    """The canonical ``--benchmark`` plus its ``--benchmarks`` alias."""
    if required:
        group = parser.add_mutually_exclusive_group(required=True)
    else:
        group = parser
    group.add_argument("--benchmark", choices=choices)
    group.add_argument("--benchmarks", dest="benchmark", choices=choices,
                       action=_DeprecatedAlias, canonical="--benchmark")


def _add_benchmarks_option(parser, default: Optional[str] = "all") -> None:
    """The canonical plural ``--benchmarks`` plus ``--benchmark`` alias."""
    parser.add_argument("--benchmarks", default=default,
                        help="comma-separated codes, or 'all'")
    parser.add_argument("--benchmark", dest="benchmarks",
                        action=_DeprecatedAlias, canonical="--benchmarks")


def _build_traces(benchmark: str, frames: int, width: int, height: int):
    builder = make_scene_builder(benchmark, width, height)
    return TraceBuilder(builder, width, height, DEFAULT_TILE).build_many(frames)


def _make_simulator(config_name: str, width: int, height: int) -> GPUSimulator:
    config, scheduler = GPUConfig.build(config_name, screen_width=width,
                                        screen_height=height)
    return GPUSimulator(config, scheduler=scheduler, name=config_name)


def _summarize(result: RunResult) -> List:
    return [result.config_name, result.num_frames, result.total_cycles,
            f"{result.fps:.1f}", f"{result.mean_texture_hit_ratio:.3f}",
            f"{result.mean_texture_latency:.1f}",
            result.raster_dram_accesses,
            f"{result.total_energy_j * 1000:.2f}"]


_SUMMARY_HEADERS = ("config", "frames", "cycles", "fps", "tex hit",
                    "tex lat", "dram", "energy mJ")


def cmd_list(args) -> int:
    """Handle ``repro list``."""
    rows = [[r["name"], r["title"], r["style"],
             "memory" if r["memory_intensive"] else "compute",
             r["textures"], f"{r['texture_mb']:.1f}"]
            for r in table2_rows(args.width, args.height)]
    print(format_table(
        ("code", "title", "style", "class", "textures", "tex MB"), rows,
        title="Benchmark suite (Table II reconstruction)"))
    return 0


def _export_telemetry(path: str, events, metrics) -> int:
    """Write collected telemetry events to ``path``.

    ``.json`` exports Chrome trace-event format (Perfetto-loadable);
    anything else streams one JSON object per event (gzipped when the
    name ends in ``.gz``).  Returns the number of records written.
    """
    from .telemetry import JsonlSink, write_chrome_trace
    if path.endswith(".json"):
        return write_chrome_trace(path, events, metrics=metrics)
    import gzip
    opener = gzip.open if path.endswith(".gz") else open
    with opener(path, "wt", encoding="utf-8") as stream:
        sink = JsonlSink(stream)
        for event in events:
            sink.handle(event)
    return len(events)


def _run_with_telemetry(sim: GPUSimulator, traces, out: Optional[str]):
    """Run ``sim`` with the telemetry hub on; returns (result, snapshot)."""
    from .telemetry import HUB, RecordingSink, telemetry_session
    sink = RecordingSink()
    with telemetry_session(sink):
        result = sim.run(traces)
        snapshot = HUB.metrics.snapshot()
    if out:
        count = _export_telemetry(out, sink.events, snapshot)
        print(f"wrote {count} telemetry records to {out}")
    return result, snapshot


def _format_metrics(snapshot: dict) -> str:
    rows = [[name, f"{value:g}"] for name, value in sorted(snapshot.items())]
    return format_table(("metric", "value"), rows,
                        title="Telemetry metrics snapshot")


def cmd_run(args) -> int:
    """Handle ``repro run``."""
    traces = _build_traces(args.benchmark, args.frames, args.width,
                           args.height)
    sim = _make_simulator(args.config, args.width, args.height)
    snapshot = None
    if args.telemetry or args.telemetry_out:
        result, snapshot = _run_with_telemetry(sim, traces,
                                               args.telemetry_out)
    else:
        result = sim.run(traces)
    print(format_table(_SUMMARY_HEADERS, [_summarize(result)],
                       title=f"{args.benchmark} on {args.config}"))
    rows = [[f.frame_index, f.geometry_cycles, f.raster_cycles, f.order,
             f.supertile_size, f"{f.texture_hit_ratio:.3f}",
             f.raster_dram_accesses] for f in result.frames]
    print()
    print(format_table(("frame", "geom cyc", "raster cyc", "order",
                        "supertile", "tex hit", "dram"), rows))
    if snapshot is not None:
        print()
        print(_format_metrics(snapshot))
    return 0


def cmd_compare(args) -> int:
    """Handle ``repro compare`` (through the :mod:`repro.api` façade,
    so a compare row equals the sweep point with the same settings)."""
    from .api import compare
    report = compare(args.benchmark, kinds=("baseline", "ptr", "libra"),
                     frames=args.frames, width=args.width,
                     height=args.height)
    print(report.format())
    return 0


def _trace_fleet(args) -> int:
    """``repro trace --store DIR``: merge a service job's per-point
    streams + progress log into one cross-worker Chrome timeline."""
    from pathlib import Path

    from .telemetry import write_fleet_trace
    root = Path(args.store)
    jobs_dir = root / "jobs"
    if jobs_dir.is_dir():
        ids = sorted(p.name for p in jobs_dir.iterdir()
                     if (p / "job.json").exists())
        if args.job:
            if args.job not in ids:
                logger.error("unknown job %r; store has: %s", args.job,
                             ", ".join(ids) or "none")
                return 2
            job_dir = jobs_dir / args.job
        elif len(ids) == 1:
            job_dir = jobs_dir / ids[0]
        else:
            logger.error("store has %d jobs; pick one with --job "
                         "(%s)", len(ids), ", ".join(ids) or "none")
            return 2
    elif (root / "events.jsonl").exists() or (root / "traces").is_dir():
        job_dir = root  # a job directory given directly
    else:
        logger.error("%s is neither a service root nor a job "
                     "directory", root)
        return 2
    out = args.out if args.out != "traces.jsonl.gz" else "fleet_trace.json"
    count = write_fleet_trace(out, job_dir)
    print(f"wrote {count} merged fleet trace events for job "
          f"{job_dir.name} to {out}")
    return 0


def cmd_trace(args) -> int:
    """Handle ``repro trace``.

    Three export modes:

    * ``--store DIR`` — no simulation: merge a sweep-service job's
      correlated per-point telemetry streams into one Chrome/Perfetto
      timeline with a process track per worker (fleet-wide load
      imbalance, the way per-RU tracks show per-simulation imbalance).
    * ``--format chrome`` (or ``auto`` with a ``.json`` output name) —
      simulate the benchmark with telemetry enabled and write a Chrome
      trace-event file (one process row per Raster Unit, FSM
      transitions as instants, DRAM bandwidth as a counter track).
    * ``--format frames`` — the original workload export: serialized
      :class:`~repro.gpu.workload.FrameTrace` objects as JSON lines.
    """
    if args.store:
        return _trace_fleet(args)
    benchmark = args.benchmark_pos or args.benchmark
    if benchmark is None:
        logger.error("trace needs a benchmark (positional or --benchmark)")
        return 2
    fmt = args.format
    if fmt == "auto":
        fmt = "chrome" if args.out.endswith(".json") else "frames"
    traces = _build_traces(benchmark, args.frames, args.width, args.height)
    if fmt == "frames":
        from .workloads import save_traces
        save_traces(traces, args.out)
        total_lines = sum(t.total_texture_lines() for t in traces)
        print(f"wrote {len(traces)} frame traces of {benchmark} to "
              f"{args.out} ({total_lines:,} texture lines total)")
        return 0
    from .telemetry import HUB, RecordingSink, telemetry_session
    from .telemetry import write_chrome_trace
    sim = _make_simulator(args.config, args.width, args.height)
    sink = RecordingSink()
    with telemetry_session(sink):
        result = sim.run(traces)
        snapshot = HUB.metrics.snapshot()
    count = write_chrome_trace(args.out, sink.events, metrics=snapshot)
    print(f"wrote {count} Chrome trace events for {benchmark} on "
          f"{args.config} ({result.num_frames} frames, "
          f"{result.total_cycles:,} cycles) to {args.out}")
    return 0


def cmd_suite(args) -> int:
    """Handle ``repro suite`` (the supervised sweep)."""
    from . import harness
    names = ([n.strip() for n in args.benchmarks.split(",") if n.strip()]
             if args.benchmarks != "all" else benchmark_names())
    valid = benchmark_names()
    if not names:
        logger.error("no benchmarks given; valid: %s", ", ".join(valid))
        return 2
    unknown = [n for n in names if n not in valid]
    if unknown:
        logger.error("unknown benchmark(s) %s; valid: %s",
                     ", ".join(unknown), ", ".join(valid))
        return 2
    if args.workers < 1:
        logger.error("--workers must be >= 1")
        return 2
    sink = None
    if args.telemetry or args.telemetry_out:
        from .telemetry import HUB, RecordingSink
        HUB.metrics.reset()
        sink = RecordingSink()
        HUB.enable(sink)
    try:
        report = harness.run_suite(
            names, kinds=(args.config,), frames=args.frames,
            timeout_s=args.timeout, max_attempts=args.retries + 1,
            workers=args.workers)
    finally:
        if sink is not None:
            from .telemetry import HUB
            HUB.disable()
    print(report.format())
    if sink is not None and args.telemetry_out:
        count = _export_telemetry(args.telemetry_out, sink.events,
                                  report.metrics)
        print(f"wrote {count} telemetry records to {args.telemetry_out}")
    return 0 if not report.failed else 1


def _resolve_spec(args, command: str):
    """The sweep/submit grid: ``--spec file`` or the inline options.

    Shared by ``repro sweep`` and ``repro submit`` so the inline grammar
    (``--benchmarks/--kinds/--axis/--baseline``) means exactly the same
    grid whichever path executes it.  Raises
    :class:`ConfigValidationError` for an unusable grid (callers map it
    to exit status 2 — a usage error, not a run failure).
    """
    from .experiments import ExperimentSpec, parse_axis_option
    if args.spec:
        spec = ExperimentSpec.from_file(args.spec)
    else:
        if not args.benchmarks:
            raise ConfigValidationError(
                f"{command} needs --spec or --benchmarks")
        names = (benchmark_names() if args.benchmarks == "all"
                 else [n.strip() for n in args.benchmarks.split(",")
                       if n.strip()])
        kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
        axes = dict(parse_axis_option(a) for a in (args.axis or []))
        spec = ExperimentSpec(
            name=args.name, benchmarks=names, kinds=kinds, axes=axes,
            frames=args.frames, width=args.width, height=args.height,
            baseline_kind=args.baseline or (kinds[0] if kinds else ""))
    spec.validate()
    return spec


def cmd_sweep(args) -> int:
    """Handle ``repro sweep`` (the declarative, resumable grid sweep).

    The grid comes from ``--spec file.yaml`` or is assembled inline from
    ``--benchmarks/--kinds/--axis``.  Completed points are checkpointed
    per point under ``--out`` (default ``.repro_sweeps/<name>``); a
    rerun with the same grid resumes, skipping them.  Prints the
    per-point report, the speedup-vs-baseline matrix and the per-axis
    marginals.  Exit status: 2 for an unusable spec, 1 when any point
    failed or was quarantined by the circuit breaker, else 0.

    ``--chaos SEED`` runs the sweep under the deterministic fault
    harness (:mod:`repro.chaos`): seeded worker crashes, hangs, slow
    starts and cache faults are injected underneath the supervision
    layer, which must absorb them — the run terminates, and every
    non-quarantined point converges to the fault-free result.
    """
    from . import chaos
    from .experiments import run_sweep, speedup_matrix
    try:
        spec = _resolve_spec(args, command="sweep")
    except ConfigValidationError as exc:
        logger.error("%s", exc)
        return 2
    chaos_seed = getattr(args, "chaos", None)
    if chaos_seed is not None:
        faults = None
        if getattr(args, "chaos_faults", None):
            faults = tuple(f.strip()
                           for f in args.chaos_faults.split(",")
                           if f.strip())
            bad = [f for f in faults if f not in chaos.ALL_FAULTS]
            if bad:
                logger.error("unknown chaos fault(s) %s; valid: %s",
                             ", ".join(bad), ", ".join(chaos.ALL_FAULTS))
                return 2
        chaos_ctx = chaos.session(
            chaos_seed, faults=faults,
            curse=getattr(args, "chaos_curse", None) or "")
    else:
        chaos_ctx = contextlib.nullcontext()
    with chaos_ctx:
        result = run_sweep(spec, store_root=args.out,
                           workers=args.workers, timeout_s=args.timeout,
                           retries=args.retries,
                           point_telemetry=not args.no_point_telemetry)
    print(result.format())
    print()
    matrix = speedup_matrix(result)
    print(matrix.format())
    if matrix.axis_names:
        print()
        print(matrix.format_marginals())
    telemetry_table = matrix.format_telemetry()
    if telemetry_table:
        print()
        print(telemetry_table)
    return 1 if (result.failed or result.tripped) else 0


def _graceful_stop_signals(on_stop):
    """Route SIGINT/SIGTERM into ``on_stop`` (service exit-code 0 path).

    A service process asked to stop is a *success*, not an error: both
    signals trigger a clean drain instead of KeyboardInterrupt or
    sudden death, so supervisors (systemd, CI) see exit status 0.
    Returns the previous handlers for restoration.
    """
    import signal
    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(
            signum, lambda _signum, _frame: on_stop())
    return previous


def cmd_serve(args) -> int:
    """Handle ``repro serve`` (the sweep-service HTTP API).

    Binds first, prints the resolved address (``--port 0`` picks a free
    port), then blocks in the request loop until SIGINT/SIGTERM — which
    exit 0.  A socket that cannot be bound (port in use, bad host) is a
    usage error: exit 2.
    """
    import threading

    from .service.server import create_server
    try:
        server = create_server(args.root, args.host, args.port)
    except OSError as exc:
        logger.error("cannot bind %s:%s: %s", args.host, args.port, exc)
        return 2
    host, port = server.server_address[:2]
    print(f"repro serve: listening on http://{host}:{port} "
          f"(store root {args.root})", flush=True)

    def _stop():
        # shutdown() blocks until the loop exits, so it must run off
        # the main thread the loop occupies.
        threading.Thread(target=server.shutdown, daemon=True).start()

    _graceful_stop_signals(_stop)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
    print("repro serve: shut down cleanly")
    return 0


def cmd_worker(args) -> int:
    """Handle ``repro worker`` (one member of the sweep-worker fleet).

    Drains the shared job store at ``--root`` until stopped
    (SIGINT/SIGTERM → finish the in-flight point, release the lease,
    exit 0), ``--once`` finds no work, ``--max-points`` is reached, or
    ``--idle-exit`` seconds pass without work.
    """
    import threading

    from .service import run_worker
    if args.poll <= 0 or args.lease_ttl <= 0:
        logger.error("--poll and --lease-ttl must be > 0")
        return 2
    if args.max_points is not None and args.max_points < 1:
        logger.error("--max-points must be >= 1")
        return 2
    stop = threading.Event()
    _graceful_stop_signals(stop.set)
    executed = run_worker(
        args.root, worker_id=args.id, poll_s=args.poll,
        lease_ttl_s=args.lease_ttl, idle_exit_s=args.idle_exit,
        max_points=args.max_points, once=args.once, stop=stop)
    print(f"repro worker: executed {executed} point(s)")
    return 0


def _format_eta(seconds) -> str:
    """A compact human ETA (``—`` while no throughput is established)."""
    if seconds is None:
        return "—"
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def _format_progress(progress) -> str:
    """One-line progress summary from a job's ``progress`` payload."""
    if not progress:
        return ""
    return (f"{progress.get('percent', 0.0):.1f}% done, "
            f"{progress.get('points_per_s', 0.0):.2f} pt/s, "
            f"ETA {_format_eta(progress.get('eta_s'))}")


def _print_job(record, points=None, progress=None) -> None:
    line = (f"job {record.job_id}: {record.state}  "
            f"({record.total_points} points")
    if points:
        line += (f": {points.get('completed', 0)} done, "
                 f"{points.get('failed', 0)} failed, "
                 f"{points.get('leased', 0)} leased, "
                 f"{points.get('pending', 0)} pending")
    line += ")"
    if progress:
        line += f"  [{_format_progress(progress)}]"
    if record.error:
        line += f"  error: {record.error}"
    print(line, flush=True)


def _render_fleet(client, stale_after=None) -> str:
    """The ``repro fleet`` view: worker roster + active-job progress."""
    lines = []
    fleet = client.fleet(stale_after_s=stale_after)
    workers = fleet.get("workers", [])
    if workers:
        rows = [[w.get("worker_id", "?"),
                 "stale" if w.get("stale") else w.get("state", "?"),
                 w.get("job_id") or "-",
                 w.get("point_id") or "-",
                 w.get("points_completed", 0),
                 w.get("points_failed", 0),
                 f"{w.get('points_per_s', 0.0):.2f}",
                 f"{w.get('age_s', 0.0):.0f}s"] for w in workers]
        lines.append(format_table(
            ("worker", "state", "job", "point", "done", "failed",
             "pt/s", "age"), rows,
            title=(f"fleet: {fleet.get('live', 0)} live, "
                   f"{fleet.get('stale', 0)} stale")))
    else:
        lines.append("no workers reporting")
    active = [r for r in client.jobs()
              if r.state in ("queued", "running")]
    lines.append("")
    if not active:
        lines.append("no active jobs")
    for record in active:
        status = client.status(record.job_id)
        points = getattr(status, "points", {}) or {}
        progress = getattr(status, "progress", {}) or {}
        line = f"job {record.job_id}: {status.state}"
        if points:
            line += (f"  {points.get('completed', 0)}/"
                     f"{points.get('total', 0)} done, "
                     f"{points.get('leased', 0)} leased, "
                     f"{points.get('pending', 0)} pending")
        if progress:
            line += f"  [{_format_progress(progress)}]"
        lines.append(line)
    return "\n".join(lines)


def cmd_fleet(args) -> int:
    """Handle ``repro fleet`` (live worker/job view of a service).

    One-shot by default; ``--watch`` refreshes every ``--interval``
    seconds until interrupted (Ctrl-C exits 0 — stopping a monitor is
    success, not failure).
    """
    import time as _time

    from .service import SweepClient
    client = SweepClient(args.server)
    if not args.watch:
        print(_render_fleet(client, stale_after=args.stale_after))
        return 0
    try:
        while True:
            view = _render_fleet(client, stale_after=args.stale_after)
            if sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")
            print(view, flush=True)
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _follow_events(client, job_id: str, timeout_s: float) -> None:
    """Stream a job's progress events to stdout until it finishes."""
    for event in client.events(job_id, follow=True, timeout_s=timeout_s):
        kind = event.get("event", "?")
        detail = " ".join(
            f"{key}={event[key]}" for key in
            ("point_id", "owner", "cycles", "error_type", "error",
             "previous_owner", "counts")
            if event.get(key) not in (None, "", {}))
        print(f"  [{kind}] {detail}".rstrip(), flush=True)


def cmd_submit(args) -> int:
    """Handle ``repro submit`` (send a grid to a running service).

    The grid grammar is exactly ``repro sweep``'s (``--spec`` or the
    inline options).  Exit status: 2 for an unusable grid, 1 when the
    server rejects it / is unreachable or — with ``--wait``/
    ``--follow`` — the job ends ``failed``/``cancelled``, else 0.
    """
    from .service import SweepClient
    try:
        spec = _resolve_spec(args, command="submit")
    except ConfigValidationError as exc:
        logger.error("%s", exc)
        return 2
    client = SweepClient(args.server)
    record = client.submit(spec,
                           point_telemetry=not args.no_point_telemetry)
    _print_job(record)
    if not (args.wait or args.follow):
        return 0
    if args.follow:
        _follow_events(client, record.job_id, timeout_s=args.wait_timeout)
    record = client.wait(record.job_id, timeout_s=args.wait_timeout)
    _print_job(record)
    if record.state == "done":
        print()
        print(client.result(record.job_id).format())
        return 0
    return 1


def cmd_status(args) -> int:
    """Handle ``repro status`` (poll a job, or list every job).

    ``repro status JOB`` prints one job (``--follow`` streams its
    events until it finishes; ``--result`` prints the matrix of a
    finished job).  Without a job id, lists everything the server
    knows.  Exit status: 1 when the inspected job is ``failed`` or
    ``cancelled`` (so CI can gate on it), else 0.
    """
    from .service import SweepClient
    client = SweepClient(args.server)
    if not args.job:
        records = client.jobs()
        if not records:
            print("no jobs")
            return 0
        rows = [[r.job_id, r.state, r.total_points,
                 r.error or ""] for r in records]
        print(format_table(("job", "state", "points", "error"), rows,
                           title=f"jobs at {args.server}"))
        return 0
    record = client.status(args.job)
    _print_job(record, points=getattr(record, "points", None),
               progress=getattr(record, "progress", None))
    if args.watch and not record.terminal:
        import time as _time
        try:
            while not record.terminal:
                _time.sleep(args.interval)
                record = client.status(args.job)
                _print_job(record,
                           points=getattr(record, "points", None),
                           progress=getattr(record, "progress", None))
        except KeyboardInterrupt:
            return 0
    if args.follow and not record.terminal:
        _follow_events(client, record.job_id,
                       timeout_s=args.wait_timeout)
        record = client.wait(record.job_id,
                             timeout_s=args.wait_timeout)
        _print_job(record)
    if args.result and record.state in ("done", "failed"):
        print()
        print(client.result(record.job_id).format())
    return 1 if record.state in ("failed", "cancelled") else 0


def cmd_perf(args) -> int:
    """Handle ``repro perf record`` / ``repro perf compare``.

    ``record`` runs the curated case set (``--quick`` for the CI-sized
    subset), taking the median of ``--repeat`` timed runs per case, and
    writes a fingerprinted baseline to ``--out`` (default: the next
    free ``BENCH_<n>.json`` in the working directory).  ``compare``
    loads ``--baseline``, obtains a current record (``--current`` file,
    or a fresh measurement of the baseline's cases), and applies the
    MAD noise bands.  Exit status: 0 within bands, 1 on any regression
    / metric drift / missing case, 2 for usage errors.
    """
    from . import perf
    if args.repeat < 1:
        logger.error("--repeat must be >= 1")
        return 2
    progress = (lambda msg: print(f"  {msg}", file=sys.stderr))
    if args.perf_command == "record":
        cases = perf.QUICK_CASES if args.quick else perf.DEFAULT_CASES
        baseline = perf.record_baseline(cases=cases, repeat=args.repeat,
                                        progress=progress)
        path = perf.write_baseline(baseline,
                                   args.out or perf.next_bench_path())
        print(f"wrote perf baseline ({len(baseline.cases)} cases, "
              f"median of {args.repeat}) to {path}")
        return 0
    baseline = perf.load_baseline(args.baseline)
    if args.quick:
        quick_ids = {c.case_id for c in perf.QUICK_CASES}
        baseline.cases = {cid: c for cid, c in baseline.cases.items()
                          if cid in quick_ids}
        if not baseline.cases:
            logger.error("baseline %s has no quick cases", args.baseline)
            return 2
    if args.current:
        current = perf.load_baseline(args.current)
    else:
        cases = [c for c in perf.DEFAULT_CASES
                 if c.case_id in baseline.cases]
        if not cases:
            logger.error("baseline %s shares no case ids with the "
                         "current curated set; pass --current",
                         args.baseline)
            return 2
        current = perf.record_baseline(cases=cases, repeat=args.repeat,
                                       progress=progress)
    report = perf.compare_baselines(
        current, baseline, wall_threshold_pct=args.wall_threshold_pct,
        mad_factor=args.mad_factor, check_metrics=not args.no_metrics)
    print(report.format())
    return report.exit_code


def cmd_report(args) -> int:
    """Handle ``repro report`` (the telemetry analysis report).

    Either simulates the given benchmark with telemetry on, or — with
    ``--events`` — post-processes a JSONL stream a previous run
    exported via ``--telemetry-out``, so the expensive simulation and
    the analysis can live in different processes.
    """
    from .perf import build_report
    if args.events:
        from .telemetry import load_jsonl_events
        events = load_jsonl_events(args.events)
        metrics = None
        title = f"Telemetry analysis of {args.events}"
    else:
        benchmark = args.benchmark_pos or args.benchmark
        if benchmark is None:
            logger.error(
                "report needs a benchmark (positional or --benchmark) "
                "or --events PATH")
            return 2
        from .telemetry import HUB, RecordingSink, telemetry_session
        traces = _build_traces(benchmark, args.frames, args.width,
                               args.height)
        sim = _make_simulator(args.config, args.width, args.height)
        sink = RecordingSink()
        with telemetry_session(sink):
            sim.run(traces)
            metrics = HUB.metrics.snapshot()
        events = sink.events
        title = (f"{benchmark} on {args.config} "
                 f"({args.frames} frames, {args.width}x{args.height})")
    markdown = build_report(events, metrics=metrics, title=title)
    if args.out:
        from pathlib import Path
        Path(args.out).write_text(markdown)
        print(f"wrote analysis report to {args.out}")
    else:
        print(markdown)
    return 0


def _split_csv(chunks: List[str]) -> List[str]:
    out: List[str] = []
    for chunk in chunks or []:
        out += [item.strip() for item in chunk.split(",")
                if item.strip()]
    return out


def cmd_figures(args) -> int:
    """Handle ``repro figures`` (the paper-reproduction pipeline).

    Exit contract: 0 every selected figure's shape claims hold, 1 any
    regression (or partial/error figure), 2 usage (unknown figure id).
    The manifest is always written, whatever the verdicts — CI wants
    the evidence most when the gate fails.
    """
    import json
    from pathlib import Path

    from .figures import (figure_registry, record_perf_analysis,
                          render_dashboard, render_experiments_md,
                          run_figures)
    only = _split_csv(args.only)
    seeded = _split_csv(args.seed_regression)
    known = list(figure_registry(quick=args.quick))
    unknown = [fid for fid in only + seeded if fid not in known]
    if unknown:
        logger.error("unknown figure id(s): %s (known: %s)",
                     ", ".join(sorted(set(unknown))), ", ".join(known))
        return 2
    report = run_figures(
        only=only or None, quick=args.quick, store_root=args.store,
        workers=args.workers, timeout_s=args.timeout,
        retries=args.retries, seed_regression=seeded or None)

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    manifest_path = out / "figures_manifest.json"
    manifest_path.write_text(
        json.dumps(report.to_manifest(), indent=2, sort_keys=True)
        + "\n")
    written = [manifest_path]
    if args.fmt in ("html", "both"):
        perf_md = None
        if any(f.fid == "fig7" for f in report.figures):
            perf_md = record_perf_analysis(quick=args.quick)
        html_path = out / "figures_dashboard.html"
        html_path.write_text(render_dashboard(report,
                                              perf_markdown=perf_md))
        written.append(html_path)
    if args.fmt in ("md", "both"):
        md_path = out / "EXPERIMENTS.md"
        md_path.write_text(render_experiments_md(report))
        written.append(md_path)

    badge = {"pass": "PASS", "fail": "FAIL", "partial": "PARTIAL",
             "error": "ERROR"}
    for outcome in report.figures:
        held = sum(1 for e in outcome.expectations if e.passed)
        print(f"{outcome.fid:<8} {badge.get(outcome.status, '?'):<8} "
              f"{held}/{len(outcome.expectations)} claims  "
              f"{outcome.title}")
    executed = sum(len(r.completed) - len(r.resumed)
                   for r in report.sweeps.values())
    resumed = sum(len(r.resumed) for r in report.sweeps.values())
    print(f"figures: {len(report.passed)}/{len(report.figures)} pass "
          f"({executed} points executed, {resumed} resumed)")
    for path in written:
        print(f"wrote {path}")
    return report.exit_code


def cmd_heatmap(args) -> int:
    """Handle ``repro heatmap``."""
    traces = _build_traces(args.benchmark, 2, args.width, args.height)
    sim = _make_simulator("baseline", args.width, args.height)
    result = sim.run(traces)
    frame = result.frames[-1]
    matrix = tile_matrix(frame.per_tile_dram, traces[0].tiles_x,
                         traces[0].tiles_y)
    print(f"Per-tile DRAM accesses, {args.benchmark} frame "
          f"{frame.frame_index} (darkest = hottest):")
    print(render_ascii(matrix))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LIBRA parallel tile rendering — simulator CLI")
    parser.add_argument("--width", type=int, default=DEFAULT_WIDTH)
    parser.add_argument("--height", type=int, default=DEFAULT_HEIGHT)
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="-v: INFO diagnostics, -vv: DEBUG")
    sub = parser.add_subparsers(dest="command", required=True)
    all_names = benchmark_names() + micro_benchmark_names()

    sub.add_parser("list", help="show the benchmark suite")

    run = sub.add_parser("run", help="simulate one benchmark",
                         parents=[_common_parent(frames_default=8)])
    _add_benchmark_option(run, all_names, required=True)
    _add_config_option(run)
    run.add_argument("--telemetry", action="store_true",
                     help="collect telemetry metrics and print a "
                          "snapshot table")
    run.add_argument("--telemetry-out", default=None, metavar="PATH",
                     help="also export the telemetry events (.json = "
                          "Chrome trace, otherwise JSONL)")

    compare = sub.add_parser("compare",
                             help="baseline vs PTR vs LIBRA side by side",
                             parents=[_common_parent(frames_default=8)])
    _add_benchmark_option(compare, all_names, required=True)

    heatmap = sub.add_parser("heatmap", help="per-tile DRAM heatmap",
                             parents=[_common_parent(frames_default=2)])
    _add_benchmark_option(heatmap, benchmark_names(), required=True)

    trace = sub.add_parser(
        "trace", help="export frame traces (JSONL) or a Chrome/Perfetto "
                      "telemetry trace",
        parents=[_common_parent(frames_default=4)])
    trace.add_argument("benchmark_pos", nargs="?", default=None,
                       metavar="benchmark", choices=all_names,
                       help="benchmark code (alternative to --benchmark)")
    _add_benchmark_option(trace, all_names, required=False)
    _add_config_option(trace)
    trace.add_argument("--format", default="auto",
                       choices=("auto", "chrome", "frames"),
                       help="auto: .json out = chrome trace, otherwise "
                            "frame-trace JSONL")
    trace.add_argument("--out", default="traces.jsonl.gz")
    trace.add_argument("--store", default=None, metavar="DIR",
                       help="merge a sweep-service store's correlated "
                            "per-point streams into one cross-worker "
                            "timeline instead of simulating (DIR is "
                            "the service root or one job directory)")
    trace.add_argument("--job", default=None, metavar="ID",
                       help="with --store on a service root: which job "
                            "to merge (optional when there is exactly "
                            "one)")

    suite = sub.add_parser(
        "suite", help="supervised sweep (timeouts, retries, partial "
                      "results on failure)",
        parents=[_common_parent(frames_default=8), _supervision_parent()])
    _add_benchmarks_option(suite, default="all")
    _add_config_option(suite)
    suite.add_argument("--telemetry", action="store_true",
                       help="collect telemetry during the sweep and "
                            "attach the metrics snapshot to the report")
    suite.add_argument("--telemetry-out", default=None, metavar="PATH",
                       help="export harness telemetry events (.json = "
                            "Chrome trace, otherwise JSONL)")

    sweep = sub.add_parser(
        "sweep", help="declarative, resumable parameter-grid sweep "
                      "with per-point checkpoints and a speedup matrix",
        parents=[_common_parent(frames_default=8), _supervision_parent()])
    sweep.add_argument("--spec", default=None, metavar="PATH",
                       help="experiment spec file (.yaml/.yml/.json); "
                            "overrides the inline grid options")
    sweep.add_argument("--name", default="adhoc",
                       help="sweep name for the inline grid (names the "
                            "default artifact directory)")
    _add_benchmarks_option(sweep, default=None)
    sweep.add_argument("--kinds", default="baseline,libra",
                       help="comma-separated config kinds to compare")
    sweep.add_argument("--axis", action="append", metavar="NAME=V1,V2",
                       help="one sweep axis (repeatable): an alias like "
                            "supertile/dram_bandwidth, raster_units/"
                            "cores_per_unit, or a dotted GPUConfig path")
    sweep.add_argument("--baseline", default=None, metavar="KIND",
                       help="kind speedups are normalized against "
                            "(default: first of --kinds)")
    sweep.add_argument("--out", default=None, metavar="DIR",
                       help="artifact-store directory (default "
                            ".repro_sweeps/<name>); rerunning with the "
                            "same grid resumes it")
    sweep.add_argument("--no-point-telemetry", action="store_true",
                       help="skip per-point metrics collection (no "
                            "merged telemetry in the report)")
    sweep.add_argument("--chaos", default=None, type=int, metavar="SEED",
                       help="run under the deterministic chaos harness: "
                            "inject seeded worker crashes/hangs and "
                            "cache faults (forces the supervised "
                            "backend; results must still converge)")
    sweep.add_argument("--chaos-faults", default=None, metavar="F1,F2",
                       help="restrict injected faults (subset of: "
                            "crash, crash_late, hang, slow, corrupt, "
                            "enospc; default all)")
    sweep.add_argument("--chaos-curse", default=None, metavar="SUBSTR",
                       help="point ids containing SUBSTR fail on every "
                            "attempt — must trip the circuit breaker")

    serve = sub.add_parser(
        "serve", help="sweep-service HTTP API: accept job submissions, "
                      "serve status/events/results to many clients")
    serve.add_argument("--root", default=".repro_service", metavar="DIR",
                       help="job-store directory shared with the "
                            "workers (default .repro_service)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1; use "
                            "0.0.0.0 for a multi-host fleet)")
    serve.add_argument("--port", type=int, default=8023,
                       help="bind port (default 8023; 0 picks a free "
                            "port and prints it)")

    worker = sub.add_parser(
        "worker", help="sweep-service worker: claim queued points from "
                       "the shared store and execute them")
    worker.add_argument("--root", default=".repro_service", metavar="DIR",
                        help="job-store directory shared with the "
                             "server (default .repro_service)")
    worker.add_argument("--id", default=None, metavar="NAME",
                        help="worker id recorded in leases/events "
                             "(default <hostname>-<pid>)")
    worker.add_argument("--poll", type=float, default=0.5, metavar="S",
                        help="seconds between idle scans of the store")
    worker.add_argument("--lease-ttl", type=float, default=30.0,
                        metavar="S",
                        help="lease freshness window; a lease not "
                             "renewed for this long is adopted by "
                             "another worker")
    worker.add_argument("--idle-exit", type=float, default=None,
                        metavar="S",
                        help="exit after this many seconds without "
                             "finding work (default: run forever)")
    worker.add_argument("--max-points", type=int, default=None,
                        metavar="N",
                        help="exit after executing N points")
    worker.add_argument("--once", action="store_true",
                        help="drain the currently queued work, then "
                             "exit instead of polling")

    submit = sub.add_parser(
        "submit", help="submit a sweep grid to a running service "
                       "(same --spec/inline grammar as sweep)",
        parents=[_common_parent(frames_default=8)])
    submit.add_argument("--server", default="http://127.0.0.1:8023",
                        metavar="URL",
                        help="service base URL (default "
                             "http://127.0.0.1:8023)")
    submit.add_argument("--spec", default=None, metavar="PATH",
                        help="experiment spec file (.yaml/.yml/.json); "
                             "overrides the inline grid options")
    submit.add_argument("--name", default="adhoc",
                        help="sweep name for the inline grid (part of "
                             "the content-addressed job id)")
    _add_benchmarks_option(submit, default=None)
    submit.add_argument("--kinds", default="baseline,libra",
                        help="comma-separated config kinds to compare")
    submit.add_argument("--axis", action="append", metavar="NAME=V1,V2",
                        help="one sweep axis (repeatable), exactly as "
                             "for repro sweep")
    submit.add_argument("--baseline", default=None, metavar="KIND",
                        help="kind speedups are normalized against "
                             "(default: first of --kinds)")
    submit.add_argument("--no-point-telemetry", action="store_true",
                        help="workers skip per-point metrics collection")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes and print "
                             "the speedup matrix (exit 1 if it failed)")
    submit.add_argument("--follow", action="store_true",
                        help="stream progress events while waiting "
                             "(implies --wait)")
    submit.add_argument("--wait-timeout", type=float, default=3600.0,
                        metavar="S",
                        help="give up waiting/following after this "
                             "many seconds")

    status = sub.add_parser(
        "status", help="inspect a service job (or list all jobs)")
    status.add_argument("job", nargs="?", default=None,
                        help="job id (omit to list every job)")
    status.add_argument("--server", default="http://127.0.0.1:8023",
                        metavar="URL",
                        help="service base URL (default "
                             "http://127.0.0.1:8023)")
    status.add_argument("--follow", action="store_true",
                        help="stream the job's events until it "
                             "finishes")
    status.add_argument("--watch", action="store_true",
                        help="re-print the job line (with progress "
                             "and ETA) every --interval seconds until "
                             "it finishes")
    status.add_argument("--interval", type=float, default=2.0,
                        metavar="S",
                        help="refresh cadence for --watch (default 2)")
    status.add_argument("--result", action="store_true",
                        help="print the speedup matrix of a finished "
                             "job")
    status.add_argument("--wait-timeout", type=float, default=3600.0,
                        metavar="S",
                        help="give up following after this many "
                             "seconds")

    fleet = sub.add_parser(
        "fleet", help="live service observability: worker health "
                      "roster plus per-job progress and ETA")
    fleet.add_argument("--server", default="http://127.0.0.1:8023",
                       metavar="URL",
                       help="service base URL (default "
                            "http://127.0.0.1:8023)")
    fleet.add_argument("--watch", action="store_true",
                       help="refresh the view every --interval seconds "
                            "until interrupted (Ctrl-C exits 0)")
    fleet.add_argument("--interval", type=float, default=2.0,
                       metavar="S",
                       help="refresh cadence for --watch (default 2)")
    fleet.add_argument("--stale-after", type=float, default=None,
                       metavar="S",
                       help="flag workers whose status file is older "
                            "than this (default: the server's lease "
                            "TTL convention, 30s)")

    perf = sub.add_parser(
        "perf", help="performance baselines: record a fingerprinted "
                     "BENCH_<n>.json, compare with noise bands")
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)
    record = perf_sub.add_parser(
        "record", help="measure the curated case set and write a "
                       "baseline file")
    record.add_argument("--out", default=None, metavar="PATH",
                        help="baseline file (default: next free "
                             "BENCH_<n>.json in the working directory)")
    record.add_argument("--repeat", type=int, default=3,
                        help="timed runs per case (median is kept)")
    record.add_argument("--quick", action="store_true",
                        help="CI-sized case subset (seconds, not "
                             "minutes)")
    pcompare = perf_sub.add_parser(
        "compare", help="compare a current record against a baseline "
                        "(exit 0 ok / 1 regression / 2 usage)")
    pcompare.add_argument("--baseline", required=True, metavar="PATH",
                          help="recorded BENCH_<n>.json to compare "
                               "against")
    pcompare.add_argument("--current", default=None, metavar="PATH",
                          help="current record (default: measure the "
                               "baseline's cases afresh)")
    pcompare.add_argument("--repeat", type=int, default=3,
                          help="timed runs per case when measuring "
                               "afresh")
    pcompare.add_argument("--wall-threshold-pct", type=float,
                          default=10.0, metavar="PCT",
                          help="relative wall-clock noise band")
    pcompare.add_argument("--mad-factor", type=float, default=3.0,
                          help="noise band is max(PCT, this many "
                               "baseline MADs)")
    pcompare.add_argument("--no-metrics", action="store_true",
                          help="skip the simulated-metric drift check")
    pcompare.add_argument("--quick", action="store_true",
                          help="compare only the quick case subset of "
                               "the baseline (so a --quick record can "
                               "be gated against a full baseline)")

    figures = sub.add_parser(
        "figures", help="one-command paper reproduction: run the "
                        "figure registry through resumable sweeps, "
                        "check every shape claim, render the dashboard",
        parents=[_supervision_parent()])
    figures.add_argument("--only", action="append", default=[],
                         metavar="FIG[,FIG...]",
                         help="restrict to these figure ids "
                              "(repeatable or comma-separated; "
                              "e.g. fig1,table2)")
    figures.add_argument("--quick", action="store_true",
                         help="CI-sized profile: smaller screen, fewer "
                              "frames, benchmark subsets (uses its own "
                              "artifact stores)")
    figures.add_argument("--out", default="figures_out", metavar="DIR",
                         help="output directory for the manifest, "
                              "dashboard and markdown")
    figures.add_argument("--store", default=None, metavar="DIR",
                         help="artifact-store root (default "
                              ".repro_figures); rerunning against the "
                              "same store resumes completed points")
    figures.add_argument("--format", default="html", dest="fmt",
                         choices=("html", "md", "both"),
                         help="html: dashboard; md: regenerate "
                              "EXPERIMENTS.md; both")
    figures.add_argument("--seed-regression", action="append",
                         default=[], metavar="FIG[,FIG...]",
                         help=argparse.SUPPRESS)

    report = sub.add_parser(
        "report", help="telemetry analysis report (markdown): DRAM "
                       "burstiness, RU load balance, FSM timeline, "
                       "cache trends",
        parents=[_common_parent(frames_default=2)])
    report.add_argument("benchmark_pos", nargs="?", default=None,
                        metavar="benchmark", choices=all_names,
                        help="benchmark code (alternative to "
                             "--benchmark)")
    _add_benchmark_option(report, all_names, required=False)
    _add_config_option(report)
    report.add_argument("--events", default=None, metavar="PATH",
                        help="analyse an exported JSONL event stream "
                             "instead of running a simulation")
    report.add_argument("--out", default=None, metavar="PATH",
                        help="write the markdown here instead of "
                             "stdout")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Unknown benchmark/config names exit 2 with the valid names (argparse
    ``choices`` or explicit checks); a :class:`ReproError` from a
    command becomes a one-line stderr diagnostic and exit 1.
    """
    args = build_parser().parse_args(argv)
    configure_logging(args.verbose)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "compare": cmd_compare,
        "heatmap": cmd_heatmap,
        "trace": cmd_trace,
        "suite": cmd_suite,
        "sweep": cmd_sweep,
        "serve": cmd_serve,
        "worker": cmd_worker,
        "submit": cmd_submit,
        "status": cmd_status,
        "fleet": cmd_fleet,
        "perf": cmd_perf,
        "report": cmd_report,
        "figures": cmd_figures,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        logger.error("%s: %s", type(exc).__name__, exc)
        return 1


if __name__ == "__main__":
    sys.exit(main())
