"""Command-line interface: ``repro`` (or ``python -m repro``).

Subcommands:

* ``repro list`` — show the benchmark suite (Table II reconstruction).
* ``repro run --benchmark CCS --config libra --frames 8`` — simulate one
  benchmark under one GPU configuration and print the frame summary.
* ``repro compare --benchmark CCS --frames 8`` — baseline vs PTR vs LIBRA
  side by side.
* ``repro heatmap --benchmark SuS`` — ASCII per-tile DRAM heatmap (Fig. 2).
* ``repro suite --benchmarks CCS,GDL --config libra [--workers N]`` —
  supervised sweep (timeouts, retries, graceful degradation, optional
  process-parallel execution; see ``repro.harness.run_suite``).

Error contract: an unknown benchmark or configuration name exits with
status 2 and prints the valid names; any :class:`~repro.errors.ReproError`
raised while executing a command is reported as a one-line diagnostic on
stderr with exit status 1 — never a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .config import baseline_config, libra_config
from .core import LibraScheduler, TemperatureScheduler, ZOrderScheduler
from .errors import ConfigValidationError, ReproError
from .gpu import GPUSimulator, RunResult
from .stats import format_table, render_ascii, tile_matrix
from .workloads import (TraceBuilder, benchmark_names,
                        make_scene_builder, table2_rows)

DEFAULT_WIDTH = 960
DEFAULT_HEIGHT = 512
DEFAULT_TILE = 32

CONFIG_NAMES = ("baseline", "ptr", "libra", "temperature")


def _build_traces(benchmark: str, frames: int, width: int, height: int):
    builder = make_scene_builder(benchmark, width, height)
    return TraceBuilder(builder, width, height, DEFAULT_TILE).build_many(frames)


def _make_simulator(config_name: str, width: int, height: int) -> GPUSimulator:
    if config_name == "baseline":
        return GPUSimulator(
            baseline_config(screen_width=width, screen_height=height),
            scheduler=ZOrderScheduler(), name="baseline")
    if config_name == "ptr":
        return GPUSimulator(
            libra_config(screen_width=width, screen_height=height),
            scheduler=ZOrderScheduler(), name="ptr")
    if config_name == "libra":
        cfg = libra_config(screen_width=width, screen_height=height)
        return GPUSimulator(cfg, scheduler=LibraScheduler(cfg.scheduler),
                            name="libra")
    if config_name == "temperature":
        cfg = libra_config(screen_width=width, screen_height=height)
        return GPUSimulator(cfg, scheduler=TemperatureScheduler(4),
                            name="temperature")
    raise ConfigValidationError(
        f"unknown config {config_name!r}; valid: {', '.join(CONFIG_NAMES)}")


def _summarize(result: RunResult) -> List:
    return [result.config_name, result.num_frames, result.total_cycles,
            f"{result.fps:.1f}", f"{result.mean_texture_hit_ratio:.3f}",
            f"{result.mean_texture_latency:.1f}",
            result.raster_dram_accesses,
            f"{result.total_energy_j * 1000:.2f}"]


_SUMMARY_HEADERS = ("config", "frames", "cycles", "fps", "tex hit",
                    "tex lat", "dram", "energy mJ")


def cmd_list(args) -> int:
    """Handle ``repro list``."""
    rows = [[r["name"], r["title"], r["style"],
             "memory" if r["memory_intensive"] else "compute",
             r["textures"], f"{r['texture_mb']:.1f}"]
            for r in table2_rows(args.width, args.height)]
    print(format_table(
        ("code", "title", "style", "class", "textures", "tex MB"), rows,
        title="Benchmark suite (Table II reconstruction)"))
    return 0


def cmd_run(args) -> int:
    """Handle ``repro run``."""
    traces = _build_traces(args.benchmark, args.frames, args.width,
                           args.height)
    sim = _make_simulator(args.config, args.width, args.height)
    result = sim.run(traces)
    print(format_table(_SUMMARY_HEADERS, [_summarize(result)],
                       title=f"{args.benchmark} on {args.config}"))
    rows = [[f.frame_index, f.geometry_cycles, f.raster_cycles, f.order,
             f.supertile_size, f"{f.texture_hit_ratio:.3f}",
             f.raster_dram_accesses] for f in result.frames]
    print()
    print(format_table(("frame", "geom cyc", "raster cyc", "order",
                        "supertile", "tex hit", "dram"), rows))
    return 0


def cmd_compare(args) -> int:
    """Handle ``repro compare``."""
    traces = _build_traces(args.benchmark, args.frames, args.width,
                           args.height)
    rows = []
    baseline: Optional[RunResult] = None
    for config_name in ("baseline", "ptr", "libra"):
        sim = _make_simulator(config_name, args.width, args.height)
        result = sim.run(traces)
        row = _summarize(result)
        if baseline is None:
            baseline = result
            row.append("1.000")
        else:
            row.append(f"{result.speedup_over(baseline):.3f}")
        rows.append(row)
    print(format_table(_SUMMARY_HEADERS + ("speedup",), rows,
                       title=f"{args.benchmark}: baseline vs PTR vs LIBRA"))
    return 0


def cmd_trace(args) -> int:
    """Handle ``repro trace``."""
    from .workloads import save_traces
    traces = _build_traces(args.benchmark, args.frames, args.width,
                           args.height)
    save_traces(traces, args.out)
    total_lines = sum(t.total_texture_lines() for t in traces)
    print(f"wrote {len(traces)} frame traces of {args.benchmark} to "
          f"{args.out} ({total_lines:,} texture lines total)")
    return 0


def cmd_suite(args) -> int:
    """Handle ``repro suite`` (the supervised sweep)."""
    from . import harness
    names = ([n.strip() for n in args.benchmarks.split(",") if n.strip()]
             if args.benchmarks != "all" else benchmark_names())
    valid = benchmark_names()
    if not names:
        print(f"error: no benchmarks given; valid: {', '.join(valid)}",
              file=sys.stderr)
        return 2
    unknown = [n for n in names if n not in valid]
    if unknown:
        print(f"error: unknown benchmark(s) {', '.join(unknown)}; "
              f"valid: {', '.join(valid)}", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    report = harness.run_suite(
        names, kinds=(args.config,), frames=args.frames,
        timeout_s=args.timeout, max_attempts=args.retries + 1,
        workers=args.workers)
    print(report.format())
    return 0 if not report.failed else 1


def cmd_heatmap(args) -> int:
    """Handle ``repro heatmap``."""
    traces = _build_traces(args.benchmark, 2, args.width, args.height)
    sim = _make_simulator("baseline", args.width, args.height)
    result = sim.run(traces)
    frame = result.frames[-1]
    matrix = tile_matrix(frame.per_tile_dram, traces[0].tiles_x,
                         traces[0].tiles_y)
    print(f"Per-tile DRAM accesses, {args.benchmark} frame "
          f"{frame.frame_index} (darkest = hottest):")
    print(render_ascii(matrix))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LIBRA parallel tile rendering — simulator CLI")
    parser.add_argument("--width", type=int, default=DEFAULT_WIDTH)
    parser.add_argument("--height", type=int, default=DEFAULT_HEIGHT)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the benchmark suite")

    run = sub.add_parser("run", help="simulate one benchmark")
    run.add_argument("--benchmark", required=True,
                     choices=benchmark_names())
    run.add_argument("--config", default="libra",
                     choices=("baseline", "ptr", "libra", "temperature"))
    run.add_argument("--frames", type=int, default=8)

    compare = sub.add_parser("compare",
                             help="baseline vs PTR vs LIBRA side by side")
    compare.add_argument("--benchmark", required=True,
                         choices=benchmark_names())
    compare.add_argument("--frames", type=int, default=8)

    heatmap = sub.add_parser("heatmap", help="per-tile DRAM heatmap")
    heatmap.add_argument("--benchmark", required=True,
                         choices=benchmark_names())

    trace = sub.add_parser("trace",
                           help="export frame traces as JSON lines")
    trace.add_argument("--benchmark", required=True,
                       choices=benchmark_names())
    trace.add_argument("--frames", type=int, default=4)
    trace.add_argument("--out", default="traces.jsonl.gz")

    suite = sub.add_parser(
        "suite", help="supervised sweep (timeouts, retries, partial "
                      "results on failure)")
    suite.add_argument("--benchmarks", default="all",
                       help="comma-separated codes, or 'all'")
    suite.add_argument("--config", default="libra", choices=CONFIG_NAMES)
    suite.add_argument("--frames", type=int, default=8)
    suite.add_argument("--timeout", type=float, default=None,
                       help="per-benchmark wall-clock budget, seconds")
    suite.add_argument("--retries", type=int, default=1,
                       help="extra attempts for transient failures")
    suite.add_argument("--workers", type=int, default=1,
                       help="worker processes for the sweep (1 = "
                            "sequential)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Unknown benchmark/config names exit 2 with the valid names (argparse
    ``choices`` or explicit checks); a :class:`ReproError` from a
    command becomes a one-line stderr diagnostic and exit 1.
    """
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "compare": cmd_compare,
        "heatmap": cmd_heatmap,
        "trace": cmd_trace,
        "suite": cmd_suite,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
