"""Screen-space primitives — the interface between Geometry and Tiling.

After vertex shading, clipping and the viewport transform, each surviving
triangle becomes a :class:`Primitive` carrying everything the Raster
Pipeline needs: pixel-space positions, per-vertex depth, perspective
1/w, texture coordinates, and the bound texture/shader state.  Primitives
keep a monotonically increasing ``sequence`` so per-tile lists preserve
program order (required for correct blending of overlaps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .mesh import ShaderProfile


@dataclass
class Primitive:
    """One screen-space triangle ready for binning and rasterization."""

    #: (3, 2) pixel-space x/y of the vertices.
    xy: np.ndarray
    #: (3,) NDC depth in [-1, 1] (after perspective divide).
    depth: np.ndarray
    #: (3,) 1/w for perspective-correct interpolation.
    inv_w: np.ndarray
    #: (3, 2) texture coordinates (already divided by w for interpolation).
    uv_over_w: np.ndarray
    texture_id: int
    shader: ShaderProfile
    blend: str = "opaque"
    depth_write: bool = True
    #: Late-Z: the shader modifies depth, so Early-Z is disabled and the
    #: depth test runs after shading.
    late_z: bool = False
    #: Program-order sequence number, unique within a frame.
    sequence: int = 0

    def __post_init__(self) -> None:
        self.xy = np.asarray(self.xy, dtype=np.float64)
        self.depth = np.asarray(self.depth, dtype=np.float64)
        self.inv_w = np.asarray(self.inv_w, dtype=np.float64)
        self.uv_over_w = np.asarray(self.uv_over_w, dtype=np.float64)
        if self.xy.shape != (3, 2):
            raise ValueError("xy must be (3, 2)")
        if self.depth.shape != (3,) or self.inv_w.shape != (3,):
            raise ValueError("depth and inv_w must be (3,)")
        if self.uv_over_w.shape != (3, 2):
            raise ValueError("uv_over_w must be (3, 2)")

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """(min_x, min_y, max_x, max_y) in pixel coordinates."""
        return (float(self.xy[:, 0].min()), float(self.xy[:, 1].min()),
                float(self.xy[:, 0].max()), float(self.xy[:, 1].max()))

    def signed_area(self) -> float:
        """Signed double-area; zero means degenerate, sign gives winding."""
        (ax, ay), (bx, by), (cx, cy) = self.xy
        return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)

    def area(self) -> float:
        """Unsigned screen-space area in pixels."""
        return abs(self.signed_area()) * 0.5

    def uv_at_vertex(self, i: int) -> Tuple[float, float]:
        """Perspective-recovered texture coordinate of vertex ``i``."""
        w = self.inv_w[i]
        if w == 0.0:
            return (0.0, 0.0)
        return (float(self.uv_over_w[i, 0] / w),
                float(self.uv_over_w[i, 1] / w))

    def uv_bounds(self) -> Tuple[float, float, float, float]:
        """(min_u, min_v, max_u, max_v) over the three vertices."""
        us, vs = zip(*(self.uv_at_vertex(i) for i in range(3)))
        return (min(us), min(vs), max(us), max(vs))
