"""Small linear-algebra helpers for the Geometry Pipeline.

Vertices are numpy ``float64`` arrays; matrices are 4x4 numpy arrays in
row-vector convention (``v' = M @ v`` with column vectors).  Only the
operations the pipeline needs are provided — this is a substrate, not a
general math library.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def vec3(x: float, y: float, z: float) -> np.ndarray:
    """A 3-component float64 vector."""
    return np.array([x, y, z], dtype=np.float64)


def vec4(x: float, y: float, z: float, w: float = 1.0) -> np.ndarray:
    """A 4-component float64 vector (homogeneous, w defaults to 1)."""
    return np.array([x, y, z, w], dtype=np.float64)


def normalize(v: np.ndarray) -> np.ndarray:
    """Unit-length copy of ``v`` (zero vectors pass through)."""
    n = np.linalg.norm(v)
    if n == 0.0:
        return v.copy()
    return v / n


def identity() -> np.ndarray:
    """The 4x4 identity matrix."""
    return np.eye(4, dtype=np.float64)


def translation(x: float, y: float, z: float) -> np.ndarray:
    """A 4x4 translation matrix."""
    m = identity()
    m[:3, 3] = (x, y, z)
    return m


def scaling(x: float, y: float, z: float) -> np.ndarray:
    """A 4x4 axis-aligned scaling matrix."""
    m = identity()
    m[0, 0], m[1, 1], m[2, 2] = x, y, z
    return m


def rotation_z(angle: float) -> np.ndarray:
    """Rotation about the z axis by ``angle`` radians."""
    c, s = math.cos(angle), math.sin(angle)
    m = identity()
    m[0, 0], m[0, 1] = c, -s
    m[1, 0], m[1, 1] = s, c
    return m


def rotation_y(angle: float) -> np.ndarray:
    """Rotation about the y axis by ``angle`` radians."""
    c, s = math.cos(angle), math.sin(angle)
    m = identity()
    m[0, 0], m[0, 2] = c, s
    m[2, 0], m[2, 2] = -s, c
    return m


def rotation_x(angle: float) -> np.ndarray:
    """Rotation about the x axis by ``angle`` radians."""
    c, s = math.cos(angle), math.sin(angle)
    m = identity()
    m[1, 1], m[1, 2] = c, -s
    m[2, 1], m[2, 2] = s, c
    return m


def look_at(eye: Sequence[float], target: Sequence[float],
            up: Sequence[float] = (0.0, 1.0, 0.0)) -> np.ndarray:
    """Right-handed view matrix looking from ``eye`` toward ``target``."""
    eye = np.asarray(eye, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    forward = normalize(target - eye)
    right = normalize(np.cross(forward, np.asarray(up, dtype=np.float64)))
    true_up = np.cross(right, forward)
    m = identity()
    m[0, :3] = right
    m[1, :3] = true_up
    m[2, :3] = -forward
    m[0, 3] = -right @ eye
    m[1, 3] = -true_up @ eye
    m[2, 3] = forward @ eye
    return m


def perspective(fov_y: float, aspect: float, near: float,
                far: float) -> np.ndarray:
    """OpenGL-style perspective projection (clip space w = -z_eye)."""
    if near <= 0 or far <= near:
        raise ValueError("need 0 < near < far")
    f = 1.0 / math.tan(fov_y / 2.0)
    m = np.zeros((4, 4), dtype=np.float64)
    m[0, 0] = f / aspect
    m[1, 1] = f
    m[2, 2] = (far + near) / (near - far)
    m[2, 3] = 2.0 * far * near / (near - far)
    m[3, 2] = -1.0
    return m


def orthographic(left: float, right: float, bottom: float, top: float,
                 near: float = -1.0, far: float = 1.0) -> np.ndarray:
    """Orthographic projection; the natural camera for 2D mobile games."""
    if right == left or top == bottom or far == near:
        raise ValueError("degenerate orthographic volume")
    m = identity()
    m[0, 0] = 2.0 / (right - left)
    m[1, 1] = 2.0 / (top - bottom)
    m[2, 2] = -2.0 / (far - near)
    m[0, 3] = -(right + left) / (right - left)
    m[1, 3] = -(top + bottom) / (top - bottom)
    m[2, 3] = -(far + near) / (far - near)
    return m


def viewport_transform(ndc_xy: np.ndarray, width: int,
                       height: int) -> np.ndarray:
    """Map NDC [-1, 1]^2 coordinates to pixel coordinates.

    The y axis is flipped so that (0, 0) is the top-left screen corner, the
    convention used by the tile grid.
    """
    out = np.empty_like(ndc_xy, dtype=np.float64)
    out[..., 0] = (ndc_xy[..., 0] + 1.0) * 0.5 * width
    out[..., 1] = (1.0 - ndc_xy[..., 1]) * 0.5 * height
    return out


def edge_function(ax: float, ay: float, bx: float, by: float,
                  px: float, py: float) -> float:
    """Signed double-area of triangle (a, b, p); >0 when p is left of a->b."""
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax)


def triangle_area_2d(v0: Sequence[float], v1: Sequence[float],
                     v2: Sequence[float]) -> float:
    """Unsigned area of a screen-space triangle."""
    return abs(edge_function(v0[0], v0[1], v1[0], v1[1], v2[0], v2[1])) * 0.5
