"""Scene geometry containers: vertices, meshes and draw calls.

A :class:`DrawCall` is the unit of work submitted to the Geometry Pipeline,
mirroring a graphics API draw command: a mesh (vertex/index buffers), a
model transform, a texture binding and a shader cost profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class Mesh:
    """Indexed triangle mesh.

    ``positions`` is (V, 3) float64, ``uvs`` is (V, 2) float64 in [0, 1],
    ``indices`` is (T, 3) int32.  Addresses of the backing vertex buffer are
    synthesized from ``buffer_base`` for the vertex-cache model.
    """

    positions: np.ndarray
    uvs: np.ndarray
    indices: np.ndarray
    buffer_base: int = 0

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.float64)
        self.uvs = np.asarray(self.uvs, dtype=np.float64)
        self.indices = np.asarray(self.indices, dtype=np.int32)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError("positions must be (V, 3)")
        if self.uvs.shape != (self.positions.shape[0], 2):
            raise ValueError("uvs must be (V, 2) matching positions")
        if self.indices.ndim != 2 or self.indices.shape[1] != 3:
            raise ValueError("indices must be (T, 3)")
        if self.indices.size and self.indices.max() >= len(self.positions):
            raise ValueError("index out of range")

    @property
    def num_vertices(self) -> int:
        """Vertices in the mesh."""
        return len(self.positions)

    @property
    def num_triangles(self) -> int:
        """Triangles in the mesh."""
        return len(self.indices)

    #: Bytes of one packed vertex (position + uv + normal + padding).
    VERTEX_STRIDE = 32

    def vertex_address(self, vertex_index: int) -> int:
        """Main-memory byte address of a vertex (for the Vertex cache)."""
        return self.buffer_base + vertex_index * self.VERTEX_STRIDE


def quad_mesh(x: float, y: float, w: float, h: float, z: float = 0.0,
              uv_scale: float = 1.0, uv_rect: Optional[tuple] = None,
              buffer_base: int = 0) -> Mesh:
    """An axis-aligned textured quad (two triangles) — the sprite primitive.

    ``uv_rect=(u0, v0, u1, v1)`` maps the quad onto a window of its texture
    (sprite-sheet / atlas addressing); without it the quad spans
    ``uv_scale`` repeats of the whole texture.
    """
    positions = np.array([
        [x, y, z], [x + w, y, z], [x + w, y + h, z], [x, y + h, z],
    ])
    if uv_rect is not None:
        u0, v0, u1, v1 = uv_rect
        uvs = np.array([[u0, v0], [u1, v0], [u1, v1], [u0, v1]])
    else:
        uvs = np.array([
            [0.0, 0.0], [uv_scale, 0.0], [uv_scale, uv_scale],
            [0.0, uv_scale],
        ])
    indices = np.array([[0, 1, 2], [0, 2, 3]])
    return Mesh(positions, uvs, indices, buffer_base=buffer_base)


def grid_mesh(x: float, y: float, w: float, h: float, nx: int, ny: int,
              z: float = 0.0, height_fn=None, buffer_base: int = 0) -> Mesh:
    """A tessellated rectangle of ``nx`` x ``ny`` cells.

    ``height_fn(u, v)`` optionally displaces z — used by the workload
    generator to fabricate terrain-style 3D content.
    """
    if nx < 1 or ny < 1:
        raise ValueError("grid needs at least one cell per axis")
    us = np.linspace(0.0, 1.0, nx + 1)
    vs = np.linspace(0.0, 1.0, ny + 1)
    positions = []
    uvs = []
    for v in vs:
        for u in us:
            zz = z if height_fn is None else z + height_fn(u, v)
            positions.append([x + u * w, y + v * h, zz])
            uvs.append([u, v])
    indices = []
    stride = nx + 1
    for j in range(ny):
        for i in range(nx):
            a = j * stride + i
            b = a + 1
            c = a + stride
            d = c + 1
            indices.append([a, b, d])
            indices.append([a, d, c])
    return Mesh(np.array(positions), np.array(uvs), np.array(indices),
                buffer_base=buffer_base)


def disk_mesh(cx: float, cy: float, radius: float, segments: int = 12,
              z: float = 0.0, buffer_base: int = 0) -> Mesh:
    """A fan-triangulated disk — coins, wheels, particles."""
    if segments < 3:
        raise ValueError("a disk needs at least three segments")
    positions = [[cx, cy, z]]
    uvs = [[0.5, 0.5]]
    for k in range(segments):
        a = 2.0 * math.pi * k / segments
        positions.append([cx + radius * math.cos(a),
                          cy + radius * math.sin(a), z])
        uvs.append([0.5 + 0.5 * math.cos(a), 0.5 + 0.5 * math.sin(a)])
    indices = []
    for k in range(segments):
        indices.append([0, 1 + k, 1 + (k + 1) % segments])
    return Mesh(np.array(positions), np.array(uvs), np.array(indices),
                buffer_base=buffer_base)


@dataclass
class ShaderProfile:
    """Cost model of the shader programs bound to a draw call.

    The simulator never executes shader ISA; it charges
    ``fragment_instructions`` ALU instructions and ``texture_fetches``
    texture samples per fragment, and ``vertex_instructions`` per vertex.
    """

    vertex_instructions: int = 16
    fragment_instructions: int = 24
    texture_fetches: int = 1

    def __post_init__(self) -> None:
        if min(self.vertex_instructions, self.fragment_instructions) < 0:
            raise ValueError("instruction counts must be non-negative")
        if self.texture_fetches < 0:
            raise ValueError("texture fetch count must be non-negative")


@dataclass
class DrawCall:
    """One submitted draw: mesh + transform + texture + shader profile."""

    mesh: Mesh
    model_matrix: Optional[np.ndarray] = None
    texture_id: int = 0
    shader: ShaderProfile = field(default_factory=ShaderProfile)
    blend: str = "opaque"
    depth_write: bool = True
    #: True when the fragment shader modifies depth: Early-Z must be
    #: disabled and the visibility test runs after shading (Late-Z).
    modifies_depth: bool = False

    def __post_init__(self) -> None:
        if self.model_matrix is not None:
            self.model_matrix = np.asarray(self.model_matrix,
                                           dtype=np.float64)
            if self.model_matrix.shape != (4, 4):
                raise ValueError("model matrix must be 4x4")
        if self.blend not in ("opaque", "alpha", "additive"):
            raise ValueError(f"unknown blend mode {self.blend!r}")
