"""Geometry Pipeline substrate: meshes, draw calls, vertex shading,
clipping/culling, and the pipeline that produces screen-space primitives."""

from .mesh import DrawCall, Mesh, ShaderProfile, disk_mesh, grid_mesh, quad_mesh
from .pipeline import GeometryOutput, GeometryPipeline, GeometryStats
from .primitive import Primitive
from . import vecmath

__all__ = [
    "DrawCall",
    "Mesh",
    "ShaderProfile",
    "quad_mesh",
    "grid_mesh",
    "disk_mesh",
    "GeometryPipeline",
    "GeometryOutput",
    "GeometryStats",
    "Primitive",
    "vecmath",
]
