"""Frustum culling and homogeneous-space clipping (Sutherland-Hodgman).

Triangles fully outside the view frustum are discarded (Culling); partially
visible ones are clipped against the six frustum planes in clip space,
producing a fan of smaller triangles that lie entirely inside the visible
volume — exactly the Culling/Clipping stage of Figure 3 in the paper.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

# Each plane is expressed as a coefficient row p such that a clip-space
# vertex v = (x, y, z, w) is inside when p @ v >= 0.
_FRUSTUM_PLANES = np.array([
    [1.0, 0.0, 0.0, 1.0],    # x >= -w  (left)
    [-1.0, 0.0, 0.0, 1.0],   # x <=  w  (right)
    [0.0, 1.0, 0.0, 1.0],    # y >= -w  (bottom)
    [0.0, -1.0, 0.0, 1.0],   # y <=  w  (top)
    [0.0, 0.0, 1.0, 1.0],    # z >= -w  (near)
    [0.0, 0.0, -1.0, 1.0],   # z <=  w  (far)
])

#: Minimum |w| accepted after clipping; guards the perspective divide.
_W_EPSILON = 1e-9

ClipVertex = Tuple[np.ndarray, np.ndarray]  # (clip position (4,), uv (2,))


def classify_triangle(clip: np.ndarray) -> str:
    """Classify a clip-space triangle: 'inside', 'outside' or 'straddling'."""
    distances = clip @ _FRUSTUM_PLANES.T  # (3, 6)
    if (distances < 0.0).all(axis=0).any():
        return "outside"
    if (distances >= 0.0).all():
        return "inside"
    return "straddling"


def _clip_against_plane(polygon: List[ClipVertex],
                        plane: np.ndarray) -> List[ClipVertex]:
    """One Sutherland-Hodgman pass of a polygon against a frustum plane."""
    if not polygon:
        return []
    output: List[ClipVertex] = []
    prev_pos, prev_uv = polygon[-1]
    prev_dist = float(plane @ prev_pos)
    for pos, uv in polygon:
        dist = float(plane @ pos)
        crosses = (dist < 0.0) != (prev_dist < 0.0)
        if crosses:
            t = prev_dist / (prev_dist - dist)
            inter_pos = prev_pos + t * (pos - prev_pos)
            inter_uv = prev_uv + t * (uv - prev_uv)
            output.append((inter_pos, inter_uv))
        if dist >= 0.0:
            output.append((pos, uv))
        prev_pos, prev_uv, prev_dist = pos, uv, dist
    return output


def clip_triangle(clip: np.ndarray, uvs: np.ndarray
                  ) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Clip one triangle against the frustum.

    Returns a list of triangles, each as ``(positions (3,4), uvs (3,2))``.
    Fully-inside triangles come back unchanged; fully-outside ones yield an
    empty list; straddling ones are clipped and fan-triangulated.
    """
    state = classify_triangle(clip)
    if state == "outside":
        return []
    if state == "inside":
        return [(clip.copy(), uvs.copy())]
    polygon: List[ClipVertex] = [(clip[i].copy(), uvs[i].copy())
                                 for i in range(3)]
    for plane in _FRUSTUM_PLANES:
        polygon = _clip_against_plane(polygon, plane)
        if len(polygon) < 3:
            return []
    triangles = []
    anchor_pos, anchor_uv = polygon[0]
    for i in range(1, len(polygon) - 1):
        tri_pos = np.stack([anchor_pos, polygon[i][0], polygon[i + 1][0]])
        tri_uv = np.stack([anchor_uv, polygon[i][1], polygon[i + 1][1]])
        if (np.abs(tri_pos[:, 3]) < _W_EPSILON).any():
            continue
        triangles.append((tri_pos, tri_uv))
    return triangles


def cull_backface(xy: Sequence[Sequence[float]]) -> bool:
    """True when the screen-space triangle should be culled as back-facing.

    The pipeline uses counter-clockwise front faces in screen space (y
    pointing down), i.e. negative signed area is front-facing after the
    y flip of the viewport transform.  Degenerate (zero-area) triangles are
    always culled.
    """
    (ax, ay), (bx, by), (cx, cy) = xy
    area2 = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    return area2 <= 0.0
