"""Vertex shading: object space -> clip space.

The vertex shader is modeled functionally as the standard
model-view-projection transform plus attribute passthrough; its *cost* is
whatever the draw call's :class:`~repro.geometry.mesh.ShaderProfile` says.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .mesh import DrawCall


@dataclass
class ShadedVertices:
    """Output of vertex shading for one draw call.

    ``clip`` is (V, 4) clip-space positions, ``uvs`` the untouched texture
    coordinates.  Primitive assembly and clipping consume this.
    """

    clip: np.ndarray
    uvs: np.ndarray


def shade_vertices(draw: DrawCall, view_projection: np.ndarray) -> ShadedVertices:
    """Run the (modeled) vertex shader for every vertex of a draw call."""
    positions = draw.mesh.positions
    homogeneous = np.empty((len(positions), 4), dtype=np.float64)
    homogeneous[:, :3] = positions
    homogeneous[:, 3] = 1.0
    matrix = view_projection
    if draw.model_matrix is not None:
        matrix = view_projection @ draw.model_matrix
    clip = homogeneous @ matrix.T
    return ShadedVertices(clip=clip, uvs=draw.mesh.uvs)
