"""The Geometry Pipeline: draw calls -> screen-space primitives.

Implements the left pipeline of the paper's Figure 3: Vertex Fetcher,
Vertex Processors (modeled vertex shader), Primitive Assembly and
Culling/Clipping.  The functional output is the list of screen-space
:class:`~repro.geometry.primitive.Primitive` objects handed to the Tiling
Engine, plus the vertex-fetch address stream (for the Vertex cache) and a
cycle estimate for the whole phase (used both for Figure 1's breakdown and
to check that LIBRA's ranking latency hides under geometry, Section III-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..config import CACHE_LINE_BYTES
from .clipping import clip_triangle, cull_backface
from .mesh import DrawCall
from .primitive import Primitive
from .shading import shade_vertices
from .vecmath import viewport_transform


@dataclass
class GeometryStats:
    """Event counts produced while running the Geometry Pipeline."""

    draw_calls: int = 0
    vertices_fetched: int = 0
    vertices_shaded: int = 0
    vertex_instructions: int = 0
    triangles_in: int = 0
    triangles_culled_frustum: int = 0
    triangles_clipped: int = 0
    triangles_culled_backface: int = 0
    primitives_out: int = 0


@dataclass
class GeometryOutput:
    """Everything the rest of the frame needs from the Geometry phase."""

    primitives: List[Primitive]
    vertex_fetch_addresses: List[int]
    stats: GeometryStats
    cycles: int = 0


@dataclass
class GeometryPipeline:
    """Functional + timing model of the Geometry Pipeline.

    ``vertex_processors`` sets the vertex-shading throughput;
    ``cull_backfaces`` enables the winding test (off by default because 2D
    sprite content mixes windings; 3D workloads turn it on per run).
    """

    width: int
    height: int
    vertex_processors: int = 2
    cull_backfaces: bool = False
    #: Fixed-function per-triangle cost (assembly + cull/clip), cycles.
    triangle_setup_cycles: float = 2.0
    #: Cycles to fetch one vertex when it hits in the Vertex cache.
    vertex_fetch_cycles: float = 0.5
    #: Serial per-draw-call overhead (command processing, state changes,
    #: descriptor fetches) — the dominant geometry-phase cost of sprite-
    #: heavy mobile games, which issue hundreds of small draws per frame.
    draw_call_cycles: float = 500.0

    def run(self, draws: Sequence[DrawCall],
            view_projection: np.ndarray) -> GeometryOutput:
        """Run the pipeline over the draw calls; returns GeometryOutput."""
        stats = GeometryStats()
        primitives: List[Primitive] = []
        fetch_addresses: List[int] = []
        sequence = 0
        for draw in draws:
            stats.draw_calls += 1
            mesh = draw.mesh
            stats.vertices_fetched += mesh.num_vertices
            stats.vertices_shaded += mesh.num_vertices
            stats.vertex_instructions += (
                mesh.num_vertices * draw.shader.vertex_instructions)
            for vertex_index in range(mesh.num_vertices):
                fetch_addresses.append(mesh.vertex_address(vertex_index))
            shaded = shade_vertices(draw, view_projection)
            for tri in mesh.indices:
                stats.triangles_in += 1
                clip = shaded.clip[tri]
                uvs = shaded.uvs[tri]
                pieces = clip_triangle(clip, uvs)
                if not pieces:
                    stats.triangles_culled_frustum += 1
                    continue
                if len(pieces) > 1 or pieces[0][0] is not clip:
                    stats.triangles_clipped += 1
                for piece_clip, piece_uv in pieces:
                    prim = self._to_screen(piece_clip, piece_uv, draw,
                                           sequence)
                    if prim is None:
                        stats.triangles_culled_backface += 1
                        continue
                    primitives.append(prim)
                    sequence += 1
        stats.primitives_out = len(primitives)
        cycles = self._estimate_cycles(stats)
        return GeometryOutput(primitives=primitives,
                              vertex_fetch_addresses=fetch_addresses,
                              stats=stats, cycles=cycles)

    def _to_screen(self, clip: np.ndarray, uvs: np.ndarray,
                   draw: DrawCall, sequence: int) -> Primitive | None:
        """Perspective divide + viewport transform; None when culled."""
        w = clip[:, 3]
        inv_w = 1.0 / w
        ndc = clip[:, :3] * inv_w[:, None]
        xy = viewport_transform(ndc[:, :2], self.width, self.height)
        if self.cull_backfaces and cull_backface(xy):
            return None
        # Degenerate triangles never produce fragments; drop them here.
        (ax, ay), (bx, by), (cx, cy) = xy
        area2 = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
        if area2 == 0.0:
            return None
        return Primitive(
            xy=xy,
            depth=ndc[:, 2].copy(),
            inv_w=inv_w.copy(),
            uv_over_w=uvs * inv_w[:, None],
            texture_id=draw.texture_id,
            shader=draw.shader,
            blend=draw.blend,
            depth_write=draw.depth_write,
            late_z=draw.modifies_depth,
            sequence=sequence,
        )

    def _estimate_cycles(self, stats: GeometryStats) -> int:
        """Pipelined-throughput cycle estimate for the Geometry phase.

        The phase is limited by the slowest of: vertex fetch, vertex
        shading (spread over the vertex processors) and the fixed-function
        triangle path.  A pipeline works on all three concurrently, so the
        phase cost is the max, not the sum.
        """
        fetch = stats.vertices_fetched * self.vertex_fetch_cycles
        shade = stats.vertex_instructions / max(self.vertex_processors, 1)
        setup = stats.triangles_in * self.triangle_setup_cycles
        draws = stats.draw_calls * self.draw_call_cycles
        return int(max(fetch, shade, setup) + draws)


def vertex_lines(addresses: Sequence[int]) -> List[int]:
    """Collapse a vertex-fetch byte-address stream to cache-line addresses."""
    return [addr // CACHE_LINE_BYTES for addr in addresses]
