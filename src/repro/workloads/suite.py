"""The 32-benchmark suite (reconstruction of the paper's Table II).

The paper evaluates 32 commercial Android games; those binaries and GPU
traces are not redistributable, so this suite substitutes 32 procedural
workloads spanning the same design space: 2D / 2.5D / 3D scene styles,
texture working sets from sub-megabyte to tens of megabytes, and per-tile
heat distributions with spatially-clustered hotspots (characters, HUD,
dense object stacks) over cold backgrounds.

The 16 three-letter codes that appear in the paper's text and figures
(CCS, SuS, HCR, AAt, GrT, BlB, CoC, Gra, RoK, BBR, AmU, GDL, HoW, RoM,
CrS, Jet) name benchmarks with the matching published behaviour class
(memory- vs compute-intensive); the remaining 16 codes are synthetic
additions to reach the paper's count.  Titles are descriptive stand-ins,
not the trademarked games.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from .params import HotspotSpec, WorkloadParams
from .scene import SceneBuilder

#: Screen geometry used by the experiment harness.  Full HD is the paper's
#: setting; experiments default to qHD-class 960x512 so a full sweep of 32
#: benchmarks x several configurations finishes in minutes (DESIGN.md
#: records this substitution; the tile-grid structure is preserved).
EXPERIMENT_WIDTH = 960
EXPERIMENT_HEIGHT = 512


def _spots(*centers: tuple, sprites: int = 10, layers: int = 3,
           size: float = 0.10, radius: float = 0.12,
           uv_scale: float = 1.0, cells: int = 16) -> tuple:
    return tuple(HotspotSpec(center=c, sprites=sprites, layers=layers,
                             sprite_size=size, radius=radius,
                             uv_scale=uv_scale, cells=cells)
                 for c in centers)


def _memory(name: str, title: str, style: str, seed: int,
            **overrides) -> WorkloadParams:
    """Base profile of a memory-intensive game: cheap shaders, heavy
    multitextured hotspots, large texture working set."""
    defaults = dict(
        memory_intensive=True,
        background_layers=2,
        roaming_sprites=24,
        hotspots=_spots((0.3, 0.5), (0.7, 0.4), sprites=14, layers=6,
                        size=0.13, cells=24, uv_scale=1.6),
        hud_elements=8,
        fragment_instructions=8,
        texture_fetches=3,
        num_textures=14,
        texture_size=256,
        detail_texture_size=512,
        texel_density=0.5,
        scroll_speed=8.0,
    )
    defaults.update(overrides)
    # Memory-intensive games render *detailed* hotspots: enforce native-or-
    # better texel density and a wide sprite-cell palette (big working set)
    # on every hotspot, including per-benchmark overrides.
    defaults["hotspots"] = tuple(
        replace(spot,
                uv_scale=max(spot.uv_scale, 1.6),
                cells=max(spot.cells, 24))
        for spot in defaults["hotspots"])
    return WorkloadParams(name=name, title=title, style=style, seed=seed,
                          **defaults)


def _compute(name: str, title: str, style: str, seed: int,
             **overrides) -> WorkloadParams:
    """Base profile of a compute-intensive game: long shaders, light
    texture traffic, small working set."""
    defaults = dict(
        memory_intensive=False,
        background_layers=1,
        roaming_sprites=36,
        hotspots=_spots((0.5, 0.5), sprites=8, layers=2, size=0.08,
                        cells=4),
        hud_elements=4,
        fragment_instructions=64,
        texture_fetches=1,
        num_textures=6,
        texture_size=128,
        detail_texture_size=256,
        texel_density=0.3,
        scroll_speed=6.0,
    )
    defaults.update(overrides)
    return WorkloadParams(name=name, title=title, style=style, seed=seed,
                          **defaults)


def _build_suite() -> Dict[str, WorkloadParams]:
    benchmarks: List[WorkloadParams] = [
        # ---- memory-intensive half (16) --------------------------------
        _memory("AAt", "Angry Attack", "2D", 1,
                hotspots=_spots((0.25, 0.45), (0.65, 0.55), (0.5, 0.2),
                                sprites=10, layers=4, uv_scale=1.5)),
        _memory("AmU", "Among Unknowns", "2D", 2,
                roaming_sprites=40, texture_size=512,
                hotspots=_spots((0.4, 0.5), sprites=16, layers=4)),
        _memory("BBR", "Beach Buggy Rally", "3D", 3,
                terrain_cells=24, scroll_speed=14.0,
                hotspots=_spots((0.5, 0.6), sprites=14, layers=3,
                                size=0.14)),
        _memory("BlB", "Bubble Blast", "2D", 4,
                hotspots=_spots((0.3, 0.35), (0.7, 0.35), (0.5, 0.7),
                                sprites=14, layers=5, size=0.09),
                fragment_instructions=8),
        _memory("CCS", "Candy Crunch Swap", "2D", 5,
                hotspots=_spots((0.5, 0.5), sprites=28, layers=6,
                                radius=0.30, size=0.09, cells=48),
                num_textures=18, fragment_instructions=6,
                texture_fetches=4, scroll_speed=4.0),
        _memory("CoC", "Clans Commander", "2.5D", 6,
                roaming_sprites=48, texture_size=512,
                hotspots=_spots((0.35, 0.4), (0.75, 0.6), sprites=12,
                                layers=3)),
        _memory("Gra", "Gravity Wells", "2D", 7,
                hotspots=_spots((0.5, 0.4), sprites=8, layers=6,
                                radius=0.08, size=0.16),
                num_textures=10),
        _memory("GrT", "Grand Tour", "3D", 8,
                terrain_cells=32, scroll_speed=16.0,
                hotspots=_spots((0.5, 0.55), (0.2, 0.5), sprites=12,
                                layers=4, size=0.12),
                num_textures=16, texture_size=512),
        _memory("HCR", "Hillside Climb Run", "2D", 9,
                terrain_cells=16, scroll_speed=12.0,
                hotspots=_spots((0.35, 0.55), sprites=12, layers=4,
                                size=0.12, uv_scale=1.5)),
        _memory("HoW", "Heroes of Warfare", "2.5D", 10,
                num_textures=22, texture_size=512,
                detail_texture_size=1024,
                hotspots=_spots((0.3, 0.45), (0.7, 0.45), sprites=12,
                                layers=4)),
        _memory("RoK", "Realm of Kings", "2.5D", 11,
                roaming_sprites=56, fragment_instructions=12,
                hotspots=_spots((0.5, 0.5), sprites=10, layers=5,
                                radius=0.2)),
        _memory("RoM", "Rise of Monsters", "3D", 12,
                terrain_cells=28, num_textures=20, texture_size=512,
                detail_texture_size=1024,
                hotspots=_spots((0.45, 0.5), sprites=14, layers=4)),
        _memory("SuS", "Subway Sprinters", "3D", 13,
                terrain_cells=24, scroll_speed=18.0,
                hotspots=_spots((0.5, 0.65), (0.5, 0.15), sprites=12,
                                layers=4, size=0.12),
                hud_elements=10),
        _memory("DrD", "Dragon Dash", "2D", 14,
                scroll_speed=20.0,
                hotspots=_spots((0.3, 0.5), sprites=14, layers=4,
                                size=0.13)),
        _memory("LsT", "Lost Temple", "3D", 15,
                terrain_cells=20, num_textures=16,
                hotspots=_spots((0.5, 0.5), (0.8, 0.3), sprites=10,
                                layers=4)),
        _memory("TwR", "Tower Rush", "2.5D", 16,
                hotspots=_spots((0.25, 0.3), (0.5, 0.55), (0.75, 0.3),
                                sprites=10, layers=4, size=0.1)),
        # ---- compute-intensive half (16) --------------------------------
        _compute("GDL", "Geometry Drop Lite", "2D", 17,
                 fragment_instructions=48, roaming_sprites=30),
        _compute("CrS", "Crossy Streets", "3D", 18,
                 terrain_cells=16, fragment_instructions=56,
                 num_textures=5, texture_size=128),
        _compute("Jet", "Jetpack Ride", "2D", 19,
                 fragment_instructions=72, scroll_speed=16.0,
                 num_textures=4, texture_size=128),
        _compute("ARn", "Auto Runners", "3D", 20,
                 terrain_cells=20, fragment_instructions=64),
        _compute("BdS", "Bird Smash", "2D", 21,
                 fragment_instructions=80, roaming_sprites=24),
        _compute("CtE", "Castle Escape", "2.5D", 22,
                 fragment_instructions=56, roaming_sprites=40),
        _compute("FlP", "Flappy Pilot", "2D", 23,
                 fragment_instructions=72, roaming_sprites=16,
                 hud_elements=2),
        _compute("FrJ", "Fruit Jam", "2D", 24,
                 fragment_instructions=48,
                 hotspots=_spots((0.5, 0.5), sprites=12, layers=2,
                                 radius=0.2)),
        _compute("KnR", "Knight Rush", "2.5D", 25,
                 fragment_instructions=64, scroll_speed=10.0),
        _compute("MgT", "Magic Tiles", "2D", 26,
                 fragment_instructions=96, roaming_sprites=20,
                 num_textures=4),
        _compute("NnJ", "Ninja Jump", "2D", 27,
                 fragment_instructions=56, scroll_speed=14.0),
        _compute("PbB", "Pixel Bubbles", "2D", 28,
                 fragment_instructions=48, roaming_sprites=48,
                 texture_size=64),
        _compute("PzQ", "Puzzle Quest", "2D", 29,
                 fragment_instructions=88, roaming_sprites=25,
                 scroll_speed=2.0),
        _compute("SkB", "Sketch Battle", "2.5D", 30,
                 fragment_instructions=64,
                 hotspots=_spots((0.4, 0.5), sprites=10, layers=2)),
        _compute("SpD", "Space Defender", "2D", 31,
                 fragment_instructions=56, roaming_sprites=44),
        _compute("WrS", "Word Story", "2D", 32,
                 fragment_instructions=48, roaming_sprites=12,
                 scroll_speed=1.0, hud_elements=10),
    ]
    return {params.name: params for params in benchmarks}


BENCHMARKS: Dict[str, WorkloadParams] = _build_suite()

#: Tiny diagnostic workloads for smoke tests and telemetry traces.  They
#: are deliberately *not* part of :data:`BENCHMARKS` (the suite must stay
#: at the paper's 32 entries); CLI entry points accept them anywhere a
#: benchmark code is accepted via :func:`get_params`.
MICRO_BENCHMARKS: Dict[str, WorkloadParams] = {
    "tri_overlap": WorkloadParams(
        name="tri_overlap",
        title="Three Overlapping Hotspots (micro)",
        style="2D",
        seed=101,
        memory_intensive=True,
        background_layers=1,
        roaming_sprites=6,
        # Three hotspots whose radii overlap near screen centre: a small,
        # strongly clustered heat map that exercises temperature ranking,
        # supertile resizing and hot/cold dispatch within a few frames.
        hotspots=_spots((0.40, 0.45), (0.60, 0.45), (0.50, 0.62),
                        sprites=6, layers=3, size=0.12, radius=0.18,
                        uv_scale=1.2, cells=8),
        hud_elements=2,
        fragment_instructions=8,
        texture_fetches=2,
        num_textures=4,
        texture_size=64,
        detail_texture_size=128,
        texel_density=0.5,
        scroll_speed=6.0,
    ),
}


def benchmark_names() -> List[str]:
    """All 32 benchmark codes, suite order."""
    return list(BENCHMARKS)


def micro_benchmark_names() -> List[str]:
    """Codes of the diagnostic micro-benchmarks (not in the suite)."""
    return list(MICRO_BENCHMARKS)


def memory_intensive_names() -> List[str]:
    """Codes of the 16 memory-intensive benchmarks."""
    return [n for n, p in BENCHMARKS.items() if p.memory_intensive]


def compute_intensive_names() -> List[str]:
    """Codes of the 16 compute-intensive benchmarks."""
    return [n for n, p in BENCHMARKS.items() if not p.memory_intensive]


def get_params(name: str) -> WorkloadParams:
    """Parameters of a benchmark or micro-benchmark by code.

    Suite benchmarks take precedence; diagnostic micro-benchmarks
    (``tri_overlap`` etc.) resolve next.  Raises ValueError if unknown.
    """
    try:
        return BENCHMARKS[name]
    except KeyError:
        pass
    try:
        return MICRO_BENCHMARKS[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; known: "
            f"{benchmark_names() + micro_benchmark_names()}"
        ) from None


def make_scene_builder(name: str, width: int = EXPERIMENT_WIDTH,
                       height: int = EXPERIMENT_HEIGHT) -> SceneBuilder:
    """Instantiate a benchmark's scene generator at a screen size."""
    return SceneBuilder(get_params(name), width, height)


def table2_rows(width: int = EXPERIMENT_WIDTH,
                height: int = EXPERIMENT_HEIGHT,
                names: Optional[List[str]] = None) -> List[dict]:
    """Rows of the Table II reconstruction (name, style, working set)."""
    rows = []
    for name in names or benchmark_names():
        params = get_params(name)
        builder = SceneBuilder(params, width, height)
        rows.append({
            "name": name,
            "title": params.title,
            "style": params.style,
            "memory_intensive": params.memory_intensive,
            "textures": len(builder.textures),
            "texture_mb": builder.textures.total_bytes() / (1024 ** 2),
        })
    return rows
