"""Trace building: scenes -> FrameTrace, via the real pipelines.

Each frame of a benchmark runs through the actual Geometry Pipeline,
Tiling Engine and (trace-mode) Raster Pipeline, so the per-tile workload
descriptors fed to the timing simulator are *measured*, not estimated:
fragment counts come from real edge-function rasterization with Early-Z,
texture line footprints from real UV interpolation and mip selection.

Traces depend only on the frame content and screen geometry — never on
the GPU configuration — so one trace is shared by the baseline, PTR and
LIBRA runs of an experiment (and can be cached on disk, see
:class:`TraceCache`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from .. import cachefile
from ..config import CACHE_LINE_BYTES
from ..geometry.pipeline import GeometryPipeline
from ..gpu.workload import FrameTrace, TileWorkload
from ..raster.framebuffer import FrameBuffer, tile_flush_lines
from ..raster.pipeline import RasterPipeline
from ..tiling.engine import TilingEngine
from .scene import Scene, SceneBuilder

#: Bump when the trace format or generator behaviour changes, to invalidate
#: any on-disk caches.
TRACE_FORMAT_VERSION = 3


class TraceBuilder:
    """Builds FrameTraces for one benchmark at one screen geometry."""

    def __init__(self, scene_builder: SceneBuilder, width: int, height: int,
                 tile_size: int, transaction_elimination: bool = True):
        self.scenes = scene_builder
        self.width = width
        self.height = height
        self.tile_size = tile_size
        self.tiles_x = -(-width // tile_size)
        self.tiles_y = -(-height // tile_size)
        #: ARM-style transaction elimination: a tile whose content is
        #: unchanged from the previous frame skips its Frame Buffer flush.
        self.transaction_elimination = transaction_elimination
        self._geometry = GeometryPipeline(width, height)
        self._tiling = TilingEngine(self.tiles_x, self.tiles_y, tile_size)
        self._previous_signatures: Dict[tuple, int] = {}

    def build(self, frame_index: int) -> FrameTrace:
        """Build the FrameTrace of one frame index."""
        scene = self.scenes.frame(frame_index)
        return self.build_from_scene(scene, frame_index)

    def build_from_scene(self, scene: Scene, frame_index: int) -> FrameTrace:
        """Build a FrameTrace from an explicit scene."""
        geometry = self._geometry.run(scene.draws, scene.view_projection)
        tiled = self._tiling.tile_frame(geometry.primitives)
        raster = RasterPipeline(
            self.width, self.height, self.tile_size,
            textures=self.scenes.textures,
            shade_colors=False, collect_lines=True,
            framebuffer=FrameBuffer(self.width, self.height,
                                    store_pixels=False))
        workloads: Dict[tuple, TileWorkload] = {}
        signatures: Dict[tuple, int] = {}
        for tile, primitives in tiled.parameter_buffer.lists.items():
            measured = raster.process_tile(tile, primitives)
            signature = _tile_signature(measured)
            fb_lines = measured.framebuffer_lines
            if (self.transaction_elimination
                    and self._previous_signatures.get(tile) == signature):
                fb_lines = []
            signatures[tile] = signature
            workloads[tile] = TileWorkload(
                tile=tile,
                instructions=measured.instructions,
                fragments=measured.fragments_shaded,
                texture_lines=measured.texture_lines,
                texture_fetches=measured.texture_fetches,
                pb_lines=tiled.parameter_buffer.fetch_addresses(tile),
                fb_lines=fb_lines,
                num_primitives=measured.num_primitives,
                prim_fragments=measured.prim_fragments,
                prim_instructions=measured.prim_instructions,
            )
        # Empty tiles flush their cleared Color Buffer once, then the
        # unchanged-tile elimination suppresses further flushes.
        empty_signature = -1
        for ty in range(self.tiles_y):
            for tx in range(self.tiles_x):
                tile = (tx, ty)
                if tile in workloads:
                    continue
                signatures[tile] = empty_signature
                flushed = not (
                    self.transaction_elimination
                    and self._previous_signatures.get(tile)
                    == empty_signature)
                workloads[tile] = TileWorkload(
                    tile=tile,
                    fb_lines=tile_flush_lines(
                        tx * self.tile_size, ty * self.tile_size,
                        self.tile_size, self.width, self.height)
                    if flushed else [])
        self._previous_signatures = signatures
        return FrameTrace(
            frame_index=frame_index,
            tiles_x=self.tiles_x,
            tiles_y=self.tiles_y,
            tile_size=self.tile_size,
            workloads=workloads,
            geometry_cycles=geometry.cycles,
            vertex_lines=[a // CACHE_LINE_BYTES
                          for a in geometry.vertex_fetch_addresses],
            vertex_instructions=geometry.stats.vertex_instructions,
        )

    def build_many(self, num_frames: int,
                   start: int = 0) -> List[FrameTrace]:
        """Build consecutive frames starting at ``start``."""
        return [self.build(start + i) for i in range(num_frames)]


def _tile_signature(measured) -> int:
    """Content signature of a rendered tile (for transaction elimination).

    Hashes the shading-relevant measurements; any content change (moved
    sprite, shifted UVs, different overdraw) perturbs at least one of
    them.  Mirrors the CRC signature ARM GPUs compute over the tile's
    pixels, without requiring trace mode to produce pixels.
    """
    return hash((
        measured.instructions,
        measured.fragments_shaded,
        measured.num_primitives,
        len(measured.texture_lines),
        tuple(measured.texture_lines[:16]),
        tuple(measured.prim_fragments[:16]),
    ))


class TraceCache:
    """Disk cache of built traces (benchmarks are deterministic).

    Experiments sweep many GPU configurations over the same frames; the
    trace is configuration-independent, so caching it cuts experiment
    time by the trace-building share.

    Entries are written through :mod:`repro.cachefile`: atomic replace,
    per-entry SHA-256 checksum, and an advisory per-entry lock, so
    concurrent bench runs can share one cache directory.  A corrupt
    entry (truncation, bit flip, legacy unchecksummed pickle) is
    quarantined as ``<name>.corrupt`` and rebuilt — never served, never
    silently deleted.
    """

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.v{TRACE_FORMAT_VERSION}.pkl"

    def get(self, key: str) -> Optional[List[FrameTrace]]:
        """Cached traces for a key, or None (corrupt entries quarantined)."""
        path = self._path(key)
        if not path.exists():
            return None
        with cachefile.file_lock(path):
            return cachefile.load_or_quarantine(path)

    def put(self, key: str, traces: List[FrameTrace]) -> None:
        """Store traces under a key (atomic, checksummed)."""
        path = self._path(key)
        with cachefile.file_lock(path):
            cachefile.write_cache(traces, path)

    def get_or_build(self, key: str, builder: TraceBuilder,
                     num_frames: int, start: int = 0) -> List[FrameTrace]:
        """Fetch cached traces or build and cache them.

        Holds the entry's advisory lock across the check-build-store
        sequence, so of two concurrent processes racing on the same key
        one builds and the other waits and reads the fresh entry.
        """
        path = self._path(key)
        with cachefile.file_lock(path):
            cached = cachefile.load_or_quarantine(path)
            if cached is not None and len(cached) >= num_frames:
                return cached[:num_frames]
            traces = builder.build_many(num_frames, start=start)
            cachefile.write_cache(traces, path)
        return traces
