"""Trace interchange: export/import FrameTraces as JSON.

Pickle caches (see :class:`~repro.workloads.traces.TraceCache`) are fast
but Python-specific; this module provides a stable, human-inspectable
JSON format so traces can be versioned, diffed, shipped to other tools,
or regenerated deterministically elsewhere.

Format (one JSON object per trace)::

    {"version": 1, "frame_index": 0, "tiles_x": 30, "tiles_y": 16,
     "tile_size": 32, "geometry_cycles": 67064,
     "vertex_instructions": 21344,
     "vertex_lines": [...],
     "tiles": {"4,7": {"instructions": ..., "fragments": ...,
                        "texture_lines": [...], ...}, ...}}

Empty tiles are omitted; ``FrameTrace.workload_for`` regenerates them.

Malformed input — truncated gzip streams, invalid JSON, missing keys,
or a ``version`` other than :data:`FORMAT_VERSION` — raises
:class:`~repro.errors.TraceFormatError` naming the offending path, so a
bad trace file is diagnosed at the trust boundary instead of surfacing
as a raw ``KeyError``/``EOFError`` deep in the simulator.
"""

from __future__ import annotations

import gzip
import json
import zlib
from pathlib import Path
from typing import List, Union

from ..errors import TraceFormatError
from ..gpu.workload import FrameTrace, TileWorkload

FORMAT_VERSION = 1

PathLike = Union[str, Path]

#: Keys every serialized tile record must carry.
_TILE_KEYS = ("instructions", "fragments", "texture_lines",
              "texture_fetches", "pb_lines", "fb_lines", "num_primitives",
              "prim_fragments", "prim_instructions")

#: Keys every serialized trace record must carry (beyond ``version``).
_TRACE_KEYS = ("frame_index", "tiles_x", "tiles_y", "tile_size",
               "geometry_cycles", "vertex_instructions", "vertex_lines",
               "tiles")


def trace_to_dict(trace: FrameTrace) -> dict:
    """Serialize one trace to a JSON-compatible dictionary."""
    tiles = {}
    for (tx, ty), workload in trace.workloads.items():
        if (workload.instructions == 0 and not workload.texture_lines
                and not workload.fb_lines and not workload.pb_lines):
            continue
        tiles[f"{tx},{ty}"] = {
            "instructions": workload.instructions,
            "fragments": workload.fragments,
            "texture_lines": workload.texture_lines,
            "texture_fetches": workload.texture_fetches,
            "pb_lines": workload.pb_lines,
            "fb_lines": workload.fb_lines,
            "num_primitives": workload.num_primitives,
            "prim_fragments": workload.prim_fragments,
            "prim_instructions": workload.prim_instructions,
        }
    return {
        "version": FORMAT_VERSION,
        "frame_index": trace.frame_index,
        "tiles_x": trace.tiles_x,
        "tiles_y": trace.tiles_y,
        "tile_size": trace.tile_size,
        "geometry_cycles": trace.geometry_cycles,
        "vertex_instructions": trace.vertex_instructions,
        "vertex_lines": trace.vertex_lines,
        "tiles": tiles,
    }


def trace_from_dict(data: dict, source: str = "<dict>") -> FrameTrace:
    """Deserialize a trace dictionary (inverse of :func:`trace_to_dict`).

    ``source`` names the originating file in error messages.
    """
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise TraceFormatError(
            f"{source}: unsupported trace format version {version!r} "
            f"(expected {FORMAT_VERSION})")
    missing = [k for k in _TRACE_KEYS if k not in data]
    if missing:
        raise TraceFormatError(f"{source}: missing keys {missing}")
    workloads = {}
    for key, fields in data["tiles"].items():
        try:
            tx_str, ty_str = key.split(",")
            tile = (int(tx_str), int(ty_str))
        except ValueError:
            raise TraceFormatError(
                f"{source}: malformed tile key {key!r}") from None
        absent = [k for k in _TILE_KEYS if k not in fields]
        if absent:
            raise TraceFormatError(
                f"{source}: tile {key} missing keys {absent}")
        workloads[tile] = TileWorkload(
            tile=tile,
            instructions=fields["instructions"],
            fragments=fields["fragments"],
            texture_lines=list(fields["texture_lines"]),
            texture_fetches=fields["texture_fetches"],
            pb_lines=list(fields["pb_lines"]),
            fb_lines=list(fields["fb_lines"]),
            num_primitives=fields["num_primitives"],
            prim_fragments=list(fields["prim_fragments"]),
            prim_instructions=list(fields["prim_instructions"]),
        )
    return FrameTrace(
        frame_index=data["frame_index"],
        tiles_x=data["tiles_x"],
        tiles_y=data["tiles_y"],
        tile_size=data["tile_size"],
        workloads=workloads,
        geometry_cycles=data["geometry_cycles"],
        vertex_lines=list(data["vertex_lines"]),
        vertex_instructions=data["vertex_instructions"],
    )


def save_traces(traces: List[FrameTrace], path: PathLike) -> None:
    """Write traces as (optionally gzipped) JSON lines."""
    path = Path(path)
    payload = "\n".join(json.dumps(trace_to_dict(t)) for t in traces)
    if path.suffix == ".gz":
        with gzip.open(path, "wt") as handle:
            handle.write(payload)
    else:
        path.write_text(payload)


def load_traces(path: PathLike) -> List[FrameTrace]:
    """Read traces written by :func:`save_traces`.

    Raises :class:`TraceFormatError` on truncated gzip streams, invalid
    JSON, missing keys, or a format-version mismatch — always naming the
    offending path.
    """
    path = Path(path)
    try:
        if path.suffix == ".gz":
            with gzip.open(path, "rt") as handle:
                text = handle.read()
        else:
            text = path.read_text()
    except (EOFError, gzip.BadGzipFile, zlib.error) as exc:
        raise TraceFormatError(
            f"{path}: truncated or corrupt gzip stream ({exc})") from exc
    except UnicodeDecodeError as exc:
        raise TraceFormatError(f"{path}: not a text trace file") from exc
    traces = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"{path}:{lineno}: invalid JSON ({exc.msg})") from exc
        if not isinstance(data, dict):
            raise TraceFormatError(
                f"{path}:{lineno}: expected a JSON object per line")
        traces.append(trace_from_dict(data, source=f"{path}:{lineno}"))
    return traces
