"""Trace interchange: export/import FrameTraces as JSON.

Pickle caches (see :class:`~repro.workloads.traces.TraceCache`) are fast
but Python-specific; this module provides a stable, human-inspectable
JSON format so traces can be versioned, diffed, shipped to other tools,
or regenerated deterministically elsewhere.

Format (one JSON object per trace)::

    {"version": 1, "frame_index": 0, "tiles_x": 30, "tiles_y": 16,
     "tile_size": 32, "geometry_cycles": 67064,
     "vertex_instructions": 21344,
     "vertex_lines": [...],
     "tiles": {"4,7": {"instructions": ..., "fragments": ...,
                        "texture_lines": [...], ...}, ...}}

Empty tiles are omitted; ``FrameTrace.workload_for`` regenerates them.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import List, Union

from ..gpu.workload import FrameTrace, TileWorkload

FORMAT_VERSION = 1

PathLike = Union[str, Path]


def trace_to_dict(trace: FrameTrace) -> dict:
    """Serialize one trace to a JSON-compatible dictionary."""
    tiles = {}
    for (tx, ty), workload in trace.workloads.items():
        if (workload.instructions == 0 and not workload.texture_lines
                and not workload.fb_lines and not workload.pb_lines):
            continue
        tiles[f"{tx},{ty}"] = {
            "instructions": workload.instructions,
            "fragments": workload.fragments,
            "texture_lines": workload.texture_lines,
            "texture_fetches": workload.texture_fetches,
            "pb_lines": workload.pb_lines,
            "fb_lines": workload.fb_lines,
            "num_primitives": workload.num_primitives,
            "prim_fragments": workload.prim_fragments,
            "prim_instructions": workload.prim_instructions,
        }
    return {
        "version": FORMAT_VERSION,
        "frame_index": trace.frame_index,
        "tiles_x": trace.tiles_x,
        "tiles_y": trace.tiles_y,
        "tile_size": trace.tile_size,
        "geometry_cycles": trace.geometry_cycles,
        "vertex_instructions": trace.vertex_instructions,
        "vertex_lines": trace.vertex_lines,
        "tiles": tiles,
    }


def trace_from_dict(data: dict) -> FrameTrace:
    """Deserialize a trace dictionary (inverse of :func:`trace_to_dict`)."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version!r}")
    workloads = {}
    for key, fields in data["tiles"].items():
        tx_str, ty_str = key.split(",")
        tile = (int(tx_str), int(ty_str))
        workloads[tile] = TileWorkload(
            tile=tile,
            instructions=fields["instructions"],
            fragments=fields["fragments"],
            texture_lines=list(fields["texture_lines"]),
            texture_fetches=fields["texture_fetches"],
            pb_lines=list(fields["pb_lines"]),
            fb_lines=list(fields["fb_lines"]),
            num_primitives=fields["num_primitives"],
            prim_fragments=list(fields["prim_fragments"]),
            prim_instructions=list(fields["prim_instructions"]),
        )
    return FrameTrace(
        frame_index=data["frame_index"],
        tiles_x=data["tiles_x"],
        tiles_y=data["tiles_y"],
        tile_size=data["tile_size"],
        workloads=workloads,
        geometry_cycles=data["geometry_cycles"],
        vertex_lines=list(data["vertex_lines"]),
        vertex_instructions=data["vertex_instructions"],
    )


def save_traces(traces: List[FrameTrace], path: PathLike) -> None:
    """Write traces as (optionally gzipped) JSON lines."""
    path = Path(path)
    payload = "\n".join(json.dumps(trace_to_dict(t)) for t in traces)
    if path.suffix == ".gz":
        with gzip.open(path, "wt") as handle:
            handle.write(payload)
    else:
        path.write_text(payload)


def load_traces(path: PathLike) -> List[FrameTrace]:
    """Read traces written by :func:`save_traces`."""
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rt") as handle:
            text = handle.read()
    else:
        text = path.read_text()
    return [trace_from_dict(json.loads(line))
            for line in text.splitlines() if line.strip()]
