"""Synthetic benchmark suite: parameters, scenes, traces (Table II)."""

from .params import HotspotSpec, WorkloadParams
from .scene import Scene, SceneBuilder
from .suite import (BENCHMARKS, EXPERIMENT_HEIGHT, EXPERIMENT_WIDTH,
                    MICRO_BENCHMARKS, benchmark_names,
                    compute_intensive_names, get_params,
                    make_scene_builder, memory_intensive_names,
                    micro_benchmark_names, table2_rows)
from .trace_io import load_traces, save_traces
from .traces import TraceBuilder, TraceCache

__all__ = [
    "WorkloadParams",
    "HotspotSpec",
    "Scene",
    "SceneBuilder",
    "TraceBuilder",
    "TraceCache",
    "save_traces",
    "load_traces",
    "BENCHMARKS",
    "MICRO_BENCHMARKS",
    "benchmark_names",
    "micro_benchmark_names",
    "memory_intensive_names",
    "compute_intensive_names",
    "get_params",
    "make_scene_builder",
    "table2_rows",
    "EXPERIMENT_WIDTH",
    "EXPERIMENT_HEIGHT",
]
