"""Procedural per-frame scene synthesis.

Turns a :class:`~repro.workloads.params.WorkloadParams` into the draw-call
list of any frame index, deterministically: object base positions come from
the benchmark's seed, and frame-to-frame evolution is smooth (scroll +
sinusoidal wobble), which is what gives the suite its frame coherence
(Figure 8 of the paper).

Scenes are built in pixel space and rendered through an orthographic
camera; 3D-style benchmarks add a perspective-projected terrain grid and
depth-tested object stacks so the clipping and Z paths of the pipeline are
exercised.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..geometry.mesh import DrawCall, Mesh, ShaderProfile, grid_mesh, quad_mesh
from ..geometry.vecmath import orthographic
from ..raster.texture import TextureSet
from .params import HotspotSpec, WorkloadParams


@dataclass
class Scene:
    """One frame's draw calls plus the camera that renders them."""

    draws: List[DrawCall]
    view_projection: np.ndarray


class SceneBuilder:
    """Builds the per-frame scenes of one benchmark."""

    def __init__(self, params: WorkloadParams, width: int, height: int):
        self.params = params
        self.width = width
        self.height = height
        self.textures = TextureSet()
        self._allocate_textures()
        self._rng = np.random.default_rng(params.seed)
        self._roamers = self._place_roamers()

    # -- texture set ----------------------------------------------------------
    def _allocate_textures(self) -> None:
        p = self.params
        styles = ("noise", "checker", "gradient")
        # Texture 0 is the background; hotspot textures are the large
        # "detail" ones; the rest are shared sprite sheets.
        self.textures.add(p.texture_size, p.texture_size, seed=p.seed,
                          style="gradient")
        for i in range(1, p.num_textures):
            size = (p.detail_texture_size
                    if i <= len(p.hotspots) * 2 else p.texture_size)
            self.textures.add(size, size, seed=p.seed + i,
                              style=styles[i % len(styles)])

    def _place_roamers(self) -> List[Tuple]:
        """(x0, y0, size, texture, phase, wu, wv) per roamer, frame 0.

        ``(wu, wv)`` anchors the sprite's window in its sprite sheet.
        """
        p = self.params
        roamers = []
        # Roamers of the same texture share a small palette of sheet
        # cells, like repeated props (coins, rocks, clouds) in real games.
        palettes = {
            t: [(float(self._rng.uniform(0.0, 0.9)),
                 float(self._rng.uniform(0.0, 0.9))) for _ in range(4)]
            for t in range(1, p.num_textures)}
        for i in range(p.roaming_sprites):
            x = float(self._rng.uniform(0, self.width))
            y = float(self._rng.uniform(0, self.height))
            size = float(self._rng.uniform(*p.roaming_size)) * self.height
            texture = int(self._rng.integers(1, p.num_textures))
            phase = float(self._rng.uniform(0, 2 * math.pi))
            wu, wv = palettes[texture][int(self._rng.integers(0, 4))]
            roamers.append((x, y, size, texture, phase, wu, wv))
        return roamers

    def _uv_window(self, size_px: float, texture_id: int, density: float,
                   wu: float, wv: float, anim: float) -> Tuple:
        """Sprite-sheet window for a sprite of ``size_px`` pixels.

        The window spans ``size_px * density`` texels (1:1 texel density at
        ``density`` = 1), anchored at (wu, wv) and drifting with the
        animation phase — slow enough that consecutive frames touch almost
        the same texels (frame coherence).
        """
        texture = self.textures[texture_id]
        span = min(size_px * density / texture.width, 1.0)
        u0 = (wu + anim) % max(1.0 - span, 1e-6)
        v0 = wv % max(1.0 - span, 1e-6)
        return (u0, v0, u0 + span, v0 + span)

    # -- frame assembly ---------------------------------------------------
    def frame(self, index: int) -> Scene:
        """Build the scene (draws + camera) of one frame index."""
        p = self.params
        draws: List[DrawCall] = []
        depth = _DepthAllocator()
        self._add_background(draws, index, depth)
        if p.terrain_cells:
            self._add_terrain(draws, index, depth)
        self._add_roamers(draws, index, depth)
        for k, hotspot in enumerate(p.hotspots):
            self._add_hotspot(draws, hotspot, k, index, depth)
        self._add_hud(draws, depth)
        camera = orthographic(0.0, float(self.width),
                              0.0, float(self.height), -10.0, 10.0)
        return Scene(draws=draws, view_projection=camera)

    # -- scene layers ---------------------------------------------------------
    def _add_background(self, draws: List[DrawCall], index: int,
                        depth: "_DepthAllocator") -> None:
        p = self.params
        shader = ShaderProfile(
            vertex_instructions=p.vertex_instructions,
            fragment_instructions=max(p.fragment_instructions // 2, 4),
            texture_fetches=1)
        scroll = (index * p.scroll_speed) / self.width
        for layer in range(p.background_layers):
            # Parallax: deeper layers scroll slower.
            offset = scroll / (layer + 1)
            mesh = quad_mesh(-0.02 * self.width, -0.02 * self.height,
                             1.04 * self.width, 1.04 * self.height,
                             z=depth.next_back(), uv_scale=1.0)
            mesh = _shift_uvs(mesh, offset, 0.0)
            draws.append(DrawCall(mesh=mesh, texture_id=0, shader=shader,
                                  blend="opaque", depth_write=True))

    def _add_terrain(self, draws: List[DrawCall], index: int,
                     depth: "_DepthAllocator") -> None:
        p = self.params
        shader = ShaderProfile(
            vertex_instructions=p.vertex_instructions,
            fragment_instructions=p.fragment_instructions,
            texture_fetches=p.texture_fetches)
        phase = index * p.scroll_speed / self.width
        terrain_texture = 1 if p.num_textures > 1 else 0
        # Size the terrain's UV window for the configured texel density so
        # the mip chain sees minified content (a cold region).
        texture = self.textures[terrain_texture]
        covered_px = self.width * 0.55 * self.height
        span = math.sqrt(p.terrain_density * covered_px
                         / (texture.width * texture.height))
        span = min(span, 1.0)
        mesh = grid_mesh(
            0.0, 0.45 * self.height, float(self.width),
            0.55 * self.height, p.terrain_cells, max(p.terrain_cells // 2, 1),
            z=depth.next_back())
        mesh = Mesh(mesh.positions, mesh.uvs * span, mesh.indices,
                    buffer_base=mesh.buffer_base)
        mesh = _shift_uvs(mesh, phase * span, 0.0)
        draws.append(DrawCall(mesh=mesh, texture_id=terrain_texture,
                              shader=shader, blend="opaque"))

    def _add_roamers(self, draws: List[DrawCall], index: int,
                     depth: "_DepthAllocator") -> None:
        p = self.params
        shader = ShaderProfile(
            vertex_instructions=p.vertex_instructions,
            fragment_instructions=p.fragment_instructions,
            texture_fetches=p.texture_fetches)
        for (x0, y0, size, texture, phase, wu, wv) in self._roamers:
            x = (x0 + index * p.scroll_speed
                 + p.wobble * math.sin(0.3 * index + phase))
            y = y0 + p.wobble * math.cos(0.23 * index + phase)
            x = x % (self.width + size) - size  # wrap around the screen
            window = self._uv_window(size, texture, p.texel_density,
                                     wu, wv, anim=0.002 * index)
            mesh = quad_mesh(x, y, size, size, z=depth.next_front(),
                             uv_rect=window)
            draws.append(DrawCall(mesh=mesh, texture_id=texture,
                                  shader=shader, blend="opaque"))

    def _add_hotspot(self, draws: List[DrawCall], hotspot: HotspotSpec,
                     hotspot_index: int, index: int,
                     depth: "_DepthAllocator") -> None:
        p = self.params
        shader = ShaderProfile(
            vertex_instructions=p.vertex_instructions,
            fragment_instructions=p.fragment_instructions,
            texture_fetches=p.texture_fetches)
        cx = (hotspot.center[0]
              + hotspot.drift * index) % 1.0 * self.width
        cy = hotspot.center[1] * self.height
        radius = hotspot.radius * min(self.width, self.height)
        size = hotspot.sprite_size * self.height
        rng = np.random.default_rng(p.seed * 7919 + hotspot_index)
        detail_textures = [1 + (hotspot_index * 2) % (p.num_textures - 1),
                           1 + (hotspot_index * 2 + 1) % (p.num_textures - 1)]
        # Sprites draw from a small palette of sprite-sheet cells (candy
        # types, coin frames, ...) — the source of texture reuse between
        # overlapping sprites and adjacent tiles.
        palette = [(float(rng.uniform(0.0, 0.9)), float(rng.uniform(0.0, 0.9)))
                   for _ in range(max(hotspot.cells, 1))]
        for layer in range(hotspot.layers):
            blend = "opaque" if layer == 0 else "alpha"
            for s in range(hotspot.sprites):
                angle = float(rng.uniform(0, 2 * math.pi))
                dist = float(rng.uniform(0, radius))
                wob = p.wobble * math.sin(0.41 * index + s + layer)
                x = cx + dist * math.cos(angle) + wob - size / 2
                y = cy + dist * math.sin(angle) - size / 2
                texture = detail_textures[(s + layer) % 2]
                cell = int(rng.integers(0, len(palette)))
                wu, wv = palette[cell]
                window = self._uv_window(
                    size, texture, hotspot.uv_scale,
                    wu=wu, wv=wv, anim=0.003 * index)
                mesh = quad_mesh(x, y, size, size, z=depth.next_front(),
                                 uv_rect=window)
                draws.append(DrawCall(
                    mesh=mesh,
                    texture_id=texture,
                    shader=shader, blend=blend,
                    depth_write=(blend == "opaque")))

    def _add_hud(self, draws: List[DrawCall],
                 depth: "_DepthAllocator") -> None:
        p = self.params
        if not p.hud_elements:
            return
        shader = ShaderProfile(
            vertex_instructions=p.vertex_instructions,
            fragment_instructions=max(p.fragment_instructions // 2, 4),
            texture_fetches=2)
        bar_h = 0.06 * self.height
        slot_w = self.width / max(p.hud_elements, 1)
        for i in range(p.hud_elements):
            y = 0.01 * self.height if i % 2 == 0 \
                else self.height - bar_h - 0.01 * self.height
            texture = 1 + i % max(len(self.textures.ids()) - 1, 1)
            window = self._uv_window(0.8 * slot_w, texture, 1.0,
                                     wu=0.05 * i, wv=0.3, anim=0.0)
            mesh = quad_mesh(i * slot_w + 0.1 * slot_w, y,
                             0.8 * slot_w, bar_h,
                             z=depth.next_front(), uv_rect=window)
            draws.append(DrawCall(mesh=mesh, texture_id=texture,
                                  shader=shader, blend="alpha",
                                  depth_write=False))


class _DepthAllocator:
    """Monotonic z values: later draws land in front (painter's order).

    With the orthographic camera used here, larger world z maps to smaller
    NDC depth (closer to the viewer under the LESS depth test).
    """

    def __init__(self) -> None:
        self._front = 0.0
        self._back = -9.0

    def next_front(self) -> float:
        """Next z value in front of everything drawn so far."""
        self._front += 0.001
        return self._front

    def next_back(self) -> float:
        """Next background z value (far plane side)."""
        self._back += 0.001
        return self._back


def _shift_uvs(mesh: Mesh, du: float, dv: float) -> Mesh:
    """A copy of the mesh with translated texture coordinates."""
    return Mesh(mesh.positions.copy(), mesh.uvs + np.array([du, dv]),
                mesh.indices.copy(), buffer_base=mesh.buffer_base)
