"""Per-benchmark workload parameters.

Each synthetic "game" is described by a :class:`WorkloadParams` record; the
knobs correspond to the scene properties the paper's motivation sections
identify as the drivers of per-tile memory behaviour: spatially-clustered
hot regions (detailed characters, HUD, dense object stacks) versus cold
background, texture working-set size, shader compute intensity, and
frame-to-frame motion (coherence).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigValidationError


def _require_finite(owner: str, **values: float) -> None:
    """Reject NaN/inf scene parameters (they poison every downstream
    geometry computation without crashing it)."""
    for name, value in values.items():
        if not math.isfinite(value):
            raise ConfigValidationError(
                f"{owner}: {name} must be finite, got {value!r}")


@dataclass
class HotspotSpec:
    """One spatially-clustered dense region of the scene.

    ``center`` is in screen fractions; the cluster orbits that anchor
    smoothly over time (frame coherence).  ``layers`` controls overdraw
    (stacked detailed sprites), the main source of per-tile heat.
    """

    center: Tuple[float, float]
    radius: float = 0.12
    sprites: int = 12
    layers: int = 3
    sprite_size: float = 0.10
    #: Texel density multiplier of the cluster's sprites (1.0 = one texel
    #: per pixel — native-resolution detail, the hot case).
    uv_scale: float = 1.0
    drift: float = 0.004
    #: Distinct sprite-sheet cells the cluster's sprites draw from (candy
    #: types, coin frames, ...); smaller values mean more texture reuse.
    cells: int = 16

    def __post_init__(self) -> None:
        _require_finite("hotspot", center_x=self.center[0],
                        center_y=self.center[1], radius=self.radius,
                        sprite_size=self.sprite_size,
                        uv_scale=self.uv_scale, drift=self.drift)
        if self.sprite_size <= 0.0:
            raise ConfigValidationError(
                f"hotspot: sprite_size {self.sprite_size} would draw "
                "zero-area sprites")
        if self.radius < 0.0 or self.uv_scale <= 0.0:
            raise ConfigValidationError(
                "hotspot: radius must be >= 0 and uv_scale > 0")
        if self.sprites < 0 or self.layers < 1:
            raise ConfigValidationError(
                "hotspot: needs sprites >= 0 and layers >= 1")


@dataclass
class WorkloadParams:
    """Full description of one synthetic benchmark."""

    name: str
    title: str
    style: str  # '2D', '2.5D' or '3D'
    seed: int
    #: Expected classification (>=25% of time on memory accesses).
    memory_intensive: bool

    # -- scene structure --------------------------------------------------
    background_layers: int = 1
    #: Freely-moving mid-ground sprites outside hotspots.
    roaming_sprites: int = 30
    roaming_size: Tuple[float, float] = (0.04, 0.10)
    hotspots: Tuple[HotspotSpec, ...] = ()
    #: HUD bars at the top/bottom edges (alpha-blended, always hot).
    hud_elements: int = 6
    #: Terrain grid (cells per axis) for 3D-style content; 0 disables.
    terrain_cells: int = 0

    # -- shader cost profile ----------------------------------------------
    fragment_instructions: int = 24
    texture_fetches: int = 1
    vertex_instructions: int = 16

    # -- texture working set ----------------------------------------------
    num_textures: int = 8
    texture_size: int = 256
    #: Texture size used by hotspot sprites (their detail level).
    detail_texture_size: int = 512

    # -- sampling ------------------------------------------------------------
    #: Texels sampled per screen pixel for ordinary sprites.  1.0 means
    #: native-resolution sprite sheets (every covered pixel pulls a fresh
    #: texel — bandwidth-hungry); values < 1 mean minified content whose
    #: footprint the mip chain collapses (bandwidth-light).
    texel_density: float = 1.0
    #: Texel density of the terrain layer.  Terrain covers half the screen,
    #: so a low density keeps it a *cold* region (the railways and station
    #: roof of the paper's Figure 2), letting the hotspot clusters dominate
    #: the DRAM heat distribution.
    terrain_density: float = 0.2

    # -- motion (frame coherence) -----------------------------------------
    scroll_speed: float = 8.0  # pixels per frame
    wobble: float = 2.0        # pixels of sinusoidal wobble

    def __post_init__(self) -> None:
        if self.style not in ("2D", "2.5D", "3D"):
            raise ConfigValidationError(f"unknown style {self.style!r}")
        if self.num_textures < 1:
            raise ConfigValidationError("need at least one texture")
        for size in (self.texture_size, self.detail_texture_size):
            if size & (size - 1) or size < 4:
                raise ConfigValidationError(
                    "texture sizes must be powers of two >= 4")
        _require_finite(self.name or "workload",
                        scroll_speed=self.scroll_speed, wobble=self.wobble,
                        texel_density=self.texel_density,
                        terrain_density=self.terrain_density,
                        roaming_min=self.roaming_size[0],
                        roaming_max=self.roaming_size[1])
        if self.roaming_size[0] <= 0.0 \
                or self.roaming_size[1] < self.roaming_size[0]:
            raise ConfigValidationError(
                f"{self.name}: roaming_size {self.roaming_size} must be "
                "a positive (min, max) range (zero-area sprites are "
                "degenerate workloads)")
        if self.texel_density <= 0.0 or self.terrain_density <= 0.0:
            raise ConfigValidationError(
                f"{self.name}: texel densities must be positive")
        if self.roaming_sprites < 0 or self.hud_elements < 0 \
                or self.terrain_cells < 0 or self.background_layers < 0:
            raise ConfigValidationError(
                f"{self.name}: scene element counts must be >= 0")

    @property
    def total_sprites(self) -> int:
        """All sprites per frame, including hotspot layers."""
        return (self.roaming_sprites
                + sum(h.sprites * h.layers for h in self.hotspots))
