"""Experiment harness: shared configs, trace/result caching, run helpers.

Every figure/table reproduction in ``benchmarks/`` goes through this
module so that:

* all experiments agree on the screen geometry and GPU variants;
* frame traces (configuration-independent) are built once per benchmark
  and cached on disk;
* simulation results are cached on disk too — the figures share runs
  (e.g. Figures 11-15 all need baseline/PTR/LIBRA on the memory-intensive
  suite), and a re-run of the bench suite is incremental.

Cache location: ``$REPRO_CACHE_DIR`` or ``.repro_cache/`` under the
current directory.  Delete it after changing simulator internals (the
cache key includes a manual generation number plus the experiment
parameters, not a hash of the source).

Cache integrity: every entry is written through :mod:`repro.cachefile`
(atomic replace + SHA-256 checksum + advisory lock), so ``GENERATION``
and the checksum play different roles — the checksum detects *storage*
faults (truncation, bit flips, interrupted writes, legacy unchecksummed
entries) and triggers quarantine-and-rebuild automatically, while
``GENERATION`` must still be bumped manually for *semantic* staleness
(simulator behaviour changed but old entries are bytewise intact; a
checksum cannot see that).  Corrupt entries are renamed to
``*.corrupt`` with a logged warning, never silently deleted or served.

Suite supervision: :func:`run_suite` runs many (benchmark, kind) pairs
with per-benchmark wall-clock timeouts, bounded retry with backoff for
transient faults, and graceful degradation — one failing benchmark is
recorded in the returned :class:`SuiteReport` while every other result
is still delivered.
"""

from __future__ import annotations

import hashlib
import logging
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

from . import cachefile
from .config import GPUConfig
from .core import TileScheduler
from .errors import (BenchmarkTimeoutError, CacheCorruptionError,
                     ConfigValidationError, ReproError, SimulationError,
                     is_transient)
from .supervision import SupervisedJob, Supervisor, backoff_delay
from .gpu import FrameTrace, GPUSimulator, RunResult
from .telemetry import HUB, HarnessSpan
from .workloads import TraceBuilder, benchmark_names, make_scene_builder
from .workloads.traces import TRACE_FORMAT_VERSION

logger = logging.getLogger(__name__)

#: Screen geometry of all experiments (see DESIGN.md for why not FHD).
WIDTH = 960
HEIGHT = 512
TILE = 32

#: Frames simulated per benchmark (the paper uses 25; results stabilize
#: after a handful because of frame coherence, and the bench suite must
#: finish in minutes, not hours).
FRAMES = 8

#: Bump to invalidate cached *traces* (scene generator or trace-builder
#: changes).  Traces are configuration-independent and expensive to
#: build, so this moves rarely.
TRACE_GENERATION = 1

#: Bump to invalidate cached *results* (any semantic change to the
#: timing model).  g2: geometry-phase interval accounting made
#: deterministic when the vertex stream does not divide evenly.
#: g3: RunSummary grew the ``telemetry`` metrics-snapshot field.
#: g4: RunSummary grew the ``telemetry_state`` typed metrics state
#: (the mergeable counterpart of the flat snapshot).
RESULT_GENERATION = 4

#: Backwards-compatible alias (pre-split single generation number).
GENERATION = TRACE_GENERATION


def cache_dir() -> Path:
    """The trace/result cache directory (env REPRO_CACHE_DIR)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


# -- configurations ----------------------------------------------------------

def make_config(kind: str, raster_units: int = 2, cores_per_unit: int = 4,
                width: int = WIDTH, height: int = HEIGHT
                ) -> Tuple[GPUConfig, Optional[TileScheduler]]:
    """Deprecated alias of :meth:`repro.config.GPUConfig.build`.

    Kinds (see :func:`repro.config.parse_kind` for the full grammar):

    * ``baseline`` — 1 Raster Unit x (raster_units*cores_per_unit) cores.
    * ``baseline4`` / ``baseline8`` — single unit with a fixed core count
      (the Figure 4 core-scaling experiment).
    * ``ptr`` — parallel tile rendering, interleaved Z-order.
    * ``libra`` — PTR + the full adaptive temperature scheduler.
    * ``temperature<N>`` — PTR + fixed-size hot/cold supertile scheduling.
    * ``supertile<N>`` — PTR + static supertiles, no temperature ranking.

    .. deprecated:: 1.1
       Call ``GPUConfig.build(kind, raster_units=..., cores_per_unit=...,
       screen_width=..., screen_height=...)`` instead; this shim only
       renames ``width``/``height`` and will be removed.
    """
    import warnings
    warnings.warn(
        "repro.harness.make_config is deprecated and will be removed "
        "in 2.0; use repro.GPUConfig.build(kind, ...) instead",
        DeprecationWarning, stacklevel=2)
    return GPUConfig.build(kind, raster_units=raster_units,
                           cores_per_unit=cores_per_unit,
                           screen_width=width, screen_height=height)


# -- traces ----------------------------------------------------------------

#: In-process memo of recently loaded trace lists.  A figure sweep runs
#: the same benchmark under many configurations back to back; without
#: this every ``run_simulation`` call re-unpickles a multi-megabyte
#: trace file.  Kept tiny (a sweep touches one benchmark at a time) and
#: keyed like the disk entry.  Callers must treat the traces as
#: read-only, which the simulator does.
_TRACE_MEMO: Dict[Tuple[str, int, int, int], List[FrameTrace]] = {}
_TRACE_MEMO_SLOTS = 4


def get_traces(benchmark: str, frames: int = FRAMES, width: int = WIDTH,
               height: int = HEIGHT) -> List[FrameTrace]:
    """Frame traces for a benchmark, built once and cached on disk.

    The entry is read with integrity checking: a corrupt cache file
    (truncated, bit-flipped, interrupted write, legacy format) is
    quarantined with a logged warning naming the path and reason, then
    rebuilt from the scene generator.  The advisory per-entry lock makes
    concurrent bench runs build the traces exactly once.  A small
    in-process memo short-circuits repeat loads within one sweep; the
    returned list is shared, so treat it as read-only.
    """
    memo_key = (benchmark, frames, width, height)
    memoized = _TRACE_MEMO.get(memo_key)
    if memoized is not None:
        return list(memoized)
    key = f"trace-g{TRACE_GENERATION}-{benchmark}-{width}x{height}-f{frames}"
    path = cache_dir() / f"{key}.v{TRACE_FORMAT_VERSION}.pkl"
    with cachefile.file_lock(path):
        cached = _load_cache_entry(path, f"trace cache for {benchmark}")
        if cached is not None:
            _memoize_traces(memo_key, cached)
            return cached
        builder = TraceBuilder(make_scene_builder(benchmark, width, height),
                               width, height, TILE)
        traces = builder.build_many(frames)
        cachefile.write_cache(traces, path)
    _memoize_traces(memo_key, traces)
    return traces


def _memoize_traces(key: Tuple[str, int, int, int],
                    traces: List[FrameTrace]) -> None:
    while len(_TRACE_MEMO) >= _TRACE_MEMO_SLOTS:
        _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
    _TRACE_MEMO[key] = list(traces)


def _load_cache_entry(path: Path, what: str):
    """One cache entry, or None after quarantining a corrupt file."""
    if not path.exists():
        return None
    try:
        return cachefile.read_cache(path)
    except CacheCorruptionError as exc:
        quarantined = cachefile.quarantine(path, str(exc))
        logger.warning(
            "%s unusable: %s — quarantined as %s and rebuilding",
            what, exc, quarantined.name if quarantined else "<gone>")
        return None


# -- cached simulation runs ---------------------------------------------------

@dataclass
class RunSummary:
    """The per-run metrics the figures consume (picklable, compact)."""

    benchmark: str
    kind: str
    frames: int
    total_cycles: int
    geometry_cycles: int
    raster_cycles: int
    fps: float
    energy_j: float
    energy_breakdown: Dict[str, float]
    raster_dram_accesses: int
    texture_hit_ratio: float
    texture_latency: float
    frame_cycles: List[int]
    frame_orders: List[str]
    frame_supertile_sizes: List[int]
    frame_hit_ratios: List[float]
    frame_dram: List[int]
    #: Per-interval DRAM request series of the last frame (Figure 7).
    last_frame_intervals: List[int]
    #: Per-tile DRAM access maps of the last two frames (Figures 2, 8, 9).
    per_tile_dram_prev: Dict[Tuple[int, int], int]
    per_tile_dram_last: Dict[Tuple[int, int], int]
    #: Flat telemetry-metrics snapshot of the run (None when the
    #: telemetry hub was disabled or the summary came from the cache).
    telemetry: Optional[Dict[str, float]] = None
    #: Typed :meth:`MetricsRegistry.dump` state of the run — unlike the
    #: flat snapshot this distinguishes counters, gauges and histograms,
    #: so per-point states can be merged across a whole sweep grid with
    #: :meth:`MetricsRegistry.merge`.  None under the same conditions as
    #: ``telemetry``; read with ``getattr(summary, "telemetry_state",
    #: None)`` — artifacts pickled before g4 predate the field.
    telemetry_state: Optional[Dict[str, dict]] = None

    def speedup_over(self, other: "RunSummary") -> float:
        """Execution-time speedup of this run over another."""
        return other.total_cycles / self.total_cycles


def run_simulation(benchmark: str, kind: str, frames: int = FRAMES,
                   raster_units: int = 2, cores_per_unit: int = 4,
                   ideal_memory: bool = False,
                   hit_threshold: Optional[float] = None,
                   order_switch_threshold: Optional[float] = None,
                   resize_threshold: Optional[float] = None,
                   use_cache: bool = True) -> RunSummary:
    """Run (or fetch from cache) one benchmark under one GPU variant.

    The three ``*_threshold`` overrides tweak the LIBRA scheduler's
    decision thresholds (the Figure 19 sensitivity sweeps).
    """
    key = (f"run-g{RESULT_GENERATION}-{benchmark}-{kind}-f{frames}"
           f"-r{raster_units}x{cores_per_unit}"
           f"{'-ideal' if ideal_memory else ''}"
           f"-h{hit_threshold}-o{order_switch_threshold}"
           f"-s{resize_threshold}")
    digest = hashlib.sha1(key.encode()).hexdigest()[:16]
    path = (cache_dir()
            / f"run-g{RESULT_GENERATION}-{benchmark}-{kind}-{digest}.pkl")
    if use_cache:
        cached = _load_cache_entry(path, f"result cache {benchmark}/{kind}")
        if cached is not None:
            return cached
    traces = get_traces(benchmark, frames)
    settings = {}
    if hit_threshold is not None:
        settings["scheduler.hit_ratio_threshold"] = hit_threshold
    if order_switch_threshold is not None:
        settings["scheduler.order_switch_threshold"] = order_switch_threshold
    if resize_threshold is not None:
        settings["scheduler.supertile_resize_threshold"] = resize_threshold
    config, scheduler = GPUConfig.build(
        kind, raster_units=raster_units, cores_per_unit=cores_per_unit,
        screen_width=WIDTH, screen_height=HEIGHT, settings=settings)
    simulator = GPUSimulator(config, scheduler=scheduler,
                             ideal_memory=ideal_memory, name=kind)
    result = simulator.run(traces)
    summary = summarize(benchmark, kind, result)
    if HUB.enabled:
        summary.telemetry = HUB.metrics.snapshot()
        summary.telemetry_state = HUB.metrics.dump()
    if use_cache:
        with cachefile.file_lock(path):
            cachefile.write_cache(summary, path)
    return summary


def summarize(benchmark: str, kind: str, result: RunResult) -> RunSummary:
    """Condense a RunResult into a picklable RunSummary."""
    frames = result.frames
    last = frames[-1]
    prev = frames[-2] if len(frames) >= 2 else last
    breakdown: Dict[str, float] = {}
    for frame in frames:
        for component, joules in frame.energy.breakdown().items():
            breakdown[component] = breakdown.get(component, 0.0) + joules
    return RunSummary(
        benchmark=benchmark,
        kind=kind,
        frames=len(frames),
        total_cycles=result.total_cycles,
        geometry_cycles=result.geometry_cycles,
        raster_cycles=result.raster_cycles,
        fps=result.fps,
        energy_j=result.total_energy_j,
        energy_breakdown=breakdown,
        raster_dram_accesses=result.raster_dram_accesses,
        texture_hit_ratio=result.mean_texture_hit_ratio,
        texture_latency=result.mean_texture_latency,
        frame_cycles=[f.total_cycles for f in frames],
        frame_orders=[f.order for f in frames],
        frame_supertile_sizes=[f.supertile_size for f in frames],
        frame_hit_ratios=[f.texture_hit_ratio for f in frames],
        frame_dram=[f.raster_dram_accesses for f in frames],
        last_frame_intervals=list(last.dram_interval_requests),
        per_tile_dram_prev=dict(prev.per_tile_dram),
        per_tile_dram_last=dict(last.per_tile_dram),
    )


def memory_time_fraction(benchmark: str, frames: int = FRAMES,
                         kind: str = "ptr") -> float:
    """Fraction of execution time spent on memory (Figure 6a method).

    Simulates with the real memory system and again with an ideal one
    (every access hits the L1); the difference is memory time.
    """
    real = run_simulation(benchmark, kind, frames)
    ideal = run_simulation(benchmark, kind, frames, ideal_memory=True)
    if real.total_cycles == 0:
        return 0.0
    return max(1.0 - ideal.total_cycles / real.total_cycles, 0.0)


def classify_suite(names: Sequence[str], frames: int = FRAMES,
                   threshold: float = 0.25) -> Dict[str, float]:
    """Per-benchmark memory-time fraction (>= threshold => memory-bound)."""
    return {name: memory_time_fraction(name, frames) for name in names}


# -- run supervisor ----------------------------------------------------------

@dataclass
class BenchmarkOutcome:
    """What happened to one supervised (benchmark, kind) run."""

    benchmark: str
    kind: str
    #: ``ok`` (summary present), ``failed`` (all attempts exhausted),
    #: ``skipped`` (never attempted: unknown name or aborted suite) or
    #: ``tripped`` (quarantined by the supervisor's circuit breaker
    #: without being attempted; supervised backend only).
    status: str
    summary: Optional[RunSummary] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    attempts: int = 0
    elapsed_s: float = 0.0
    #: How the result was obtained: ``completed`` (clean first attempt),
    #: ``degraded`` (recovered via retry/preemption), ``failed``,
    #: ``tripped`` or ``skipped``.  Empty on the legacy (unsupervised)
    #: backends, which predate provenance tracking.
    provenance: str = ""
    #: Times the supervisor had to SIGTERM/SIGKILL a worker for this
    #: pair (supervised backend only).
    preemptions: int = 0

    @property
    def ok(self) -> bool:
        """True when the run produced a summary."""
        return self.status == "ok"

    def describe(self) -> str:
        """One-line description for reports."""
        if self.ok and self.summary is not None:
            return f"{self.summary.total_cycles:,} cycles"
        return f"{self.error_type}: {self.error}"


@dataclass
class SuiteReport:
    """Structured result of a supervised suite run.

    A suite run *always* returns one of these — a failing benchmark is
    recorded here instead of propagating its exception and discarding
    everyone else's multi-minute results.
    """

    outcomes: List[BenchmarkOutcome] = field(default_factory=list)
    #: Flat telemetry-metrics snapshot taken when the sweep finished
    #: (None when the telemetry hub was disabled).
    metrics: Optional[Dict[str, float]] = None

    @property
    def succeeded(self) -> List[BenchmarkOutcome]:
        """Outcomes that produced a summary."""
        return [o for o in self.outcomes if o.status == "ok"]

    @property
    def failed(self) -> List[BenchmarkOutcome]:
        """Outcomes whose every attempt raised."""
        return [o for o in self.outcomes if o.status == "failed"]

    @property
    def skipped(self) -> List[BenchmarkOutcome]:
        """Outcomes never attempted (unknown name, aborted suite)."""
        return [o for o in self.outcomes if o.status == "skipped"]

    def summaries(self) -> Dict[Tuple[str, str], RunSummary]:
        """The partial results: (benchmark, kind) -> RunSummary."""
        return {(o.benchmark, o.kind): o.summary for o in self.succeeded}

    def format(self) -> str:
        """Human-readable one-line-per-outcome report."""
        lines = [f"suite: {len(self.succeeded)} ok, {len(self.failed)} "
                 f"failed, {len(self.skipped)} skipped"]
        for o in self.outcomes:
            lines.append(f"  [{o.status:>7}] {o.benchmark}/{o.kind} "
                         f"(attempts={o.attempts}, "
                         f"{o.elapsed_s:.1f}s) {o.describe()}")
        return "\n".join(lines)


@contextmanager
def _wall_clock_limit(seconds: Optional[float], label: str) -> Iterator[None]:
    """Raise :class:`BenchmarkTimeoutError` if the block exceeds ``seconds``.

    Uses ``SIGALRM``/``setitimer``, so it only engages on the main
    thread of a POSIX process; elsewhere (worker threads, Windows) it
    degrades to no enforcement rather than failing the run.

    Timers nest: an enclosing ``_wall_clock_limit`` (or any other
    ``ITIMER_REAL`` user) gets both its handler *and its remaining
    time* back on exit — with the seconds this block consumed
    subtracted, so an outer budget keeps counting across inner blocks.
    An outer timer that expired entirely inside the block fires
    immediately on restore instead of being silently cancelled.
    """
    usable = (seconds is not None and seconds > 0
              and hasattr(signal, "setitimer")
              and threading.current_thread() is threading.main_thread())
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise BenchmarkTimeoutError(
            f"{label}: exceeded {seconds:.1f}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    prior_remaining, _ = signal.setitimer(signal.ITIMER_REAL, seconds)
    entered = time.monotonic()
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if prior_remaining > 0.0:
            elapsed = time.monotonic() - entered
            # An outer budget that ran out while we were inside must
            # still fire — re-arm with an epsilon, never with <= 0
            # (which setitimer would read as "cancel").
            signal.setitimer(signal.ITIMER_REAL,
                             max(prior_remaining - elapsed, 1e-6))


def _is_transient(exc: BaseException) -> bool:
    """Whether retrying after backoff can plausibly succeed."""
    return is_transient(exc)


def _attempt_pair(benchmark: str, kind: str, frames: int,
                  timeout_s: Optional[float], max_attempts: int,
                  backoff_s: float, runner: Callable[..., RunSummary],
                  run_kwargs: dict) -> BenchmarkOutcome:
    """Run one (benchmark, kind) pair under the retry/timeout policy.

    Module-level (not a closure) so :func:`run_suite` can ship it to
    worker processes; everything it touches must stay picklable.  A
    ``KeyboardInterrupt`` during an attempt is recorded on the returned
    outcome (``error_type == "KeyboardInterrupt"``) for the caller to
    act on rather than propagating.
    """
    outcome = BenchmarkOutcome(benchmark, kind, "failed")
    start = time.monotonic()
    wall_start = time.time()
    for attempt in range(1, max_attempts + 1):
        outcome.attempts = attempt
        try:
            with _wall_clock_limit(timeout_s, f"{benchmark}/{kind}"):
                summary = runner(benchmark, kind, frames=frames,
                                 **run_kwargs)
            outcome.status = "ok"
            outcome.summary = summary
            outcome.error = outcome.error_type = None
            break
        except KeyboardInterrupt:
            outcome.error = "interrupted"
            outcome.error_type = "KeyboardInterrupt"
            break
        except Exception as exc:
            wrapped = exc if isinstance(exc, ReproError) \
                else SimulationError(f"{benchmark}/{kind}: {exc!r}")
            outcome.error = str(wrapped)
            outcome.error_type = type(wrapped).__name__
            retryable = (_is_transient(exc)
                         and attempt < max_attempts)
            logger.warning(
                "%s/%s attempt %d/%d failed (%s: %s)%s",
                benchmark, kind, attempt, max_attempts,
                type(exc).__name__, exc,
                "; retrying" if retryable else "")
            if not retryable:
                break
            # Jittered: concurrent workers retrying the same transient
            # fault (a quarantined shared cache entry) must fan out,
            # not thunder back in at the exact same instant.
            time.sleep(backoff_delay(backoff_s, attempt))
    outcome.elapsed_s = time.monotonic() - start
    if HUB.enabled:
        HUB.emit(HarnessSpan(
            name=f"{benchmark}/{kind}", wall_start_s=wall_start,
            wall_dur_s=outcome.elapsed_s, status=outcome.status,
            attempts=outcome.attempts,
            args={"error": outcome.error_type}
            if outcome.error_type else None))
    return outcome


def _skipped(benchmark: str, kind: str, error: str,
             error_type: str) -> BenchmarkOutcome:
    return BenchmarkOutcome(benchmark, kind, "skipped",
                            error=error, error_type=error_type)


def _unknown_benchmark(benchmark: str, kind: str,
                       valid: Sequence[str]) -> BenchmarkOutcome:
    return _skipped(benchmark, kind,
                    (f"unknown benchmark {benchmark!r}; "
                     f"valid: {', '.join(valid)}"),
                    "ConfigValidationError")


def run_suite(benchmarks: Sequence[str],
              kinds: Sequence[str] = ("libra",),
              frames: int = FRAMES,
              timeout_s: Optional[float] = None,
              max_attempts: int = 2,
              backoff_s: float = 0.25,
              runner: Optional[Callable[..., RunSummary]] = None,
              known_benchmarks: Optional[Sequence[str]] = None,
              workers: int = 1,
              **run_kwargs) -> SuiteReport:
    """Supervised sweep over ``benchmarks`` x ``kinds``.

    The resilient entry point for long campaigns: each (benchmark, kind)
    pair runs under an optional per-run wall-clock ``timeout_s``;
    transient faults (corrupt cache entries, I/O errors) are retried up
    to ``max_attempts`` times with exponential backoff starting at
    ``backoff_s``; and any terminal failure is recorded in the returned
    :class:`SuiteReport` while the remaining pairs keep running.
    Unknown benchmark names are reported as ``skipped`` (with the valid
    names in the message) instead of aborting the sweep.

    ``workers`` > 1 fans the pairs out over a ``ProcessPoolExecutor``
    with the *same* per-pair timeout/retry policy (each worker runs one
    pair at a time on its own main thread, so the ``SIGALRM`` timeout
    still engages) and the same outcome order in the report.  Per-pair
    failure isolation carries over — one worker's failed or timed-out
    benchmark never disturbs the others — and the on-disk trace/result
    caches stay consistent because every entry is written under an
    advisory file lock.  ``runner`` and ``run_kwargs`` must be picklable
    in this mode; a pair whose submission or result transfer fails is
    recorded as ``failed``, not raised.

    ``runner`` defaults to :func:`run_simulation` and exists for tests
    and alternative backends; it receives ``(benchmark, kind,
    frames=..., **run_kwargs)`` and must return a :class:`RunSummary`.
    A ``KeyboardInterrupt`` stops the sweep but still returns the
    report, with untouched pairs marked ``skipped``.
    """
    valid = list(known_benchmarks) if known_benchmarks is not None \
        else benchmark_names()
    pairs = [(b, k) for b in benchmarks for k in kinds]
    return run_pairs(pairs, frames=frames, timeout_s=timeout_s,
                     max_attempts=max_attempts, backoff_s=backoff_s,
                     runner=runner, workers=workers, valid=valid,
                     **run_kwargs)


def run_pairs(pairs: Sequence[Tuple[str, str]],
              frames: int = FRAMES,
              timeout_s: Optional[float] = None,
              max_attempts: int = 2,
              backoff_s: float = 0.25,
              runner: Optional[Callable[..., RunSummary]] = None,
              workers: int = 1,
              valid: Optional[Sequence[str]] = None,
              supervisor: Optional[Supervisor] = None,
              breaker_key_for: Optional[Callable[[str, str], str]] = None,
              **run_kwargs) -> SuiteReport:
    """Supervised execution of an explicit ``(benchmark, kind)`` pair list.

    The execution core of :func:`run_suite`, exposed for callers whose
    work list is not a full ``benchmarks x kinds`` cross product — the
    sweep engine (:mod:`repro.experiments`) routes arbitrary grid points
    through here with the point id in the ``kind`` slot.  Everything
    else carries over from :func:`run_suite`: per-pair wall-clock
    timeout, bounded retry with backoff, failure isolation, stable
    outcome order, and the process-pool backend when ``workers > 1``.

    ``valid`` is an optional allow-list of benchmark names; pairs whose
    benchmark falls outside it are reported as ``skipped``.  ``None``
    (the default here, unlike :func:`run_suite`) runs every pair as
    given.

    Passing a :class:`~repro.supervision.Supervisor` switches to the
    worker-lifecycle backend: every pair runs in a monitored forked
    child with heartbeat/hang detection, adaptive deadlines, escalating
    preemption, parent-side jittered retries and (when the supervisor
    carries a breaker) circuit breaking keyed by
    ``breaker_key_for(benchmark, kind)``.  Outcomes gain ``provenance``
    and may carry the ``tripped`` status.  The legacy sequential and
    process-pool backends are completely untouched when ``supervisor``
    is None — callers that monkeypatch runners in-process keep working.
    """
    if max_attempts < 1:
        raise ConfigValidationError("max_attempts must be >= 1")
    if workers < 1:
        raise ConfigValidationError("workers must be >= 1")
    runner = runner or run_simulation
    suite_wall_start = time.time()
    if supervisor is not None:
        report = _run_suite_supervised(pairs, valid, workers, frames,
                                       timeout_s, max_attempts,
                                       backoff_s, runner, run_kwargs,
                                       supervisor, breaker_key_for)
        return _finalize_suite(report, suite_wall_start)
    if workers > 1:
        report = _run_suite_parallel(pairs, valid, workers, frames,
                                     timeout_s, max_attempts, backoff_s,
                                     runner, run_kwargs)
        return _finalize_suite(report, suite_wall_start)
    report = SuiteReport()
    aborted = False
    for benchmark, kind in pairs:
        if aborted:
            report.outcomes.append(_skipped(
                benchmark, kind, "suite interrupted", "KeyboardInterrupt"))
            continue
        if valid is not None and benchmark not in valid:
            report.outcomes.append(
                _unknown_benchmark(benchmark, kind, valid))
            continue
        outcome = _attempt_pair(benchmark, kind, frames, timeout_s,
                                max_attempts, backoff_s, runner,
                                run_kwargs)
        if outcome.error_type == "KeyboardInterrupt":
            aborted = True
        report.outcomes.append(outcome)
    return _finalize_suite(report, suite_wall_start)


def _finalize_suite(report: SuiteReport, wall_start: float) -> SuiteReport:
    """Attach the suite-level telemetry span and metrics snapshot.

    In ``workers > 1`` mode each worker process carries its own hub, so
    the snapshot taken here only reflects the parent process (the
    per-pair spans emitted inside workers stay in the workers); the
    sequential path captures everything.
    """
    if HUB.enabled:
        HUB.emit(HarnessSpan(
            name="suite", wall_start_s=wall_start,
            wall_dur_s=time.time() - wall_start, status="done",
            attempts=len(report.outcomes),
            args={"ok": len(report.succeeded),
                  "failed": len(report.failed),
                  "skipped": len(report.skipped)}))
        report.metrics = HUB.metrics.snapshot()
    return report


def _run_suite_parallel(pairs: Sequence[Tuple[str, str]],
                        valid: Optional[Sequence[str]], workers: int,
                        frames: int,
                        timeout_s: Optional[float], max_attempts: int,
                        backoff_s: float,
                        runner: Callable[..., RunSummary],
                        run_kwargs: dict) -> SuiteReport:
    """The ``workers > 1`` backend of :func:`run_suite`.

    Submits every known pair to a process pool and fills a slot table
    indexed by pair position, so the report's outcome order matches the
    sequential sweep regardless of completion order.  A
    ``KeyboardInterrupt`` while waiting cancels the pending pairs and
    reports the unfinished ones as ``skipped`` — the sequential
    contract.  A broken pool (worker killed) marks the affected pairs
    ``failed`` and still returns the report.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor, as_completed

    slots: List[Optional[BenchmarkOutcome]] = [None] * len(pairs)
    jobs: List[int] = []
    for i, (benchmark, kind) in enumerate(pairs):
        if valid is not None and benchmark not in valid:
            slots[i] = _unknown_benchmark(benchmark, kind, valid)
        else:
            jobs.append(i)
    if not jobs:
        return SuiteReport(outcomes=[s for s in slots if s is not None])
    try:
        # Fork keeps monkeypatched modules and closures visible to the
        # workers (POSIX); where unavailable the default start method
        # works for the picklable default runner.
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = None
    executor = ProcessPoolExecutor(max_workers=min(workers, len(jobs)),
                                   mp_context=context)
    futures = {}
    try:
        for i in jobs:
            benchmark, kind = pairs[i]
            futures[executor.submit(
                _attempt_pair, benchmark, kind, frames, timeout_s,
                max_attempts, backoff_s, runner, run_kwargs)] = i
        for future in as_completed(futures):
            i = futures[future]
            benchmark, kind = pairs[i]
            try:
                slots[i] = future.result()
            except Exception as exc:
                # Submission/result-transfer failure (unpicklable runner,
                # killed worker): isolate it to this pair.
                slots[i] = BenchmarkOutcome(
                    benchmark, kind, "failed", attempts=1,
                    error=f"worker failed: {exc!r}",
                    error_type=type(exc).__name__)
    except KeyboardInterrupt:
        for future in futures:
            future.cancel()
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    for i, (benchmark, kind) in enumerate(pairs):
        if slots[i] is None:
            slots[i] = _skipped(benchmark, kind, "suite interrupted",
                                "KeyboardInterrupt")
    return SuiteReport(outcomes=list(slots))


def _supervised_pair_target(benchmark: str, kind: str, frames: int,
                            runner: Callable[..., RunSummary],
                            run_kwargs: dict) -> RunSummary:
    """What one supervised worker process executes for a pair.

    No in-worker retry/timeout machinery: deadlines, preemption and
    retries all live in the supervising parent, which can also handle
    the failure modes in-process code cannot (hangs, OOM kills).
    """
    return runner(benchmark, kind, frames=frames, **run_kwargs)


def _run_suite_supervised(pairs: Sequence[Tuple[str, str]],
                          valid: Optional[Sequence[str]], workers: int,
                          frames: int, timeout_s: Optional[float],
                          max_attempts: int, backoff_s: float,
                          runner: Callable[..., RunSummary],
                          run_kwargs: dict, supervisor: Supervisor,
                          breaker_key_for: Optional[Callable[[str, str],
                                                             str]]
                          ) -> SuiteReport:
    """The :class:`~repro.supervision.Supervisor` backend of run_pairs.

    Translates pairs to :class:`~repro.supervision.SupervisedJob`\\ s and
    worker outcomes back to :class:`BenchmarkOutcome`\\ s, preserving the
    report's outcome order.  Works with ``workers == 1`` too — unlike
    the legacy sequential path, each pair still gets its own monitored
    process, which is what makes chaos-injected crashes and hangs
    survivable.
    """
    slots: List[Optional[BenchmarkOutcome]] = [None] * len(pairs)
    jobs: List[SupervisedJob] = []
    job_slots: List[int] = []
    for i, (benchmark, kind) in enumerate(pairs):
        if valid is not None and benchmark not in valid:
            slots[i] = _unknown_benchmark(benchmark, kind, valid)
            continue
        jobs.append(SupervisedJob(
            label=f"{benchmark}/{kind}", fn=_supervised_pair_target,
            args=(benchmark, kind, frames, runner, run_kwargs),
            breaker_key=breaker_key_for(benchmark, kind)
            if breaker_key_for else ""))
        job_slots.append(i)
    worker_outcomes = supervisor.run(
        jobs, timeout_s=timeout_s, max_attempts=max_attempts,
        backoff_s=backoff_s, workers=workers)
    for slot, wo in zip(job_slots, worker_outcomes):
        benchmark, kind = pairs[slot]
        slots[slot] = BenchmarkOutcome(
            benchmark, kind, wo.status,
            summary=wo.result if wo.ok else None,
            error=wo.error, error_type=wo.error_type,
            attempts=wo.attempts, elapsed_s=wo.elapsed_s,
            provenance=wo.provenance, preemptions=wo.preemptions)
    return SuiteReport(outcomes=[s for s in slots if s is not None])
