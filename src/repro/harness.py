"""Experiment harness: shared configs, trace/result caching, run helpers.

Every figure/table reproduction in ``benchmarks/`` goes through this
module so that:

* all experiments agree on the screen geometry and GPU variants;
* frame traces (configuration-independent) are built once per benchmark
  and cached on disk;
* simulation results are cached on disk too — the figures share runs
  (e.g. Figures 11-15 all need baseline/PTR/LIBRA on the memory-intensive
  suite), and a re-run of the bench suite is incremental.

Cache location: ``$REPRO_CACHE_DIR`` or ``.repro_cache/`` under the
current directory.  Delete it after changing simulator internals (the
cache key includes a manual generation number plus the experiment
parameters, not a hash of the source).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .config import GPUConfig, baseline_config, libra_config
from .core import (LibraScheduler, StaticSupertileScheduler,
                   TemperatureScheduler, TileScheduler, ZOrderScheduler)
from .gpu import FrameTrace, GPUSimulator, RunResult
from .workloads import TraceBuilder, make_scene_builder
from .workloads.traces import TRACE_FORMAT_VERSION

#: Screen geometry of all experiments (see DESIGN.md for why not FHD).
WIDTH = 960
HEIGHT = 512
TILE = 32

#: Frames simulated per benchmark (the paper uses 25; results stabilize
#: after a handful because of frame coherence, and the bench suite must
#: finish in minutes, not hours).
FRAMES = 8

#: Bump to invalidate every cached trace and result.
GENERATION = 1


def cache_dir() -> Path:
    """The trace/result cache directory (env REPRO_CACHE_DIR)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


# -- configurations ----------------------------------------------------------

def make_config(kind: str, raster_units: int = 2, cores_per_unit: int = 4,
                width: int = WIDTH, height: int = HEIGHT
                ) -> Tuple[GPUConfig, Optional[TileScheduler]]:
    """A named GPU variant: (config, scheduler).

    Kinds:

    * ``baseline`` — 1 Raster Unit x (raster_units*cores_per_unit) cores.
    * ``baseline4`` / ``baseline8`` — single unit with a fixed core count
      (the Figure 4 core-scaling experiment).
    * ``ptr`` — parallel tile rendering, interleaved Z-order.
    * ``libra`` — PTR + the full adaptive temperature scheduler.
    * ``temperature<N>`` — PTR + fixed-size hot/cold supertile scheduling.
    * ``supertile<N>`` — PTR + static supertiles, no temperature ranking.
    """
    if kind == "baseline":
        return (baseline_config(screen_width=width, screen_height=height,
                                raster_unit=_ru(raster_units
                                                * cores_per_unit)), None)
    if kind.startswith("baseline") and kind[8:].isdigit():
        return (baseline_config(screen_width=width, screen_height=height,
                                raster_unit=_ru(int(kind[8:]))), None)
    config = libra_config(num_raster_units=raster_units,
                          cores_per_unit=cores_per_unit,
                          screen_width=width, screen_height=height)
    if kind == "ptr":
        return config, ZOrderScheduler()
    if kind == "libra":
        return config, LibraScheduler(config.scheduler)
    if kind.startswith("temperature"):
        return config, TemperatureScheduler(int(kind[len("temperature"):]))
    if kind.startswith("supertile"):
        return config, StaticSupertileScheduler(int(kind[len("supertile"):]))
    raise ValueError(f"unknown config kind {kind!r}")


def _ru(cores: int):
    from .config import RasterUnitConfig
    return RasterUnitConfig(num_cores=cores)


# -- traces ----------------------------------------------------------------

def get_traces(benchmark: str, frames: int = FRAMES, width: int = WIDTH,
               height: int = HEIGHT) -> List[FrameTrace]:
    """Frame traces for a benchmark, built once and cached on disk."""
    key = f"trace-g{GENERATION}-{benchmark}-{width}x{height}-f{frames}"
    path = cache_dir() / f"{key}.v{TRACE_FORMAT_VERSION}.pkl"
    if path.exists():
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:
            path.unlink(missing_ok=True)
    builder = TraceBuilder(make_scene_builder(benchmark, width, height),
                           width, height, TILE)
    traces = builder.build_many(frames)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as handle:
        pickle.dump(traces, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return traces


# -- cached simulation runs ---------------------------------------------------

@dataclass
class RunSummary:
    """The per-run metrics the figures consume (picklable, compact)."""

    benchmark: str
    kind: str
    frames: int
    total_cycles: int
    geometry_cycles: int
    raster_cycles: int
    fps: float
    energy_j: float
    energy_breakdown: Dict[str, float]
    raster_dram_accesses: int
    texture_hit_ratio: float
    texture_latency: float
    frame_cycles: List[int]
    frame_orders: List[str]
    frame_supertile_sizes: List[int]
    frame_hit_ratios: List[float]
    frame_dram: List[int]
    #: Per-interval DRAM request series of the last frame (Figure 7).
    last_frame_intervals: List[int]
    #: Per-tile DRAM access maps of the last two frames (Figures 2, 8, 9).
    per_tile_dram_prev: Dict[Tuple[int, int], int]
    per_tile_dram_last: Dict[Tuple[int, int], int]

    def speedup_over(self, other: "RunSummary") -> float:
        """Execution-time speedup of this run over another."""
        return other.total_cycles / self.total_cycles


def run_simulation(benchmark: str, kind: str, frames: int = FRAMES,
                   raster_units: int = 2, cores_per_unit: int = 4,
                   ideal_memory: bool = False,
                   hit_threshold: Optional[float] = None,
                   order_switch_threshold: Optional[float] = None,
                   resize_threshold: Optional[float] = None,
                   use_cache: bool = True) -> RunSummary:
    """Run (or fetch from cache) one benchmark under one GPU variant.

    The three ``*_threshold`` overrides tweak the LIBRA scheduler's
    decision thresholds (the Figure 19 sensitivity sweeps).
    """
    key = (f"run-g{GENERATION}-{benchmark}-{kind}-f{frames}"
           f"-r{raster_units}x{cores_per_unit}"
           f"{'-ideal' if ideal_memory else ''}"
           f"-h{hit_threshold}-o{order_switch_threshold}"
           f"-s{resize_threshold}")
    digest = hashlib.sha1(key.encode()).hexdigest()[:16]
    path = cache_dir() / f"run-g{GENERATION}-{benchmark}-{kind}-{digest}.pkl"
    if use_cache and path.exists():
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:
            path.unlink(missing_ok=True)
    traces = get_traces(benchmark, frames)
    config, scheduler = make_config(kind, raster_units, cores_per_unit)
    if hit_threshold is not None:
        config.scheduler.hit_ratio_threshold = hit_threshold
    if order_switch_threshold is not None:
        config.scheduler.order_switch_threshold = order_switch_threshold
    if resize_threshold is not None:
        config.scheduler.supertile_resize_threshold = resize_threshold
    if (kind == "libra"
            and (hit_threshold is not None
                 or order_switch_threshold is not None
                 or resize_threshold is not None)):
        # Rebuild the scheduler against the tweaked thresholds.
        from .core import LibraScheduler
        scheduler = LibraScheduler(config.scheduler)
    simulator = GPUSimulator(config, scheduler=scheduler,
                             ideal_memory=ideal_memory, name=kind)
    result = simulator.run(traces)
    summary = summarize(benchmark, kind, result)
    if use_cache:
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as handle:
            pickle.dump(summary, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return summary


def summarize(benchmark: str, kind: str, result: RunResult) -> RunSummary:
    """Condense a RunResult into a picklable RunSummary."""
    frames = result.frames
    last = frames[-1]
    prev = frames[-2] if len(frames) >= 2 else last
    breakdown: Dict[str, float] = {}
    for frame in frames:
        for component, joules in frame.energy.breakdown().items():
            breakdown[component] = breakdown.get(component, 0.0) + joules
    return RunSummary(
        benchmark=benchmark,
        kind=kind,
        frames=len(frames),
        total_cycles=result.total_cycles,
        geometry_cycles=result.geometry_cycles,
        raster_cycles=result.raster_cycles,
        fps=result.fps,
        energy_j=result.total_energy_j,
        energy_breakdown=breakdown,
        raster_dram_accesses=result.raster_dram_accesses,
        texture_hit_ratio=result.mean_texture_hit_ratio,
        texture_latency=result.mean_texture_latency,
        frame_cycles=[f.total_cycles for f in frames],
        frame_orders=[f.order for f in frames],
        frame_supertile_sizes=[f.supertile_size for f in frames],
        frame_hit_ratios=[f.texture_hit_ratio for f in frames],
        frame_dram=[f.raster_dram_accesses for f in frames],
        last_frame_intervals=list(last.dram_interval_requests),
        per_tile_dram_prev=dict(prev.per_tile_dram),
        per_tile_dram_last=dict(last.per_tile_dram),
    )


def memory_time_fraction(benchmark: str, frames: int = FRAMES,
                         kind: str = "ptr") -> float:
    """Fraction of execution time spent on memory (Figure 6a method).

    Simulates with the real memory system and again with an ideal one
    (every access hits the L1); the difference is memory time.
    """
    real = run_simulation(benchmark, kind, frames)
    ideal = run_simulation(benchmark, kind, frames, ideal_memory=True)
    if real.total_cycles == 0:
        return 0.0
    return max(1.0 - ideal.total_cycles / real.total_cycles, 0.0)


def classify_suite(names: Sequence[str], frames: int = FRAMES,
                   threshold: float = 0.25) -> Dict[str, float]:
    """Per-benchmark memory-time fraction (>= threshold => memory-bound)."""
    return {name: memory_time_fraction(name, frames) for name in names}
