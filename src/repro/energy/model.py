"""GPU energy model (McPAT/DRAMsim3-inspired event-count model).

Energy = sum over components of (event count x energy-per-event)
       + static power x execution time.

The per-event constants below are representative 22 nm / LPDDR4 values of
the kind McPAT and DRAMsim3 produce for a mobile GPU; they are deliberately
kept in one table so sensitivity to them is auditable.  The paper's energy
result (Figure 15) is dominated by two terms this model captures
first-order: static energy scales with execution time (LIBRA's speedup),
and DRAM energy scales with access count and activation count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import GPU_FREQUENCY_HZ


@dataclass
class EnergyParams:
    """Per-event energies (nanojoules) and static power (watts)."""

    core_instruction_nj: float = 0.010
    l1_access_nj: float = 0.012
    l2_access_nj: float = 0.060
    dram_read_nj: float = 4.0
    dram_write_nj: float = 4.4
    dram_activate_nj: float = 1.8
    #: Static (leakage + idle clock tree) power of the whole GPU, watts.
    static_power_w: float = 0.30
    frequency_hz: int = GPU_FREQUENCY_HZ


@dataclass
class EnergyCounts:
    """Event counts a simulation run feeds the model."""

    core_instructions: int = 0
    l1_accesses: int = 0
    l2_accesses: int = 0
    dram_reads: int = 0
    dram_writes: int = 0
    dram_activations: int = 0
    cycles: int = 0

    def merged_with(self, other: "EnergyCounts") -> "EnergyCounts":
        """Element-wise sum of two count sets."""
        return EnergyCounts(
            core_instructions=self.core_instructions + other.core_instructions,
            l1_accesses=self.l1_accesses + other.l1_accesses,
            l2_accesses=self.l2_accesses + other.l2_accesses,
            dram_reads=self.dram_reads + other.dram_reads,
            dram_writes=self.dram_writes + other.dram_writes,
            dram_activations=self.dram_activations + other.dram_activations,
            cycles=self.cycles + other.cycles,
        )


@dataclass
class EnergyReport:
    """Energy (joules) broken down by component."""

    dynamic_core_j: float
    dynamic_l1_j: float
    dynamic_l2_j: float
    dynamic_dram_j: float
    static_j: float

    @property
    def dynamic_j(self) -> float:
        """Total dynamic (per-event) energy in joules."""
        return (self.dynamic_core_j + self.dynamic_l1_j
                + self.dynamic_l2_j + self.dynamic_dram_j)

    @property
    def total_j(self) -> float:
        """Dynamic plus static energy in joules."""
        return self.dynamic_j + self.static_j

    def breakdown(self) -> Dict[str, float]:
        """Per-component energy in joules, keyed by component name."""
        return {
            "core": self.dynamic_core_j,
            "l1": self.dynamic_l1_j,
            "l2": self.dynamic_l2_j,
            "dram": self.dynamic_dram_j,
            "static": self.static_j,
        }


class EnergyModel:
    """Turns event counts into a joule report."""

    def __init__(self, params: EnergyParams = None):
        self.params = params or EnergyParams()

    def evaluate(self, counts: EnergyCounts) -> EnergyReport:
        """Convert event counts into an energy report."""
        p = self.params
        nano = 1e-9
        seconds = counts.cycles / p.frequency_hz
        return EnergyReport(
            dynamic_core_j=counts.core_instructions
            * p.core_instruction_nj * nano,
            dynamic_l1_j=counts.l1_accesses * p.l1_access_nj * nano,
            dynamic_l2_j=counts.l2_accesses * p.l2_access_nj * nano,
            dynamic_dram_j=(counts.dram_reads * p.dram_read_nj
                            + counts.dram_writes * p.dram_write_nj
                            + counts.dram_activations
                            * p.dram_activate_nj) * nano,
            static_j=seconds * p.static_power_w,
        )
