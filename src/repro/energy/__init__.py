"""Energy model substrate (McPAT/DRAMsim3-style event-count accounting)."""

from .model import EnergyCounts, EnergyModel, EnergyParams, EnergyReport

__all__ = ["EnergyModel", "EnergyParams", "EnergyCounts", "EnergyReport"]
