"""Dependency gate for the vectorized (structure-of-arrays) kernels.

The SoA kernels (:mod:`repro.gpu.tilestream`,
:mod:`repro.memory.lru_kernel`, the array rasterizer) lean on numpy
behaviour that has been stable for a long time — ``np.unique`` with
``return_index``, stable ``argsort``, boolean ``out=`` ufuncs,
``take_along_axis`` — but they construct every array with explicit
dtypes precisely so the results do not depend on promotion-rule changes
between numpy 1.x and 2.x.  :data:`NUMPY_FLOOR` is the oldest release
the parity suite is validated against (and the floor declared in
``pyproject.toml``); anything older fails fast here with the remedy in
the message instead of deep inside a sweep.
"""

from __future__ import annotations

from .errors import DependencyError

#: Oldest numpy (major, minor) the kernels are validated against.
NUMPY_FLOOR = (1, 21)


def _version_tuple(version: str) -> tuple:
    """Leading numeric components of a version string (best effort)."""
    parts = []
    for field in version.split(".")[:2]:
        digits = ""
        for ch in field:
            if not ch.isdigit():
                break
            digits += ch
        if not digits:
            break
        parts.append(int(digits))
    return tuple(parts)


def require_numpy():
    """Import and return numpy, enforcing :data:`NUMPY_FLOOR`.

    Raises :class:`~repro.errors.DependencyError` (a
    :class:`ReproError`) when numpy is absent or too old, naming the
    floor and the install remedy.
    """
    try:
        import numpy
    except ImportError as exc:
        raise DependencyError(
            "numpy is required by the vectorized simulation kernels "
            f"(install numpy>={NUMPY_FLOOR[0]}.{NUMPY_FLOOR[1]})"
        ) from exc
    found = _version_tuple(numpy.__version__)
    if found and found < NUMPY_FLOOR:
        raise DependencyError(
            f"numpy {numpy.__version__} is below the "
            f"{NUMPY_FLOOR[0]}.{NUMPY_FLOOR[1]} floor required by the "
            "vectorized simulation kernels; upgrade with "
            f"'pip install numpy>={NUMPY_FLOOR[0]}.{NUMPY_FLOOR[1]}'")
    return numpy
