"""Tile workload descriptors — the input of the timing simulator.

A :class:`TileWorkload` captures everything the timing model needs to
execute one tile on a Raster Unit: how many shader instructions it costs,
and the ordered cache-line address streams it generates (texture reads,
Parameter Buffer reads at tile fetch, Frame Buffer writes at flush).
A :class:`FrameTrace` bundles the workloads of every tile of one frame
plus the Geometry-phase quantities.

Traces are produced by :mod:`repro.workloads.traces` (driving the real
functional rasterizer) and are configuration-independent: the same trace
is reused across baseline / PTR / LIBRA runs of an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

TileCoord = Tuple[int, int]


@dataclass
class TileWorkload:
    """The cost and traffic of rendering one tile."""

    tile: TileCoord
    #: Total shader-core instructions (fragment shading work).
    instructions: int = 0
    #: Shaded fragments (post Early-Z).
    fragments: int = 0
    #: Ordered texture cache-line footprint (one entry per distinct line
    #: per primitive, in first-touch order).
    texture_lines: List[int] = field(default_factory=list)
    #: Total per-fragment texture fetches; fetches beyond the footprint
    #: re-hit resident lines and are accounted analytically.
    texture_fetches: int = 0
    #: Parameter Buffer lines read by the Tile Fetcher for this tile.
    pb_lines: List[int] = field(default_factory=list)
    #: Frame Buffer lines written by the Color Buffer flush (empty when
    #: transaction elimination suppressed the flush).
    fb_lines: List[int] = field(default_factory=list)
    #: Primitives binned into this tile (each costs rasterizer setup).
    num_primitives: int = 0
    #: Per-primitive shaded fragment counts (only primitives that shaded
    #: at least one fragment).  Drives the limited-parallelism model: a
    #: primitive with few fragments cannot fill a wide core array.
    prim_fragments: List[int] = field(default_factory=list)
    #: Per-primitive instruction counts, aligned with ``prim_fragments``.
    prim_instructions: List[int] = field(default_factory=list)

    @property
    def repeat_fetches(self) -> int:
        """Texture fetches guaranteed to re-hit the L1 within this tile."""
        return max(self.texture_fetches - len(self.texture_lines), 0)

    def validate(self) -> None:
        """Raise ValueError on negative quantities."""
        if self.instructions < 0 or self.fragments < 0:
            raise ValueError("negative workload quantities")
        if self.texture_fetches < 0:
            raise ValueError("negative texture fetch count")


@dataclass
class FrameTrace:
    """One frame of work, tiled and measured, ready for timing simulation."""

    frame_index: int
    tiles_x: int
    tiles_y: int
    tile_size: int
    workloads: Dict[TileCoord, TileWorkload]
    #: Geometry-phase duration (cycles), from the Geometry Pipeline model.
    geometry_cycles: int = 0
    #: Vertex-fetch cache-line stream of the Geometry phase.
    vertex_lines: List[int] = field(default_factory=list)
    #: Shader instructions spent in vertex shading (for energy).
    vertex_instructions: int = 0

    @property
    def num_tiles(self) -> int:
        """Tiles in the frame's grid."""
        return self.tiles_x * self.tiles_y

    def all_tiles(self) -> List[TileCoord]:
        """Every tile of the grid, row-major (the schedule domain)."""
        return [(x, y) for y in range(self.tiles_y)
                for x in range(self.tiles_x)]

    def workload_for(self, tile: TileCoord) -> TileWorkload:
        """The workload of a tile; empty tiles get a flush-only workload."""
        existing = self.workloads.get(tile)
        if existing is not None:
            return existing
        return TileWorkload(tile=tile)

    def total_instructions(self) -> int:
        """Total shader instructions across all tiles."""
        return sum(w.instructions for w in self.workloads.values())

    def total_fragments(self) -> int:
        """Total shaded fragments across all tiles."""
        return sum(w.fragments for w in self.workloads.values())

    def total_texture_lines(self) -> int:
        """Total texture-line footprint across all tiles."""
        return sum(len(w.texture_lines) for w in self.workloads.values())

    def per_tile_metric(self, metric: str) -> Dict[TileCoord, float]:
        """Per-tile values of a named metric over non-empty tiles."""
        getters = {
            "instructions": lambda w: float(w.instructions),
            "fragments": lambda w: float(w.fragments),
            "texture_lines": lambda w: float(len(w.texture_lines)),
        }
        try:
            get = getters[metric]
        except KeyError:
            raise ValueError(f"unknown metric {metric!r}") from None
        return {tile: get(w) for tile, w in self.workloads.items()}
