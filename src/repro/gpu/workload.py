"""Tile workload descriptors — the input of the timing simulator.

A :class:`TileWorkload` captures everything the timing model needs to
execute one tile on a Raster Unit: how many shader instructions it costs,
and the ordered cache-line address streams it generates (texture reads,
Parameter Buffer reads at tile fetch, Frame Buffer writes at flush).
A :class:`FrameTrace` bundles the workloads of every tile of one frame
plus the Geometry-phase quantities.

Traces are produced by :mod:`repro.workloads.traces` (driving the real
functional rasterizer) and are configuration-independent: the same trace
is reused across baseline / PTR / LIBRA runs of an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import TraceFormatError

TileCoord = Tuple[int, int]

#: Upper bound on plausible cache-line addresses (2^48 lines ≈ 16 PiB of
#: 64-byte lines — far beyond any modeled memory; anything larger is a
#: corrupted or miscomputed trace, not a big scene).
MAX_LINE_ADDRESS = 1 << 48


@dataclass
class TileWorkload:
    """The cost and traffic of rendering one tile."""

    tile: TileCoord
    #: Total shader-core instructions (fragment shading work).
    instructions: int = 0
    #: Shaded fragments (post Early-Z).
    fragments: int = 0
    #: Ordered texture cache-line footprint (one entry per distinct line
    #: per primitive, in first-touch order).
    texture_lines: List[int] = field(default_factory=list)
    #: Total per-fragment texture fetches; fetches beyond the footprint
    #: re-hit resident lines and are accounted analytically.
    texture_fetches: int = 0
    #: Parameter Buffer lines read by the Tile Fetcher for this tile.
    pb_lines: List[int] = field(default_factory=list)
    #: Frame Buffer lines written by the Color Buffer flush (empty when
    #: transaction elimination suppressed the flush).
    fb_lines: List[int] = field(default_factory=list)
    #: Primitives binned into this tile (each costs rasterizer setup).
    num_primitives: int = 0
    #: Per-primitive shaded fragment counts (only primitives that shaded
    #: at least one fragment).  Drives the limited-parallelism model: a
    #: primitive with few fragments cannot fill a wide core array.
    prim_fragments: List[int] = field(default_factory=list)
    #: Per-primitive instruction counts, aligned with ``prim_fragments``.
    prim_instructions: List[int] = field(default_factory=list)

    @property
    def repeat_fetches(self) -> int:
        """Texture fetches guaranteed to re-hit the L1 within this tile."""
        return max(self.texture_fetches - len(self.texture_lines), 0)

    def validate(self) -> None:
        """Raise :class:`TraceFormatError` on malformed workload data.

        (:class:`TraceFormatError` subclasses ``ValueError``, preserving
        the historical contract of this method.)
        """
        if self.instructions < 0 or self.fragments < 0:
            raise TraceFormatError(
                f"tile {self.tile}: negative workload quantities")
        if self.texture_fetches < 0 or self.num_primitives < 0:
            raise TraceFormatError(
                f"tile {self.tile}: negative counters")
        if len(self.prim_fragments) != len(self.prim_instructions):
            raise TraceFormatError(
                f"tile {self.tile}: prim_fragments/prim_instructions "
                "length mismatch")
        for name, lines in (("texture", self.texture_lines),
                            ("pb", self.pb_lines),
                            ("fb", self.fb_lines),):
            if lines and (min(lines) < 0
                          or max(lines) >= MAX_LINE_ADDRESS):
                bad = next(a for a in lines
                           if not 0 <= a < MAX_LINE_ADDRESS)
                raise TraceFormatError(
                    f"tile {self.tile}: {name} line address {bad} "
                    "out of bounds")


@dataclass
class FrameTrace:
    """One frame of work, tiled and measured, ready for timing simulation."""

    frame_index: int
    tiles_x: int
    tiles_y: int
    tile_size: int
    workloads: Dict[TileCoord, TileWorkload]
    #: Geometry-phase duration (cycles), from the Geometry Pipeline model.
    geometry_cycles: int = 0
    #: Vertex-fetch cache-line stream of the Geometry phase.
    vertex_lines: List[int] = field(default_factory=list)
    #: Shader instructions spent in vertex shading (for energy).
    vertex_instructions: int = 0

    @property
    def num_tiles(self) -> int:
        """Tiles in the frame's grid."""
        return self.tiles_x * self.tiles_y

    def validate(self) -> None:
        """Raise :class:`TraceFormatError` on a malformed trace.

        Checks the tile-grid consistency (positive dimensions, every
        workload's coordinate inside the grid and matching its key), and
        delegates the per-tile counter/address checks to
        :meth:`TileWorkload.validate`.  The simulator calls this at its
        trust boundary (:meth:`repro.gpu.simulator.GPUSimulator.run`) so
        a corrupt or hand-built trace fails fast with a precise message
        instead of producing nonsense timing.
        """
        if self.tiles_x <= 0 or self.tiles_y <= 0:
            raise TraceFormatError(
                f"frame {self.frame_index}: non-positive tile grid "
                f"{self.tiles_x}x{self.tiles_y}")
        if self.tile_size <= 0:
            raise TraceFormatError(
                f"frame {self.frame_index}: non-positive tile size "
                f"{self.tile_size}")
        if self.geometry_cycles < 0 or self.vertex_instructions < 0:
            raise TraceFormatError(
                f"frame {self.frame_index}: negative geometry counters")
        for coord, workload in self.workloads.items():
            tx, ty = coord
            if not (0 <= tx < self.tiles_x and 0 <= ty < self.tiles_y):
                raise TraceFormatError(
                    f"frame {self.frame_index}: tile {coord} outside "
                    f"the {self.tiles_x}x{self.tiles_y} grid")
            if workload.tile != coord:
                raise TraceFormatError(
                    f"frame {self.frame_index}: workload keyed {coord} "
                    f"claims tile {workload.tile}")
            workload.validate()
        if self.vertex_lines and (
                min(self.vertex_lines) < 0
                or max(self.vertex_lines) >= MAX_LINE_ADDRESS):
            raise TraceFormatError(
                f"frame {self.frame_index}: vertex line address "
                "out of bounds")

    def all_tiles(self) -> List[TileCoord]:
        """Every tile of the grid, row-major (the schedule domain)."""
        return [(x, y) for y in range(self.tiles_y)
                for x in range(self.tiles_x)]

    def workload_for(self, tile: TileCoord) -> TileWorkload:
        """The workload of a tile; empty tiles get a flush-only workload."""
        existing = self.workloads.get(tile)
        if existing is not None:
            return existing
        return TileWorkload(tile=tile)

    def total_instructions(self) -> int:
        """Total shader instructions across all tiles."""
        return sum(w.instructions for w in self.workloads.values())

    def total_fragments(self) -> int:
        """Total shaded fragments across all tiles."""
        return sum(w.fragments for w in self.workloads.values())

    def total_texture_lines(self) -> int:
        """Total texture-line footprint across all tiles."""
        return sum(len(w.texture_lines) for w in self.workloads.values())

    def per_tile_metric(self, metric: str) -> Dict[TileCoord, float]:
        """Per-tile values of a named metric over non-empty tiles."""
        getters = {
            "instructions": lambda w: float(w.instructions),
            "fragments": lambda w: float(w.fragments),
            "texture_lines": lambda w: float(len(w.texture_lines)),
        }
        try:
            get = getters[metric]
        except KeyError:
            raise ValueError(f"unknown metric {metric!r}") from None
        return {tile: get(w) for tile, w in self.workloads.items()}
