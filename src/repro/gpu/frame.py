"""Frame-level driver: Geometry phase + scheduling + raster phase + stats.

One :class:`FrameDriver` owns the persistent machine state — caches keep
their contents across frames, the DRAM keeps its open rows, the scheduler
keeps its history — and turns one :class:`FrameTrace` into one
:class:`FrameResult` per call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..config import GPUConfig
from ..core.scheduler import FrameFeedback, TileScheduler
from ..energy.model import EnergyCounts, EnergyModel, EnergyReport
from ..memory.cache import CacheStats
from ..memory.hierarchy import (SharedMemory, make_tile_cache,
                                make_vertex_cache)
from ..memory.traffic import GEOMETRY
from ..telemetry import (HUB, CacheDelta, PhaseBegin, PhaseEnd,
                         SchedulerDecision, SimClock)
from .raster_unit import TimingRasterUnit
from .timing import RasterPhaseResult, TimingSimulator
from .workload import FrameTrace

TileCoord = Tuple[int, int]


@dataclass
class FrameResult:
    """Everything measured while rendering one frame."""

    frame_index: int
    geometry_cycles: int
    raster_cycles: int
    order: str
    supertile_size: int
    texture_hit_ratio: float
    mean_texture_latency: float
    #: DRAM accesses from the Raster Pipeline (geometry excluded).
    raster_dram_accesses: int
    #: DRAM accesses per tile (the temperature table's raw input).
    per_tile_dram: Dict[TileCoord, int] = field(default_factory=dict)
    per_tile_instructions: Dict[TileCoord, int] = field(default_factory=dict)
    #: DRAM requests per interval during this frame's raster phase.
    dram_interval_requests: List[int] = field(default_factory=list)
    energy: EnergyReport = None
    energy_counts: EnergyCounts = None
    tiles_completed: int = 0
    texture_l1_stats: CacheStats = None

    @property
    def total_cycles(self) -> int:
        """Geometry plus raster cycles of the frame."""
        return self.geometry_cycles + self.raster_cycles


class FrameDriver:
    """Persistent simulation state plus the per-frame execution recipe."""

    def __init__(self, config: GPUConfig, scheduler: TileScheduler,
                 ideal_memory: bool = False,
                 energy_model: EnergyModel = None,
                 batched: bool = True):
        config.validate()
        self.config = config
        self.scheduler = scheduler
        self.ideal_memory = ideal_memory
        self.batched = batched
        self.energy_model = energy_model or EnergyModel()
        self.shared = SharedMemory(config)
        self.tile_cache = make_tile_cache(config)
        self.vertex_cache = make_vertex_cache(config)
        #: One simulated-cycle clock for the whole run: geometry phases
        #: advance it by their cycle count, the raster phase once per
        #: interval, so telemetry timestamps are monotonic across frames.
        self.clock = SimClock()
        self.raster_units = [
            TimingRasterUnit(i, config, self.shared, self.tile_cache,
                             ideal_memory=ideal_memory, batched=batched,
                             clock=self.clock)
            for i in range(config.num_raster_units)]
        self.timing = TimingSimulator(config, self.shared,
                                      self.raster_units, self.tile_cache,
                                      clock=self.clock)
        self.scheduler.configure(config.num_raster_units)
        self._frame_index = 0

    # -- per-frame execution ------------------------------------------------
    def run_frame(self, trace: FrameTrace) -> FrameResult:
        """Render one traced frame; returns its FrameResult."""
        telemetry = HUB.enabled
        frame = self._frame_index
        before = self._snapshot()
        if telemetry:
            HUB.emit(PhaseBegin(name="geometry", ts=self.clock.cycles,
                                frame=frame))
        self._run_geometry_phase(trace)
        self.clock.cycles += trace.geometry_cycles
        if telemetry:
            HUB.emit(PhaseEnd(name="geometry", ts=self.clock.cycles,
                              frame=frame))
        decision = self.scheduler.begin_frame(trace)
        if telemetry:
            HUB.emit(SchedulerDecision(
                frame=frame, order=decision.order,
                supertile_size=decision.supertile_size,
                batches=decision.dispenser.remaining(),
                ts=self.clock.cycles))
            HUB.emit(PhaseBegin(name="raster", ts=self.clock.cycles,
                                frame=frame))
        phase = self.timing.run_raster_phase(trace, decision.dispenser)
        if telemetry:
            HUB.emit(PhaseEnd(name="raster", ts=self.clock.cycles,
                              frame=frame))
        result = self._build_result(trace, decision, phase, before)
        if telemetry:
            self._publish_frame_telemetry(result, before)
        self.scheduler.end_frame(FrameFeedback(
            frame_index=result.frame_index,
            raster_cycles=result.raster_cycles,
            texture_hit_ratio=result.texture_hit_ratio,
            per_tile_dram=result.per_tile_dram,
            per_tile_instructions=result.per_tile_instructions,
        ))
        self._frame_index += 1
        return result

    def _run_geometry_phase(self, trace: FrameTrace) -> None:
        """Issue the Geometry phase's memory traffic, spread over time.

        Vertex fetches run through the Vertex cache into the shared L2 and
        DRAM; the stream is chunked over the phase's intervals so it does
        not appear as a single burst in the DRAM utilization series.

        The phase always closes exactly ``geometry_cycles //
        interval_cycles`` (floored to at least 1) DRAM intervals — the
        line stream is spread over that fixed count rather than deriving
        the count from a chunk size, so the interval series stays
        deterministic even when the chunking does not divide evenly.
        """
        if self.ideal_memory:
            return
        lines = trace.vertex_lines
        interval = self.config.interval_cycles
        num_intervals = max(trace.geometry_cycles // interval, 1)
        n = len(lines)
        for k in range(num_intervals):
            start = k * n // num_intervals
            stop = (k + 1) * n // num_intervals
            if start < stop:
                chunk = lines[start:stop]
                if self.batched:
                    misses: List[tuple] = []
                    self.vertex_cache.lookup_batch(chunk,
                                                   miss_record=misses)
                    if misses:
                        self.shared.access_batch(
                            [line for line, _ in misses], GEOMETRY)
                else:
                    for line in chunk:
                        if not self.vertex_cache.lookup(line):
                            self.shared.access(line, GEOMETRY)
            self.shared.end_interval()

    # -- stats plumbing -----------------------------------------------------
    def _snapshot(self) -> dict:
        dram = self.shared.dram.stats
        return {
            "l2": self._copy_stats(self.shared.l2.stats),
            "tile": self._copy_stats(self.tile_cache.stats),
            "vertex": self._copy_stats(self.vertex_cache.stats),
            "dram_reads": dram.reads,
            "dram_writes": dram.writes,
            "dram_activations": dram.activations,
            "traffic_geometry": self.shared.traffic.counts[GEOMETRY],
            "dram_total": dram.reads + dram.writes,
        }

    @staticmethod
    def _copy_stats(stats: CacheStats) -> CacheStats:
        return CacheStats(accesses=stats.accesses, hits=stats.hits,
                          misses=stats.misses, evictions=stats.evictions,
                          writebacks=stats.writebacks,
                          repeat_hits=stats.repeat_hits)

    def _build_result(self, trace: FrameTrace, decision, phase:
                      RasterPhaseResult, before: dict) -> FrameResult:
        dram = self.shared.dram.stats
        dram_reads = dram.reads - before["dram_reads"]
        dram_writes = dram.writes - before["dram_writes"]
        dram_activations = dram.activations - before["dram_activations"]
        geometry_dram = (self.shared.traffic.counts[GEOMETRY]
                         - before["traffic_geometry"])

        tex_hits = tex_accesses = 0
        l1_accesses = 0
        merged_tex_stats = CacheStats()
        for unit in self.raster_units:
            stats = unit.l1.stats
            # Quad-level hit ratio: one texture access per quad per map;
            # accesses beyond a tile's distinct-line footprint are
            # guaranteed re-hits (tracked as repeat_hits).  This is the
            # metric LIBRA's 80%-threshold decision consumes.
            tex_hits += stats.hits + stats.repeat_hits
            tex_accesses += stats.accesses + stats.repeat_hits
            l1_accesses += stats.accesses + stats.repeat_hits
            merged_tex_stats = merged_tex_stats.merged_with(stats)
            # Texture L1 stats are reset per frame so the hit ratio is the
            # *frame's* hit ratio (cache contents persist, counters do not).
            unit.l1.stats.reset()
        hit_ratio = tex_hits / tex_accesses if tex_accesses else 1.0

        l2_delta = (self.shared.l2.stats.accesses - before["l2"].accesses)
        tile_delta = (self.tile_cache.stats.accesses
                      - before["tile"].accesses)
        vertex_delta = (self.vertex_cache.stats.accesses
                        - before["vertex"].accesses)

        core_instructions = (sum(s.instructions for s in phase.ru_stats)
                             + trace.vertex_instructions)
        counts = EnergyCounts(
            core_instructions=core_instructions,
            l1_accesses=l1_accesses + tile_delta + vertex_delta,
            l2_accesses=l2_delta,
            dram_reads=dram_reads,
            dram_writes=dram_writes,
            dram_activations=dram_activations,
            cycles=trace.geometry_cycles + phase.cycles,
        )
        energy = self.energy_model.evaluate(counts)

        interval_series = dram.interval_requests[
            phase.dram_interval_start:]

        return FrameResult(
            frame_index=self._frame_index,
            geometry_cycles=trace.geometry_cycles,
            raster_cycles=phase.cycles,
            order=decision.order,
            supertile_size=decision.supertile_size,
            texture_hit_ratio=hit_ratio,
            mean_texture_latency=phase.mean_texture_latency,
            raster_dram_accesses=(dram_reads + dram_writes - geometry_dram),
            per_tile_dram=phase.merged_per_tile_dram(),
            per_tile_instructions=phase.merged_per_tile_instructions(),
            dram_interval_requests=list(interval_series),
            energy=energy,
            energy_counts=counts,
            tiles_completed=phase.tiles_completed,
            texture_l1_stats=merged_tex_stats,
        )

    def _publish_frame_telemetry(self, result: FrameResult,
                                 before: dict) -> None:
        """Emit per-frame cache deltas and update the metrics registry.

        Only called when the hub is enabled; purely observational, so it
        can never perturb the simulation (no simulated state is touched).
        """
        ts = self.clock.cycles
        frame = result.frame_index
        for name, cache in (("l2", self.shared.l2),
                            ("tile", self.tile_cache),
                            ("vertex", self.vertex_cache)):
            prior = before[name]
            stats = cache.stats
            HUB.emit(CacheDelta(
                name=name, frame=frame, ts=ts,
                accesses=stats.accesses - prior.accesses,
                hits=stats.hits - prior.hits,
                misses=stats.misses - prior.misses,
                evictions=stats.evictions - prior.evictions,
                writebacks=stats.writebacks - prior.writebacks))
        tex = result.texture_l1_stats
        HUB.emit(CacheDelta(
            name="l1tex", frame=frame, ts=ts,
            accesses=tex.accesses, hits=tex.hits, misses=tex.misses,
            evictions=tex.evictions, writebacks=tex.writebacks))
        metrics = HUB.metrics
        dram = self.shared.dram.stats
        metrics.counter("frames").inc()
        metrics.counter("dram.reads").inc(dram.reads
                                          - before["dram_reads"])
        metrics.counter("dram.writes").inc(dram.writes
                                           - before["dram_writes"])
        metrics.counter("dram.activations").inc(
            dram.activations - before["dram_activations"])
        metrics.counter("raster.dram_accesses").inc(
            result.raster_dram_accesses)
        metrics.counter("geometry.cycles").inc(result.geometry_cycles)
        metrics.counter("raster.cycles").inc(result.raster_cycles)
        metrics.counter("tiles.completed").inc(result.tiles_completed)
        metrics.gauge("l1tex.hit_ratio").set(result.texture_hit_ratio)
        metrics.gauge("l1tex.mean_latency").set(
            result.mean_texture_latency)
        metrics.gauge("dram.loaded_latency").set(
            self.shared.dram.loaded_latency)
        metrics.gauge("scheduler.supertile_size").set(
            result.supertile_size)
        self.shared.l2.stats.publish(metrics, "l2")
        self.tile_cache.stats.publish(metrics, "tilecache")
        self.vertex_cache.stats.publish(metrics, "vertexcache")
        self.shared.publish_metrics(metrics)
