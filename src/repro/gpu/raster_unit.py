"""Timing model of one Raster Unit.

A Raster Unit executes tile workloads one after another (primitives of a
tile must stay on one unit for program order, Section III-A).  Within an
interval it advances by whichever budget runs out first:

* **compute** — the core cluster retires instructions at its aggregate
  rate;
* **memory** — DRAM-level misses are bounded by the MSHR pool and the
  *current loaded DRAM latency* (congestion directly throttles progress,
  which is the coupling LIBRA's scheduler exploits).

Texture accesses flow through the unit's private L1 texture cache into the
shared L2/DRAM; Parameter Buffer reads go through the shared Tile cache at
tile start; Frame Buffer writes stream straight to DRAM at tile flush.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..config import GPUConfig
from ..memory.cache import Cache
from ..memory.hierarchy import SharedMemory, make_texture_l1
from ..memory.traffic import FRAMEBUFFER, PARAMETER, TEXTURE
from .shader_core import CoreCluster
from .workload import TileCoord, TileWorkload

_EPS = 1e-9

#: Callable the scheduler-side dispenser exposes to hand out work.
WorkSource = Callable[[int], Optional[TileWorkload]]


@dataclass
class RasterUnitStats:
    """Per-frame counters of one Raster Unit."""

    tiles_completed: int = 0
    instructions: int = 0
    fragments: int = 0
    texture_accesses: int = 0
    texture_latency_sum: float = 0.0
    dram_texture_misses: int = 0
    memory_stall_intervals: int = 0
    busy_intervals: int = 0
    per_tile_dram: Dict[TileCoord, int] = field(default_factory=dict)
    per_tile_instructions: Dict[TileCoord, int] = field(default_factory=dict)

    @property
    def mean_texture_latency(self) -> float:
        """Average texture access latency in cycles."""
        if self.texture_accesses == 0:
            return 0.0
        return self.texture_latency_sum / self.texture_accesses


class TimingRasterUnit:
    """One Raster Unit of the timing simulator."""

    def __init__(self, index: int, config: GPUConfig, shared: SharedMemory,
                 tile_cache: Cache, ideal_memory: bool = False):
        self.index = index
        self.config = config
        self.shared = shared
        self.tile_cache = tile_cache
        self.ideal_memory = ideal_memory
        self.cluster = CoreCluster(config.raster_unit, config.shader_core)
        self.l1 = make_texture_l1(config, name=f"TexL1[{index}]")
        self._l1_latency = float(config.texture_cache.latency_cycles)
        self._l2_latency = float(config.l2_cache.latency_cycles)
        self._compressor = None
        if config.fb_compression_ratio is not None:
            from ..memory.compression import FrameBufferCompressor
            self._compressor = FrameBufferCompressor(
                fallback_ratio=config.fb_compression_ratio)
        self._current: Optional[TileWorkload] = None
        self._cycles_done = 0.0
        self._cycles_needed = 0.0
        self._line_idx = 0
        self._cycles_per_line = 0.0
        self._tile_dram = 0
        self.stats = RasterUnitStats()

    # -- frame lifecycle ---------------------------------------------------
    def begin_frame(self) -> None:
        """Reset per-frame progress (cache contents persist across frames)."""
        self._current = None
        self._cycles_done = 0.0
        self._cycles_needed = 0.0
        self._line_idx = 0
        self._tile_dram = 0
        self.stats = RasterUnitStats()

    @property
    def busy(self) -> bool:
        """True while a tile is in flight on this unit."""
        return self._current is not None

    # -- interval execution -------------------------------------------------
    def step(self, cycles: int, fetch_next: WorkSource) -> bool:
        """Advance up to ``cycles`` cycles; returns True if any work ran."""
        cycle_budget = float(cycles)
        if self.ideal_memory:
            miss_budget = 1 << 62
        else:
            memory_latency = (self._l1_latency + self._l2_latency
                              + self.shared.dram.loaded_latency)
            miss_budget = self.cluster.miss_budget(cycles, memory_latency)
        worked = False

        while cycle_budget > _EPS:
            if self._current is None:
                workload = fetch_next(self.index)
                if workload is None:
                    break
                cycle_budget -= self._begin_tile(workload)
                worked = True
                continue
            worked = True
            w = self._current
            lines = w.texture_lines
            n_lines = len(lines)
            if (self._line_idx < n_lines
                    and self._cycles_done + _EPS
                    >= self._line_idx * self._cycles_per_line):
                # The next texture access is due now.
                level = self._access_texture(lines[self._line_idx])
                self._line_idx += 1
                if level == "dram":
                    miss_budget -= 1
                    if miss_budget <= 0:
                        # Memory-limited: the MSHR pool cannot absorb more
                        # misses this interval; the unit stalls.
                        self.stats.memory_stall_intervals += 1
                        cycle_budget = 0.0
                continue
            if self._line_idx < n_lines:
                target = self._line_idx * self._cycles_per_line
            else:
                target = self._cycles_needed
            chunk = min(target - self._cycles_done, cycle_budget)
            if chunk > 0.0:
                self._cycles_done += chunk
                cycle_budget -= chunk
            if (self._cycles_done + _EPS >= self._cycles_needed
                    and self._line_idx >= n_lines):
                cycle_budget -= self._finish_tile()

        if worked:
            self.stats.busy_intervals += 1
        return worked

    # -- tile lifecycle -----------------------------------------------------
    def _begin_tile(self, workload: TileWorkload) -> float:
        """Start a tile: Parameter Buffer fetch + fixed setup cost."""
        self._current = workload
        self._cycles_done = 0.0
        self._cycles_needed = self.cluster.tile_compute_cycles(workload)
        self._line_idx = 0
        self._tile_dram = 0
        n_lines = len(workload.texture_lines)
        self._cycles_per_line = (self._cycles_needed / n_lines
                                 if n_lines else 0.0)
        if not self.ideal_memory:
            for line in workload.pb_lines:
                if not self.tile_cache.lookup(line):
                    if self.shared.access(line, PARAMETER) == "dram":
                        self._tile_dram += 1
        return float(self.config.raster_unit.tile_setup_cycles)

    def _finish_tile(self) -> float:
        """Flush the Color Buffer; record per-tile statistics."""
        w = self._current
        assert w is not None
        if not self.ideal_memory:
            fb_lines = w.fb_lines
            if self._compressor is not None and fb_lines:
                fb_lines = self._compressor.compress_flush(fb_lines)
            for line in fb_lines:
                self.shared.stream_to_dram(line, FRAMEBUFFER)
            self._tile_dram += len(fb_lines)
        # Per-fragment fetches beyond the line footprint are filtered by
        # quad coalescing before the L1; account their energy only (they
        # do not contribute to the L1 hit ratio or latency statistics).
        repeats = w.repeat_fetches
        if repeats:
            self.l1.record_repeat_hits(repeats)
        stats = self.stats
        stats.tiles_completed += 1
        stats.instructions += w.instructions
        stats.fragments += w.fragments
        stats.per_tile_dram[w.tile] = self._tile_dram
        stats.per_tile_instructions[w.tile] = w.instructions
        self._current = None
        return float(self.config.raster_unit.tile_flush_cycles)

    # -- memory path ----------------------------------------------------------
    def _access_texture(self, line: int) -> str:
        """One texture line access through L1 -> L2 -> DRAM."""
        stats = self.stats
        stats.texture_accesses += 1
        if self.ideal_memory:
            stats.texture_latency_sum += self._l1_latency
            return "l1"
        if self.l1.lookup(line):
            stats.texture_latency_sum += self._l1_latency
            return "l1"
        level = self.shared.access(line, TEXTURE)
        latency = self._l1_latency + self.shared.access_latency(level)
        stats.texture_latency_sum += latency
        if level == "dram":
            stats.dram_texture_misses += 1
            self._tile_dram += 1
        return level
