"""Timing model of one Raster Unit.

A Raster Unit executes tile workloads one after another (primitives of a
tile must stay on one unit for program order, Section III-A).  Within an
interval it advances by whichever budget runs out first:

* **compute** — the core cluster retires instructions at its aggregate
  rate;
* **memory** — DRAM-level misses are bounded by the MSHR pool and the
  *current loaded DRAM latency* (congestion directly throttles progress,
  which is the coupling LIBRA's scheduler exploits).

Texture accesses flow through the unit's private L1 texture cache into the
shared L2/DRAM; Parameter Buffer reads go through the shared Tile cache at
tile start; Frame Buffer writes stream straight to DRAM at tile flush.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..config import GPUConfig
from ..memory.cache import Cache
from ..memory.hierarchy import SharedMemory, make_texture_l1
from ..memory.traffic import FRAMEBUFFER, PARAMETER, TEXTURE, WRITEBACK
from ..telemetry import (HUB, SimClock, TILE_LATENCY_BUCKETS, TileDispatch,
                         TileRetire)
from . import tilestream
from .shader_core import CoreCluster
from .workload import TileCoord, TileWorkload

_EPS = 1e-9

#: Callable the scheduler-side dispenser exposes to hand out work.
WorkSource = Callable[[int], Optional[TileWorkload]]


@dataclass
class RasterUnitStats:
    """Per-frame counters of one Raster Unit."""

    tiles_completed: int = 0
    instructions: int = 0
    fragments: int = 0
    texture_accesses: int = 0
    texture_latency_sum: float = 0.0
    dram_texture_misses: int = 0
    memory_stall_intervals: int = 0
    busy_intervals: int = 0
    per_tile_dram: Dict[TileCoord, int] = field(default_factory=dict)
    per_tile_instructions: Dict[TileCoord, int] = field(default_factory=dict)

    @property
    def mean_texture_latency(self) -> float:
        """Average texture access latency in cycles."""
        if self.texture_accesses == 0:
            return 0.0
        return self.texture_latency_sum / self.texture_accesses


class TimingRasterUnit:
    """One Raster Unit of the timing simulator.

    With ``batched`` (the default) the tile footprint is streamed through
    the memory hierarchy in per-interval runs via
    :meth:`_access_texture_run` — a fused L1/L2/DRAM loop with bound
    locals and bulk statistics updates that is bit-identical in every
    counter and cache state to the scalar per-line path (``batched=False``,
    kept as the golden reference for the parity suite).
    """

    def __init__(self, index: int, config: GPUConfig, shared: SharedMemory,
                 tile_cache: Cache, ideal_memory: bool = False,
                 batched: bool = True, clock: Optional[SimClock] = None):
        self.index = index
        self.config = config
        self.shared = shared
        self.tile_cache = tile_cache
        self.ideal_memory = ideal_memory
        self.batched = batched
        #: Simulated-cycle clock, shared with the frame driver; only read
        #: on telemetry-guarded paths (tile dispatch/retire timestamps).
        self.clock = clock if clock is not None else SimClock()
        self._tile_start_ts = 0
        self._m_tiles = None
        self._m_tile_latency = None
        self.cluster = CoreCluster(config.raster_unit, config.shader_core)
        self.l1 = make_texture_l1(config, name=f"TexL1[{index}]")
        self._l1_latency = float(config.texture_cache.latency_cycles)
        self._l2_latency = float(config.l2_cache.latency_cycles)
        self._compressor = None
        if config.fb_compression_ratio is not None:
            from ..memory.compression import FrameBufferCompressor
            self._compressor = FrameBufferCompressor(
                fallback_ratio=config.fb_compression_ratio)
        self._current: Optional[TileWorkload] = None
        self._cycles_done = 0.0
        self._cycles_needed = 0.0
        self._line_idx = 0
        self._cycles_per_line = 0.0
        self._tile_dram = 0
        self._mshrs_total = self.cluster.mshrs_total
        #: Whole-tile L1/cadence plan (see _begin_tile); None means the
        #: per-line fused loop handles this tile.
        self._plan = None
        self._plan_ptr = 0
        dram = shared.dram
        #: Integer-valued service cycles make bulk float accumulation
        #: exact (sums of integers are order-independent in float64), a
        #: precondition of the run-length Color Buffer flush.
        self._svc_integer = (dram._hit_service.is_integer()
                             and dram._miss_service.is_integer())
        self.stats = RasterUnitStats()
        self._bind_hot()

    def _bind_hot(self) -> None:
        """Snapshot the stable hot-path references into one tuple.

        ``_stream_texture_lines`` unpacks this in a single statement
        instead of ~20 attribute loads per call.  Everything here keeps
        its identity for the lifetime of a run (caches clear in place,
        the DRAM is never reset mid-run); the tuple is refreshed each
        ``begin_frame`` anyway as cheap insurance.
        """
        l1 = self.l1
        l2 = self.shared.l2
        dram = self.shared.dram
        self._hot = (
            l1._sets, l1._set_mask, l1.ways, l1._dirty, l1.stats,
            l2._sets, l2._set_mask, l2.ways, l2._dirty, l2.stats,
            dram, dram._open_rows, dram._lines_per_row, dram._bank_mask,
            dram._bank_bits, dram._hit_service, dram._miss_service,
            dram.stats, self.shared.traffic, l1,
        )

    # -- frame lifecycle ---------------------------------------------------
    def begin_frame(self) -> None:
        """Reset per-frame progress (cache contents persist across frames)."""
        self._current = None
        self._cycles_done = 0.0
        self._cycles_needed = 0.0
        self._line_idx = 0
        self._tile_dram = 0
        self._plan = None
        self.stats = RasterUnitStats()
        self._bind_hot()
        if HUB.enabled:
            metrics = HUB.metrics
            self._m_tiles = metrics.counter(
                f"ru{self.index}.tiles_retired")
            self._m_tile_latency = metrics.histogram(
                f"ru{self.index}.tile_latency_cycles",
                TILE_LATENCY_BUCKETS)

    @property
    def busy(self) -> bool:
        """True while a tile is in flight on this unit."""
        return self._current is not None

    # -- interval execution -------------------------------------------------
    def step(self, cycles: int, fetch_next: WorkSource) -> bool:
        """Advance up to ``cycles`` cycles; returns True if any work ran."""
        cycle_budget = float(cycles)
        if self.ideal_memory:
            miss_budget = 1 << 62
        else:
            memory_latency = (self._l1_latency + self._l2_latency
                              + self.shared.dram._loaded_latency)
            # Inlined CoreCluster.miss_budget (Little's law on the MSHR
            # pool); latencies are validated positive at construction.
            miss_budget = int(self._mshrs_total * cycles / memory_latency)
            if miss_budget < 1:
                miss_budget = 1
        worked = False

        while cycle_budget > _EPS:
            if self._current is None:
                workload = fetch_next(self.index)
                if workload is None:
                    break
                cycle_budget -= self._begin_tile(workload)
                worked = True
                continue
            worked = True
            w = self._current
            lines = w.texture_lines
            n_lines = len(lines)
            if (self._line_idx < n_lines
                    and self._cycles_done + _EPS
                    >= self._line_idx * self._cycles_per_line):
                if self.batched:
                    if self._plan is not None:
                        cycle_budget, dram_misses, stalled = \
                            self._stream_planned(cycle_budget, miss_budget)
                    else:
                        cycle_budget, dram_misses, stalled = \
                            self._stream_texture_lines(lines, n_lines,
                                                       cycle_budget,
                                                       miss_budget)
                    miss_budget -= dram_misses
                    if stalled:
                        # Memory-limited: the MSHR pool cannot absorb
                        # more misses this interval; the unit stalls at
                        # the access that exhausted the budget.
                        self.stats.memory_stall_intervals += 1
                        cycle_budget = 0.0
                    continue
                # The next texture access is due now.
                level = self._access_texture(lines[self._line_idx])
                self._line_idx += 1
                if level == "dram":
                    miss_budget -= 1
                    if miss_budget <= 0:
                        # Memory-limited: the MSHR pool cannot absorb more
                        # misses this interval; the unit stalls.
                        self.stats.memory_stall_intervals += 1
                        cycle_budget = 0.0
                continue
            if self._line_idx < n_lines:
                target = self._line_idx * self._cycles_per_line
            else:
                target = self._cycles_needed
            chunk = min(target - self._cycles_done, cycle_budget)
            if chunk > 0.0:
                self._cycles_done += chunk
                cycle_budget -= chunk
            if (self._cycles_done + _EPS >= self._cycles_needed
                    and self._line_idx >= n_lines):
                cycle_budget -= self._finish_tile()

        if worked:
            self.stats.busy_intervals += 1
        return worked

    # -- tile lifecycle -----------------------------------------------------
    def _begin_tile(self, workload: TileWorkload) -> float:
        """Start a tile: Parameter Buffer fetch + fixed setup cost."""
        if HUB.enabled:
            self._tile_start_ts = self.clock.cycles
            HUB.emit(TileDispatch(ru=self.index, tile=workload.tile,
                                  ts=self._tile_start_ts))
        self._current = workload
        self._cycles_done = 0.0
        self._cycles_needed = self.cluster.tile_compute_cycles(workload)
        self._line_idx = 0
        self._tile_dram = 0
        n_lines = len(workload.texture_lines)
        self._cycles_per_line = (self._cycles_needed / n_lines
                                 if n_lines else 0.0)
        self._plan = None
        if self.batched and not self.ideal_memory and n_lines:
            self._plan_tile(workload, n_lines)
        if not self.ideal_memory:
            pb_lines = workload.pb_lines
            if self.batched:
                if pb_lines:
                    misses: list = []
                    self.tile_cache.lookup_batch(pb_lines,
                                                 miss_record=misses)
                    if misses:
                        self._tile_dram += self.shared.access_batch(
                            [line for line, _ in misses], PARAMETER)
            else:
                for line in pb_lines:
                    if not self.tile_cache.lookup(line):
                        if self.shared.access(line, PARAMETER) == "dram":
                            self._tile_dram += 1
        return float(self.config.raster_unit.tile_setup_cycles)

    def _finish_tile(self) -> float:
        """Flush the Color Buffer; record per-tile statistics."""
        w = self._current
        assert w is not None
        if not self.ideal_memory:
            fb_lines = w.fb_lines
            if self._compressor is not None and fb_lines:
                fb_lines = self._compressor.compress_flush(fb_lines)
                if self.batched:
                    self.shared.stream_to_dram_batch(fb_lines, FRAMEBUFFER)
                else:
                    for line in fb_lines:
                        self.shared.stream_to_dram(line, FRAMEBUFFER)
            elif self.batched and self._svc_integer and fb_lines:
                # The flush stream is row-consecutive; replay it as
                # precomputed (bank, row, count) runs.  Within a run
                # every request after the first hits the open row, and
                # integer-valued service cycles keep the bulk float
                # accumulation bit-identical to the per-line walk.
                dram = self.shared.dram
                d_open = dram._open_rows
                row_hits = row_misses = 0
                n = 0
                for bank, row_of_bank, count in tilestream.fb_runs(
                        w, dram._lines_per_row, dram._bank_mask,
                        dram._bank_bits):
                    n += count
                    if d_open[bank] == row_of_bank:
                        row_hits += count
                    else:
                        d_open[bank] = row_of_bank
                        row_misses += 1
                        row_hits += count - 1
                dram._service_cycles_sum += (row_hits * dram._hit_service
                                             + row_misses
                                             * dram._miss_service)
                dram._service_count += n
                dram._interval_requests += n
                d_stats = dram.stats
                d_stats.writes += n
                d_stats.row_hits += row_hits
                d_stats.row_misses += row_misses
                d_stats.activations += row_misses
                self.shared.traffic.add(FRAMEBUFFER, n)
            elif self.batched:
                self.shared.stream_to_dram_batch(fb_lines, FRAMEBUFFER)
            else:
                for line in fb_lines:
                    self.shared.stream_to_dram(line, FRAMEBUFFER)
            self._tile_dram += len(fb_lines)
        # Per-fragment fetches beyond the line footprint are filtered by
        # quad coalescing before the L1; account their energy only (they
        # do not contribute to the L1 hit ratio or latency statistics).
        repeats = w.repeat_fetches
        if repeats:
            self.l1.record_repeat_hits(repeats)
        stats = self.stats
        stats.tiles_completed += 1
        stats.instructions += w.instructions
        stats.fragments += w.fragments
        stats.per_tile_dram[w.tile] = self._tile_dram
        stats.per_tile_instructions[w.tile] = w.instructions
        if HUB.enabled:
            now = self.clock.cycles
            HUB.emit(TileRetire(ru=self.index, tile=w.tile, ts=now,
                                start_ts=self._tile_start_ts,
                                dram_lines=self._tile_dram,
                                instructions=w.instructions))
            if self._m_tiles is not None:
                self._m_tiles.inc()
                self._m_tile_latency.observe(now - self._tile_start_ts)
        self._current = None
        self._plan = None
        return float(self.config.raster_unit.tile_flush_cycles)

    # -- planned tile path -----------------------------------------------------
    def _plan_tile(self, workload: TileWorkload, n_lines: int) -> None:
        """Pre-apply the tile's whole texture-L1 walk and build its plan.

        The L1 is private to this unit, tiles never span frames, and its
        statistics are only observed at frame end — so the complete L1
        effect of the tile (hits, misses, evictions, final LRU state)
        can be applied at dispatch.  The walk visits each *distinct*
        line once, in first-occurrence order, which under the set-safety
        condition of :func:`tilestream.l1_layout` evicts exactly the
        lines the scalar per-access walk would, in the same order;
        duplicate occurrences are guaranteed hits and are accounted in
        bulk.  What remains per interval is the plan: which stream
        positions miss (-> L2/DRAM, which *are* interleaving-sensitive
        and stay per-call) and the memoized compute cadence.
        """
        l1 = self.l1
        if l1._dirty:
            # A dirty texture L1 would need writeback bookkeeping the
            # plan does not model; impossible for texture reads, but
            # fall back rather than assume.
            return
        layout = tilestream.l1_layout(workload, l1._set_mask, l1.ways)
        if layout is None:
            return
        ulines, pos_of, retouch = layout
        sets = l1._sets
        mask = l1._set_mask
        nways = l1.ways
        mlines: List[int] = []
        mpos: List[int] = []
        ml_append = mlines.append
        mp_append = mpos.append
        evictions = 0
        for line in ulines:
            ways = sets[line & mask]
            if ways.pop(line, 0) is None:
                ways[line] = None
            else:
                if len(ways) >= nways:
                    for evicted in ways:
                        break
                    del ways[evicted]
                    evictions += 1
                ways[line] = None
                ml_append(line)
                mp_append(pos_of[line])
        for line in retouch:
            ways = sets[line & mask]
            del ways[line]
            ways[line] = None
        misses = len(mlines)
        l1_stats = l1.stats
        l1_stats.accesses += n_lines
        l1_stats.hits += n_lines - misses
        l1_stats.misses += misses
        l1_stats.evictions += evictions
        stats = self.stats
        stats.texture_accesses += n_lines
        stats.texture_latency_sum += self._l1_latency * (n_lines - misses)
        self._plan = (tilestream.cadence(workload, self._cycles_per_line),
                      mpos, mlines, misses)
        self._plan_ptr = 0

    def _stream_planned(self, cycle_budget: float, miss_budget: int):
        """Consume this interval's slice of the planned tile stream.

        The memoized cadence yields how many lines the budget covers;
        only the planned L1-miss positions inside that slice walk the
        shared L2/DRAM (inlined, in stream order — the part that must
        stay at interval granularity because other units interleave).
        Returns ``(cycle_budget, dram_misses, stalled)`` like the fused
        loop.
        """
        cad, mpos, mlines, nmiss = self._plan
        index = self._line_idx
        k, done_end, budget_end = cad.consume(index, self._cycles_done,
                                              cycle_budget)
        end = index + k
        p = self._plan_ptr
        if p >= nmiss or mpos[p] >= end:
            # Pure-hit slice: no shared-state traffic, nothing to account
            # (L1 stats and latency were pre-applied at plan time).
            self._line_idx = end
            self._cycles_done = done_end
            return budget_end, 0, False
        dram_misses = 0
        stalled = False
        (_, _, _, _, _,
         l2_sets, l2_mask, l2_nways, l2_dirty, l2_stats,
         dram, d_open, d_lpr, d_bmask, d_bbits, d_hit, d_miss,
         d_stats, traffic, _) = self._hot
        l2_lat = self._l1_latency + self._l2_latency
        dram_lat = l2_lat + dram._loaded_latency
        svc_sum = dram._service_cycles_sum
        p0 = p
        l2_hits = l2_evictions = l2_writebacks = 0
        d_row_hits = d_row_misses = 0
        while p < nmiss:
            pos = mpos[p]
            if pos >= end:
                break
            line = mlines[p]
            p += 1
            ways = l2_sets[line & l2_mask]
            if ways.pop(line, 0) is None:
                ways[line] = None
                l2_hits += 1
                continue
            victim = None
            if len(ways) >= l2_nways:
                for victim in ways:
                    break
                del ways[victim]
                l2_evictions += 1
                if victim in l2_dirty:
                    l2_dirty.discard(victim)
                    l2_writebacks += 1
                else:
                    victim = None
            ways[line] = None
            row = line // d_lpr
            bank = row & d_bmask
            row_of_bank = row >> d_bbits
            if d_open[bank] == row_of_bank:
                d_row_hits += 1
                svc_sum += d_hit
            else:
                d_row_misses += 1
                d_open[bank] = row_of_bank
                svc_sum += d_miss
            if victim is not None:
                row = victim // d_lpr
                bank = row & d_bmask
                row_of_bank = row >> d_bbits
                if d_open[bank] == row_of_bank:
                    d_row_hits += 1
                    svc_sum += d_hit
                else:
                    d_row_misses += 1
                    d_open[bank] = row_of_bank
                    svc_sum += d_miss
            dram_misses += 1
            if dram_misses >= miss_budget:
                # The access that exhausted the MSHR budget is the
                # last one performed; the tile resumes right after
                # it next interval, with the scalar path's exact
                # ``done`` value at that position.
                stalled = True
                end = pos + 1
                done_end = cad.done_after[pos]
                break
        self._plan_ptr = p
        slice_misses = p - p0
        l2_stats.accesses += slice_misses
        l2_stats.hits += l2_hits
        l2_stats.misses += slice_misses - l2_hits
        l2_stats.evictions += l2_evictions
        l2_stats.writebacks += l2_writebacks
        requests = dram_misses + l2_writebacks
        if requests:
            dram._service_cycles_sum = svc_sum
            dram._service_count += requests
            dram._interval_requests += requests
            d_stats.reads += dram_misses
            d_stats.writes += l2_writebacks
            d_stats.row_hits += d_row_hits
            d_stats.row_misses += d_row_misses
            d_stats.activations += d_row_misses
            traffic.add(TEXTURE, dram_misses)
        if l2_writebacks:
            traffic.add(WRITEBACK, l2_writebacks)
        unit_stats = self.stats
        unit_stats.texture_latency_sum += (l2_lat * l2_hits
                                           + dram_lat * dram_misses)
        unit_stats.dram_texture_misses += dram_misses
        self._tile_dram += dram_misses
        self._line_idx = end
        self._cycles_done = done_end
        if stalled:
            return 0.0, dram_misses, True
        return budget_end, dram_misses, False

    # -- batched memory path ---------------------------------------------------
    def _stream_texture_lines(self, lines: Sequence[int], n_lines: int,
                              cycle_budget: float, miss_budget: int):
        """Stream every texture line due this interval, in one fused loop.

        Replays the scalar advance/access cadence — the same float
        operations in the same order — with the per-line memory path
        (L1 -> L2 -> DRAM) inlined with bound locals and statistics
        applied in bulk afterwards.  Cache/LRU state, counters, and the
        DRAM request order are bit-identical to the scalar path
        (``batched=False``).  Stops after the access whose DRAM-level
        miss exhausts ``miss_budget``; the caller charges the stall.

        Advances ``self._line_idx`` / ``self._cycles_done`` and returns
        ``(cycle_budget, dram_misses, stalled)``.
        """
        eps = _EPS
        cpl = self._cycles_per_line
        done = self._cycles_done
        budget = cycle_budget
        index = self._line_idx
        unit_stats = self.stats

        if self.ideal_memory:
            accessed = 0
            while budget > eps:
                if index >= n_lines:
                    break
                target = index * cpl
                if done + eps < target:
                    while True:
                        gap = target - done
                        chunk = gap if gap < budget else budget
                        done += chunk
                        budget -= chunk
                        if budget <= eps or done + eps >= target:
                            break
                    if budget <= eps:
                        break
                accessed += 1
                index += 1
            unit_stats.texture_accesses += accessed
            unit_stats.texture_latency_sum += self._l1_latency * accessed
            self._line_idx = index
            self._cycles_done = done
            return budget, 0, False

        (l1_sets, l1_mask, l1_nways, l1_dirty, l1_stats,
         l2_sets, l2_mask, l2_nways, l2_dirty, l2_stats,
         dram, d_open, d_lpr, d_bmask, d_bbits, d_hit, d_miss,
         d_stats, traffic, l1) = self._hot
        l1_lat = self._l1_latency
        l2_lat = l1_lat + self._l2_latency
        dram_lat = l2_lat + dram._loaded_latency
        svc_sum = dram._service_cycles_sum
        l1_hits = l1_evictions = l1_writebacks = 0
        l2_hits = l2_evictions = l2_writebacks = 0
        d_row_hits = d_row_misses = 0
        latency = 0.0
        dram_misses = 0
        accessed = 0
        stalled = False
        while budget > eps:
            if index >= n_lines:
                break
            target = index * cpl
            if done + eps < target:
                # Advance the compute cadence to the next due line in one
                # inner loop: the same chunk float operations the scalar
                # path performs, including its budget re-check after every
                # chunk (``chunk`` is always positive here, so the scalar
                # path's ``chunk > 0.0`` guard is vacuous).
                while True:
                    gap = target - done
                    chunk = gap if gap < budget else budget
                    done += chunk
                    budget -= chunk
                    if budget <= eps or done + eps >= target:
                        break
                if budget <= eps:
                    break
            line = lines[index]
            index += 1
            accessed += 1
            ways = l1_sets[line & l1_mask]
            # dict.pop with a sentinel default folds the scalar path's
            # membership test + delete into one hash lookup; stored
            # values are always None, so None means hit.
            if ways.pop(line, 0) is None:
                ways[line] = None
                l1_hits += 1
                latency += l1_lat
                continue
            if len(ways) >= l1_nways:
                for evicted in ways:
                    break
                del ways[evicted]
                l1_evictions += 1
                if evicted in l1_dirty:
                    l1_dirty.discard(evicted)
                    l1_writebacks += 1
                    l1.pending_writebacks.append(evicted)
            ways[line] = None
            ways = l2_sets[line & l2_mask]
            if ways.pop(line, 0) is None:
                ways[line] = None
                l2_hits += 1
                latency += l2_lat
                continue
            victim = None
            if len(ways) >= l2_nways:
                for victim in ways:
                    break
                del ways[victim]
                l2_evictions += 1
                if victim in l2_dirty:
                    l2_dirty.discard(victim)
                    l2_writebacks += 1
                else:
                    victim = None
            ways[line] = None
            # Inlined DRAM row-buffer walk (DRAM.request): demand read
            # first, then the dirty victim's writeback — same order and
            # the same service-cycle float accumulation as the scalar
            # path.  Counters are applied in bulk below.
            row = line // d_lpr
            bank = row & d_bmask
            row_of_bank = row >> d_bbits
            if d_open[bank] == row_of_bank:
                d_row_hits += 1
                svc_sum += d_hit
            else:
                d_row_misses += 1
                d_open[bank] = row_of_bank
                svc_sum += d_miss
            if victim is not None:
                row = victim // d_lpr
                bank = row & d_bmask
                row_of_bank = row >> d_bbits
                if d_open[bank] == row_of_bank:
                    d_row_hits += 1
                    svc_sum += d_hit
                else:
                    d_row_misses += 1
                    d_open[bank] = row_of_bank
                    svc_sum += d_miss
            latency += dram_lat
            dram_misses += 1
            if dram_misses >= miss_budget:
                stalled = True
                break
        l1_stats.accesses += accessed
        l1_stats.hits += l1_hits
        l1_misses = accessed - l1_hits
        l1_stats.misses += l1_misses
        l1_stats.evictions += l1_evictions
        l1_stats.writebacks += l1_writebacks
        l2_stats.accesses += l1_misses
        l2_stats.hits += l2_hits
        l2_stats.misses += l1_misses - l2_hits
        l2_stats.evictions += l2_evictions
        l2_stats.writebacks += l2_writebacks
        dram_requests = dram_misses + l2_writebacks
        if dram_requests:
            dram._service_cycles_sum = svc_sum
            dram._service_count += dram_requests
            dram._interval_requests += dram_requests
            d_stats.reads += dram_misses
            d_stats.writes += l2_writebacks
            d_stats.row_hits += d_row_hits
            d_stats.row_misses += d_row_misses
            d_stats.activations += d_row_misses
            traffic.add(TEXTURE, dram_misses)
        if l2_writebacks:
            traffic.add(WRITEBACK, l2_writebacks)
        unit_stats.texture_accesses += accessed
        unit_stats.texture_latency_sum += latency
        unit_stats.dram_texture_misses += dram_misses
        self._tile_dram += dram_misses
        self._line_idx = index
        self._cycles_done = done
        return budget, dram_misses, stalled

    # -- memory path ----------------------------------------------------------
    def _access_texture(self, line: int) -> str:
        """One texture line access through L1 -> L2 -> DRAM."""
        stats = self.stats
        stats.texture_accesses += 1
        if self.ideal_memory:
            stats.texture_latency_sum += self._l1_latency
            return "l1"
        if self.l1.lookup(line):
            stats.texture_latency_sum += self._l1_latency
            return "l1"
        level = self.shared.access(line, TEXTURE)
        latency = self._l1_latency + self.shared.access_latency(level)
        stats.texture_latency_sum += latency
        if level == "dram":
            stats.dram_texture_misses += 1
            self._tile_dram += 1
        return level
