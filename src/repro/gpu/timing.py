"""Interval-based timing simulation of the (possibly parallel) raster phase.

Advances all Raster Units in lockstep intervals of
``config.interval_cycles`` cycles.  Within an interval each unit makes
compute- or memory-limited progress against the *same* shared L2/DRAM, and
at every interval boundary the DRAM model re-derives its loaded latency
from the utilization the units jointly produced — the feedback loop at the
heart of the paper's congestion argument.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from ..config import GPUConfig
from ..core.scheduler import Dispenser
from ..memory.hierarchy import SharedMemory
from ..memory.cache import Cache
from ..telemetry import SimClock
from .raster_unit import RasterUnitStats, TimingRasterUnit
from .workload import FrameTrace, TileWorkload


@dataclass
class RasterPhaseResult:
    """Outcome of simulating one frame's raster phase."""

    cycles: int
    intervals: int
    ru_stats: List[RasterUnitStats]
    #: Index into the DRAM interval series where this phase started.
    dram_interval_start: int = 0

    def merged_per_tile_dram(self) -> dict:
        """Per-tile DRAM access counts merged across units."""
        merged: dict = {}
        for stats in self.ru_stats:
            merged.update(stats.per_tile_dram)
        return merged

    def merged_per_tile_instructions(self) -> dict:
        """Per-tile instruction counts merged across units."""
        merged: dict = {}
        for stats in self.ru_stats:
            merged.update(stats.per_tile_instructions)
        return merged

    @property
    def tiles_completed(self) -> int:
        """Tiles finished across all units."""
        return sum(s.tiles_completed for s in self.ru_stats)

    @property
    def texture_accesses(self) -> int:
        """Texture accesses across all units."""
        return sum(s.texture_accesses for s in self.ru_stats)

    @property
    def mean_texture_latency(self) -> float:
        """Average texture access latency in cycles."""
        accesses = self.texture_accesses
        if accesses == 0:
            return 0.0
        total = sum(s.texture_latency_sum for s in self.ru_stats)
        return total / accesses


class TimingSimulator:
    """Drives the Raster Units through one frame."""

    #: Hard ceiling on simulated cycles per frame (runaway guard).
    MAX_CYCLES = 2_000_000_000

    def __init__(self, config: GPUConfig, shared: SharedMemory,
                 raster_units: List[TimingRasterUnit], tile_cache: Cache,
                 clock: Optional[SimClock] = None):
        if not raster_units:
            raise ValueError("need at least one Raster Unit")
        self.config = config
        self.shared = shared
        self.raster_units = raster_units
        self.tile_cache = tile_cache
        #: Simulated-cycle clock advanced once per interval; shared with
        #: the Raster Units so telemetry timestamps line up.
        self.clock = clock if clock is not None else SimClock()

    def run_raster_phase(self, trace: FrameTrace,
                         dispenser: Dispenser) -> RasterPhaseResult:
        """Simulate the raster phase of one frame; returns its timing."""
        interval = self.config.interval_cycles
        pending: List[Deque[TileWorkload]] = [
            deque() for _ in self.raster_units]
        dram_start = len(self.shared.dram.stats.interval_requests)

        def fetch_next(ru_index: int) -> Optional[TileWorkload]:
            """Pull the next workload for a unit from its dispenser."""
            queue = pending[ru_index]
            if not queue:
                batch = dispenser.next_batch(ru_index)
                if batch is None:
                    return None
                queue.extend(trace.workload_for(tile) for tile in batch)
            return queue.popleft()

        for unit in self.raster_units:
            unit.begin_frame()

        cycles = 0
        intervals = 0
        clock = self.clock
        phase_start = clock.cycles
        while True:
            any_work = False
            for unit in self.raster_units:
                if unit.step(interval, fetch_next):
                    any_work = True
            self.shared.end_interval()
            if not any_work:
                break
            cycles += interval
            intervals += 1
            clock.cycles += interval
            if cycles > self.MAX_CYCLES:
                raise RuntimeError(
                    "raster phase exceeded the cycle ceiling — "
                    "likely a deadlocked workload or dispenser")
        # Let the DRAM queue drain; those cycles are part of the frame.
        cycles += self.shared.dram.drain_cycles()
        clock.cycles = phase_start + cycles
        return RasterPhaseResult(
            cycles=cycles,
            intervals=intervals,
            ru_stats=[unit.stats for unit in self.raster_units],
            dram_interval_start=dram_start,
        )
