"""Shader-core cluster throughput model.

The cores of one Raster Unit are modeled as a cluster with an aggregate
instruction rate and an aggregate miss-level-parallelism budget.  The two
budgets encode the classic latency/bandwidth trade-off the paper leans on:
multithreading hides memory latency only while the cluster can keep enough
misses in flight — ``miss_budget = outstanding_misses x interval /
latency`` — so when DRAM latency inflates under congestion, memory-bound
tiles stall regardless of compute headroom.
"""

from __future__ import annotations

from ..config import RasterUnitConfig, ShaderCoreConfig


class CoreCluster:
    """Aggregate execution budgets for the cores of one Raster Unit."""

    def __init__(self, ru_config: RasterUnitConfig,
                 core_config: ShaderCoreConfig):
        if ru_config.num_cores < 1:
            raise ValueError("a Raster Unit needs at least one core")
        self.num_cores = ru_config.num_cores
        self.ipc = core_config.ipc
        self.mshrs_total = ru_config.num_cores * core_config.mshrs
        self.warps_total = ru_config.num_cores * core_config.warps
        self.min_fragments_per_core = core_config.min_fragments_per_core
        self.primitive_setup_cycles = ru_config.primitive_setup_cycles

    def instruction_budget(self, cycles: int) -> float:
        """Instructions the cluster can retire in ``cycles`` cycles."""
        return cycles * self.num_cores * self.ipc

    def effective_cores(self, fragments: int) -> int:
        """Cores a primitive with ``fragments`` fragments can keep busy.

        Each engaged core wants at least ``min_fragments_per_core``
        fragments' worth of warps; primitives smaller than that leave
        cores idle, which is exactly why "doubling the number of cores
        does not work well" (paper Figure 4) on fine-geometry content.
        """
        if fragments <= 0:
            return 1
        return min(self.num_cores,
                   max(fragments // self.min_fragments_per_core, 1))

    def tile_compute_cycles(self, workload) -> float:
        """Memory-free execution cycles of a tile on this cluster.

        Primitives run back to back (program order within a tile); each
        pays a serial front-end setup cost and then shades its fragments
        on however many cores it can fill.

        The per-primitive float accumulation is order-sensitive, so the
        exact computed value is memoized on the workload, keyed by the
        cluster parameters it depends on — repeated runs over the same
        trace (benchmark repeats, scheduler comparisons on one config)
        skip the loop entirely.
        """
        cache = workload.__dict__.get("_soa")
        if cache is None:
            cache = workload.__dict__["_soa"] = {}
        key = ("cc", self.num_cores, self.ipc, self.min_fragments_per_core,
               self.primitive_setup_cycles)
        cycles = cache.get(key)
        if cycles is not None:
            return cycles
        cycles = workload.num_primitives * self.primitive_setup_cycles
        if workload.prim_instructions:
            for fragments, instructions in zip(workload.prim_fragments,
                                               workload.prim_instructions):
                width = self.effective_cores(fragments) * self.ipc
                cycles += instructions / width
        elif workload.instructions:
            # Trace without per-primitive detail: assume full width.
            cycles += workload.instructions / (self.num_cores * self.ipc)
        cache[key] = cycles
        return cycles

    def miss_budget(self, cycles: int, memory_latency: float) -> int:
        """DRAM-level misses the cluster can absorb in ``cycles`` cycles.

        Little's law on the MSHR pool: with ``mshrs_total`` outstanding
        requests and ``memory_latency`` cycles each, throughput is
        ``mshrs_total / latency`` misses per cycle.
        """
        if memory_latency <= 0:
            raise ValueError("memory latency must be positive")
        budget = self.mshrs_total * cycles / memory_latency
        return max(int(budget), 1)
