"""Parallel Frame Rendering (PFR) — a related-work baseline.

The paper's related work cites PFR (Arnau et al., PACT 2013): instead of
splitting a frame's tiles across clusters, split the *frames* — two
consecutive frames render concurrently, each on half the shader cores,
trading one frame of responsiveness for inter-frame texture locality.

This module implements a PFR-style machine on top of the same substrates
so ablations can compare intra-frame parallelism (PTR/LIBRA) against
inter-frame parallelism (PFR) under identical workloads: two
half-size GPU clusters with private texture L1s share the L2/DRAM, and
each renders a *whole* frame serially in Z-order.

Timing: both frames of a pair advance in lockstep intervals against the
shared memory (the same interval scheme as
:class:`~repro.gpu.timing.TimingSimulator`); the pair's cost is the
slower of the two plus the shared geometry phases.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence

from ..config import GPUConfig
from ..memory.hierarchy import SharedMemory, make_tile_cache
from ..tiling.orders import morton_order
from .raster_unit import TimingRasterUnit
from .workload import FrameTrace, TileWorkload


@dataclass
class PFRResult:
    """Outcome of a PFR run over a trace sequence."""

    total_cycles: int = 0
    frames: int = 0
    #: Per-pair raster cycles (each pair renders two frames).
    pair_cycles: List[int] = field(default_factory=list)
    texture_accesses: int = 0
    texture_latency_sum: float = 0.0
    dram_accesses: int = 0

    @property
    def mean_texture_latency(self) -> float:
        """Average texture access latency in cycles."""
        if self.texture_accesses == 0:
            return 0.0
        return self.texture_latency_sum / self.texture_accesses


class PFRSimulator:
    """Two half-GPU clusters rendering consecutive frames in parallel."""

    MAX_CYCLES = 2_000_000_000

    def __init__(self, config: GPUConfig):
        if config.num_raster_units != 2:
            raise ValueError("PFR splits the GPU into exactly two clusters")
        config.validate()
        self.config = config
        self.shared = SharedMemory(config)
        self.tile_cache = make_tile_cache(config)
        self.clusters = [
            TimingRasterUnit(i, config, self.shared, self.tile_cache)
            for i in range(2)]

    def run(self, traces: Sequence[FrameTrace]) -> PFRResult:
        """Render the trace sequence as PFR frame pairs."""
        result = PFRResult()
        for start in range(0, len(traces), 2):
            pair = traces[start:start + 2]
            cycles = self._run_pair(pair)
            geometry = sum(t.geometry_cycles for t in pair)
            result.pair_cycles.append(cycles + geometry)
            result.total_cycles += cycles + geometry
            result.frames += len(pair)
            for cluster in self.clusters:
                result.texture_accesses += cluster.stats.texture_accesses
                result.texture_latency_sum += \
                    cluster.stats.texture_latency_sum
        result.dram_accesses = self.shared.dram.stats.accesses
        return result

    def _run_pair(self, pair: Sequence[FrameTrace]) -> int:
        queues: List[Deque[TileWorkload]] = []
        for trace in pair:
            order = morton_order(trace.tiles_x, trace.tiles_y)
            queues.append(deque(trace.workload_for(t) for t in order))
        while len(queues) < 2:
            queues.append(deque())

        def fetch_for(index: int):
            """Work source bound to one frame's tile queue."""
            def fetch(_ru: int) -> Optional[TileWorkload]:
                """Pop the next tile workload of this frame."""
                return queues[index].popleft() if queues[index] else None
            return fetch

        for cluster in self.clusters:
            cluster.begin_frame()

        interval = self.config.interval_cycles
        cycles = 0
        fetchers = [fetch_for(0), fetch_for(1)]
        while True:
            worked = False
            for cluster, fetch in zip(self.clusters, fetchers):
                if cluster.step(interval, fetch):
                    worked = True
            self.shared.end_interval()
            if not worked:
                break
            cycles += interval
            if cycles > self.MAX_CYCLES:
                raise RuntimeError("PFR pair exceeded the cycle ceiling")
        return cycles + self.shared.dram.drain_cycles()
