"""Structure-of-arrays views of tile workload streams.

The batched Raster Unit path plans a whole tile's texture-L1 behaviour at
dispatch time and then consumes the plan interval by interval (see
``TimingRasterUnit``).  Everything needed for that plan — the
``np.unique``-compressed line stream, the per-set layout against a given
cache geometry, the compute cadence that decides *when* each line is due,
and the DRAM row/bank runs of the Color Buffer flush — derives purely
from immutable trace content plus configuration constants.  It therefore
lives here, computed once per workload with numpy and cached on the
workload object, never on simulation state.

Exactness notes (load-bearing, verified by the parity suite):

* ``TileCadence`` replays the scalar advance loop's float operations —
  ``gap = target - done; done += gap`` — once per ``(line, entry
  budget)`` and memoizes the outcome, so steady-state intervals reduce
  to a dict hit.  ``done_after[i]`` is exactly the scalar ``done`` after
  accessing line ``i`` because the chain is *computed with* the scalar
  recurrence, not re-derived analytically.
* ``l1_layout`` only returns a plan when every cache set sees at most
  ``ways`` distinct stream lines (the tile working set fits its sets).
  Under that condition the eviction victims of the whole tile are
  exactly the oldest untouched resident lines of each set, in scalar
  order, regardless of how duplicate occurrences interleave — which is
  what makes whole-tile pre-application of the L1 walk bit-exact.
  Tiles that violate it fall back to the fused per-line loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

_EPS = 1e-9

#: Layout plan: (uniq lines, line -> first position, retouch lines).
L1Layout = Tuple[Tuple[int, ...], Dict[int, int], Tuple[int, ...]]


def _soa(workload) -> dict:
    """Per-workload cache of derived stream data (attached lazily)."""
    cache = workload.__dict__.get("_soa")
    if cache is None:
        cache = workload.__dict__["_soa"] = {}
    return cache


def stream_uniq(workload) -> Tuple[Tuple[int, ...], ...]:
    """The tile's distinct texture lines, in first-occurrence order.

    Returns ``(lines, first_pos, last_pos)`` as parallel tuples of
    Python ints: each distinct line, the stream position of its first
    occurrence, and the position of its last occurrence.
    """
    cache = _soa(workload)
    data = cache.get("uniq")
    if data is None:
        arr = np.asarray(workload.texture_lines, dtype=np.int64)
        n = arr.shape[0]
        if n == 0:
            data = ((), (), ())
        else:
            values, first = np.unique(arr, return_index=True)
            _, rlast = np.unique(arr[::-1], return_index=True)
            last = n - 1 - rlast
            order = np.argsort(first, kind="stable")
            data = (tuple(values[order].tolist()),
                    tuple(first[order].tolist()),
                    tuple(last[order].tolist()))
        cache["uniq"] = data
    return data


def l1_layout(workload, set_mask: int, ways: int) -> Optional[L1Layout]:
    """Per-set layout of the tile stream against an L1 geometry.

    Returns ``(uniq_lines, pos_of, retouch)`` when the stream is
    *set-safe* — no cache set sees more than ``ways`` distinct lines —
    or ``None`` when it is not (the caller must use the per-line path).
    ``pos_of`` maps each line to its first stream position; the plan
    walk only consults it for misses, so it is a dict rather than a
    tuple paired positionally with ``uniq_lines``.

    ``retouch`` lists the lines of sets holding two or more stream lines
    whose LRU order after a first-occurrence walk differs from the true
    final order; re-touching them in last-occurrence order afterwards
    reproduces the exact scalar end state.
    """
    cache = _soa(workload)
    key = ("l1", set_mask, ways)
    data = cache.get(key, False)
    if data is not False:
        return data
    lines, first, last = stream_uniq(workload)
    if not lines:
        data = ((), {}, ())
        cache[key] = data
        return data
    arr = np.asarray(lines, dtype=np.int64)
    setid = (arr & set_mask).astype(np.int64)
    counts = np.bincount(setid - setid.min())
    if int(counts.max()) > ways:
        cache[key] = None
        return None
    retouch: List[int] = []
    if int(counts.max()) > 1:
        groups: Dict[int, List[int]] = {}
        sid = setid.tolist()
        for i, s in enumerate(sid):
            groups.setdefault(s, []).append(i)
        for idxs in groups.values():
            if len(idxs) < 2:
                continue
            by_last = sorted(idxs, key=last.__getitem__)
            if by_last != idxs:
                retouch.extend(lines[i] for i in by_last)
    data = (lines, dict(zip(lines, first)), tuple(retouch))
    cache[key] = data
    return data


class TileCadence:
    """Memoized replay of the scalar texture-stream advance cadence.

    The scalar loop advances ``done`` toward ``target = i *
    cycles_per_line`` one float chunk at a time, accessing line ``i``
    once the target is reached and stopping when the interval's cycle
    budget runs out.  For a given entry state ``(next line index, done,
    budget)`` the number of lines consumed and the exit floats are a
    pure function, so each distinct entry is simulated once with the
    exact scalar float sequence and cached.
    """

    __slots__ = ("n", "targets", "done_after", "_memo")

    def __init__(self, n_lines: int, cycles_per_line: float):
        self.n = n_lines
        # Elementwise i * cpl in float64 — identical to the scalar mult.
        self.targets = (np.arange(n_lines, dtype=np.float64)
                        * cycles_per_line).tolist()
        done = 0.0
        eps = _EPS
        done_after: List[float] = []
        for target in self.targets:
            # Unbounded-budget replay of the scalar chunk loop: each
            # iteration performs the same subtract/add pair, repeating
            # while rounding leaves ``done`` short of the target.
            while done + eps < target:
                done += (target - done)
            done_after.append(done)
        self.done_after = done_after
        self._memo: Dict[Tuple[int, float, float],
                         Tuple[int, float, float]] = {}

    def consume(self, index: int, done: float,
                budget: float) -> Tuple[int, float, float]:
        """Lines consumed from ``index`` with ``budget`` cycles.

        Returns ``(count, done_exit, budget_exit)`` — exactly what the
        scalar loop would produce.  Memoized on the full entry state:
        the replay is a pure function of ``(index, done, budget)``, and
        the same states recur exactly across benchmark repeats and
        scheduler comparisons over one trace.
        """
        key = (index, done, budget)
        hit = self._memo.get(key)
        if hit is None:
            hit = self._memo[key] = self._replay(index, done, budget)
        return hit

    def _replay(self, index: int, done: float,
                budget: float) -> Tuple[int, float, float]:
        """The scalar advance loop, verbatim, from an arbitrary state."""
        targets = self.targets
        n = self.n
        eps = _EPS
        i = index
        while budget > eps and i < n:
            target = targets[i]
            if done + eps < target:
                while True:
                    gap = target - done
                    chunk = gap if gap < budget else budget
                    done += chunk
                    budget -= chunk
                    if budget <= eps or done + eps >= target:
                        break
                if budget <= eps:
                    break
            i += 1
        return i - index, done, budget


def cadence(workload, cycles_per_line: float) -> TileCadence:
    """The (cached) cadence of this workload at ``cycles_per_line``."""
    cache = _soa(workload)
    key = ("cad", cycles_per_line)
    data = cache.get(key)
    if data is None:
        data = cache[key] = TileCadence(len(workload.texture_lines),
                                        cycles_per_line)
    return data


def fb_runs(workload, lines_per_row: int, bank_mask: int,
            bank_bits: int) -> Tuple[Tuple[int, int, int], ...]:
    """Row-buffer runs of the tile's Color Buffer flush stream.

    The flush stream visits DRAM rows in long consecutive runs (the
    frame buffer is laid out linearly), so the row/bank walk collapses
    to a few ``(bank, row_of_bank, count)`` entries: within a run every
    request after the first hits the open row by construction.
    """
    cache = _soa(workload)
    key = ("fb", lines_per_row, bank_mask, bank_bits)
    data = cache.get(key)
    if data is None:
        fb = workload.fb_lines
        if not fb:
            data = ()
        else:
            arr = np.asarray(fb, dtype=np.int64)
            rows = arr // lines_per_row
            boundary = np.empty(arr.shape[0], dtype=bool)
            boundary[0] = True
            np.not_equal(rows[1:], rows[:-1], out=boundary[1:])
            starts = np.flatnonzero(boundary)
            counts = np.diff(np.append(starts, arr.shape[0]))
            run_rows = rows[starts]
            data = tuple(zip((run_rows & bank_mask).tolist(),
                             (run_rows >> bank_bits).tolist(),
                             counts.tolist()))
        cache[key] = data
    return data
