"""GPU timing simulator: workloads, Raster Units, intervals, frames."""

from .frame import FrameDriver, FrameResult
from .pfr import PFRResult, PFRSimulator
from .raster_unit import RasterUnitStats, TimingRasterUnit
from .shader_core import CoreCluster
from .simulator import GPUSimulator, RunResult
from .timing import RasterPhaseResult, TimingSimulator
from .workload import FrameTrace, TileWorkload

__all__ = [
    "GPUSimulator",
    "RunResult",
    "FrameDriver",
    "FrameResult",
    "PFRSimulator",
    "PFRResult",
    "TimingSimulator",
    "RasterPhaseResult",
    "TimingRasterUnit",
    "RasterUnitStats",
    "CoreCluster",
    "FrameTrace",
    "TileWorkload",
]
