"""Top-level GPU simulator: multi-frame runs and aggregate results.

The public entry point of the timing side of the library::

    from repro import GPUSimulator, libra_config, LibraScheduler

    config = libra_config()
    sim = GPUSimulator(config, scheduler=LibraScheduler(config.scheduler))
    result = sim.run(traces)          # traces: Sequence[FrameTrace]
    print(result.fps, result.total_energy_j)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..config import GPUConfig
from ..core.scheduler import TileScheduler, ZOrderScheduler
from ..energy.model import EnergyCounts, EnergyModel
from ..errors import ReproError, SimulationError
from ..telemetry import HUB, PhaseBegin, PhaseEnd
from .frame import FrameDriver, FrameResult
from .workload import FrameTrace


@dataclass
class RunResult:
    """Aggregate of a multi-frame simulation."""

    config_name: str
    frames: List[FrameResult] = field(default_factory=list)
    frequency_hz: int = 800_000_000

    @property
    def num_frames(self) -> int:
        """Frames simulated in this run."""
        return len(self.frames)

    @property
    def total_cycles(self) -> int:
        """Total cycles over all frames."""
        return sum(f.total_cycles for f in self.frames)

    @property
    def raster_cycles(self) -> int:
        """Raster-phase cycles over all frames."""
        return sum(f.raster_cycles for f in self.frames)

    @property
    def geometry_cycles(self) -> int:
        """Geometry-phase cycles over all frames."""
        return sum(f.geometry_cycles for f in self.frames)

    @property
    def fps(self) -> float:
        """Frames per second at the configured clock."""
        if self.total_cycles == 0:
            return 0.0
        return self.num_frames / (self.total_cycles / self.frequency_hz)

    @property
    def total_energy_j(self) -> float:
        """Total GPU energy of the run in joules."""
        return sum(f.energy.total_j for f in self.frames)

    @property
    def raster_dram_accesses(self) -> int:
        """Raster-pipeline DRAM accesses over all frames."""
        return sum(f.raster_dram_accesses for f in self.frames)

    @property
    def mean_texture_hit_ratio(self) -> float:
        """Mean per-frame texture hit ratio."""
        if not self.frames:
            return 0.0
        return sum(f.texture_hit_ratio for f in self.frames) / len(self.frames)

    @property
    def mean_texture_latency(self) -> float:
        """Mean per-frame texture access latency in cycles."""
        if not self.frames:
            return 0.0
        return (sum(f.mean_texture_latency for f in self.frames)
                / len(self.frames))

    def total_energy_counts(self) -> EnergyCounts:
        """Summed energy event counts over all frames."""
        counts = EnergyCounts()
        for frame in self.frames:
            counts = counts.merged_with(frame.energy_counts)
        return counts

    def speedup_over(self, baseline: "RunResult") -> float:
        """Execution-time speedup of this run versus a baseline run."""
        if self.total_cycles == 0:
            raise ValueError("run has no cycles")
        return baseline.total_cycles / self.total_cycles


class GPUSimulator:
    """Simulates a configured GPU over a sequence of frame traces."""

    def __init__(self, config: GPUConfig,
                 scheduler: Optional[TileScheduler] = None,
                 ideal_memory: bool = False,
                 energy_model: Optional[EnergyModel] = None,
                 name: str = "",
                 batched: bool = True):
        self.config = config
        self.scheduler = scheduler or ZOrderScheduler()
        self.name = name or type(self.scheduler).__name__
        self.driver = FrameDriver(config, self.scheduler,
                                  ideal_memory=ideal_memory,
                                  energy_model=energy_model,
                                  batched=batched)

    def run_frame(self, trace: FrameTrace) -> FrameResult:
        """Simulate one frame and return its FrameResult."""
        return self.driver.run_frame(trace)

    def run(self, traces: Sequence[FrameTrace],
            validate: bool = True) -> RunResult:
        """Simulate a trace sequence and return the aggregate RunResult.

        This is the simulator's trust boundary: with ``validate`` (the
        default) the configuration's cross-field invariants and every
        trace's structural invariants are checked up front
        (:meth:`GPUConfig.validate` / :meth:`FrameTrace.validate`), so
        corrupt caches or hand-built traces fail fast with a
        :class:`~repro.errors.ConfigValidationError` /
        :class:`~repro.errors.TraceFormatError` instead of producing
        silently wrong timing.  A failure *inside* the timing model is
        wrapped in :class:`~repro.errors.SimulationError` with the frame
        index attached (the original exception chained as its cause).
        """
        if validate:
            self.config.validate()
            for trace in traces:
                trace.validate()
        result = RunResult(config_name=self.name,
                           frequency_hz=self.config.frequency_hz)
        telemetry = HUB.enabled
        if telemetry:
            HUB.emit(PhaseBegin(name=f"run:{self.name}",
                                ts=self.driver.clock.cycles))
        for trace in traces:
            try:
                result.frames.append(self.driver.run_frame(trace))
            except ReproError:
                raise
            except Exception as exc:
                raise SimulationError(
                    f"{self.name or 'simulator'}: frame "
                    f"{trace.frame_index} failed: {exc!r}") from exc
        if telemetry:
            HUB.emit(PhaseEnd(name=f"run:{self.name}",
                              ts=self.driver.clock.cycles))
        return result
