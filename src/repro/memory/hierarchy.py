"""Shared memory-side of the hierarchy: the L2 cache in front of DRAM.

Every L1 miss in the system — texture L1s of all Raster Units, the Tile
cache of the Tile Fetcher, the Vertex cache of the Geometry Pipeline —
funnels through one :class:`SharedMemory` instance, so cross-Raster-Unit
interference in the L2 and contention in DRAM are real simulated effects,
not analytical approximations.
"""

from __future__ import annotations

from ..config import CacheConfig, GPUConfig
from .cache import Cache
from .dram import DRAM
from .traffic import TrafficBreakdown, WRITEBACK


class SharedMemory:
    """The shared L2 + DRAM pair, with per-source traffic accounting."""

    def __init__(self, config: GPUConfig):
        self.config = config
        self.l2 = Cache(config.l2_cache, name="L2")
        self.dram = DRAM(config.dram, interval_cycles=config.interval_cycles)
        self.traffic = TrafficBreakdown()

    def access(self, line: int, source: str, write: bool = False) -> str:
        """Issue one L2-level access; returns 'l2' or 'dram'.

        On an L2 miss the request goes to DRAM (tagged with ``source``);
        dirty L2 victims are written back to DRAM as well.
        """
        hit = self.l2.lookup(line, write=write)
        level = "l2"
        if not hit:
            self.dram.request(line, write=False)
            self.traffic.add(source)
            level = "dram"
        for victim in self.l2.drain_writebacks():
            self.dram.request(victim, write=True)
            self.traffic.add(WRITEBACK)
        return level

    def stream_to_dram(self, line: int, source: str,
                       write: bool = True) -> None:
        """Bypass the L2 entirely (streaming Color Buffer flush traffic)."""
        self.dram.request(line, write=write)
        self.traffic.add(source)

    def access_latency(self, level: str) -> float:
        """Cycles a demand access observes when served at ``level``."""
        if level == "l2":
            return float(self.config.l2_cache.latency_cycles)
        if level == "dram":
            return (self.config.l2_cache.latency_cycles
                    + self.dram.loaded_latency)
        raise ValueError(f"unknown level {level!r}")

    def end_interval(self) -> None:
        """Close the DRAM's current accounting interval."""
        self.dram.end_interval()

    def reset(self) -> None:
        """Clear the L2, the DRAM and the traffic breakdown."""
        self.l2.reset()
        self.dram.reset()
        self.traffic = TrafficBreakdown()


def make_texture_l1(config: GPUConfig, name: str = "TexL1") -> Cache:
    """The texture L1 of one Raster Unit.

    Table I gives each shader core a private 32 KB texture cache; the
    model aggregates the cores of a Raster Unit into one cache of
    ``num_cores x 32 KB`` (same total capacity, same ways-per-core).  All
    cores of a unit shade fragments of the *same* tile, so their private
    caches hold near-identical content; aggregating preserves capacity and
    the cross-Raster-Unit replication/locality effects the paper studies
    (Figure 13) while keeping the simulation tractable; see DESIGN.md.
    """
    per_core = config.texture_cache
    aggregated = CacheConfig(
        size_bytes=per_core.size_bytes * config.raster_unit.num_cores,
        ways=per_core.ways * config.raster_unit.num_cores,
        line_bytes=per_core.line_bytes,
        latency_cycles=per_core.latency_cycles,
    )
    return Cache(aggregated, name=name)


def make_tile_cache(config: GPUConfig) -> Cache:
    """The Tile cache used by the Tile Fetcher for Parameter Buffer reads."""
    return Cache(config.tile_cache, name="TileCache")


def make_vertex_cache(config: GPUConfig) -> Cache:
    """The Vertex cache used by the Geometry Pipeline's Vertex Fetcher."""
    return Cache(config.vertex_cache, name="VertexCache")
