"""Shared memory-side of the hierarchy: the L2 cache in front of DRAM.

Every L1 miss in the system — texture L1s of all Raster Units, the Tile
cache of the Tile Fetcher, the Vertex cache of the Geometry Pipeline —
funnels through one :class:`SharedMemory` instance, so cross-Raster-Unit
interference in the L2 and contention in DRAM are real simulated effects,
not analytical approximations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..config import CacheConfig, GPUConfig
from .cache import Cache
from .dram import DRAM
from .traffic import TrafficBreakdown, WRITEBACK


class SharedMemory:
    """The shared L2 + DRAM pair, with per-source traffic accounting."""

    def __init__(self, config: GPUConfig):
        self.config = config
        self.l2 = Cache(config.l2_cache, name="L2")
        self.dram = DRAM(config.dram, interval_cycles=config.interval_cycles)
        self.traffic = TrafficBreakdown()

    def access(self, line: int, source: str, write: bool = False) -> str:
        """Issue one L2-level access; returns 'l2' or 'dram'.

        On an L2 miss the request goes to DRAM (tagged with ``source``);
        dirty L2 victims are written back to DRAM as well.
        """
        hit = self.l2.lookup(line, write=write)
        level = "l2"
        if not hit:
            self.dram.request(line, write=False)
            self.traffic.add(source)
            level = "dram"
        for victim in self.l2.drain_writebacks():
            self.dram.request(victim, write=True)
            self.traffic.add(WRITEBACK)
        return level

    def access_batch(self, lines: Sequence[int], source: str,
                     write: bool = False) -> int:
        """Issue a stream of L2-level accesses; returns the DRAM-miss count.

        Equivalent to calling :meth:`access` once per line, with identical
        L2 LRU state, counters, and DRAM request order: each L2 miss
        issues its demand read first and its dirty victim's writeback
        immediately after, exactly as the scalar path interleaves them.
        """
        for victim in self.l2.drain_writebacks():
            # Stale queue from a caller that bypassed drain; flush it
            # first so this batch's ordering matches the scalar path.
            self.dram.request(victim, write=True)
            self.traffic.add(WRITEBACK)
        misses: List[Tuple[int, Optional[int]]] = []
        self.l2.lookup_batch(lines, write=write, miss_record=misses)
        # lookup_batch queued the dirty victims on pending_writebacks; we
        # re-issue them interleaved from the record instead, so drop them.
        self.l2.pending_writebacks.clear()
        if not misses:
            return 0
        # Inlined DRAM.request row-buffer walk with bound locals: demand
        # read, then that miss's dirty-victim writeback — the exact scalar
        # interleaving, with counters applied in bulk afterwards.
        dram = self.dram
        d_open = dram._open_rows
        d_lpr = dram._lines_per_row
        d_bmask = dram._bank_mask
        d_bbits = dram._bank_bits
        d_hit = dram._hit_service
        d_miss = dram._miss_service
        svc_sum = dram._service_cycles_sum
        row_hits = row_misses = 0
        writebacks = 0
        for line, victim in misses:
            row = line // d_lpr
            bank = row & d_bmask
            row_of_bank = row >> d_bbits
            if d_open[bank] == row_of_bank:
                row_hits += 1
                svc_sum += d_hit
            else:
                row_misses += 1
                d_open[bank] = row_of_bank
                svc_sum += d_miss
            if victim is not None:
                writebacks += 1
                row = victim // d_lpr
                bank = row & d_bmask
                row_of_bank = row >> d_bbits
                if d_open[bank] == row_of_bank:
                    row_hits += 1
                    svc_sum += d_hit
                else:
                    row_misses += 1
                    d_open[bank] = row_of_bank
                    svc_sum += d_miss
        n_misses = len(misses)
        requests = n_misses + writebacks
        dram._service_cycles_sum = svc_sum
        dram._service_count += requests
        dram._interval_requests += requests
        stats = dram.stats
        stats.reads += n_misses
        stats.writes += writebacks
        stats.row_hits += row_hits
        stats.row_misses += row_misses
        stats.activations += row_misses
        self.traffic.add(source, n_misses)
        if writebacks:
            self.traffic.add(WRITEBACK, writebacks)
        return n_misses

    def stream_to_dram(self, line: int, source: str,
                       write: bool = True) -> None:
        """Bypass the L2 entirely (streaming Color Buffer flush traffic)."""
        self.dram.request(line, write=write)
        self.traffic.add(source)

    def stream_to_dram_batch(self, lines: Sequence[int], source: str,
                             write: bool = True) -> None:
        """Bypass the L2 for a whole line stream (tile Color Buffer flush)."""
        n = len(lines)
        if not n:
            return
        if n >= 512:
            # Long streams amortize the numpy dispatch: the vectorized
            # bank walk lands the same stats, open rows and service sum
            # (tile flushes are far shorter — they keep the loop below).
            self.dram.request_batch(lines, write=write)
            self.traffic.add(source, n)
            return
        # Inlined DRAM.request row-buffer walk (see access_batch).
        dram = self.dram
        d_open = dram._open_rows
        d_lpr = dram._lines_per_row
        d_bmask = dram._bank_mask
        d_bbits = dram._bank_bits
        d_hit = dram._hit_service
        d_miss = dram._miss_service
        svc_sum = dram._service_cycles_sum
        row_hits = row_misses = 0
        for line in lines:
            row = line // d_lpr
            bank = row & d_bmask
            row_of_bank = row >> d_bbits
            if d_open[bank] == row_of_bank:
                row_hits += 1
                svc_sum += d_hit
            else:
                row_misses += 1
                d_open[bank] = row_of_bank
                svc_sum += d_miss
        dram._service_cycles_sum = svc_sum
        dram._service_count += n
        dram._interval_requests += n
        stats = dram.stats
        if write:
            stats.writes += n
        else:
            stats.reads += n
        stats.row_hits += row_hits
        stats.row_misses += row_misses
        stats.activations += row_misses
        self.traffic.add(source, n)

    def publish_metrics(self, registry) -> None:
        """Mirror the per-source traffic breakdown into a metrics registry.

        Gauges under ``traffic.*`` (absolute running totals, like
        :meth:`repro.memory.cache.CacheStats.publish`); purely
        observational.
        """
        for source, count in self.traffic.counts.items():
            registry.gauge(f"traffic.{source}").set(count)
        registry.gauge("traffic.total").set(self.traffic.total)
        registry.gauge("traffic.raster_total").set(
            self.traffic.raster_total())

    def access_latency(self, level: str) -> float:
        """Cycles a demand access observes when served at ``level``."""
        if level == "l2":
            return float(self.config.l2_cache.latency_cycles)
        if level == "dram":
            return (self.config.l2_cache.latency_cycles
                    + self.dram.loaded_latency)
        raise ValueError(f"unknown level {level!r}")

    def end_interval(self) -> None:
        """Close the DRAM's current accounting interval."""
        self.dram.end_interval()

    def reset(self) -> None:
        """Clear the L2, the DRAM and the traffic breakdown."""
        self.l2.reset()
        self.dram.reset()
        self.traffic = TrafficBreakdown()


def make_texture_l1(config: GPUConfig, name: str = "TexL1") -> Cache:
    """The texture L1 of one Raster Unit.

    Table I gives each shader core a private 32 KB texture cache; the
    model aggregates the cores of a Raster Unit into one cache of
    ``num_cores x 32 KB`` (same total capacity, same ways-per-core).  All
    cores of a unit shade fragments of the *same* tile, so their private
    caches hold near-identical content; aggregating preserves capacity and
    the cross-Raster-Unit replication/locality effects the paper studies
    (Figure 13) while keeping the simulation tractable; see DESIGN.md.
    """
    per_core = config.texture_cache
    aggregated = CacheConfig(
        size_bytes=per_core.size_bytes * config.raster_unit.num_cores,
        ways=per_core.ways * config.raster_unit.num_cores,
        line_bytes=per_core.line_bytes,
        latency_cycles=per_core.latency_cycles,
    )
    return Cache(aggregated, name=name)


def make_tile_cache(config: GPUConfig) -> Cache:
    """The Tile cache used by the Tile Fetcher for Parameter Buffer reads."""
    return Cache(config.tile_cache, name="TileCache")


def make_vertex_cache(config: GPUConfig) -> Cache:
    """The Vertex cache used by the Geometry Pipeline's Vertex Fetcher."""
    return Cache(config.vertex_cache, name="VertexCache")
