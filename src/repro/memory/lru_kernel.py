"""Array-based set-associative LRU cache kernel.

:class:`ArrayCache` keeps the cache state as dense numpy arrays — a
``(num_sets, ways)`` tag matrix, a stamp matrix encoding LRU order, and
a dirty-bit matrix — and services an entire line stream per call:
``np.unique``-compressed stream, one vectorized tag match for every
distinct line, bulk statistics.  It is *observably bit-identical* to
the dict-based :class:`~repro.memory.cache.Cache`: same hit counts,
same eviction victims in the same order, same ``pending_writebacks``
and ``miss_record`` contents, same ``resident_lines()`` LRU order.

The vectorized path is only legal when the batch satisfies two
trace-checkable conditions (violations fall back to an exact per-line
loop over the same arrays):

* **set-safety** — no cache set sees more than ``ways`` distinct lines
  in the batch, which guarantees a line once touched is never evicted
  within the batch (so duplicate occurrences are hits) and that every
  eviction still finds an untouched entry;
* **victim-safety** — for each set, the ``e`` oldest resident entries
  (``e`` = evictions the batch will cause there) contain no line the
  batch is about to touch.  Then the victims are exactly those entries
  in age order, independent of how touches and misses interleave, and
  hit/miss classification against the *entry* state is exact.

Where the dict cache wins on interval-sized batches (tens of lines —
numpy dispatch overhead dominates there, which is why the simulator's
inner loop keeps dicts), :class:`ArrayCache` wins on long streams:
the per-line Python cost is replaced by a handful of array ops.  See
``docs/performance.md`` for the measured crossover.

Line addresses must be non-negative (``-1`` is the empty-slot tag).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..compat import require_numpy
from ..config import CacheConfig
from ..errors import ConfigValidationError
from .cache import Cache, CacheStats

np = require_numpy()

_EMPTY = -1
_BIG = np.iinfo(np.int64).max


class ArrayCache(Cache):
    """Set-associative LRU cache backed by numpy state arrays.

    Drop-in behavioural replacement for :class:`Cache` (same public
    surface, same observable semantics); ``min_batch`` sets the stream
    length below which the vectorized kernel is not worth its dispatch
    overhead and the exact per-line loop runs instead.
    """

    def __init__(self, config: CacheConfig, name: str = "array-cache",
                 min_batch: int = 4096):
        config.validate()
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.ways = config.ways
        self._set_mask = self.num_sets - 1
        self.min_batch = min_batch
        shape = (self.num_sets, self.ways)
        self._tags = np.full(shape, _EMPTY, dtype=np.int64)
        self._stamps = np.zeros(shape, dtype=np.int64)
        self._dirty_mask = np.zeros(shape, dtype=bool)
        #: Monotonic access counter; per-set LRU order = ascending stamp.
        self._clock = 0
        self.pending_writebacks: List[int] = []
        self.stats = CacheStats()

    # -- observable state ---------------------------------------------------
    @property
    def _dirty(self) -> set:
        """Dirty resident lines (same view the dict cache keeps as a set)."""
        live = self._dirty_mask & (self._tags != _EMPTY)
        return set(self._tags[live].tolist())

    def contains(self, line: int) -> bool:
        """True when the line is resident."""
        return bool((self._tags[line & self._set_mask] == line).any())

    def resident_lines(self) -> List[int]:
        """All resident line addresses, LRU-to-MRU within each set."""
        tags = self._tags
        stamps = self._stamps
        occupied = tags != _EMPTY
        out: List[int] = []
        for index in np.flatnonzero(occupied.any(axis=1)).tolist():
            row = occupied[index]
            order = np.argsort(np.where(row, stamps[index], _BIG),
                               kind="stable")
            out.extend(tags[index][order[:int(row.sum())]].tolist())
        return out

    def flush(self) -> List[int]:
        """Invalidate everything; returns dirty lines needing writeback."""
        live = self._dirty_mask & (self._tags != _EMPTY)
        dirty = sorted(self._tags[live].tolist())
        self.stats.writebacks += len(dirty)
        self._tags.fill(_EMPTY)
        self._stamps.fill(0)
        self._dirty_mask.fill(False)
        return dirty

    def reset(self) -> None:
        """Invalidate contents and zero the statistics."""
        self._tags.fill(_EMPTY)
        self._stamps.fill(0)
        self._dirty_mask.fill(False)
        self._clock = 0
        self.pending_writebacks.clear()
        self.stats.reset()

    # -- access paths -------------------------------------------------------
    def lookup(self, line: int, write: bool = False) -> bool:
        """Access one line; returns True on hit."""
        return self._scalar((line,), write, None) == 1

    def lookup_batch(self, lines: Iterable[int], write: bool = False,
                     miss_record: Optional[
                         List[Tuple[int, Optional[int]]]] = None) -> int:
        """Access a whole line stream in one call; returns the hit count.

        Streams of at least ``min_batch`` lines go through the
        vectorized kernel when its safety conditions hold (see module
        docstring); everything else runs the exact per-line loop.
        """
        seq = (lines if isinstance(lines, (list, tuple, np.ndarray))
               else list(lines))
        if len(seq) >= self.min_batch:
            hits = self._kernel(seq, write, miss_record)
            if hits is not None:
                return hits
        return self._scalar(seq, write, miss_record)

    def _scalar(self, seq: Sequence[int], write: bool,
                record: Optional[list]) -> int:
        """Exact per-line reference walk over the array state."""
        tags = self._tags
        stamps = self._stamps
        dirty = self._dirty_mask
        mask = self._set_mask
        pending = self.pending_writebacks
        clock = self._clock
        hits = evictions = writebacks = 0
        if isinstance(seq, np.ndarray):
            seq = seq.tolist()  # plain ints, so miss_record stays exact
        for line in seq:
            index = line & mask
            trow = tags[index]
            eq = trow == line
            if eq.any():
                way = int(eq.argmax())
                hits += 1
            else:
                empty = trow == _EMPTY
                victim = None
                if empty.any():
                    way = int(empty.argmax())
                else:
                    way = int(stamps[index].argmin())
                    evictions += 1
                    if dirty[index, way]:
                        dirty[index, way] = False
                        writebacks += 1
                        victim = int(trow[way])
                        pending.append(victim)
                tags[index, way] = line
                if record is not None:
                    record.append((line, victim))
            stamps[index, way] = clock
            clock += 1
            if write:
                dirty[index, way] = True
        self._clock = clock
        n = len(seq)
        stats = self.stats
        stats.accesses += n
        stats.hits += hits
        stats.misses += n - hits
        stats.evictions += evictions
        stats.writebacks += writebacks
        return hits

    def _kernel(self, seq: Sequence[int], write: bool,
                record: Optional[list]) -> Optional[int]:
        """Vectorized whole-stream walk; None when a safety check fails."""
        arr = np.asarray(seq, dtype=np.int64)
        n = arr.shape[0]
        if n == 0:
            return 0
        if int(arr.min()) < 0:
            raise ConfigValidationError(
                f"{self.name}: line addresses must be non-negative")
        # np.unique-compressed stream in first-occurrence order, with
        # each line's last occurrence (final LRU rank within its set).
        values, first = np.unique(arr, return_index=True)
        _, rlast = np.unique(arr[::-1], return_index=True)
        order = np.argsort(first, kind="stable")
        uniq = values[order]
        last = (n - 1 - rlast)[order]
        nuniq = uniq.shape[0]
        setid = uniq & self._set_mask
        usets, uset_inv, uset_count = np.unique(
            setid, return_inverse=True, return_counts=True)
        ways = self.ways
        if int(uset_count.max()) > ways:
            return None  # set-safety violated
        tags = self._tags
        stamps = self._stamps
        dirty = self._dirty_mask
        set_tags = tags[usets]                      # (S, ways) snapshot
        set_stamps = stamps[usets]
        # Vectorized tag match of every distinct line against its set.
        hit_mat = tags[setid] == uniq[:, None]      # (U, ways)
        hit = hit_mat.any(axis=1)
        hit_way = hit_mat.argmax(axis=1)
        miss = ~hit
        nmiss = int(miss.sum())
        hits_total = int(hit.sum()) + (n - nuniq)   # duplicates all hit
        nsets = usets.shape[0]
        miss_per_set = np.bincount(uset_inv[miss], minlength=nsets)
        free = ways - (set_tags != _EMPTY).sum(axis=1)
        evict = miss_per_set - free
        np.maximum(evict, 0, out=evict)
        # Which (set, way) slots the batch touches (hit candidates).
        cand = np.zeros((nsets, ways), dtype=bool)
        cand[uset_inv[hit], hit_way[hit]] = True
        if evict.any():
            # Victim-safety: the evict_s oldest residents of each set
            # must contain no candidate, otherwise victim identity
            # depends on how touches and misses interleave.
            age_order = np.argsort(
                np.where(set_tags == _EMPTY, _BIG, set_stamps),
                axis=1, kind="stable")
            cand_by_age = np.take_along_axis(cand, age_order, axis=1)
            rank = np.arange(ways)[None, :]
            if (cand_by_age & (rank < evict[:, None])).any():
                return None  # victim-safety violated
        if nmiss:
            # Per-set slot order for misses: empty ways first, then the
            # victims in age order; candidate ways are never reachable
            # (misses per set never exceed empties + victims).
            slot_key = np.where(set_tags == _EMPTY, np.int64(-1),
                                np.where(cand, _BIG, set_stamps))
            slot_order = np.argsort(slot_key, axis=1, kind="stable")
            miss_sets = uset_inv[miss]
            # Rank of each miss within its set (first-occurrence order).
            by_set = np.argsort(miss_sets, kind="stable")
            sorted_sets = miss_sets[by_set]
            starts = np.flatnonzero(
                np.r_[True, sorted_sets[1:] != sorted_sets[:-1]])
            group_len = np.diff(np.append(starts, nmiss))
            rank_sorted = np.arange(nmiss) - np.repeat(starts, group_len)
            rank = np.empty(nmiss, dtype=np.int64)
            rank[by_set] = rank_sorted
            miss_way = slot_order[miss_sets, rank]
            real_sets = setid[miss]
            old = tags[real_sets, miss_way].copy()
            evicted = old != _EMPTY
            dirty_victim = np.zeros(nmiss, dtype=bool)
            dirty_victim[evicted] = dirty[real_sets[evicted],
                                          miss_way[evicted]]
            dirty[real_sets, miss_way] = False
            tags[real_sets, miss_way] = uniq[miss]
            # Misses are already in stream (first-occurrence) order, so
            # writebacks and the miss record come out in scalar order.
            self.pending_writebacks.extend(old[dirty_victim].tolist())
            if record is not None:
                rec_append = record.append
                for line, victim, is_dirty in zip(uniq[miss].tolist(),
                                                  old.tolist(),
                                                  dirty_victim.tolist()):
                    rec_append((line, victim if is_dirty else None))
            n_evictions = int(evicted.sum())
            n_writebacks = int(dirty_victim.sum())
        else:
            n_evictions = n_writebacks = 0
        # Final stamps: every touched line ends ordered by its last
        # occurrence, behind all untouched survivors (older clock).
        way_all = hit_way
        if nmiss:
            way_all = np.where(miss, 0, hit_way)
            way_all[miss] = miss_way
        stamps[setid, way_all] = self._clock + last
        if write:
            dirty[setid, way_all] = True
        self._clock += n
        stats = self.stats
        stats.accesses += n
        stats.hits += hits_total
        stats.misses += nmiss
        stats.evictions += n_evictions
        stats.writebacks += n_writebacks
        return hits_total
