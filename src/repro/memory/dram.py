"""LPDDR4-like main-memory model.

Two concerns are modeled, both load-bearing for the paper's mechanism:

1. **Row-buffer behaviour** — each bank remembers its open row; a request
   hitting the open row costs ``row_hit_cycles`` (50), a conflict costs
   ``row_miss_cycles`` (100, Table I) and counts an activation for the
   energy model.

2. **Bandwidth-dependent queueing** — the paper's central premise: "the
   response time of memory increases asymptotically as the utilization
   factor of the memory bandwidth approaches 100%".  The model advances in
   fixed intervals; each interval's demand (requests issued plus backlog
   carried from previous intervals) is served up to the configured
   bandwidth, and the *loaded* latency seen by the next interval is the
   unloaded service time scaled by an M/M/1-style ``1/(1-rho)`` factor,
   capped at ``max_queue_factor``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..compat import require_numpy
from ..config import CACHE_LINE_BYTES, DRAMConfig
from ..telemetry import DRAM_BURST_BUCKETS, DRAMSample, HUB

np = require_numpy()


@dataclass
class DRAMStats:
    """Counters and per-interval series of the DRAM model."""
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    #: Activations = row misses (a new row had to be opened).
    activations: int = 0
    #: Requests per interval, appended once per end_interval().
    interval_requests: List[int] = field(default_factory=list)
    #: Utilization (0..1+) per interval.
    interval_utilization: List[float] = field(default_factory=list)
    #: Loaded latency per interval (cycles).
    interval_latency: List[float] = field(default_factory=list)

    @property
    def accesses(self) -> int:
        """Total reads plus writes."""
        return self.reads + self.writes

    @property
    def row_hit_ratio(self) -> float:
        """Fraction of requests that hit an open row."""
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


class DRAM:
    """Interval-stepped main memory with banks and a queueing latency."""

    def __init__(self, config: DRAMConfig, interval_cycles: int = 1000):
        config.validate()
        self.config = config
        self.interval_cycles = interval_cycles
        self._lines_per_row = config.row_bytes // CACHE_LINE_BYTES
        self._bank_mask = config.num_banks - 1
        self._bank_bits = max(config.num_banks.bit_length() - 1, 0)
        # Hot-path constants, bound once (config is immutable): the
        # service-cycle floats issued per request and the per-interval
        # service capacity.  Callers on the batched fast path inline the
        # row-buffer walk against these exact values.
        self._hit_service = float(config.row_hit_cycles)
        self._miss_service = float(config.row_miss_cycles)
        self._capacity = config.requests_per_cycle * interval_cycles
        self._open_rows: List[int] = [-1] * config.num_banks
        self._interval_requests = 0
        self._backlog = 0.0
        self._loaded_latency = float(config.row_hit_cycles)
        self._service_cycles_sum = 0.0
        self._service_count = 0
        #: Lazily-bound telemetry histogram (None while disabled).
        self._m_burst = None
        self.stats = DRAMStats()

    # -- request path ----------------------------------------------------
    def request(self, line: int, write: bool = False) -> float:
        """Issue one line request; returns its *unloaded* service cycles.

        Bank and row are derived from the line address: consecutive lines
        fill a row, rows interleave across banks (standard mapping, keeps
        streaming accesses row-friendly).
        """
        row = line // self._lines_per_row
        bank = row & self._bank_mask
        row_of_bank = row >> self._bank_bits
        stats = self.stats
        if self._open_rows[bank] == row_of_bank:
            stats.row_hits += 1
            service = self._hit_service
        else:
            stats.row_misses += 1
            stats.activations += 1
            self._open_rows[bank] = row_of_bank
            service = self._miss_service
        if write:
            stats.writes += 1
        else:
            stats.reads += 1
        self._interval_requests += 1
        self._service_cycles_sum += service
        self._service_count += 1
        return service

    def request_batch(self, lines, write: bool = False) -> float:
        """Issue a whole line stream in order; returns summed service cycles.

        Vectorized equivalent of calling :meth:`request` per line: the
        per-bank row walk is solved with one stable sort (grouping the
        stream by bank keeps each bank's subsequence in stream order, so
        "hits the open row" reduces to comparing neighbours), and the
        statistics, open-row state and service-cycle accounting land
        bit-identically.  With integer-valued service cycles (the
        shipped configurations) the bulk float sum is exact in any
        order; otherwise the sum is accumulated element by element in
        stream order, exactly as the scalar path would.
        """
        arr = np.asarray(lines, dtype=np.int64)
        n = arr.shape[0]
        if n == 0:
            return 0.0
        rows = arr // self._lines_per_row
        banks = rows & self._bank_mask
        rob = rows >> self._bank_bits
        by_bank = np.argsort(banks, kind="stable")
        bank_sorted = banks[by_bank]
        rob_sorted = rob[by_bank]
        group_first = np.empty(n, dtype=bool)
        group_first[0] = True
        np.not_equal(bank_sorted[1:], bank_sorted[:-1],
                     out=group_first[1:])
        same_as_prev = np.empty(n, dtype=bool)
        same_as_prev[0] = False
        np.equal(rob_sorted[1:], rob_sorted[:-1], out=same_as_prev[1:])
        open_rows = self._open_rows
        open_arr = np.asarray(open_rows, dtype=np.int64)
        hit_sorted = np.where(group_first,
                              open_arr[bank_sorted] == rob_sorted,
                              same_as_prev)
        row_hits = int(hit_sorted.sum())
        row_misses = n - row_hits
        # Each bank's open row after the batch is its last row visited;
        # mutate the list in place (hot-path tuples bind the object).
        group_last = np.empty(n, dtype=bool)
        group_last[:-1] = group_first[1:]
        group_last[-1] = True
        for bank, row_of_bank in zip(bank_sorted[group_last].tolist(),
                                     rob_sorted[group_last].tolist()):
            open_rows[bank] = row_of_bank
        hit_service = self._hit_service
        miss_service = self._miss_service
        if hit_service.is_integer() and miss_service.is_integer():
            total = row_hits * hit_service + row_misses * miss_service
            self._service_cycles_sum += total
        else:
            hit_stream = np.empty(n, dtype=bool)
            hit_stream[by_bank] = hit_sorted
            total = 0.0
            running = self._service_cycles_sum
            for is_hit in hit_stream.tolist():
                service = hit_service if is_hit else miss_service
                total += service
                running += service  # scalar-order rounding, bit-exact
            self._service_cycles_sum = running
        stats = self.stats
        stats.row_hits += row_hits
        stats.row_misses += row_misses
        stats.activations += row_misses
        if write:
            stats.writes += n
        else:
            stats.reads += n
        self._interval_requests += n
        self._service_count += n
        return total

    # -- interval stepping -------------------------------------------------
    @property
    def loaded_latency(self) -> float:
        """Latency (cycles) a new request would observe this interval."""
        return self._loaded_latency

    @property
    def capacity_per_interval(self) -> float:
        """Line requests servable per interval at full bandwidth."""
        return self._capacity

    def end_interval(self) -> None:
        """Close the current interval and derive the next loaded latency."""
        capacity = self._capacity
        requests = self._interval_requests
        if not requests and not self._backlog and not self._service_count \
                and capacity:
            # Idle interval: demand and backlog are zero, so the general
            # derivation below reduces exactly to the unloaded hit
            # latency (utilization 0, queue factor clamped at >= 1).
            max_queue_factor = self.config.max_queue_factor
            loaded = self._hit_service * (1.0 if max_queue_factor >= 1.0
                                          else max_queue_factor)
            self._loaded_latency = loaded
            stats = self.stats
            stats.interval_requests.append(0)
            stats.interval_utilization.append(0.0)
            stats.interval_latency.append(loaded)
            if HUB.enabled:
                self._emit_interval(0, 0.0, loaded)
            return
        demand = requests + self._backlog
        served = min(demand, capacity)
        backlog = demand - served
        self._backlog = backlog
        utilization = served / capacity if capacity else 1.0
        count = self._service_count
        if count:
            unloaded = self._service_cycles_sum / count
        else:
            unloaded = self._hit_service
        max_queue_factor = self.config.max_queue_factor
        queue_factor = 1.0 / max(1.0 - utilization, 1e-9)
        queue_factor = min(queue_factor, max_queue_factor)
        backlog_delay = (backlog / self.config.requests_per_cycle
                         if backlog else 0.0)
        loaded = min(unloaded * queue_factor + backlog_delay,
                     unloaded * max_queue_factor)
        self._loaded_latency = loaded
        stats = self.stats
        stats.interval_requests.append(requests)
        stats.interval_utilization.append(
            min(demand / capacity if capacity else 1.0, 2.0))
        stats.interval_latency.append(loaded)
        self._interval_requests = 0
        self._service_cycles_sum = 0.0
        self._service_count = 0
        if HUB.enabled:
            self._emit_interval(requests, utilization, loaded)

    def _emit_interval(self, requests: int, utilization: float,
                       loaded: float) -> None:
        """Telemetry tail of ``end_interval`` (HUB-enabled runs only).

        Interval index x interval length approximates the global cycle
        clock (good enough for a counter track); the burst histogram
        feeds the DRAM-demand flatness analysis (Fig. 7).
        """
        histogram = self._m_burst
        if histogram is None:
            histogram = self._m_burst = HUB.metrics.histogram(
                "dram.burst_requests", DRAM_BURST_BUCKETS)
        histogram.observe(requests)
        HUB.emit(DRAMSample(
            ts=len(self.stats.interval_requests) * self.interval_cycles,
            requests=requests, utilization=utilization,
            latency_cycles=loaded))

    @property
    def backlog(self) -> float:
        """Requests carried over from saturated intervals."""
        return self._backlog

    def drain_cycles(self) -> int:
        """Cycles needed to drain the remaining backlog at full bandwidth."""
        if self._backlog <= 0:
            return 0
        return int(self._backlog / self.config.requests_per_cycle) + 1

    def reset(self) -> None:
        """Clear all state and statistics."""
        self._open_rows = [-1] * self.config.num_banks
        self._interval_requests = 0
        self._backlog = 0.0
        self._loaded_latency = float(self.config.row_hit_cycles)
        self._service_cycles_sum = 0.0
        self._service_count = 0
        self.stats = DRAMStats()
