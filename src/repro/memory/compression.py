"""Frame-buffer compression (AFBC-style) — an optional extension.

Mobile GPUs compress the Color Buffer on its way to the Frame Buffer
(ARM's AFBC and friends); the paper's related work discusses compression
as the orthogonal way to cut DRAM traffic.  This module provides a simple
content-aware model of lossless block compression so ablations can ask
"how much of LIBRA's benefit survives when FB traffic is already
compressed?".

The model works on real pixels when available (entropy-style estimate on
4x4 blocks) and otherwise falls back to a configurable fixed ratio, which
is how the timing-only path uses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

#: Pixels per side of a compression block (AFBC uses 4x4 superblocks).
BLOCK = 4


@dataclass
class CompressionStats:
    """Aggregate effect of compression on flush traffic."""

    tiles_compressed: int = 0
    lines_before: int = 0
    lines_after: int = 0

    @property
    def ratio(self) -> float:
        """Compressed share of the original traffic (lower is better)."""
        if self.lines_before == 0:
            return 1.0
        return self.lines_after / self.lines_before


class FrameBufferCompressor:
    """Models lossless FB compression at tile-flush granularity."""

    def __init__(self, fallback_ratio: float = 0.55,
                 minimum_ratio: float = 0.25):
        if not 0.0 < fallback_ratio <= 1.0:
            raise ValueError("fallback ratio must be in (0, 1]")
        if not 0.0 < minimum_ratio <= fallback_ratio:
            raise ValueError("minimum ratio must be in (0, fallback]")
        self.fallback_ratio = fallback_ratio
        self.minimum_ratio = minimum_ratio
        self.stats = CompressionStats()

    def compress_flush(self, lines: List[int],
                       pixels: Optional[np.ndarray] = None) -> List[int]:
        """Reduce a tile flush's line list according to its content.

        Returns a prefix of ``lines`` (compression writes fewer, still
        contiguous-ish lines).  With ``pixels`` given, the ratio comes
        from block uniformity; without, the fallback ratio applies.
        """
        if not lines:
            return lines
        ratio = (self.estimate_ratio(pixels) if pixels is not None
                 else self.fallback_ratio)
        keep = max(int(round(len(lines) * ratio)), 1)
        self.stats.tiles_compressed += 1
        self.stats.lines_before += len(lines)
        self.stats.lines_after += keep
        return lines[:keep]

    def estimate_ratio(self, pixels: np.ndarray) -> float:
        """Content-aware compressibility of a tile, in (0, 1].

        Uniform 4x4 blocks compress to a single color record; blocks with
        low variance compress well; noisy blocks do not.  The estimate is
        the mean per-block cost, floored at ``minimum_ratio`` (headers
        are never free).
        """
        if pixels.ndim != 3 or pixels.shape[2] < 3:
            raise ValueError("pixels must be (H, W, C>=3)")
        height, width = pixels.shape[:2]
        by = height // BLOCK
        bx = width // BLOCK
        if by == 0 or bx == 0:
            return self.fallback_ratio
        trimmed = pixels[:by * BLOCK, :bx * BLOCK, :3]
        blocks = trimmed.reshape(by, BLOCK, bx, BLOCK, 3)
        spans = blocks.max(axis=(1, 3)) - blocks.min(axis=(1, 3))
        block_span = spans.max(axis=-1)  # (by, bx) color span per block
        # Uniform block -> ~1/16 cost (one color); full-span block -> 1.
        per_block = np.clip(block_span / 0.5, 1.0 / 16.0, 1.0)
        ratio = float(per_block.mean())
        return max(ratio, self.minimum_ratio)
