"""Memory hierarchy substrate: caches, DRAM, shared L2 wiring, traffic."""

from .cache import Cache, CacheStats, replication
from .dram import DRAM, DRAMStats
from .lru_kernel import ArrayCache
from .hierarchy import (SharedMemory, make_texture_l1, make_tile_cache,
                        make_vertex_cache)
from .traffic import (FRAMEBUFFER, GEOMETRY, PARAMETER, SOURCES, TEXTURE,
                      WRITEBACK, TrafficBreakdown)

__all__ = [
    "ArrayCache",
    "Cache",
    "CacheStats",
    "replication",
    "DRAM",
    "DRAMStats",
    "SharedMemory",
    "make_texture_l1",
    "make_tile_cache",
    "make_vertex_cache",
    "TrafficBreakdown",
    "SOURCES",
    "GEOMETRY",
    "PARAMETER",
    "TEXTURE",
    "FRAMEBUFFER",
    "WRITEBACK",
]
