"""Set-associative cache simulator with LRU replacement.

This is the workhorse of the memory model: every texture, tile, vertex and
L2 access in the timing simulator goes through instances of
:class:`Cache`.  The implementation favors speed (plain lists per set,
MRU-at-the-end ordering) because experiment runs push hundreds of
thousands of accesses per frame through it.

Write policy is write-back / write-allocate; dirty evictions are queued on
``pending_writebacks`` for the caller to drain into the next level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..config import CacheConfig


@dataclass
class CacheStats:
    """Counters exposed by every cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    #: Extra hits accounted analytically (see Cache.record_repeat_hits).
    repeat_hits: int = 0

    @property
    def hit_ratio(self) -> float:
        """Line-grain hit ratio (repeat hits excluded — see Cache notes)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def hit_ratio_with_repeats(self) -> float:
        """Hit ratio counting the analytically-accounted repeat hits too."""
        total = self.accesses + self.repeat_hits
        if total == 0:
            return 0.0
        return (self.hits + self.repeat_hits) / total

    @property
    def miss_ratio(self) -> float:
        """1 - hit_ratio."""
        return 1.0 - self.hit_ratio

    def reset(self) -> None:
        """Zero all counters."""
        self.accesses = self.hits = self.misses = 0
        self.evictions = self.writebacks = self.repeat_hits = 0

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        """Element-wise sum of two counter sets."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            writebacks=self.writebacks + other.writebacks,
            repeat_hits=self.repeat_hits + other.repeat_hits,
        )


class Cache:
    """One set-associative LRU cache level.

    Addresses are *line* addresses (byte address // line size); the caller
    is responsible for that conversion, which keeps the hot path free of
    divisions.
    """

    def __init__(self, config: CacheConfig, name: str = "cache"):
        config.validate()
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.ways = config.ways
        self._set_mask = self.num_sets - 1
        # Per-set list of line addresses, least-recently-used first.
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self._dirty: set = set()
        #: Dirty victim lines awaiting writeback, drained by the next level.
        self.pending_writebacks: List[int] = []
        self.stats = CacheStats()

    def lookup(self, line: int, write: bool = False) -> bool:
        """Access one line; returns True on hit.

        On a miss the line is allocated; a dirty victim, if any, is
        appended to ``pending_writebacks``.
        """
        stats = self.stats
        stats.accesses += 1
        ways = self._sets[line & self._set_mask]
        try:
            ways.remove(line)
        except ValueError:
            stats.misses += 1
            if len(ways) >= self.ways:
                evicted = ways.pop(0)
                stats.evictions += 1
                if evicted in self._dirty:
                    self._dirty.discard(evicted)
                    stats.writebacks += 1
                    self.pending_writebacks.append(evicted)
            ways.append(line)
            if write:
                self._dirty.add(line)
            return False
        stats.hits += 1
        ways.append(line)
        if write:
            self._dirty.add(line)
        return True

    def record_repeat_hits(self, count: int) -> None:
        """Account ``count`` guaranteed-hit accesses analytically.

        The timing model streams each distinct line of a tile's footprint
        through the cache once; the remaining per-fragment fetches to the
        same lines are temporal re-hits within a tile-sized working set and
        are charged here without simulating each one individually.
        """
        if count < 0:
            raise ValueError("repeat hit count must be non-negative")
        self.stats.repeat_hits += count

    def drain_writebacks(self) -> List[int]:
        """Return and clear the pending dirty-victim lines."""
        drained = self.pending_writebacks
        self.pending_writebacks = []
        return drained

    def contains(self, line: int) -> bool:
        """True when the line is resident."""
        return line in self._sets[line & self._set_mask]

    def resident_lines(self) -> List[int]:
        """All resident line addresses (unordered across sets)."""
        out: List[int] = []
        for ways in self._sets:
            out.extend(ways)
        return out

    def flush(self) -> List[int]:
        """Invalidate everything; returns dirty lines needing writeback."""
        dirty = sorted(self._dirty)
        self.stats.writebacks += len(dirty)
        self._dirty.clear()
        for ways in self._sets:
            ways.clear()
        return dirty

    def reset(self) -> None:
        """Invalidate contents and zero the statistics."""
        for ways in self._sets:
            ways.clear()
        self._dirty.clear()
        self.pending_writebacks.clear()
        self.stats.reset()


def replication(caches: List[Cache]) -> Tuple[int, int]:
    """Measure block replication across sibling caches.

    Returns ``(replicated_lines, total_lines)`` where a line counts as
    replicated once for each extra copy beyond the first.  The paper uses
    this to show LIBRA reduces texture-block replication across Raster
    Units by ~32.5% versus PTR alone (Section V-A.3).
    """
    seen: Dict[int, int] = {}
    total = 0
    for cache in caches:
        for line in cache.resident_lines():
            seen[line] = seen.get(line, 0) + 1
            total += 1
    replicated = sum(count - 1 for count in seen.values() if count > 1)
    return replicated, total
