"""Set-associative cache simulator with LRU replacement.

This is the workhorse of the memory model: every texture, tile, vertex and
L2 access in the timing simulator goes through instances of
:class:`Cache`.  Experiment runs push hundreds of thousands of accesses
per frame through it, so the implementation is built for speed:

* each set is a plain ``dict`` mapping line -> None in LRU-to-MRU
  insertion order (dicts preserve insertion order; a "touch" is an O(1)
  delete + reinsert, the LRU victim is ``next(iter(set_dict))`` — no
  O(ways) ``list.remove`` scans);
* the batched entry point :meth:`Cache.lookup_batch` processes an entire
  line stream in one call with bound locals and one bulk statistics
  update, and is *bit-identical* in observable state (LRU order, stats,
  dirty set, writeback order) to an equivalent sequence of
  :meth:`Cache.lookup` calls.

Write policy is write-back / write-allocate; dirty evictions are queued on
``pending_writebacks`` for the caller to drain into the next level.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import CacheConfig


@dataclass
class CacheStats:
    """Counters exposed by every cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    #: Extra hits accounted analytically (see Cache.record_repeat_hits).
    repeat_hits: int = 0

    @property
    def hit_ratio(self) -> float:
        """Line-grain hit ratio (repeat hits excluded — see Cache notes)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def hit_ratio_with_repeats(self) -> float:
        """Hit ratio counting the analytically-accounted repeat hits too."""
        total = self.accesses + self.repeat_hits
        if total == 0:
            return 0.0
        return (self.hits + self.repeat_hits) / total

    @property
    def miss_ratio(self) -> float:
        """1 - hit_ratio."""
        return 1.0 - self.hit_ratio

    def reset(self) -> None:
        """Zero all counters."""
        self.accesses = self.hits = self.misses = 0
        self.evictions = self.writebacks = self.repeat_hits = 0

    def publish(self, registry, prefix: str) -> None:
        """Mirror the counters into a telemetry metrics registry.

        Gauges under ``<prefix>.*`` (gauges, not counters: these are
        absolute running totals, and publishing is an idempotent
        observation that may happen once per frame or once per run).
        """
        registry.gauge(f"{prefix}.accesses").set(self.accesses)
        registry.gauge(f"{prefix}.hits").set(self.hits)
        registry.gauge(f"{prefix}.misses").set(self.misses)
        registry.gauge(f"{prefix}.evictions").set(self.evictions)
        registry.gauge(f"{prefix}.writebacks").set(self.writebacks)
        registry.gauge(f"{prefix}.hit_ratio").set(self.hit_ratio)

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        """Element-wise sum of two counter sets."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            writebacks=self.writebacks + other.writebacks,
            repeat_hits=self.repeat_hits + other.repeat_hits,
        )


class Cache:
    """One set-associative LRU cache level.

    Addresses are *line* addresses (byte address // line size); the caller
    is responsible for that conversion, which keeps the hot path free of
    divisions.
    """

    def __init__(self, config: CacheConfig, name: str = "cache"):
        config.validate()
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.ways = config.ways
        self._set_mask = self.num_sets - 1
        # Per-set dict of line -> None, least-recently-used first
        # (insertion order); values are unused.  Sets are materialized
        # lazily on first touch: an L2 has thousands of sets and most
        # short runs touch a fraction of them, so allocating them all up
        # front dominates construction cost.  Iteration over sets (for
        # resident_lines/flush) must always go through sorted indices so
        # the observable order matches an eagerly-allocated list.
        self._sets: Dict[int, Dict[int, None]] = defaultdict(dict)
        self._dirty: set = set()
        #: Dirty victim lines awaiting writeback, drained by the next level.
        self.pending_writebacks: List[int] = []
        self.stats = CacheStats()

    def lookup(self, line: int, write: bool = False) -> bool:
        """Access one line; returns True on hit.

        On a miss the line is allocated; a dirty victim, if any, is
        appended to ``pending_writebacks``.  This is a batch of one:
        the touch/victim/writeback policy lives solely in
        :meth:`lookup_batch` so the scalar and batched paths cannot
        drift apart.
        """
        return self.lookup_batch((line,), write=write) == 1

    def lookup_batch(self, lines: Iterable[int], write: bool = False,
                     miss_record: Optional[
                         List[Tuple[int, Optional[int]]]] = None) -> int:
        """Access a whole line stream in one call; returns the hit count.

        Equivalent to ``sum(self.lookup(line, write) for line in lines)``
        but with the per-access Python overhead amortized: locals are
        bound once, statistics are updated once in bulk, and the per-set
        dict operations are inlined.  The resulting LRU order, counters,
        dirty set and ``pending_writebacks`` order are bit-identical to
        the scalar loop.

        When ``miss_record`` is given, a ``(line, victim)`` tuple is
        appended for every miss, in stream order; ``victim`` is the dirty
        line queued for writeback by that miss, or ``None`` when the
        eviction was clean (or no eviction happened).  This lets the next
        level replay the exact scalar interleaving of demand misses and
        writebacks without re-deriving it.
        """
        sets = self._sets
        mask = self._set_mask
        nways = self.ways
        dirty = self._dirty
        pending = self.pending_writebacks
        record = miss_record
        accesses = 0
        hits = 0
        evictions = 0
        writebacks = 0
        for line in lines:
            accesses += 1
            ways = sets[line & mask]
            # Stored values are always None, so a pop with a sentinel
            # default folds the membership test + delete into one hash
            # lookup; None back means hit (and the line was removed).
            if ways.pop(line, 0) is None:
                hits += 1
                ways[line] = None
            else:
                victim = None
                if len(ways) >= nways:
                    evicted = next(iter(ways))
                    del ways[evicted]
                    evictions += 1
                    if evicted in dirty:
                        dirty.discard(evicted)
                        writebacks += 1
                        pending.append(evicted)
                        victim = evicted
                ways[line] = None
                if record is not None:
                    record.append((line, victim))
            if write:
                dirty.add(line)
        stats = self.stats
        stats.accesses += accesses
        stats.hits += hits
        stats.misses += accesses - hits
        stats.evictions += evictions
        stats.writebacks += writebacks
        return hits

    def record_repeat_hits(self, count: int) -> None:
        """Account ``count`` guaranteed-hit accesses analytically.

        The timing model streams each distinct line of a tile's footprint
        through the cache once; the remaining per-fragment fetches to the
        same lines are temporal re-hits within a tile-sized working set and
        are charged here without simulating each one individually.
        """
        if count < 0:
            raise ValueError("repeat hit count must be non-negative")
        self.stats.repeat_hits += count

    def drain_writebacks(self) -> List[int]:
        """Return and clear the pending dirty-victim lines."""
        drained = self.pending_writebacks
        self.pending_writebacks = []
        return drained

    def contains(self, line: int) -> bool:
        """True when the line is resident."""
        ways = self._sets.get(line & self._set_mask)
        return ways is not None and line in ways

    def resident_lines(self) -> List[int]:
        """All resident line addresses, LRU-to-MRU within each set."""
        sets = self._sets
        out: List[int] = []
        for index in sorted(sets):
            out.extend(sets[index])
        return out

    def flush(self) -> List[int]:
        """Invalidate everything; returns dirty lines needing writeback."""
        dirty = sorted(self._dirty)
        self.stats.writebacks += len(dirty)
        self._dirty.clear()
        self._sets.clear()
        return dirty

    def reset(self) -> None:
        """Invalidate contents and zero the statistics."""
        self._sets.clear()
        self._dirty.clear()
        self.pending_writebacks.clear()
        self.stats.reset()


def replication(caches: List[Cache]) -> Tuple[int, int]:
    """Measure block replication across sibling caches.

    Returns ``(replicated_lines, total_lines)`` where a line counts as
    replicated once for each extra copy beyond the first.  The paper uses
    this to show LIBRA reduces texture-block replication across Raster
    Units by ~32.5% versus PTR alone (Section V-A.3).
    """
    seen: Dict[int, int] = {}
    total = 0
    for cache in caches:
        for line in cache.resident_lines():
            seen[line] = seen.get(line, 0) + 1
            total += 1
    replicated = sum(count - 1 for count in seen.values() if count > 1)
    return replicated, total
