"""Exception taxonomy of the experiment-execution layer.

Every error the harness, caches, workload I/O, simulator and CLI raise
deliberately derives from :class:`ReproError`, so callers (the run
supervisor in :mod:`repro.harness`, the ``repro`` CLI) can distinguish
*our* failures from genuine bugs and react per category:

* :class:`CacheCorruptionError` — a cache entry failed its integrity
  check (bad magic, checksum mismatch, truncated pickle).  Transient by
  design: the entry is quarantined and rebuilt.
* :class:`TraceFormatError` — a trace file or in-memory trace violates
  the interchange contract (version skew, missing keys, truncated gzip,
  inconsistent tile grid, negative counters).  Subclasses
  :class:`ValueError` for backwards compatibility.
* :class:`ConfigValidationError` — an inconsistent GPU configuration or
  workload/scene parameter set (NaN, zero area, cross-field violations).
  Also a :class:`ValueError` subclass.
* :class:`BenchmarkTimeoutError` — a supervised benchmark exceeded its
  wall-clock budget.
* :class:`SimulationError` — the timing simulator failed mid-run; wraps
  the original exception (``raise ... from exc``) with frame context.
* :class:`WorkerCrashError` — a supervised worker process died without
  returning (crash, SIGKILL/OOM).  Transient: the next attempt runs in
  a fresh process.
* :class:`WorkerHungError` — a supervised worker stopped heartbeating
  and was preempted.  Transient for the same reason.
* :class:`CircuitOpenError` — a (benchmark, config) combination was
  quarantined by the circuit breaker after systematic failures; the
  run was never attempted.
* :class:`DependencyError` — a required third-party dependency is
  missing or below the floor the vectorized kernels need; raised at
  import of the kernel modules so runs fail fast with the remedy
  instead of deep inside a sweep.

Classes carry a ``transient`` flag the supervisor consults when deciding
whether a bounded retry with backoff is worthwhile;
:func:`is_transient` applies the policy to arbitrary exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of all deliberate errors raised by this package."""

    #: Whether a retry (after quarantine/cleanup) can plausibly succeed.
    transient = False


class CacheCorruptionError(ReproError):
    """A cache entry failed its integrity check (quarantine + rebuild)."""

    transient = True


class TraceFormatError(ReproError, ValueError):
    """A frame trace (file or object) violates the format contract."""


class ConfigValidationError(ReproError, ValueError):
    """A GPU/workload configuration is inconsistent or non-physical."""


class BenchmarkTimeoutError(ReproError, TimeoutError):
    """A supervised benchmark run exceeded its wall-clock budget."""


class SimulationError(ReproError):
    """The timing simulator failed mid-run (wraps the original cause)."""


class WorkerCrashError(ReproError):
    """A supervised worker process died without returning a result."""

    transient = True


class WorkerHungError(ReproError):
    """A supervised worker stopped heartbeating and was preempted."""

    transient = True


class DependencyError(ReproError, ImportError):
    """A required dependency is missing or too old for the kernels."""


class CircuitOpenError(ReproError):
    """The circuit breaker quarantined this (benchmark, config) cell."""


class ServiceError(ReproError):
    """The sweep service (``repro serve``) rejected or failed a request.

    Raised client-side by :class:`repro.service.SweepClient` for any
    non-success HTTP status and for transport failures; ``status``
    carries the HTTP status code (0 when the request never reached the
    server).  Transport-level failures (connection refused, timeouts —
    ``status == 0``) are transient; a definite server verdict (400, 404,
    409) is not.
    """

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        self.status = status

    @property
    def transient(self) -> bool:  # type: ignore[override]
        return self.status == 0 or self.status >= 500


def is_transient(exc: BaseException) -> bool:
    """Whether retrying ``exc`` after backoff can plausibly succeed.

    :class:`ReproError` subclasses carry the decision on their
    ``transient`` flag; bare :class:`OSError` (I/O hiccups, full disks,
    interrupted syscalls) is treated as transient too.
    """
    if isinstance(exc, ReproError):
        return exc.transient
    return isinstance(exc, OSError)
