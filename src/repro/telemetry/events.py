"""Typed telemetry events.

Every event the simulator, scheduler, memory system or harness can emit
is one of the small dataclasses below.  Events are *descriptions of
something that happened*, never inputs to the simulation — emitting (or
not emitting) them cannot change any simulated counter or cycle, which
is what makes the enabled/disabled parity guarantee trivial to uphold.

Conventions:

* ``ts`` is a simulated-cycle timestamp (the :class:`~repro.telemetry.hub.SimClock`
  domain).  Events raised from code with no clock access leave it
  ``None``; the Chrome exporter then reuses the last timestamp it saw.
* ``seq`` is stamped by the hub at emit time and gives a total order
  over all events of a run, independent of timestamps.
* Wall-clock (harness) events use seconds and are kept in a separate
  field namespace (``wall_start_s``/``wall_dur_s``) so the two time
  domains can never be confused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

TileCoord = Tuple[int, int]


@dataclass
class TelemetryEvent:
    """Base class: emit-order sequence number (stamped by the hub)."""

    seq: int = field(default=0, init=False)


@dataclass
class PhaseBegin(TelemetryEvent):
    """A pipeline phase (geometry, raster, run, frame) started."""

    name: str = ""
    ts: Optional[int] = None
    frame: Optional[int] = None


@dataclass
class PhaseEnd(TelemetryEvent):
    """A pipeline phase finished."""

    name: str = ""
    ts: Optional[int] = None
    frame: Optional[int] = None


@dataclass
class TileDispatch(TelemetryEvent):
    """A Raster Unit picked up a tile workload."""

    ru: int = 0
    tile: Optional[TileCoord] = None
    ts: Optional[int] = None


@dataclass
class TileRetire(TelemetryEvent):
    """A Raster Unit finished a tile workload."""

    ru: int = 0
    tile: Optional[TileCoord] = None
    ts: Optional[int] = None
    #: Cycle the tile was dispatched (interval granularity).
    start_ts: Optional[int] = None
    #: DRAM line accesses attributed to this tile.
    dram_lines: int = 0
    instructions: int = 0


@dataclass
class SchedulerDecision(TelemetryEvent):
    """What the scheduler chose for one frame."""

    frame: int = 0
    order: str = ""
    supertile_size: int = 1
    batches: int = 0
    ts: Optional[int] = None


@dataclass
class SchedulerRanking(TelemetryEvent):
    """A temperature ranking happened (hot/cold supertile dispatch)."""

    supertiles: int = 0
    #: Supertile ids of the hottest entries, hottest first.
    hottest: Tuple[int, ...] = ()
    ts: Optional[int] = None


@dataclass
class FSMTransition(TelemetryEvent):
    """An adaptive-FSM state change (``old is None`` = initial state)."""

    machine: str = ""
    old: Optional[Any] = None
    new: Optional[Any] = None
    ts: Optional[int] = None


@dataclass
class FSMState(TelemetryEvent):
    """Per-frame snapshot of an adaptive FSM's current state."""

    machine: str = ""
    state: Optional[Any] = None
    frame: Optional[int] = None
    ts: Optional[int] = None


@dataclass
class DRAMSample(TelemetryEvent):
    """One closed DRAM accounting interval."""

    ts: Optional[int] = None
    requests: int = 0
    utilization: float = 0.0
    latency_cycles: float = 0.0


@dataclass
class CacheDelta(TelemetryEvent):
    """Per-frame counter delta of one cache."""

    name: str = ""
    frame: Optional[int] = None
    ts: Optional[int] = None
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0


@dataclass
class HarnessSpan(TelemetryEvent):
    """A supervised harness step (wall-clock domain, seconds)."""

    name: str = ""
    wall_start_s: float = 0.0
    wall_dur_s: float = 0.0
    status: str = ""
    attempts: int = 0
    args: Optional[Dict[str, Any]] = None


@dataclass
class SupervisorEvent(TelemetryEvent):
    """A worker-lifecycle decision by the run supervisor.

    ``kind`` is one of ``preempt`` (a worker was SIGTERM/SIGKILL'd for
    hanging or blowing its deadline), ``heartbeat_gap`` (a stale
    heartbeat was observed), ``worker_death`` (a worker died without
    returning — crash, OOM kill), ``breaker_trip`` (a (benchmark,
    config) combination was quarantined), ``breaker_probe`` (half-open
    re-probe) or ``breaker_close`` (probe succeeded).  Wall-clock
    domain, like :class:`HarnessSpan`.
    """

    kind: str = ""
    #: What the decision was about (a job label or breaker key).
    target: str = ""
    detail: str = ""
    wall_s: float = 0.0
