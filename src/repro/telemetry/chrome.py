"""Chrome trace-event export (``chrome://tracing`` / Perfetto).

Maps the typed event stream onto the Trace Event Format:

* one ``pid`` per Raster Unit (``PID_RU0 + index``) carrying tile
  duration events (``ph: "X"``) and dispatch instants;
* ``pid`` 0 ("sim") carrying pipeline-phase duration events (``B``/``E``
  pairs), scheduler/FSM instant events (``ph: "i"``) and the DRAM
  counter tracks (``ph: "C"`` — bandwidth, utilization, loaded latency);
* ``pid`` 999 ("harness") carrying wall-clock suite spans.

Every pid gets ``process_name``/``thread_name`` metadata events so
Perfetto labels the tracks, and ``otherData.ts_units`` records each
track's time domain.

Timestamps are simulated cycles emitted directly into the ``ts`` field
(the format nominally wants microseconds; viewers only require a
consistent unit, so 1 us on screen = 1 simulated cycle).  Harness spans
are wall-clock microseconds — a different domain, which is why they live
in their own process track.  Events without a timestamp (FSM decisions
made outside the timed core) get an *inferred* one — the last simulated
timestamp seen, clamped into the emitting frame's ``[begin, end]``
window when the event names its frame — and are annotated with
``args.ts_inferred`` so a reader can tell estimated instants from
measured ones.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from .events import (CacheDelta, DRAMSample, FSMState, FSMTransition,
                     HarnessSpan, PhaseBegin, PhaseEnd, SchedulerDecision,
                     SchedulerRanking, TelemetryEvent, TileDispatch,
                     TileRetire)

#: pid of the simulator-control track (phases, FSM, counters).
PID_SIM = 0
#: pid of Raster Unit ``i`` is ``PID_RU0 + i``.
PID_RU0 = 100
#: pid of the wall-clock harness track.
PID_HARNESS = 999

#: Time domain of each process track (recorded in ``otherData``).
TS_UNITS = {"sim": "simulated GPU cycles",
            "ru": "simulated GPU cycles",
            "harness": "wall-clock microseconds"}


def _frame_windows(events: List[TelemetryEvent]
                   ) -> Dict[int, Tuple[int, int]]:
    """frame index -> (begin ts, end ts) from the timestamped phases."""
    begin: Dict[int, int] = {}
    end: Dict[int, int] = {}
    for event in events:
        if not isinstance(event, (PhaseBegin, PhaseEnd)):
            continue
        if event.frame is None or event.ts is None:
            continue
        ts = int(event.ts)
        if isinstance(event, PhaseBegin):
            if event.frame not in begin or ts < begin[event.frame]:
                begin[event.frame] = ts
        elif event.frame not in end or ts > end[event.frame]:
            end[event.frame] = ts
    return {frame: (ts, end.get(frame, ts))
            for frame, ts in begin.items()}


def chrome_trace_events(events: Iterable[TelemetryEvent]) -> List[dict]:
    """Convert a typed event stream into trace-event dicts."""
    events = list(events)
    windows = _frame_windows(events)
    out: List[dict] = []
    pids_seen: Dict[int, str] = {}
    last_ts = 0

    def _pid(pid: int, name: str) -> int:
        pids_seen.setdefault(pid, name)
        return pid

    def _ts(event: TelemetryEvent,
            args: Optional[Dict[str, Any]] = None) -> int:
        """The event's timestamp, inferring (and annotating) when absent.

        An explicit ``ts`` advances the running clock.  A missing one
        reuses the last timestamp seen but is clamped into the emitting
        frame's ``[begin, end]`` window when the event carries a frame
        index — an FSM snapshot for frame *n* emitted before that
        frame's timed phases must land inside frame *n*, not at the end
        of frame *n - 1*.  Inferred timestamps are flagged in ``args``.
        """
        nonlocal last_ts
        explicit = getattr(event, "ts", None)
        if explicit is not None:
            last_ts = int(explicit)
            return last_ts
        ts = last_ts
        frame = getattr(event, "frame", None)
        if frame is not None and frame in windows:
            lo, hi = windows[frame]
            ts = min(max(ts, lo), hi)
        if args is not None:
            args["ts_inferred"] = True
        return ts

    for event in events:
        if isinstance(event, PhaseBegin):
            args: Dict[str, Any] = {"frame": event.frame}
            out.append({"name": event.name, "ph": "B",
                        "ts": _ts(event, args),
                        "pid": _pid(PID_SIM, "sim"), "tid": 0,
                        "args": args})
        elif isinstance(event, PhaseEnd):
            out.append({"name": event.name, "ph": "E",
                        "ts": _ts(event),
                        "pid": _pid(PID_SIM, "sim"), "tid": 0})
        elif isinstance(event, TileRetire):
            start = event.start_ts if event.start_ts is not None else event.ts
            end = _ts(event)
            out.append({"name": f"tile {event.tile}", "ph": "X",
                        "ts": int(start if start is not None else end),
                        "dur": max(end - int(start or 0), 1),
                        "pid": _pid(PID_RU0 + event.ru, f"RU {event.ru}"),
                        "tid": 0,
                        "args": {"dram_lines": event.dram_lines,
                                 "instructions": event.instructions}})
        elif isinstance(event, TileDispatch):
            args = {"tile": list(event.tile or ())}
            out.append({"name": "dispatch", "ph": "i", "s": "t",
                        "ts": _ts(event, args),
                        "pid": _pid(PID_RU0 + event.ru, f"RU {event.ru}"),
                        "tid": 0, "args": args})
        elif isinstance(event, (FSMTransition, FSMState)):
            if isinstance(event, FSMTransition):
                name = f"fsm:{event.machine} {event.old}->{event.new}"
                args = {"old": event.old, "new": event.new}
            else:
                name = f"fsm:{event.machine}={event.state}"
                args = {"state": event.state, "frame": event.frame}
            out.append({"name": name, "ph": "i", "s": "g",
                        "ts": _ts(event, args),
                        "pid": _pid(PID_SIM, "sim"), "tid": 0,
                        "args": args})
        elif isinstance(event, SchedulerDecision):
            args = {"frame": event.frame,
                    "order": event.order,
                    "supertile_size": event.supertile_size,
                    "batches": event.batches}
            out.append({"name": f"schedule:{event.order}", "ph": "i",
                        "s": "p", "ts": _ts(event, args),
                        "pid": _pid(PID_SIM, "sim"), "tid": 0,
                        "args": args})
        elif isinstance(event, SchedulerRanking):
            args = {"supertiles": event.supertiles,
                    "hottest": list(event.hottest)}
            out.append({"name": "ranking", "ph": "i", "s": "p",
                        "ts": _ts(event, args),
                        "pid": _pid(PID_SIM, "sim"), "tid": 0,
                        "args": args})
        elif isinstance(event, DRAMSample):
            ts = _ts(event)
            pid = _pid(PID_SIM, "sim")
            out.append({"name": "dram.bandwidth", "ph": "C", "ts": ts,
                        "pid": pid, "tid": 0,
                        "args": {"requests": event.requests}})
            out.append({"name": "dram.latency", "ph": "C", "ts": ts,
                        "pid": pid, "tid": 0,
                        "args": {"cycles": round(event.latency_cycles, 2)}})
            out.append({"name": "dram.utilization", "ph": "C", "ts": ts,
                        "pid": pid, "tid": 0,
                        "args": {"rho": round(event.utilization, 4)}})
        elif isinstance(event, CacheDelta):
            args = {"hits": event.hits, "misses": event.misses}
            out.append({"name": f"cache.{event.name}", "ph": "C",
                        "ts": _ts(event, args),
                        "pid": _pid(PID_SIM, "sim"), "tid": 0,
                        "args": args})
        elif isinstance(event, HarnessSpan):
            out.append({"name": event.name, "ph": "X",
                        "ts": int(event.wall_start_s * 1e6),
                        "dur": max(int(event.wall_dur_s * 1e6), 1),
                        "pid": _pid(PID_HARNESS, "harness"), "tid": 0,
                        "args": {"status": event.status,
                                 "attempts": event.attempts,
                                 **(event.args or {})}})
        # Unknown event types are skipped: the JSONL sink still carries
        # them, and the Chrome view stays well-formed.

    meta: List[dict] = []
    for pid, label in sorted(pids_seen.items()):
        tid_label = ("wall clock" if pid == PID_HARNESS
                     else "simulated cycles")
        meta.append({"name": "process_name", "ph": "M", "pid": pid,
                     "tid": 0, "args": {"name": label}})
        meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                     "tid": 0, "args": {"name": tid_label}})
        meta.append({"name": "process_sort_index", "ph": "M", "pid": pid,
                     "tid": 0, "args": {"sort_index": pid}})
    return meta + out


def chrome_trace(events: Iterable[TelemetryEvent],
                 metrics: Union[Dict[str, Any], None] = None) -> dict:
    """The full Chrome trace document (``{"traceEvents": [...]}``)."""
    doc: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(events),
        "displayTimeUnit": "ms",
        "otherData": {"ts_unit": "simulated GPU cycles",
                      "ts_units": dict(TS_UNITS),
                      "source": "repro.telemetry"},
    }
    if metrics:
        doc["otherData"]["metrics"] = metrics
    return doc


def write_chrome_trace(path: Union[str, Path],
                       events: Iterable[TelemetryEvent],
                       metrics: Union[Dict[str, Any], None] = None) -> int:
    """Write the Chrome trace JSON to ``path``; returns the event count."""
    doc = chrome_trace(events, metrics=metrics)
    Path(path).write_text(json.dumps(doc) + "\n")
    return len(doc["traceEvents"])
