"""The telemetry hub: one module-level event bus for the whole package.

Design constraints, in priority order:

1. **Zero overhead when disabled.**  Every instrumentation site in hot
   code is written as ``if HUB.enabled: HUB.emit(...)`` — the disabled
   cost is a single attribute load and branch, and the sites sit at
   tile/interval/frame granularity, never inside the per-cache-line
   loops.  ``benchmarks/profile_hotpath.py --telemetry-overhead``
   measures (and CI gates) that this stays below 2% of the run time.

2. **No influence on simulation results.**  The hub only *observes*;
   nothing in the simulator reads it back.  A run with telemetry
   enabled is bit-identical to one with it disabled
   (``tests/test_telemetry.py`` asserts this).

3. **One hub per process.**  ``HUB`` is a module-level singleton that is
   mutated in place by :meth:`TelemetryHub.enable` / ``disable`` and
   never rebound, so modules may bind it at import time.  Suite worker
   processes inherit a copy via fork and report their own metrics.
"""

from __future__ import annotations

import dataclasses
import json
from typing import IO, Any, Dict, List, Optional, Union

from .events import TelemetryEvent
from .metrics import MetricsRegistry


class SimClock:
    """A mutable simulated-cycle clock shared by driver and units."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int = 0):
        self.cycles = cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(cycles={self.cycles})"


class RecordingSink:
    """Keeps every event in memory (the exporters' input)."""

    def __init__(self):
        self.events: List[TelemetryEvent] = []

    def handle(self, event: TelemetryEvent) -> None:
        """Receive one event."""
        self.events.append(event)

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()


class JsonlSink:
    """Streams events as JSON lines (one ``{"type": ..., ...}`` per line).

    Accepts an open text file object; the caller owns its lifetime.
    Tuples (tile coordinates, bucket bounds) serialize as JSON arrays.

    ``extra`` (optional) is a dict of correlation fields merged into
    every record — the sweep service stamps ``job_id`` / ``worker_id``
    / ``point_id`` here so per-point streams from a whole fleet can be
    merged into one timeline after the fact.  Event fields win on a
    name clash; :func:`repro.telemetry.io.load_jsonl_events` ignores
    the extras, so a correlated stream stays loadable everywhere a
    plain one is.
    """

    def __init__(self, stream: IO[str],
                 extra: Optional[Dict[str, Any]] = None):
        self.stream = stream
        self.extra = dict(extra) if extra else None

    def handle(self, event: TelemetryEvent) -> None:
        """Serialize one event as a JSON line."""
        record = dict(self.extra) if self.extra else {}
        record["type"] = type(event).__name__
        record.update(dataclasses.asdict(event))
        self.stream.write(json.dumps(record, default=str) + "\n")


class TelemetryHub:
    """Event bus + metrics registry behind one cheap ``enabled`` flag."""

    def __init__(self):
        self.enabled = False
        self._sinks: List[Any] = []
        #: The process-wide metrics registry.  It survives
        #: enable/disable cycles so instruments cached by hot-path code
        #: stay live; use ``metrics.reset()`` between runs.
        self.metrics = MetricsRegistry()
        self._seq = 0

    # -- lifecycle ---------------------------------------------------------
    def enable(self, *sinks: Any) -> None:
        """Turn the hub on, appending any given sinks.

        A sink is anything with a ``handle(event)`` method.  Enabling an
        already-enabled hub just adds the sinks.
        """
        for sink in sinks:
            self.add_sink(sink)
        self.enabled = True

    def add_sink(self, sink: Any) -> None:
        """Attach one sink (no-op if already attached)."""
        if sink not in self._sinks:
            self._sinks.append(sink)

    def remove_sink(self, sink: Any) -> None:
        """Detach one sink if attached."""
        if sink in self._sinks:
            self._sinks.remove(sink)

    def disable(self) -> None:
        """Turn the hub off and drop all sinks (metrics are kept)."""
        self.enabled = False
        self._sinks = []

    @property
    def sinks(self) -> List[Any]:
        """The attached sinks (read-only view)."""
        return list(self._sinks)

    @property
    def seq(self) -> int:
        """Sequence number of the most recently emitted event."""
        return self._seq

    # -- emission ----------------------------------------------------------
    def emit(self, event: TelemetryEvent) -> None:
        """Stamp the event's sequence number and fan it out to sinks.

        Callers in hot code must guard the *construction* of the event
        with ``if HUB.enabled:`` — this method assumes the hub is on.
        """
        self._seq += 1
        event.seq = self._seq
        for sink in self._sinks:
            sink.handle(event)


#: The process-wide hub.  Mutated in place, never rebound — modules may
#: safely do ``from repro.telemetry import HUB`` at import time.
HUB = TelemetryHub()


def telemetry_session(*sinks: Any,
                      reset_metrics: bool = True) -> "_TelemetrySession":
    """Context manager: enable ``HUB`` for a block, restore state after.

    ::

        sink = RecordingSink()
        with telemetry_session(sink):
            simulator.run(traces)
        trace = chrome_trace(sink.events)
    """
    return _TelemetrySession(sinks, reset_metrics)


class _TelemetrySession:
    def __init__(self, sinks, reset_metrics: bool):
        self._sinks = sinks
        self._reset_metrics = reset_metrics
        self._was_enabled: Optional[bool] = None
        self._previous_sinks: Optional[List[Any]] = None

    def __enter__(self) -> TelemetryHub:
        self._was_enabled = HUB.enabled
        self._previous_sinks = HUB.sinks
        if self._reset_metrics:
            HUB.metrics.reset()
        HUB.enable(*self._sinks)
        return HUB

    def __exit__(self, *exc_info) -> None:
        HUB.disable()
        if self._previous_sinks:
            for sink in self._previous_sinks:
                HUB.add_sink(sink)
        HUB.enabled = bool(self._was_enabled)
