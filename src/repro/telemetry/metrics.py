"""Metrics registry: counters, gauges and fixed-bucket histograms.

Components register metrics by dotted name (``ru0.tiles_retired``,
``dram.reads``, ``l1tex.hit_ratio``) through the get-or-create accessors
on :class:`MetricsRegistry`.  Registration is idempotent — asking for an
existing name returns the existing instrument (a type clash raises) — so
hot code can cache the returned object once and update it directly.

The registry itself is a plain dict with no locking: the simulator is
single-threaded per process, and the suite's worker processes each carry
their own registry (fork).  ``snapshot()`` flattens everything into a
``{name: number}`` dict suitable for merging into run summaries or JSON.

Cross-process aggregation: ``dump()`` exports the registry as a typed,
JSON-able state dict and ``merge()`` folds such a state (or another
registry) back in — counters add, gauges keep the merged-in value,
histograms add bucket-wise.  Sweep workers attach a dump to every
checkpointed point so the driver can reconstruct grid-wide totals that
the process-pool boundary would otherwise drop.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Default buckets for per-tile latency histograms (cycles).
TILE_LATENCY_BUCKETS: Tuple[int, ...] = (
    250, 500, 1000, 2000, 4000, 8000, 16000, 32000, 64000)

#: Default buckets for DRAM per-interval burst-size histograms (requests).
DRAM_BURST_BUCKETS: Tuple[int, ...] = (
    0, 8, 16, 32, 64, 128, 256, 512, 1024)


class Counter:
    """Monotonically increasing integer metric.

    ``width_bits`` models a hardware statistics buffer of fixed width
    (the paper's Section III-E entries use 16-bit access and 24-bit
    instruction fields): the counter *saturates* at ``2**width - 1``
    instead of growing without bound, mirroring
    :func:`repro.core.temperature.saturate`.  ``None`` (the default) is
    an unbounded software counter.
    """

    __slots__ = ("name", "value", "width_bits", "_max")

    def __init__(self, name: str, width_bits: Optional[int] = None):
        if width_bits is not None and width_bits < 1:
            raise ValueError(f"{name}: width_bits must be >= 1")
        self.name = name
        self.value = 0
        self.width_bits = width_bits
        self._max = (1 << width_bits) - 1 if width_bits else None

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0), saturating at the bit width."""
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up")
        self.value += amount
        if self._max is not None and self.value > self._max:
            self.value = self._max

    @property
    def saturated(self) -> bool:
        """True when a width-limited counter has hit its ceiling."""
        return self._max is not None and self.value >= self._max

    def reset(self) -> None:
        """Zero the counter (the instrument object survives)."""
        self.value = 0


class Gauge:
    """Last-write-wins numeric metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: Number) -> None:
        """Record the current value."""
        self.value = value

    def reset(self) -> None:
        """Zero the gauge (the instrument object survives)."""
        self.value = 0.0


class Histogram:
    """Fixed-bucket histogram.

    ``buckets`` is a strictly increasing sequence of inclusive upper
    bounds; an observation ``v`` lands in the first bucket with
    ``v <= bound``, and anything above the last bound lands in the
    implicit overflow bucket (``le_inf``).  Bucket counts are plain
    (non-cumulative); ``count``/``total`` aggregate all observations.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total",
                 "min_seen", "max_seen")

    def __init__(self, name: str, buckets: Sequence[Number]):
        bounds = tuple(buckets)
        if not bounds:
            raise ValueError(f"{name}: need at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"{name}: bucket bounds must strictly increase")
        self.name = name
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total: float = 0.0
        self.min_seen: Optional[float] = None
        self.max_seen: Optional[float] = None

    def observe(self, value: Number) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min_seen is None or value < self.min_seen:
            self.min_seen = value
        if self.max_seen is None or value > self.max_seen:
            self.max_seen = value

    @property
    def mean(self) -> float:
        """Average of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def cumulative_counts(self) -> List[int]:
        """Running totals per bucket (Prometheus ``le`` semantics).

        Entry *i* counts every observation ``<= buckets[i]``; the final
        entry covers the overflow bucket and therefore equals
        ``count``.  The stored :attr:`counts` stay non-cumulative — the
        shape :meth:`merge` needs — so this is computed on demand for
        the exposition layer.
        """
        out, running = [], 0
        for n in self.counts:
            running += n
            out.append(running)
        return out

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's counts in (bucket-wise addition).

        Both histograms must have identical bucket bounds — merging
        observations across different binnings is meaningless and
        raises instead of producing a quietly wrong distribution.
        """
        if tuple(other.buckets) != self.buckets:
            raise ValueError(
                f"{self.name}: cannot merge histograms with different "
                f"buckets ({list(other.buckets)} vs {list(self.buckets)})")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        if other.min_seen is not None and (self.min_seen is None
                                           or other.min_seen < self.min_seen):
            self.min_seen = other.min_seen
        if other.max_seen is not None and (self.max_seen is None
                                           or other.max_seen > self.max_seen):
            self.max_seen = other.max_seen

    def reset(self) -> None:
        """Zero all counts (bounds and the object survive)."""
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min_seen = self.max_seen = None


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Dotted-name registry of counters, gauges and histograms."""

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    def counter(self, name: str,
                width_bits: Optional[int] = None) -> Counter:
        """Get or create the counter ``name``.

        ``width_bits`` (applied at creation only) makes it a saturating
        hardware-width counter; asking again for an existing counter
        returns it unchanged regardless of the argument.
        """
        return self._get_or_create(name, Counter,
                                   lambda: Counter(name, width_bits))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  buckets: Sequence[Number] = TILE_LATENCY_BUCKETS
                  ) -> Histogram:
        """Get or create the histogram ``name`` (buckets fixed at birth)."""
        return self._get_or_create(name, Histogram,
                                   lambda: Histogram(name, buckets))

    def _get_or_create(self, name, kind, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}")
        return metric

    def get(self, name: str) -> Optional[Metric]:
        """The registered metric, or None."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Number]:
        """Flatten every metric into a ``{dotted.name: number}`` dict.

        Histograms expand into ``<name>.count``, ``<name>.sum``,
        ``<name>.mean``, one ``<name>.le_<bound>`` entry per bucket
        plus ``<name>.le_inf`` for the overflow bucket, and — for the
        Prometheus exposition format, which wants running totals — a
        parallel cumulative set ``<name>.le_cum_<bound>`` /
        ``<name>.le_cum_inf`` (the last equals ``<name>.count``).
        """
        out: Dict[str, Number] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[f"{name}.count"] = metric.count
                out[f"{name}.sum"] = metric.total
                out[f"{name}.mean"] = metric.mean
                cumulative = metric.cumulative_counts()
                for bound, n, total in zip(metric.buckets, metric.counts,
                                           cumulative):
                    out[f"{name}.le_{bound}"] = n
                    out[f"{name}.le_cum_{bound}"] = total
                out[f"{name}.le_inf"] = metric.counts[-1]
                out[f"{name}.le_cum_inf"] = cumulative[-1]
            else:
                out[name] = metric.value
        return out

    def reset(self) -> None:
        """Zero every instrument in place.

        Instrument *objects* survive a reset, so hot-path code that
        cached a Counter/Histogram reference keeps updating the live
        instrument after the values are cleared between runs.
        """
        for metric in self._metrics.values():
            metric.reset()

    # -- cross-process aggregation ------------------------------------------

    def dump(self) -> Dict[str, dict]:
        """Typed, JSON-able state of every instrument.

        Unlike :meth:`snapshot` (flat, display-oriented), the dump keeps
        each metric's type and a histogram's full bucket layout, so a
        dump produced in one process can be merged losslessly in
        another.  ``reg.merge(other.dump())`` then
        ``reg.snapshot() == other.snapshot()`` round-trips exactly.
        """
        state: Dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                entry: Dict[str, object] = {"type": "counter",
                                            "value": metric.value}
                if metric.width_bits is not None:
                    entry["width_bits"] = metric.width_bits
            elif isinstance(metric, Gauge):
                entry = {"type": "gauge", "value": metric.value}
            else:
                entry = {"type": "histogram",
                         "buckets": list(metric.buckets),
                         "counts": list(metric.counts),
                         "total": metric.total,
                         "min": metric.min_seen,
                         "max": metric.max_seen}
            state[name] = entry
        return state

    def merge(self, other: Union["MetricsRegistry", Dict[str, dict]]
              ) -> "MetricsRegistry":
        """Fold another registry (or a :meth:`dump` state) into this one.

        Counters add (width-limited ones keep saturating), gauges take
        the merged-in value (last writer wins, matching
        :meth:`Gauge.set`), histograms add bucket-wise — a bucket-layout
        mismatch raises.  Returns ``self`` so merges chain.
        """
        state = other.dump() if isinstance(other, MetricsRegistry) else other
        for name, entry in state.items():
            kind = entry.get("type")
            if kind == "counter":
                self.counter(name, entry.get("width_bits")).inc(
                    int(entry["value"]))
            elif kind == "gauge":
                self.gauge(name).set(entry["value"])
            elif kind == "histogram":
                incoming = Histogram(name, entry["buckets"])
                incoming.counts = list(entry["counts"])
                incoming.count = sum(incoming.counts)
                incoming.total = entry["total"]
                incoming.min_seen = entry.get("min")
                incoming.max_seen = entry.get("max")
                self.histogram(name, tuple(entry["buckets"])).merge(incoming)
            else:
                raise ValueError(
                    f"metric {name!r}: unknown state type {kind!r}")
        return self

    @classmethod
    def from_state(cls, state: Dict[str, dict]) -> "MetricsRegistry":
        """A fresh registry reconstructed from a :meth:`dump` state."""
        return cls().merge(state)
