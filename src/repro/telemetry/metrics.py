"""Metrics registry: counters, gauges and fixed-bucket histograms.

Components register metrics by dotted name (``ru0.tiles_retired``,
``dram.reads``, ``l1tex.hit_ratio``) through the get-or-create accessors
on :class:`MetricsRegistry`.  Registration is idempotent — asking for an
existing name returns the existing instrument (a type clash raises) — so
hot code can cache the returned object once and update it directly.

The registry itself is a plain dict with no locking: the simulator is
single-threaded per process, and the suite's worker processes each carry
their own registry (fork).  ``snapshot()`` flattens everything into a
``{name: number}`` dict suitable for merging into run summaries or JSON.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Default buckets for per-tile latency histograms (cycles).
TILE_LATENCY_BUCKETS: Tuple[int, ...] = (
    250, 500, 1000, 2000, 4000, 8000, 16000, 32000, 64000)

#: Default buckets for DRAM per-interval burst-size histograms (requests).
DRAM_BURST_BUCKETS: Tuple[int, ...] = (
    0, 8, 16, 32, 64, 128, 256, 512, 1024)


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up")
        self.value += amount

    def reset(self) -> None:
        """Zero the counter (the instrument object survives)."""
        self.value = 0


class Gauge:
    """Last-write-wins numeric metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: Number) -> None:
        """Record the current value."""
        self.value = value

    def reset(self) -> None:
        """Zero the gauge (the instrument object survives)."""
        self.value = 0.0


class Histogram:
    """Fixed-bucket histogram.

    ``buckets`` is a strictly increasing sequence of inclusive upper
    bounds; an observation ``v`` lands in the first bucket with
    ``v <= bound``, and anything above the last bound lands in the
    implicit overflow bucket (``le_inf``).  Bucket counts are plain
    (non-cumulative); ``count``/``total`` aggregate all observations.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total",
                 "min_seen", "max_seen")

    def __init__(self, name: str, buckets: Sequence[Number]):
        bounds = tuple(buckets)
        if not bounds:
            raise ValueError(f"{name}: need at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"{name}: bucket bounds must strictly increase")
        self.name = name
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total: float = 0.0
        self.min_seen: Optional[float] = None
        self.max_seen: Optional[float] = None

    def observe(self, value: Number) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min_seen is None or value < self.min_seen:
            self.min_seen = value
        if self.max_seen is None or value > self.max_seen:
            self.max_seen = value

    @property
    def mean(self) -> float:
        """Average of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        """Zero all counts (bounds and the object survive)."""
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min_seen = self.max_seen = None


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Dotted-name registry of counters, gauges and histograms."""

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  buckets: Sequence[Number] = TILE_LATENCY_BUCKETS
                  ) -> Histogram:
        """Get or create the histogram ``name`` (buckets fixed at birth)."""
        return self._get_or_create(name, Histogram,
                                   lambda: Histogram(name, buckets))

    def _get_or_create(self, name, kind, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}")
        return metric

    def get(self, name: str) -> Optional[Metric]:
        """The registered metric, or None."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Number]:
        """Flatten every metric into a ``{dotted.name: number}`` dict.

        Histograms expand into ``<name>.count``, ``<name>.sum``,
        ``<name>.mean`` and one ``<name>.le_<bound>`` entry per bucket
        plus ``<name>.le_inf`` for the overflow bucket.
        """
        out: Dict[str, Number] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[f"{name}.count"] = metric.count
                out[f"{name}.sum"] = metric.total
                out[f"{name}.mean"] = metric.mean
                for bound, n in zip(metric.buckets, metric.counts):
                    out[f"{name}.le_{bound}"] = n
                out[f"{name}.le_inf"] = metric.counts[-1]
            else:
                out[name] = metric.value
        return out

    def reset(self) -> None:
        """Zero every instrument in place.

        Instrument *objects* survive a reset, so hot-path code that
        cached a Counter/Histogram reference keeps updating the live
        instrument after the values are cleared between runs.
        """
        for metric in self._metrics.values():
            metric.reset()
