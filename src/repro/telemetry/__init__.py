"""Cycle-level telemetry: structured events, metrics, trace exporters.

The three pieces (see ``docs/observability.md`` for the full taxonomy):

* :data:`HUB` — the process-wide :class:`TelemetryHub`.  Disabled by
  default; every hot-path instrumentation site in the simulator is
  guarded by ``if HUB.enabled:`` so a disabled hub costs one attribute
  check.  Enable with a sink to start collecting::

      from repro.telemetry import HUB, RecordingSink, chrome_trace

      sink = RecordingSink()
      HUB.enable(sink)
      try:
          result = simulator.run(traces)
      finally:
          HUB.disable()
      trace_json = chrome_trace(sink.events)

  (or use the :func:`telemetry_session` context manager).

* :class:`MetricsRegistry` (``HUB.metrics``) — counters, gauges and
  fixed-bucket histograms registered by dotted name
  (``ru0.tiles_retired``, ``dram.reads``, ``l1tex.hit_ratio``).

* Exporters — :func:`chrome_trace` / :func:`write_chrome_trace`
  (Perfetto / ``chrome://tracing``), :class:`JsonlSink` (structured
  JSONL stream) and ``HUB.metrics.snapshot()`` (flat dict merged into
  run summaries and suite reports).
"""

from .chrome import (PID_HARNESS, PID_RU0, PID_SIM, chrome_trace,
                     chrome_trace_events, write_chrome_trace)
from .exposition import (EXPOSITION_CONTENT_TYPE, metric_name,
                         render_exposition)
from .fleet_trace import (PID_JOB, PID_WORKER0, PointTraceSink,
                          fleet_chrome_trace, fleet_trace_events,
                          write_fleet_trace)
from .events import (CacheDelta, DRAMSample, FSMState, FSMTransition,
                     HarnessSpan, PhaseBegin, PhaseEnd, SchedulerDecision,
                     SchedulerRanking, SupervisorEvent, TelemetryEvent,
                     TileDispatch, TileRetire)
from .hub import (HUB, JsonlSink, RecordingSink, SimClock, TelemetryHub,
                  telemetry_session)
from .io import load_jsonl_events
from .progress import ProgressLog
from .metrics import (Counter, DRAM_BURST_BUCKETS, Gauge, Histogram,
                      MetricsRegistry, TILE_LATENCY_BUCKETS)

__all__ = [
    "HUB", "TelemetryHub", "SimClock", "RecordingSink", "JsonlSink",
    "telemetry_session",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "TILE_LATENCY_BUCKETS", "DRAM_BURST_BUCKETS",
    "TelemetryEvent", "PhaseBegin", "PhaseEnd", "TileDispatch",
    "TileRetire", "SchedulerDecision", "SchedulerRanking",
    "FSMTransition", "FSMState", "DRAMSample", "CacheDelta",
    "HarnessSpan", "SupervisorEvent",
    "chrome_trace", "chrome_trace_events", "write_chrome_trace",
    "load_jsonl_events",
    "ProgressLog",
    "PID_SIM", "PID_RU0", "PID_HARNESS",
    "EXPOSITION_CONTENT_TYPE", "metric_name", "render_exposition",
    "PID_JOB", "PID_WORKER0", "PointTraceSink",
    "fleet_chrome_trace", "fleet_trace_events", "write_fleet_trace",
]
