"""Cross-worker sweep timeline: merge a fleet's traces into one view.

:mod:`repro.telemetry.chrome` renders *one process's* event stream —
per-RU load imbalance inside a single simulation.  A service sweep has
the same question one level up: which **worker** is the straggler, and
which points did it grind on?  This module answers it the same way the
per-RU view does — one Chrome/Perfetto process track per worker.

Inputs live in one job directory of the sweep service store:

* ``traces/<point_id>.<pid>.jsonl`` — per-point event streams written
  by :class:`PointTraceSink` inside the worker's ``_point_runner``
  session, every record stamped with ``job_id`` / ``worker_id`` /
  ``point_id`` correlation fields (``JsonlSink(extra=...)``);
* ``events.jsonl`` — the job's :class:`~repro.telemetry.progress.ProgressLog`
  (claims, adoptions, completions), which attributes points to workers
  even when per-point telemetry was off.

The merged document is wall-clock throughout (microseconds since the
job's first observed event): per-point tracks mix simulated-cycle and
wall-clock domains, so the merge keeps only the wall-clock spans
(``HarnessSpan``) and the progress events, and leaves cycle-domain
detail to the individual per-point files.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .hub import JsonlSink

logger = logging.getLogger(__name__)

#: pid of the first worker track; worker ``i`` (sorted by id) is
#: ``PID_WORKER0 + i``.  Disjoint from the per-simulation pids
#: (sim 0, RUs 100+, harness 999) so a merged doc never collides.
PID_WORKER0 = 1000

#: pid of the job-lifecycle track (submission, terminal events).
PID_JOB = 900


class PointTraceSink(JsonlSink):
    """A correlation-stamped JSONL sink that must never kill a run.

    Owns its file (opened lazily on the first event, closed by
    :meth:`close`) and swallows ``OSError`` after flipping
    ``degraded`` — fleet tracing is observability; a full disk on a
    worker must not fail the point it is executing.
    """

    def __init__(self, path: Union[str, Path],
                 extra: Optional[Dict[str, object]] = None):
        super().__init__(stream=None, extra=extra)
        self.path = Path(path)
        self.degraded = False

    def handle(self, event) -> None:
        if self.degraded:
            return
        try:
            if self.stream is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self.stream = open(self.path, "w", encoding="utf-8")
            super().handle(event)
        except OSError as exc:
            self.degraded = True
            logger.debug("point trace %s unwritable (%s); tracing "
                         "disabled for this point", self.path, exc)

    def close(self) -> None:
        """Close the stream (safe to call however far ``handle`` got)."""
        if self.stream is not None:
            try:
                self.stream.close()
            except OSError:
                pass
            self.stream = None


def _read_jsonl(path: Path) -> List[dict]:
    """Every parsable JSON object line of ``path`` (tolerant reader).

    Raw dicts, not typed events: the correlation extras are exactly
    the fields the typed loader would strip.
    """
    records: List[dict] = []
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return records
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def _point_spans(traces_dir: Path) -> List[dict]:
    """Wall-clock ``HarnessSpan`` records from every per-point stream."""
    spans = []
    if not traces_dir.is_dir():
        return spans
    for path in sorted(traces_dir.glob("*.jsonl")):
        for record in _read_jsonl(path):
            if (record.get("type") == "HarnessSpan"
                    and record.get("wall_start_s")):
                spans.append(record)
    return spans


def fleet_trace_events(job_dir: Union[str, Path]) -> List[dict]:
    """Trace-event dicts for one job directory (see module docstring)."""
    job_dir = Path(job_dir)
    spans = _point_spans(job_dir / "traces")
    progress = _read_jsonl(job_dir / "events.jsonl")

    # Workers come from span correlation fields plus progress `owner`s,
    # sorted for a deterministic pid assignment across re-renders.
    workers = sorted(
        {s.get("worker_id") for s in spans if s.get("worker_id")}
        | {e.get("owner") for e in progress if e.get("owner")})
    pids = {wid: PID_WORKER0 + i for i, wid in enumerate(workers)}

    starts = ([s["wall_start_s"] for s in spans]
              + [e["ts"] for e in progress if isinstance(
                  e.get("ts"), (int, float))])
    if not starts:
        return []
    t0 = min(starts)

    def us(wall_s) -> int:
        return max(0, int(round((wall_s - t0) * 1e6)))

    out: List[dict] = []
    covered: set = set()
    for span in spans:
        wid = span.get("worker_id") or "unknown"
        pid = pids.setdefault(wid, PID_WORKER0 + len(pids))
        point_id = (span.get("point_id")
                    or str(span.get("name", "")).rpartition(".")[2])
        covered.add((wid, point_id))
        args = dict(span.get("args") or {})
        args.update(job_id=span.get("job_id", ""), point_id=point_id,
                    status=span.get("status", ""),
                    attempts=span.get("attempts", 0))
        out.append({"name": point_id, "ph": "X", "pid": pid, "tid": 0,
                    "ts": us(span["wall_start_s"]),
                    "dur": max(1, int(round(
                        float(span.get("wall_dur_s") or 0.0) * 1e6))),
                    "args": args})

    for event in progress:
        kind = event.get("event")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            continue
        if kind in ("point_claimed", "lease_adopted"):
            wid = event.get("owner") or "unknown"
            pid = pids.setdefault(wid, PID_WORKER0 + len(pids))
            out.append({"name": kind, "ph": "i", "pid": pid, "tid": 0,
                        "ts": us(ts), "s": "t",
                        "args": {k: event[k] for k in
                                 ("point_id", "adopted_from",
                                  "previous_owner") if event.get(k)}})
        elif kind in ("point_done", "point_failed"):
            wid = event.get("owner") or "unknown"
            pid = pids.setdefault(wid, PID_WORKER0 + len(pids))
            point_id = event.get("point_id", "")
            if (wid, point_id) not in covered:
                # Telemetry was off (or the stream was lost): synthesize
                # the span from the completion event and its elapsed_s.
                dur_s = float(event.get("elapsed_s") or 0.0)
                out.append({"name": point_id or kind, "ph": "X",
                            "pid": pid, "tid": 0,
                            "ts": us(ts - dur_s),
                            "dur": max(1, int(round(dur_s * 1e6))),
                            "args": {"job_id": event.get("job_id", ""),
                                     "point_id": point_id,
                                     "status": "ok" if kind == "point_done"
                                     else "failed",
                                     "attempts": event.get("attempts", 0),
                                     "synthesized_from": kind}})
        elif kind in ("job_submitted", "job_started", "job_requeued",
                      "job_done", "job_failed", "job_cancelled"):
            out.append({"name": kind, "ph": "i", "pid": PID_JOB,
                        "tid": 0, "ts": us(ts), "s": "p",
                        "args": {"job_id": event.get("job_id", "")}})

    meta = [{"name": "process_name", "ph": "M", "pid": PID_JOB, "tid": 0,
             "args": {"name": "job"}},
            {"name": "process_sort_index", "ph": "M", "pid": PID_JOB,
             "tid": 0, "args": {"sort_index": PID_JOB}}]
    for wid, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        meta.append({"name": "process_name", "ph": "M", "pid": pid,
                     "tid": 0, "args": {"name": f"worker {wid}"}})
        meta.append({"name": "process_sort_index", "ph": "M", "pid": pid,
                     "tid": 0, "args": {"sort_index": pid}})
    return meta + sorted(out, key=lambda e: (e["ts"], e["pid"]))


def fleet_chrome_trace(job_dir: Union[str, Path]) -> dict:
    """The merged Chrome trace document for one job directory."""
    return {"traceEvents": fleet_trace_events(job_dir),
            "displayTimeUnit": "ms",
            "otherData": {
                "ts_unit": "wall-clock microseconds since first event",
                "source": str(job_dir)}}


def write_fleet_trace(path: Union[str, Path],
                      job_dir: Union[str, Path]) -> int:
    """Write the merged trace as JSON; returns the trace-event count."""
    doc = fleet_chrome_trace(job_dir)
    Path(path).write_text(json.dumps(doc, indent=1), encoding="utf-8")
    return len(doc["traceEvents"])


__all__ = ["PID_JOB", "PID_WORKER0", "PointTraceSink",
           "fleet_chrome_trace", "fleet_trace_events",
           "write_fleet_trace"]
