"""Prometheus text exposition of a :class:`MetricsRegistry`.

The registry's native shapes (dotted names, non-cumulative histogram
buckets, the typed :meth:`~MetricsRegistry.dump` state) were designed
for lossless cross-process merging, not for scraping.  This module is
the adapter: :func:`render_exposition` turns a registry — or any dump
state, which is what lets the server render metrics it merged from
workers — into the Prometheus text format (version 0.0.4) that
``GET /v1/metrics`` serves and every mainstream scraper parses.

Mapping rules, pinned by ``tests/test_telemetry.py``:

* dotted names are mangled to the exposition charset
  (``http.latency_s.ping`` → ``repro_http_latency_s_ping``); the
  ``repro_`` prefix namespaces the whole registry;
* counters gain the conventional ``_total`` suffix;
* histogram buckets are emitted *cumulatively* with ``le`` labels —
  the registry stores per-bucket counts, so the renderer runs the
  partial sums — and the mandatory ``+Inf`` bucket equals ``_count``.

Rendering is a pure function of the dump state: rendering a registry
and rendering ``MetricsRegistry.from_state(registry.dump())`` produce
identical bytes, which is the same round-trip guarantee the rest of
the metrics layer gives.
"""

from __future__ import annotations

import re
from typing import Dict, List, Union

from .metrics import Histogram, MetricsRegistry, Number

#: Prefix namespacing every exposed metric.
METRIC_PREFIX = "repro_"

#: Characters outside the exposition name charset collapse to ``_``.
_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: The HTTP content type of the rendered document.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def metric_name(dotted: str, suffix: str = "") -> str:
    """The exposition-safe name of a dotted registry name."""
    return METRIC_PREFIX + _BAD_CHARS.sub("_", dotted) + suffix


def _format_value(value: Number) -> str:
    """A number in exposition syntax (integers stay integral)."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return format(value, ".10g")


def cumulative_counts(counts: List[int]) -> List[int]:
    """Running partial sums of per-bucket counts (``le`` semantics)."""
    out, running = [], 0
    for n in counts:
        running += n
        out.append(running)
    return out


def render_exposition(
        source: Union[MetricsRegistry, Dict[str, dict]]) -> str:
    """The Prometheus text document for a registry or a dump state.

    Counters render as ``<name>_total``, gauges plainly, histograms as
    cumulative ``<name>_bucket{le="..."}`` lines plus ``_sum`` and
    ``_count``.  Metric families are sorted by dotted name, so the
    document is deterministic for a given state.
    """
    state = source.dump() if isinstance(source, MetricsRegistry) else source
    lines: List[str] = []
    for dotted in sorted(state):
        entry = state[dotted]
        kind = entry.get("type")
        if kind == "counter":
            name = metric_name(dotted, "_total")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_format_value(entry['value'])}")
        elif kind == "gauge":
            name = metric_name(dotted)
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(entry['value'])}")
        elif kind == "histogram":
            lines.extend(_render_histogram(dotted, entry))
        # Unknown types are skipped, not fatal: a newer worker's dump
        # must never take down an older server's scrape endpoint.
    return "\n".join(lines) + "\n" if lines else "\n"


def _render_histogram(dotted: str, entry: dict) -> List[str]:
    name = metric_name(dotted)
    bounds = list(entry["buckets"])
    totals = cumulative_counts(list(entry["counts"]))
    lines = [f"# TYPE {name} histogram"]
    for bound, total in zip(bounds, totals[:-1]):
        lines.append(f'{name}_bucket{{le="{_format_value(bound)}"}} '
                     f"{total}")
    lines.append(f'{name}_bucket{{le="+Inf"}} {totals[-1]}')
    lines.append(f"{name}_sum {_format_value(entry['total'])}")
    lines.append(f"{name}_count {totals[-1]}")
    return lines


def render_registry_exposition(registry: MetricsRegistry) -> str:
    """Alias of :func:`render_exposition` for a live registry."""
    return render_exposition(registry.dump())


__all__ = ["EXPOSITION_CONTENT_TYPE", "METRIC_PREFIX",
           "cumulative_counts", "metric_name", "render_exposition",
           "render_registry_exposition"]
