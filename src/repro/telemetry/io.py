"""Reading telemetry event streams back from disk.

:class:`~repro.telemetry.hub.JsonlSink` serializes each event as one
JSON object per line with a ``type`` discriminator; this module is the
inverse — it reconstructs the typed events so the analysis layer
(:mod:`repro.perf.report`) can post-process a stream that was exported
with ``--telemetry-out`` instead of re-running the simulation.

Forward compatibility: lines whose ``type`` is unknown are skipped (a
newer writer may know event classes this reader does not), as are
fields a known class no longer has.  Structural damage — non-JSON
lines, a record without a ``type`` — raises
:class:`~repro.errors.TraceFormatError` naming the path and line.
"""

from __future__ import annotations

import dataclasses
import gzip
import json
from pathlib import Path
from typing import Dict, List, Type, Union

from ..errors import TraceFormatError
from .events import (CacheDelta, DRAMSample, FSMState, FSMTransition,
                     HarnessSpan, PhaseBegin, PhaseEnd, SchedulerDecision,
                     SchedulerRanking, TelemetryEvent, TileDispatch,
                     TileRetire)

#: ``type`` discriminator -> event class (what JsonlSink writes).
EVENT_TYPES: Dict[str, Type[TelemetryEvent]] = {
    cls.__name__: cls
    for cls in (PhaseBegin, PhaseEnd, TileDispatch, TileRetire,
                SchedulerDecision, SchedulerRanking, FSMTransition,
                FSMState, DRAMSample, CacheDelta, HarnessSpan)
}

#: Fields that serialize as JSON arrays but are tuples on the dataclass.
_TUPLE_FIELDS = ("tile", "hottest")


def load_jsonl_events(path: Union[str, Path]) -> List[TelemetryEvent]:
    """Typed events from a ``JsonlSink`` stream (``.gz`` transparent).

    The emit-order ``seq`` stamped by the hub is restored, so exporters
    and analyses see the same total order as the live stream.
    """
    path = Path(path)
    opener = gzip.open if path.name.endswith(".gz") else open
    events: List[TelemetryEvent] = []
    try:
        with opener(path, "rt", encoding="utf-8") as stream:
            for lineno, line in enumerate(stream, 1):
                line = line.strip()
                if not line:
                    continue
                event = _parse_line(line, path, lineno)
                if event is not None:
                    events.append(event)
    except OSError as exc:
        raise TraceFormatError(f"{path}: unreadable event stream: {exc}")
    return events


def _parse_line(line: str, path: Path, lineno: int):
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(
            f"{path}:{lineno}: not a JSON event record: {exc}")
    if not isinstance(record, dict) or "type" not in record:
        raise TraceFormatError(
            f"{path}:{lineno}: event record has no 'type' discriminator")
    cls = EVENT_TYPES.get(record["type"])
    if cls is None:
        return None  # a newer writer's event kind; skip, keep the rest
    known = {f.name for f in dataclasses.fields(cls) if f.init}
    kwargs = {k: v for k, v in record.items() if k in known}
    for name in _TUPLE_FIELDS:
        if isinstance(kwargs.get(name), list):
            kwargs[name] = tuple(kwargs[name])
    event = cls(**kwargs)
    event.seq = int(record.get("seq", 0))
    return event
