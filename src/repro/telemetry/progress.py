"""Durable multi-process progress streams (the service event log).

The hub's :class:`~repro.telemetry.hub.JsonlSink` serializes one
process's event stream; the sweep service needs the inverse shape — a
*shared* append-only JSONL file that many worker processes (possibly on
different hosts, over a shared filesystem) write concurrently and many
HTTP clients tail while it grows.  :class:`ProgressLog` is that file:

* appends are one ``write()`` of one newline-terminated JSON line under
  an ``fcntl`` sidecar lock, so concurrent writers interleave whole
  records, never bytes;
* every record is stamped with ``ts`` (wall clock) and the writer's
  ``pid`` — enough to order and attribute events across a fleet;
* reads are lock-free: a half-visible final line (reader raced the
  writer) is simply skipped and picked up by the next poll, which is
  what lets ``GET /v1/jobs/<id>/events`` stream the file with chunked
  transfer-encoding while workers keep appending.

Like the heartbeat writer, appends must never take a worker down:
``OSError`` (read-only filesystem, ENOSPC) is swallowed after flipping
``degraded`` — progress reporting is observability, not correctness.
"""

from __future__ import annotations

import json
import logging
import os
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..cachefile import file_lock

logger = logging.getLogger(__name__)


class ProgressLog:
    """Append-only JSONL event stream shared by many processes."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.degraded = False

    def emit(self, event: str, **fields) -> None:
        """Append one event record (atomic line, never raises).

        ``event`` becomes the record's discriminator; ``ts`` and
        ``pid`` are stamped here.  Caller-supplied fields must be
        JSON-serializable.
        """
        if self.degraded:
            return
        record: Dict[str, object] = {"event": event,
                                     "ts": round(time.time(), 6),
                                     "pid": os.getpid()}
        record.update(fields)
        line = json.dumps(record, sort_keys=True,
                          default=str) + "\n"
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with file_lock(self.path):
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line)
                    handle.flush()
                    os.fsync(handle.fileno())
        except OSError as exc:
            self.degraded = True
            logger.debug("progress log %s unwritable (%s); events are "
                         "dropped from here on", self.path, exc)

    def read(self, offset: int = 0) -> List[dict]:
        """Parsed records from byte ``offset`` on (lock-free snapshot)."""
        records = []
        for record, _ in self._scan(offset):
            records.append(record)
        return records

    def tail(self, offset: int = 0,
             poll_s: float = 0.2,
             done_events: Optional[frozenset] = None,
             timeout_s: Optional[float] = None,
             heartbeat_s: Optional[float] = None) -> Iterator[dict]:
        """Yield records as they land, following the growing file.

        Stops after yielding a record whose ``event`` is in
        ``done_events`` (a terminal job event), or after ``timeout_s``
        of wall clock — never blocks a server thread forever on an
        abandoned job.

        ``heartbeat_s`` keeps an otherwise-idle stream audibly alive:
        whenever that long passes without a real record, a synthetic
        ``{"event": "heartbeat"}`` record is yielded.  Heartbeats are
        never written to the file — they exist so a chunked HTTP
        follower behind a read-timeout proxy sees periodic bytes while
        a long point simulates.
        """
        deadline = None if timeout_s is None else time.time() + timeout_s
        last_activity = time.time()
        while True:
            for record, offset in self._scan(offset):
                last_activity = time.time()
                yield record
                if done_events and record.get("event") in done_events:
                    return
            now = time.time()
            if deadline is not None and now >= deadline:
                return
            if heartbeat_s is not None and now - last_activity >= heartbeat_s:
                last_activity = now
                yield {"event": "heartbeat", "ts": round(now, 6),
                       "pid": os.getpid()}
            time.sleep(poll_s)

    def _scan(self, offset: int) -> Iterator[tuple]:
        """(record, next_offset) pairs of complete lines past offset.

        A trailing fragment with no newline yet (a writer mid-append)
        is left for the next scan; a line that fails to parse is
        skipped but its bytes are consumed, so one torn record can
        never wedge the stream.
        """
        try:
            with open(self.path, "rb") as handle:
                handle.seek(offset)
                data = handle.read()
        except OSError:
            return
        end = data.rfind(b"\n")
        if end < 0:
            return
        pos = offset
        for raw in data[:end + 1].split(b"\n")[:-1]:
            pos += len(raw) + 1
            if not raw.strip():
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue
            if isinstance(record, dict):
                yield record, pos
