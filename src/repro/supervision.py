"""Worker-lifecycle supervision: heartbeats, preemption, circuit breaking.

The process-pool backend of :func:`repro.harness.run_pairs` isolates
worker *failures*, but a worker that hangs (deadlocked C extension,
livelocked retry loop) or is OOM-killed mid-grid can still stall or
silently degrade an entire sweep.  This module is the supervision layer
that closes that gap; :mod:`repro.experiments.engine` routes every
parallel (and every chaos-mode) sweep through it.

The pieces:

* :class:`HeartbeatWriter` — a daemon thread in each worker touching a
  per-attempt heartbeat file.  Tolerant of unwritable filesystems
  (read-only, ENOSPC): it degrades to silence instead of killing the
  worker, and the supervisor falls back to deadline-only monitoring.
* :class:`Supervisor` / :func:`Supervisor.run` — runs each job in a
  monitored forked child.  A stale heartbeat (hung worker) or a blown
  deadline preempts the child with escalating SIGTERM → SIGKILL; a
  child that dies without returning (crash, OOM SIGKILL) is detected by
  its exit code.  Transient failures are retried with exponential
  backoff plus jitter (:func:`backoff_delay`).
* :class:`AdaptiveDeadline` — per-job deadlines derived from the median
  of completed durations times a factor, floored at the caller's
  ``timeout_s``, so one pathologically imbalanced grid point (the
  SLTarch-style workloads) cannot stall a sweep that has no global
  timeout configured.
* :class:`CircuitBreaker` — quarantines a key (the engine uses
  ``benchmark|kind``) after N systematic failures instead of burning
  retries on every remaining grid point of a doomed combination.
  Open breakers transition to half-open after a cooldown and admit a
  single probe; a successful probe closes the breaker.

Telemetry: the supervisor counts ``supervision.{preemptions,
heartbeat_gaps, worker_deaths, retries}`` and ``supervision.breaker.
{trips, short_circuits}``, and emits :class:`~repro.telemetry.events.
SupervisorEvent` records (plus per-job ``HarnessSpan``\\ s) when the hub
is enabled.

The chaos harness (:mod:`repro.chaos`) injects worker crashes, hangs
and I/O faults underneath this layer; ``tests/test_supervision.py`` and
``tests/test_chaos.py`` prove every chaos run terminates and converges.
"""

from __future__ import annotations

import contextlib
import logging
import multiprocessing
import os
import random
import shutil
import signal
import statistics
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from .errors import ReproError, is_transient
from .telemetry import HUB, HarnessSpan, SupervisorEvent

logger = logging.getLogger(__name__)


def available() -> bool:
    """Whether the supervised backend can run here (needs ``fork``)."""
    return "fork" in multiprocessing.get_all_start_methods()


# -- retry backoff -----------------------------------------------------------

#: Jitter source for retry backoff.  Module-level so tests can seed or
#: replace it; deliberately *not* derived from any simulation seed —
#: backoff randomness must decorrelate parallel workers, nothing else.
_JITTER = random.Random()


def backoff_delay(backoff_s: float, attempt: int,
                  jitter_frac: float = 0.5) -> float:
    """Exponential backoff with jitter for retry ``attempt`` (1-based).

    The base delay doubles per attempt; a uniform random fraction of up
    to ``jitter_frac`` of the base is added so parallel workers
    retrying the same transient fault (a quarantined shared cache
    entry, say) fan out instead of thundering back in lockstep.
    """
    base = backoff_s * (2 ** (attempt - 1))
    return base * (1.0 + _JITTER.uniform(0.0, jitter_frac))


# -- heartbeats --------------------------------------------------------------

#: The worker process's active writer (set by :func:`_child_main`), so
#: in-worker code — the chaos harness — can simulate a frozen process.
_ACTIVE_HEARTBEAT: Optional["HeartbeatWriter"] = None


class HeartbeatWriter(threading.Thread):
    """Daemon thread touching ``path`` every ``interval_s`` seconds.

    The supervisor watches the file's mtime; a worker whose main thread
    is alive keeps the mtime moving, and a frozen process goes silent.
    An unwritable destination (read-only filesystem, ENOSPC) must never
    take the worker down with it: the first ``OSError`` flips
    ``degraded`` and the thread stops touching the file, leaving the
    supervisor on deadline-only monitoring.

    ``payload`` customizes what each beat writes (default: pid + wall
    time).  The sweep service reuses this thread as its lease renewer —
    the lease file's mtime is the liveness signal exactly like a
    heartbeat, and the payload callable keeps the lease's JSON body
    (owner, claim time) intact across renewals.  A payload that raises
    is treated like an unwritable path: degrade, never crash the worker.
    """

    def __init__(self, path: os.PathLike, interval_s: float,
                 payload: Optional[Callable[[], str]] = None):
        super().__init__(name="repro-heartbeat", daemon=True)
        self.path = str(path)
        self.interval_s = interval_s
        self.payload = payload
        self.degraded = False
        # Named to avoid shadowing threading.Thread._stop(), which
        # CPython's after-fork fixup invokes on surviving thread objects.
        self._stop_requested = threading.Event()
        self._paused = threading.Event()

    def run(self) -> None:
        while not self._stop_requested.is_set():
            if not self._paused.is_set() and not self.degraded:
                try:
                    if self.payload is not None:
                        body = self.payload()
                    else:
                        body = f"{os.getpid()} {time.time():.6f}\n"
                    with open(self.path, "w") as handle:
                        handle.write(body)
                except Exception as exc:
                    self.degraded = True
                    logger.debug("heartbeat %s unwritable (%s); worker "
                                 "continues without heartbeats",
                                 self.path, exc)
            self._stop_requested.wait(self.interval_s)

    def pause(self) -> None:
        """Stop beating (used by chaos to simulate a frozen worker)."""
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()

    def stop(self) -> None:
        self._stop_requested.set()


def pause_heartbeat() -> None:
    """Silence the current worker's heartbeat (no-op outside a worker).

    The chaos harness calls this before hanging so the hang looks like
    a genuinely frozen process — main thread *and* heartbeats stalled —
    which is the failure mode heartbeat monitoring exists to catch.
    """
    if _ACTIVE_HEARTBEAT is not None:
        _ACTIVE_HEARTBEAT.pause()


# -- adaptive deadlines ------------------------------------------------------

class AdaptiveDeadline:
    """Per-job deadline from completed-run statistics.

    Grid points of one sweep are usually similar in cost, but pathological
    workloads (extreme tile imbalance, memory-latency cliffs) produce a
    long tail that defeats any single global timeout.  The deadline is
    ``median(completed durations) * factor``, floored at the caller's
    ``timeout_s`` — so it only ever *extends* an explicit budget — and
    engages once ``min_samples`` durations are in.  ``floor_s`` keeps a
    grid of sub-millisecond points from preempting normal variance.
    """

    def __init__(self, factor: float = 4.0, min_samples: int = 3,
                 floor_s: float = 0.5):
        self.factor = factor
        self.min_samples = min_samples
        self.floor_s = floor_s
        self.durations: List[float] = []

    def add(self, seconds: float) -> None:
        """Record one completed duration."""
        self.durations.append(seconds)

    def deadline_for(self, timeout_s: Optional[float]) -> Optional[float]:
        """The budget for the next attempt, or None (no limit yet)."""
        candidates: List[float] = []
        if timeout_s is not None and timeout_s > 0:
            candidates.append(timeout_s)
        if len(self.durations) >= self.min_samples:
            median = statistics.median(self.durations)
            candidates.append(max(median * self.factor, self.floor_s))
        return max(candidates) if candidates else None


# -- circuit breaker ---------------------------------------------------------

class CircuitBreaker:
    """Closed → open → half-open quarantine per failure key.

    ``record_failure`` counts failed attempts per key; hitting
    ``threshold`` consecutive failures opens the breaker, and
    :meth:`allow` then short-circuits every further attempt on that key
    — the sweep stops burning retries on a systematically broken
    (benchmark, config) combination and reports those cells as
    ``tripped``.  After ``cooldown_s`` an open breaker admits exactly
    one half-open probe; success closes it (and resets the count),
    failure reopens it.  State round-trips through :meth:`to_state` /
    :meth:`from_state` so the engine can persist trips in the
    :class:`~repro.experiments.store.ArtifactStore` and honour them on
    resume.
    """

    def __init__(self, threshold: int = 3, cooldown_s: float = 300.0):
        self.threshold = max(int(threshold), 1)
        self.cooldown_s = cooldown_s
        self._cells: Dict[str, Dict[str, Any]] = {}
        self.trip_log: List[Dict[str, Any]] = []

    def _cell(self, key: str) -> Dict[str, Any]:
        return self._cells.setdefault(key, {
            "state": "closed", "failures": 0, "opened_at": 0.0,
            "trips": 0, "probing": False})

    def state_of(self, key: str) -> str:
        """``closed`` / ``open`` / ``half_open`` for one key."""
        return self._cells.get(key, {}).get("state", "closed")

    def allow(self, key: str, now: Optional[float] = None) -> bool:
        """Whether an attempt on ``key`` may run right now."""
        cell = self._cells.get(key)
        if cell is None or cell["state"] == "closed":
            return True
        now = time.time() if now is None else now
        if cell["state"] == "open":
            if now - cell["opened_at"] >= self.cooldown_s:
                cell["state"] = "half_open"
                cell["probing"] = True
                self._emit("breaker_probe", key,
                           f"half-open after {self.cooldown_s:.0f}s "
                           "cooldown; admitting one probe")
                return True
            return False
        # half-open: exactly one probe in flight.
        if not cell["probing"]:
            cell["probing"] = True
            return True
        return False

    def record_failure(self, key: str,
                       now: Optional[float] = None) -> bool:
        """Count one failed attempt; True when this call trips the key."""
        now = time.time() if now is None else now
        cell = self._cell(key)
        cell["failures"] += 1
        if cell["state"] == "half_open":
            cell.update(state="open", opened_at=now, probing=False)
            cell["trips"] += 1
            self._trip(key, cell, now, reprobe=True)
            return True
        if cell["state"] == "closed" and cell["failures"] >= self.threshold:
            cell.update(state="open", opened_at=now)
            cell["trips"] += 1
            self._trip(key, cell, now, reprobe=False)
            return True
        return False

    def record_success(self, key: str) -> None:
        """A run on ``key`` succeeded: close and reset the breaker."""
        cell = self._cells.get(key)
        if cell is None:
            return
        reclosed = cell["state"] != "closed"
        cell.update(state="closed", failures=0, probing=False)
        if reclosed:
            self._emit("breaker_close", key, "probe succeeded; closed")

    def _trip(self, key: str, cell: Dict[str, Any], now: float,
              reprobe: bool) -> None:
        entry = {"key": key, "failures": cell["failures"],
                 "tripped_at": now, "reprobe": reprobe}
        self.trip_log.append(entry)
        logger.warning(
            "circuit breaker OPEN for %s after %d failure(s)%s; further "
            "attempts are quarantined for %.0fs", key, cell["failures"],
            " (half-open probe failed)" if reprobe else "",
            self.cooldown_s)
        if HUB.enabled:
            HUB.metrics.counter("supervision.breaker.trips").inc()
            self._emit("breaker_trip", key,
                       f"{cell['failures']} failures", now)

    @staticmethod
    def _emit(kind: str, key: str, detail: str,
              now: Optional[float] = None) -> None:
        if HUB.enabled:
            HUB.emit(SupervisorEvent(
                kind=kind, target=key, detail=detail,
                wall_s=time.time() if now is None else now))

    @property
    def open_keys(self) -> List[str]:
        """Keys currently open or half-open (quarantined)."""
        return sorted(k for k, c in self._cells.items()
                      if c["state"] != "closed")

    def to_state(self) -> Dict[str, Any]:
        """JSON-ready snapshot (inverse of :meth:`from_state`)."""
        return {"version": 1, "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
                "cells": {k: dict(v) for k, v in self._cells.items()},
                "trips": list(self.trip_log)}

    @classmethod
    def from_state(cls, state: Optional[Dict[str, Any]],
                   threshold: int = 3,
                   cooldown_s: float = 300.0) -> "CircuitBreaker":
        """Rebuild from a persisted snapshot (None/garbage → fresh)."""
        breaker = cls(threshold=threshold, cooldown_s=cooldown_s)
        if not isinstance(state, dict):
            return breaker
        cells = state.get("cells")
        if isinstance(cells, dict):
            for key, cell in cells.items():
                if isinstance(cell, dict) and "state" in cell:
                    breaker._cells[key] = dict(breaker._cell(key), **cell)
        trips = state.get("trips")
        if isinstance(trips, list):
            breaker.trip_log = list(trips)
        return breaker


# -- supervised execution ----------------------------------------------------

@dataclass
class SupervisionPolicy:
    """Tunables of the worker-lifecycle supervisor."""

    #: How often workers touch their heartbeat file.
    heartbeat_interval_s: float = 0.05
    #: Stale-heartbeat threshold: a worker whose heartbeat has not
    #: moved for this long is declared hung and preempted.  Only
    #: engages once a first heartbeat was observed, so a worker on a
    #: read-only filesystem degrades to deadline-only monitoring.
    hang_grace_s: float = 2.0
    #: SIGTERM → SIGKILL escalation grace.
    term_grace_s: float = 0.5
    #: Adaptive deadline = median(completed) * factor (see
    #: :class:`AdaptiveDeadline`).
    deadline_factor: float = 4.0
    deadline_min_samples: int = 3
    deadline_floor_s: float = 0.5
    #: Circuit-breaker policy (see :class:`CircuitBreaker`).
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 300.0
    #: Parent poll cadence.
    poll_interval_s: float = 0.05
    #: Where heartbeat files live (None: a private temp dir per run).
    heartbeat_root: Optional[Path] = None


@dataclass
class SupervisedJob:
    """One unit of supervised work: ``fn(*args, **kwargs)`` in a child."""

    label: str
    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Circuit-breaker key ("" = not subject to the breaker).
    breaker_key: str = ""


@dataclass
class WorkerOutcome:
    """What happened to one supervised job across all its attempts."""

    label: str
    #: ``ok`` | ``failed`` | ``tripped`` (breaker short-circuit) |
    #: ``skipped`` (interrupted before any attempt finished).
    status: str = "failed"
    result: Any = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    attempts: int = 0
    elapsed_s: float = 0.0
    #: How many attempts the supervisor had to SIGTERM/SIGKILL.
    preemptions: int = 0
    #: Largest observed heartbeat gap before a hung-preemption, seconds.
    heartbeat_gap_s: float = 0.0
    #: ``completed`` (clean first attempt), ``degraded`` (recovered via
    #: retry or preemption), ``failed``, ``tripped`` or ``skipped``.
    provenance: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class _Attempt:
    """Parent-side bookkeeping of one in-flight worker process."""

    __slots__ = ("proc", "conn", "hb_path", "started", "deadline",
                 "hb_mtime", "hb_last_change", "hb_seen", "message",
                 "got_message", "preempt_reason", "preempt_at")

    def __init__(self, proc, conn, hb_path: Path, started: float,
                 deadline: Optional[float]):
        self.proc = proc
        self.conn = conn
        self.hb_path = hb_path
        self.started = started
        self.deadline = deadline
        self.hb_mtime: Optional[int] = None
        self.hb_last_change = started
        self.hb_seen = False
        self.message: Optional[tuple] = None
        self.got_message = False
        self.preempt_reason: Optional[str] = None
        self.preempt_at = 0.0


class _JobState:
    """Per-job retry/outcome bookkeeping."""

    __slots__ = ("index", "job", "attempts", "preemptions", "eligible_at",
                 "first_start", "outcome", "last_error", "last_error_type",
                 "max_gap_s")

    def __init__(self, index: int, job: SupervisedJob):
        self.index = index
        self.job = job
        self.attempts = 0
        self.preemptions = 0
        self.eligible_at = 0.0
        self.first_start: Optional[float] = None
        self.outcome: Optional[WorkerOutcome] = None
        self.last_error: Optional[str] = None
        self.last_error_type: Optional[str] = None
        self.max_gap_s = 0.0


class Supervisor:
    """Runs :class:`SupervisedJob`\\ s in monitored child processes.

    One instance supervises one campaign (a sweep, a suite): it owns the
    adaptive-deadline statistics and the circuit breaker for the whole
    job list, and :meth:`run` may be called once.  See the module
    docstring for the monitoring model.
    """

    def __init__(self, policy: Optional[SupervisionPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None):
        self.policy = policy or SupervisionPolicy()
        self.breaker = breaker
        self.adaptive = AdaptiveDeadline(
            factor=self.policy.deadline_factor,
            min_samples=self.policy.deadline_min_samples,
            floor_s=self.policy.deadline_floor_s)
        self._aborted = False

    # -- public entry point --------------------------------------------------

    def run(self, jobs: List[SupervisedJob],
            timeout_s: Optional[float] = None,
            max_attempts: int = 2,
            backoff_s: float = 0.25,
            workers: int = 1) -> List[WorkerOutcome]:
        """Execute every job; outcomes align with the ``jobs`` order.

        Never raises for job failures — crashes, hangs, OOM kills and
        breaker trips all land in the returned outcomes.  A
        ``KeyboardInterrupt`` (from the driver, or reported by a child)
        terminates the remaining workers and marks unfinished jobs
        ``skipped``, mirroring :func:`repro.harness.run_pairs`.
        """
        if not jobs:
            return []
        if not available():  # pragma: no cover - non-POSIX platforms
            raise ReproError("supervised execution needs the 'fork' "
                             "start method (POSIX)")
        ctx = multiprocessing.get_context("fork")
        policy = self.policy
        own_hb_root = policy.heartbeat_root is None
        hb_root = Path(tempfile.mkdtemp(prefix="repro-hb-")) \
            if own_hb_root else Path(policy.heartbeat_root)
        with contextlib.suppress(OSError):
            hb_root.mkdir(parents=True, exist_ok=True)

        states = [_JobState(i, job) for i, job in enumerate(jobs)]
        queue: deque = deque(range(len(jobs)))
        running: Dict[int, _Attempt] = {}
        try:
            while (queue or running) and not self._aborted:
                now = time.monotonic()
                self._schedule(queue, states, running, workers, ctx,
                               hb_root, timeout_s, now)
                self._await_messages(running, policy.poll_interval_s)
                now = time.monotonic()
                for index in list(running):
                    attempt = running[index]
                    state = states[index]
                    if attempt.got_message:
                        self._join(attempt)
                        del running[index]
                        self._finish_message(state, attempt, queue,
                                             max_attempts, backoff_s)
                    elif attempt.proc.exitcode is not None:
                        self._drain(attempt)
                        self._join(attempt)
                        del running[index]
                        if attempt.got_message:
                            self._finish_message(state, attempt, queue,
                                                 max_attempts, backoff_s)
                        else:
                            self._finish_death(state, attempt, queue,
                                               max_attempts, backoff_s)
                    else:
                        self._monitor(state, attempt, now)
        except KeyboardInterrupt:
            self._aborted = True
        finally:
            self._reap(running)
            for state in states:
                if state.outcome is None:
                    state.outcome = WorkerOutcome(
                        label=state.job.label, status="skipped",
                        error="suite interrupted",
                        error_type="KeyboardInterrupt",
                        attempts=state.attempts, provenance="skipped")
            if own_hb_root:
                shutil.rmtree(hb_root, ignore_errors=True)
        return [state.outcome for state in states]

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, queue, states, running, workers, ctx, hb_root,
                  timeout_s, now) -> None:
        deferred = []
        while queue and len(running) < workers:
            index = queue.popleft()
            state = states[index]
            if state.eligible_at > now:
                deferred.append(index)
                continue
            if not self._breaker_allows(state):
                continue
            self._launch(state, running, ctx, hb_root, timeout_s, now)
        queue.extendleft(reversed(deferred))

    def _breaker_allows(self, state: _JobState) -> bool:
        key = state.job.breaker_key
        if self.breaker is None or not key:
            return True
        if self.breaker.allow(key):
            return True
        detail = (f"circuit breaker open for {key!r} "
                  f"({self.breaker._cells[key]['failures']} failures); "
                  "quarantined without attempting")
        state.outcome = WorkerOutcome(
            label=state.job.label, status="tripped", error=detail,
            error_type="CircuitOpenError", attempts=state.attempts,
            preemptions=state.preemptions, provenance="tripped")
        logger.info("%s: %s", state.job.label, detail)
        if HUB.enabled:
            HUB.metrics.counter("supervision.breaker.short_circuits").inc()
        return False

    def _launch(self, state, running, ctx, hb_root, timeout_s,
                now) -> None:
        state.attempts += 1
        if state.first_start is None:
            state.first_start = now
        recv_end, send_end = ctx.Pipe(duplex=False)
        hb_path = hb_root / f"job{state.index}.a{state.attempts}.hb"
        proc = ctx.Process(
            target=_child_main,
            args=(send_end, str(hb_path),
                  self.policy.heartbeat_interval_s, state.job.label,
                  state.job.fn, state.job.args, state.job.kwargs),
            daemon=True)
        proc.start()
        send_end.close()
        deadline = self.adaptive.deadline_for(timeout_s)
        running[state.index] = _Attempt(
            proc, recv_end, hb_path, now,
            None if deadline is None else now + deadline)

    # -- monitoring ----------------------------------------------------------

    @staticmethod
    def _await_messages(running: Dict[int, _Attempt],
                        poll_s: float) -> None:
        conns = {a.conn: a for a in running.values() if not a.got_message}
        if not conns:
            time.sleep(poll_s)
            return
        for conn in connection.wait(list(conns), timeout=poll_s):
            attempt = conns[conn]
            attempt.got_message = True
            try:
                attempt.message = conn.recv()
            except (EOFError, OSError):
                attempt.message = None  # died mid-send: treat as death

    @staticmethod
    def _drain(attempt: _Attempt) -> None:
        """Last-chance read on a dead worker's pipe.

        A child can send its payload and exit between two waits; the
        data outlives the sender, and reading it here keeps a clean
        completion from being misclassified as a death.
        """
        with contextlib.suppress(EOFError, OSError):
            if attempt.conn.poll(0):
                attempt.message = attempt.conn.recv()
                attempt.got_message = attempt.message is not None

    def _monitor(self, state: _JobState, attempt: _Attempt,
                 now: float) -> None:
        try:
            mtime = os.stat(attempt.hb_path).st_mtime_ns
        except OSError:
            mtime = None
        if mtime is not None and mtime != attempt.hb_mtime:
            attempt.hb_mtime = mtime
            attempt.hb_last_change = now
            attempt.hb_seen = True
        if attempt.preempt_reason is not None:
            if (now - attempt.preempt_at >= self.policy.term_grace_s
                    and attempt.proc.exitcode is None):
                with contextlib.suppress(OSError):
                    os.kill(attempt.proc.pid, signal.SIGKILL)
            return
        if attempt.deadline is not None and now > attempt.deadline:
            self._preempt(state, attempt, "deadline", now)
            return
        gap = now - attempt.hb_last_change
        if attempt.hb_seen and gap > self.policy.hang_grace_s:
            state.max_gap_s = max(state.max_gap_s, gap)
            if HUB.enabled:
                HUB.metrics.counter("supervision.heartbeat_gaps").inc()
            self._preempt(state, attempt, "hung", now, gap)

    def _preempt(self, state: _JobState, attempt: _Attempt, reason: str,
                 now: float, gap: float = 0.0) -> None:
        attempt.preempt_reason = reason
        attempt.preempt_at = now
        state.preemptions += 1
        budget = (attempt.deadline - attempt.started
                  if attempt.deadline is not None else 0.0)
        detail = (f"no heartbeat for {gap:.2f}s" if reason == "hung"
                  else f"exceeded {budget:.2f}s deadline")
        logger.warning("%s: worker pid %s %s (%s); SIGTERM "
                       "(SIGKILL after %.1fs)", state.job.label,
                       attempt.proc.pid, reason, detail,
                       self.policy.term_grace_s)
        if HUB.enabled:
            HUB.metrics.counter("supervision.preemptions").inc()
            HUB.emit(SupervisorEvent(kind="preempt",
                                     target=state.job.label,
                                     detail=f"{reason}: {detail}",
                                     wall_s=time.time()))
        with contextlib.suppress(OSError):
            os.kill(attempt.proc.pid, signal.SIGTERM)

    @staticmethod
    def _join(attempt: _Attempt) -> None:
        attempt.proc.join(timeout=5.0)
        with contextlib.suppress(OSError):
            attempt.conn.close()
        with contextlib.suppress(OSError, FileNotFoundError):
            os.unlink(attempt.hb_path)

    # -- finalization --------------------------------------------------------

    def _finish_message(self, state, attempt, queue, max_attempts,
                        backoff_s) -> None:
        message = attempt.message
        if not message:
            # EOF without a payload: the child died (crash, preemption
            # taking effect) and closed the pipe — classify by exit
            # code like any other death.
            self._finish_death(state, attempt, queue, max_attempts,
                               backoff_s)
            return
        if message[0] == "ok":
            self.adaptive.add(time.monotonic() - attempt.started)
            self._record_success(state, message[1])
            return
        _, error_type, error, transient = message
        if error_type == "KeyboardInterrupt":
            state.outcome = WorkerOutcome(
                label=state.job.label, status="failed", error=error,
                error_type=error_type, attempts=state.attempts,
                elapsed_s=self._elapsed(state),
                preemptions=state.preemptions, provenance="failed")
            self._aborted = True
            return
        self._record_failure(state, queue, max_attempts, backoff_s,
                             error_type, error, transient)

    def _finish_death(self, state, attempt, queue, max_attempts,
                      backoff_s) -> None:
        exitcode = attempt.proc.exitcode
        if HUB.enabled:
            HUB.metrics.counter("supervision.worker_deaths").inc()
        if attempt.preempt_reason == "deadline":
            budget = attempt.deadline - attempt.started
            self._record_failure(
                state, queue, max_attempts, backoff_s,
                "BenchmarkTimeoutError",
                f"{state.job.label}: preempted after exceeding its "
                f"{budget:.2f}s supervised deadline", False)
            return
        if attempt.preempt_reason == "hung":
            self._record_failure(
                state, queue, max_attempts, backoff_s,
                "WorkerHungError",
                f"{state.job.label}: worker hung (heartbeat stalled "
                f"{state.max_gap_s:.2f}s) and was preempted", True)
            return
        if exitcode is not None and exitcode < 0:
            sig = -exitcode
            oom = " (SIGKILL — possible OOM kill)" if sig == 9 else ""
            detail = f"worker killed by signal {sig}{oom}"
        else:
            detail = f"worker exited with status {exitcode} before " \
                     "returning a result"
        if HUB.enabled:
            HUB.emit(SupervisorEvent(kind="worker_death",
                                     target=state.job.label,
                                     detail=detail, wall_s=time.time()))
        self._record_failure(state, queue, max_attempts, backoff_s,
                             "WorkerCrashError",
                             f"{state.job.label}: {detail}", True)

    def _record_success(self, state: _JobState, result: Any) -> None:
        if self.breaker is not None and state.job.breaker_key:
            self.breaker.record_success(state.job.breaker_key)
        degraded = state.attempts > 1 or state.preemptions > 0
        state.outcome = WorkerOutcome(
            label=state.job.label, status="ok", result=result,
            attempts=state.attempts, elapsed_s=self._elapsed(state),
            preemptions=state.preemptions,
            heartbeat_gap_s=state.max_gap_s,
            provenance="degraded" if degraded else "completed")
        self._emit_span(state, "ok")

    def _record_failure(self, state, queue, max_attempts, backoff_s,
                        error_type, error, transient) -> None:
        state.last_error = error
        state.last_error_type = error_type
        tripped_now = False
        if self.breaker is not None and state.job.breaker_key:
            tripped_now = self.breaker.record_failure(
                state.job.breaker_key)
        retryable = (transient and state.attempts < max_attempts
                     and not tripped_now and not self._aborted)
        logger.warning("%s attempt %d/%d failed (%s: %s)%s",
                       state.job.label, state.attempts, max_attempts,
                       error_type, error,
                       "; retrying" if retryable else "")
        if retryable:
            if HUB.enabled:
                HUB.metrics.counter("supervision.retries").inc()
            state.eligible_at = (time.monotonic()
                                 + backoff_delay(backoff_s,
                                                 state.attempts))
            queue.append(state.index)
            return
        state.outcome = WorkerOutcome(
            label=state.job.label, status="failed", error=error,
            error_type=error_type, attempts=state.attempts,
            elapsed_s=self._elapsed(state),
            preemptions=state.preemptions,
            heartbeat_gap_s=state.max_gap_s, provenance="failed")
        self._emit_span(state, "failed")

    def _emit_span(self, state: _JobState, status: str) -> None:
        if HUB.enabled:
            HUB.emit(HarnessSpan(
                name=state.job.label,
                wall_start_s=time.time() - self._elapsed(state),
                wall_dur_s=self._elapsed(state), status=status,
                attempts=state.attempts,
                args={"error": state.last_error_type}
                if status != "ok" and state.last_error_type else None))

    @staticmethod
    def _elapsed(state: _JobState) -> float:
        if state.first_start is None:
            return 0.0
        return time.monotonic() - state.first_start

    def _reap(self, running: Dict[int, _Attempt]) -> None:
        for attempt in running.values():
            if attempt.proc.exitcode is None:
                with contextlib.suppress(OSError):
                    os.kill(attempt.proc.pid, signal.SIGTERM)
        deadline = time.monotonic() + self.policy.term_grace_s
        for attempt in running.values():
            attempt.proc.join(timeout=max(deadline - time.monotonic(),
                                          0.05))
            if attempt.proc.exitcode is None:
                with contextlib.suppress(OSError):
                    os.kill(attempt.proc.pid, signal.SIGKILL)
                attempt.proc.join(timeout=5.0)
            with contextlib.suppress(OSError):
                attempt.conn.close()


def _child_main(conn, hb_path: str, hb_interval: float, label: str,
                fn: Callable, args: Tuple, kwargs: Dict) -> None:
    """Worker entry: heartbeat + run + ship the result over the pipe."""
    global _ACTIVE_HEARTBEAT
    writer = HeartbeatWriter(hb_path, hb_interval)
    writer.start()
    _ACTIVE_HEARTBEAT = writer
    try:
        try:
            payload = ("ok", fn(*args, **kwargs))
        except BaseException as exc:  # ship, never raise across the pipe
            if isinstance(exc, KeyboardInterrupt):
                name, text = "KeyboardInterrupt", "interrupted"
            elif isinstance(exc, ReproError):
                name, text = type(exc).__name__, str(exc)
            else:
                name, text = "SimulationError", f"{label}: {exc!r}"
            payload = ("error", name, text, is_transient(exc))
        try:
            conn.send(payload)
        except Exception as exc:
            with contextlib.suppress(Exception):
                conn.send(("error", "WorkerCrashError",
                           f"{label}: result failed to serialize "
                           f"({exc!r})", False))
    finally:
        writer.stop()
        with contextlib.suppress(Exception):
            conn.close()
