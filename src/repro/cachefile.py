"""Crash-safe cache file I/O: atomic writes, checksums, advisory locks.

Every on-disk cache in this package (trace caches, run-summary caches)
goes through this module so the same guarantees hold everywhere:

* **Atomicity** — payloads are written to a temporary file in the target
  directory, flushed and ``fsync``'d, then moved into place with
  ``os.replace``.  A crash or interrupted write never leaves a partial
  file visible under the final name.
* **Integrity** — each entry starts with a magic tag and a SHA-256
  digest of the payload.  :func:`read_cache` verifies both and raises
  :class:`~repro.errors.CacheCorruptionError` on any mismatch, so a
  truncated or bit-flipped entry is *detected*, never silently served.
* **Isolation** — writers and readers take an advisory ``fcntl`` lock on
  a sidecar ``<name>.lock`` file, so two concurrent bench runs never
  interleave their writes to one entry.
* **Quarantine** — corrupt entries are renamed to ``<name>.corrupt[.N]``
  (and logged) instead of deleted, preserving the evidence for
  post-mortems while unblocking the rebuild.  The quarantine is capped:
  only the newest :func:`quarantine_keep` corrupt files per directory
  are kept (``REPRO_QUARANTINE_KEEP``, default 16), so a flapping
  writer cannot fill the disk with evidence; prunes are counted in
  telemetry (``cachefile.quarantine.pruned``).

Chaos: :func:`write_cache` is an injection site of the deterministic
chaos harness (:mod:`repro.chaos`) — an armed single-shot fault makes
one write fail with ``ENOSPC`` or produce a corrupt-on-disk entry
(digest over the real payload, payload bit-flipped), exactly the
storage faults the integrity layer exists to catch.  Nothing is
injected unless a chaos plan armed a fault in this process.

The entry layout is ``MAGIC (4 bytes) | sha256(payload) (32 bytes) |
payload (pickle)``.  Files written by older releases (bare pickles) fail
the magic check and are quarantined like any other corrupt entry; bump
``repro.harness.GENERATION`` is therefore *not* needed for this format
change — the checksum header makes old entries self-invalidating.
"""

from __future__ import annotations

import contextlib
import hashlib
import logging
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from . import chaos
from .errors import CacheCorruptionError
from .telemetry import HUB

try:  # advisory locks are POSIX-only; degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

logger = logging.getLogger(__name__)

#: Format tag of checksummed cache entries (bump on layout changes).
MAGIC = b"RPC1"

#: Bytes of the SHA-256 digest stored after the magic tag.
_DIGEST_BYTES = 32

PathLike = Union[str, Path]


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + fsync + replace).

    The temporary file lives in the target directory so the final
    ``os.replace`` is a same-filesystem rename.  On any failure the
    temporary file is removed; the final name is either the complete new
    content or whatever was there before — never a partial write.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


@contextlib.contextmanager
def file_lock(path: PathLike) -> Iterator[None]:
    """Advisory exclusive lock scoped to one cache entry.

    Locks a sidecar ``<name>.lock`` file (never the entry itself, which
    is replaced atomically and would orphan the lock).  Blocks until the
    lock is granted.  A no-op where ``fcntl`` is unavailable.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platform
        yield
        return
    lock_path = Path(str(path) + ".lock")
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    with open(lock_path, "a+b") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def quarantine_keep() -> int:
    """How many corrupt files a directory may hold (newest kept)."""
    try:
        return max(int(os.environ.get("REPRO_QUARANTINE_KEEP", 16)), 1)
    except ValueError:
        return 16


def _prune_quarantine(directory: Path, keep: int) -> int:
    """Drop all but the ``keep`` newest ``*.corrupt*`` files; count drops.

    Oldest-first by mtime: recent corruption is the evidence someone
    will actually look at; a months-old flapping writer's leavings are
    just disk pressure.  Races (another process pruning the same file)
    are ignored.
    """
    corpses = []
    try:
        for candidate in directory.iterdir():
            if ".corrupt" in candidate.name:
                with contextlib.suppress(OSError):
                    corpses.append((candidate.stat().st_mtime_ns,
                                    candidate))
    except OSError:
        return 0
    if len(corpses) <= keep:
        return 0
    corpses.sort()
    pruned = 0
    for _, victim in corpses[:len(corpses) - keep]:
        with contextlib.suppress(OSError):
            os.unlink(victim)
            pruned += 1
    if pruned:
        logger.info("pruned %d aged-out quarantined cache file(s) "
                    "from %s (keep=%d)", pruned, directory, keep)
        if HUB.enabled:
            HUB.metrics.counter("cachefile.quarantine.pruned").inc(pruned)
    return pruned


def quarantine(path: PathLike, reason: str) -> Optional[Path]:
    """Move a corrupt cache entry aside (``<name>.corrupt[.N]``) and log.

    Returns the quarantine path, or None if the entry vanished (another
    process quarantined it first — not an error under concurrent runs).
    The directory's quarantine population is then capped at
    :func:`quarantine_keep` (oldest pruned first).
    """
    path = Path(path)
    dest = path.with_name(path.name + ".corrupt")
    n = 0
    while dest.exists():
        n += 1
        dest = path.with_name(f"{path.name}.corrupt.{n}")
    try:
        os.replace(path, dest)
    except FileNotFoundError:
        return None
    logger.warning("quarantined corrupt cache entry %s -> %s (%s); "
                   "it will be rebuilt", path, dest.name, reason)
    if HUB.enabled:
        HUB.metrics.counter("cachefile.quarantined").inc()
    _prune_quarantine(path.parent, quarantine_keep())
    return dest


def write_cache(obj: Any, path: PathLike) -> None:
    """Pickle ``obj`` to ``path`` with checksum header, atomically.

    Callers that may race other processes should hold :func:`file_lock`
    around the read-check-write sequence; the write itself is atomic
    either way.
    """
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).digest()
    fault = chaos.consume_cache_fault()
    if fault == "enospc":
        raise chaos.enospc_error(path)
    if fault == "corrupt":
        # Digest stays honest, payload does not: the entry lands on
        # disk looking exactly like storage-layer bit rot, and the next
        # read must detect and quarantine it.
        payload = chaos.corrupt_bytes(payload)
    atomic_write_bytes(path, MAGIC + digest + payload)


def read_cache(path: PathLike) -> Any:
    """Load a checksummed cache entry written by :func:`write_cache`.

    Raises :class:`CacheCorruptionError` (with path and reason) on a
    missing/short header, wrong magic (legacy bare pickle included),
    checksum mismatch, or a payload that fails to unpickle.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CacheCorruptionError(f"{path}: unreadable ({exc})") from exc
    header = len(MAGIC) + _DIGEST_BYTES
    if len(blob) < header:
        raise CacheCorruptionError(
            f"{path}: truncated header ({len(blob)} bytes)")
    if blob[:len(MAGIC)] != MAGIC:
        raise CacheCorruptionError(
            f"{path}: bad magic {blob[:len(MAGIC)]!r} "
            "(legacy or foreign format)")
    digest = blob[len(MAGIC):header]
    payload = blob[header:]
    if hashlib.sha256(payload).digest() != digest:
        raise CacheCorruptionError(f"{path}: checksum mismatch "
                                   f"({len(payload)} payload bytes)")
    try:
        return pickle.loads(payload)
    except Exception as exc:  # checksummed payload should never fail;
        # anything here means a pickling-layer skew (class renamed/moved)
        raise CacheCorruptionError(
            f"{path}: payload failed to unpickle ({exc!r})") from exc


def load_or_quarantine(path: PathLike) -> Any:
    """Read a cache entry; on corruption quarantine it and return None.

    Missing files also return None (a plain cache miss).
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        return read_cache(path)
    except CacheCorruptionError as exc:
        quarantine(path, str(exc))
        return None
