#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md — thin wrapper over ``repro.figures.render``.

The maintained one-command flow is the figure pipeline, which runs the
committed registry through resumable sweeps and writes the markdown
(and the HTML dashboard) itself:

    PYTHONPATH=src python -m repro figures --format md --out out/
    cp out/EXPERIMENTS.md EXPERIMENTS.md

This script keeps the legacy log-based flow working for results the
registry does not cover yet.  The benches in ``benchmarks/`` print
grep-friendly lines of the form

    RESULT <key>: measured=<value> [paper=<value>]

Run them with output capture disabled and feed the log to this script:

    pytest benchmarks/ --benchmark-only -q -s | tee bench.log
    python scripts/make_experiments_md.py bench.log > EXPERIMENTS.md

Completed ``repro sweep`` artifact stores can be appended as extra
sections (each renders its speedup-vs-baseline matrix from the
checkpoints on disk — no re-simulation):

    python scripts/make_experiments_md.py bench.log \\
        --sweep .repro_sweeps/fig18 --sweep .repro_sweeps/fig19 \\
        > EXPERIMENTS.md

``--sweep`` also works without a bench log to render sweeps alone.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.figures.render import (HEADER, parse_results,  # noqa: E402
                                  render, render_sweep)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("log", nargs="?", default=None,
                        help="bench log with RESULT lines")
    parser.add_argument("--sweep", action="append", default=[],
                        metavar="DIR", dest="sweeps",
                        help="repro sweep artifact store to append "
                             "(repeatable)")
    args = parser.parse_args(argv)
    if args.log is None and not args.sweeps:
        parser.print_help(sys.stderr)
        return 2
    chunks = []
    if args.log is not None:
        results = parse_results(args.log)
        if not results:
            print("no RESULT lines found — did you run the benches "
                  "with -s?", file=sys.stderr)
            return 1
        chunks.append(render(results))
    else:
        chunks.append(HEADER)
    for store_root in args.sweeps:
        chunks.append(render_sweep(store_root))
    sys.stdout.write("\n".join(chunks))
    return 0


if __name__ == "__main__":
    sys.exit(main())
