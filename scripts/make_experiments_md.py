#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from a benchmark-suite log.

The benches in ``benchmarks/`` print grep-friendly lines of the form

    RESULT <key>: measured=<value> [paper=<value>]

Run them with output capture disabled and feed the log to this script:

    pytest benchmarks/ --benchmark-only -q -s | tee bench.log
    python scripts/make_experiments_md.py bench.log > EXPERIMENTS.md

Completed ``repro sweep`` artifact stores can be appended as extra
sections (each renders its speedup-vs-baseline matrix from the
checkpoints on disk — no re-simulation):

    python scripts/make_experiments_md.py bench.log \\
        --sweep .repro_sweeps/fig18 --sweep .repro_sweeps/fig19 \\
        > EXPERIMENTS.md

``--sweep`` also works without a bench log to render sweeps alone.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

RESULT_RE = re.compile(
    r"RESULT (?P<key>[\w.%+-]+): measured=(?P<measured>[-\w.%]+)"
    r"(?: paper=(?P<paper>[-\w.%]+))?")

#: (section title, paper claim, result-key prefix, commentary)
SECTIONS = [
    ("Figure 1 — execution-time breakdown",
     "≈88% of GPU time is spent in the raster process.",
     "fig1.",
     "Our synthetic scenes are vertex-light compared to commercial games; "
     "the geometry share comes mostly from per-draw-call overhead. The "
     "qualitative claim (raster dominates for every benchmark) holds."),
    ("Figure 2 — per-tile DRAM heatmap",
     "Hot tiles cluster around the character, HUD and detailed props; "
     "background tiles are cold.",
     "fig2.",
     "The regenerated heatmap shows the same structure: a hot cluster "
     "share far above uniform, and hot tiles overwhelmingly adjacent to "
     "other hot tiles."),
    ("Figure 4 — doubling cores in one Raster Unit",
     "16 of 32 benchmarks gain <1.50x from 4→8 cores; some <1.10x.",
     "fig4.",
     "Reproduced directionally: every speedup is far from the ideal 2x, "
     "and the memory-bound half scales worst. Our per-tile parallelism "
     "model is milder than the paper's real games, so fewer benchmarks "
     "fall below 1.5x."),
    ("Figure 6 — memory intensiveness vs PTR speedup",
     "Time-on-memory and PTR speedup are strongly anticorrelated; 16/32 "
     "benchmarks spend ≥25% of time on memory.",
     "fig6.",
     "The anticorrelation reproduces with the same ideal-L1 methodology. "
     "Our suite's memory fractions span 0–0.4."),
    ("Figure 7 — DRAM requests per 5000-cycle interval (CCS)",
     "Within-frame DRAM demand is strongly bursty.",
     "fig7.",
     "Clear burstiness on the baseline (peak ≫ mean); LIBRA's temperature "
     "scheduling lowers the coefficient of variation."),
    ("Figure 8 — frame-to-frame coherence",
     ">80% of tiles change their DRAM accesses by <20% between frames.",
     "fig8.",
     "The procedural workloads were built to have this property and the "
     "measured CDF confirms it — the temperature predictor's premise."),
    ("Table I — simulation parameters", "See paper Table I.", "table1.",
     "All cache/DRAM/organization parameters match Table I exactly "
     "(checked by assertions)."),
    ("Table II — benchmark suite",
     "32 games, 2D/2.5D/3D, >4MB average per-frame footprint.",
     "table2.",
     "Reconstruction: 16 codes from the paper text plus 16 synthetic "
     "additions; the 16/16 memory/compute split is enforced by design "
     "and verified by the Figure 6 measurement."),
    ("Figure 11 — LIBRA speedup (memory-intensive)",
     "PTR alone +13.2%; scheduler +7.7% more; total +20.9%.",
     "fig11.",
     "Shape reproduced: PTR alone gives a solid speedup and the adaptive "
     "scheduler adds on top for almost every benchmark. Our scheduler "
     "margin is smaller than the paper's — our interval-grain DRAM model "
     "understates how catastrophic fine-grain congestion is on real "
     "hardware."),
    ("Figure 12 — texture access latency",
     "PTR alone raises latency on several apps; LIBRA cuts it by 13.5% "
     "on average (up to 40%).",
     "fig12.",
     "The first half of the claim reproduces cleanly: PTR alone "
     "increases texture latency. LIBRA recovers part of that increase "
     "(and up to 12% on individual benchmarks like GrT/SuS) but not the "
     "paper's full 13.5% average — our interval-grain congestion model "
     "understates the latency LIBRA saves at fine grain."),
    ("Figure 13 — texture cache hit ratio",
     "LIBRA raises the overall texture hit ratio (avg +10.6%).",
     "fig13.",
     "LIBRA preserves the hit ratio relative to PTR (losing less than "
     "PTR does against the 8-core baseline, whose single larger L1 "
     "naturally hits more). The paper's +10.6% gain over the *baseline* "
     "does not reproduce: in our model the baseline's aggregated L1 is "
     "already replication-free, so there is less for supertiles to win "
     "back."),
    ("Figure 14 — DRAM accesses, LIBRA vs PTR",
     "No significant change in access count (balance, not volume).",
     "fig14.",
     "Reproduced: the normalized access count stays near 1.0 for every "
     "benchmark."),
    ("Figure 15 — total GPU energy",
     "PTR saves 5.5%; LIBRA 9.2% total.",
     "fig15.",
     "Reproduced in shape: both save energy (mostly static energy from "
     "shorter execution), LIBRA at least as much as PTR."),
    ("Figure 16 — static supertiles vs dynamic",
     "Static 2/4/8/16 supertiles: +0.6/2.1/2.8/3.2% over PTR; LIBRA ~+7%.",
     "fig16.",
     "LIBRA beats every static size on average; in our model large "
     "static supertiles are roughly neutral because cross-unit L2 "
     "sharing offsets their intra-unit locality gain."),
    ("Figure 17 — compute-intensive apps",
     "PTR +9.9%, scheduler only +1.7% more; never harmful.",
     "fig17.",
     "Reproduced: the adaptive controller keeps Z-order on "
     "high-hit-ratio apps, so LIBRA == PTR within noise."),
    ("Figure 18 — scaling Raster Units",
     "2/3/4 units: +20.9/31.3/28.8% over equal-core baselines.",
     "fig18.",
     "More units help and returns diminish, matching the paper's trend."),
    ("Figure 19 — threshold sensitivity",
     "Best thresholds: 0.25% (resize), 3% (ordering); curves are flat.",
     "fig19",
     "Reproduced: all threshold settings land within a narrow band, so "
     "the mechanism is robust to its tuning — same conclusion as the "
     "paper."),
    ("Section III-E — hardware overhead",
     "510×64-bit stats buffer (≈4KB, <0.2% of L2); ranking 13761 cycles, "
     "hidden under geometry.",
     "hw.",
     "All three numbers match the paper exactly (they are arithmetic "
     "properties of the design, independent of workloads)."),
    ("Figure 9 — tile vs supertile heat (HCR)",
     "Hotspots cover clusters of neighboring tiles; supertile "
     "aggregation preserves the heat structure.",
     "fig9.",
     "Reproduced: supertile heat keeps a strong hot/median contrast and "
     "correlates tightly with tile-level heat."),
    ("Ablations (beyond the paper)",
     "—",
     "ablation.",
     "Extra studies this reproduction adds: the scheduling design space "
     "(Hilbert / reverse-frame / random / oracle-predictor) and LIBRA vs "
     "PFR-style inter-frame parallelism. Notable honest findings: the "
     "adaptive LIBRA matches or beats the perfect-predictor oracle "
     "(frame coherence costs nothing), and on this model both "
     "reverse-frame traversal (cross-frame L2 reuse) and PFR "
     "(inter-frame parallelism) are strong competitors — at the price, "
     "for PFR, of a full frame of added latency that a speedup metric "
     "does not show."),
    ("Model robustness (beyond the paper)",
     "—",
     "robust.",
     "The LIBRA >= PTR > baseline ordering survives halving/doubling the "
     "coupling interval and enabling AFBC-style FB compression."),
]

HEADER = """# EXPERIMENTS — paper vs. measured

Generated from a full run of the benchmark suite
(`pytest benchmarks/ --benchmark-only -q -s | tee bench.log`, then
`python scripts/make_experiments_md.py bench.log`).

Absolute cycle counts are not comparable to the paper (different
simulator, synthetic workloads, reduced 960x512 resolution — see
DESIGN.md); what is compared is the *shape* of each result: orderings,
signs, splits, and rough magnitudes. Every row below is also asserted by
the corresponding bench, so `pytest benchmarks/` failing means a shape
regressed.
"""


def parse_results(path: str) -> Dict[str, Tuple[str, Optional[str]]]:
    results: Dict[str, Tuple[str, Optional[str]]] = {}
    with open(path) as handle:
        for line in handle:
            match = RESULT_RE.search(line)
            if match:
                results[match.group("key")] = (match.group("measured"),
                                               match.group("paper"))
    return results


def render(results: Dict[str, Tuple[str, Optional[str]]]) -> str:
    out = [HEADER]
    used = set()
    for title, claim, prefix, commentary in SECTIONS:
        rows = {k: v for k, v in results.items() if k.startswith(prefix)}
        used.update(rows)
        out.append(f"\n## {title}\n")
        out.append(f"**Paper:** {claim}\n")
        if rows:
            out.append("| metric | measured | paper |")
            out.append("|---|---|---|")
            for key, (measured, paper) in sorted(rows.items()):
                short = key[len(prefix):].lstrip(".")
                out.append(f"| {short} | {measured} | {paper or '—'} |")
            out.append("")
        else:
            out.append("*(no RESULT lines found in the log for this "
                       "experiment)*\n")
        out.append(f"{commentary}\n")
    leftovers = {k: v for k, v in results.items() if k not in used}
    if leftovers:
        out.append("\n## Other recorded results\n")
        out.append("| metric | measured | paper |")
        out.append("|---|---|---|")
        for key, (measured, paper) in sorted(leftovers.items()):
            out.append(f"| {key} | {measured} | {paper or '—'} |")
        out.append("")
    return "\n".join(out)


def render_sweep(store_root: str) -> str:
    """One markdown section for a completed ``repro sweep`` store.

    Reads the manifest and the per-point checkpoints (through the
    checksum layer — corrupt artifacts are reported as missing cells,
    never rendered) and pivots them with the same aggregation ``repro
    sweep`` prints, so the committed table equals the CLI output.
    """
    from repro.experiments import (ArtifactStore, ExperimentSpec,
                                   PointOutcome, SweepResult,
                                   speedup_matrix)
    store = ArtifactStore(store_root)
    manifest = store.read_manifest()
    if manifest is None:
        raise SystemExit(f"{store_root}: not a sweep artifact store "
                         "(no readable manifest.json)")
    spec = ExperimentSpec.from_dict(manifest["spec"])
    points = spec.expand()
    done = store.load_completed(points)
    result = SweepResult(spec=spec, store_root=Path(store_root))
    for point in points:
        summary = done.get(point.point_id)
        if summary is None:
            result.outcomes.append(PointOutcome(
                point=point, status="skipped", error="no artifact",
                error_type="missing"))
        else:
            result.outcomes.append(PointOutcome(
                point=point, status="ok", summary=summary, resumed=True))
    matrix = speedup_matrix(result)
    out = [f"\n## Sweep: {spec.name}\n",
           f"Grid: benchmarks={', '.join(spec.benchmarks)}; "
           f"kinds={', '.join(spec.kinds)}; "
           + "; ".join(f"{a}={v}" for a, v in spec.axes.items())
           + f"; frames={spec.frames} at {spec.width}x{spec.height} "
           f"({len(done)}/{len(points)} points on disk in "
           f"`{store_root}`).\n",
           matrix.to_markdown(), ""]
    if matrix.telemetry:
        out += ["\n### Merged telemetry (summed across all completed "
                "points)\n",
                "| metric | value |", "|---|---|"]
        out += [f"| `{name}` | {value:,g} |"
                for name, value in sorted(matrix.telemetry.items())
                if ".le_" not in name]
        out.append("")
    return "\n".join(out)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("log", nargs="?", default=None,
                        help="bench log with RESULT lines")
    parser.add_argument("--sweep", action="append", default=[],
                        metavar="DIR", dest="sweeps",
                        help="repro sweep artifact store to append "
                             "(repeatable)")
    args = parser.parse_args(argv)
    if args.log is None and not args.sweeps:
        parser.print_help(sys.stderr)
        return 2
    chunks = []
    if args.log is not None:
        results = parse_results(args.log)
        if not results:
            print("no RESULT lines found — did you run the benches "
                  "with -s?", file=sys.stderr)
            return 1
        chunks.append(render(results))
    else:
        chunks.append(HEADER)
    for store_root in args.sweeps:
        chunks.append(render_sweep(store_root))
    sys.stdout.write("\n".join(chunks))
    return 0


if __name__ == "__main__":
    sys.exit(main())
