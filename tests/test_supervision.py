"""Worker-lifecycle supervision: heartbeats, deadlines, breaker, timers.

Covers the :mod:`repro.supervision` building blocks in isolation plus
the :class:`Supervisor` event loop end to end against real forked
processes — crashes, hangs, blown deadlines, circuit breaking — and the
nesting fix of :func:`repro.harness._wall_clock_limit`.
"""

import os
import random
import signal
import time
from pathlib import Path

import pytest

from repro.errors import BenchmarkTimeoutError
from repro.harness import _wall_clock_limit
from repro.supervision import (AdaptiveDeadline, CircuitBreaker,
                               HeartbeatWriter, SupervisedJob,
                               SupervisionPolicy, Supervisor,
                               backoff_delay, pause_heartbeat)
from repro import supervision

pytestmark = pytest.mark.skipif(
    not supervision.available(),
    reason="supervised execution needs the fork start method")


# -- job targets (module-level: executed inside forked workers) --------------

def _ok_job(value):
    return {"value": value, "pid": os.getpid()}


def _crash_job():
    os._exit(17)


def _hang_job():
    # A real hang: main thread stuck AND heartbeats silenced (a live
    # heartbeat thread would correctly mask a sleeping main thread).
    pause_heartbeat()
    time.sleep(600)


def _sleep_job(seconds):
    time.sleep(seconds)
    return "done"


def _flaky_job(flag_path):
    # Crash on the first invocation only (state via the filesystem —
    # worker memory dies with the worker).
    if not os.path.exists(flag_path):
        Path(flag_path).write_text("seen")
        os._exit(9)
    return "recovered"


def _raise_job():
    raise ValueError("deliberate")


def _unpicklable_job():
    return lambda: None


# -- heartbeats --------------------------------------------------------------

class TestHeartbeatWriter:
    def test_touches_file_repeatedly(self, tmp_path):
        path = tmp_path / "hb"
        writer = HeartbeatWriter(path, interval_s=0.01)
        writer.start()
        try:
            deadline = time.time() + 5
            while not path.exists() and time.time() < deadline:
                time.sleep(0.005)
            first = path.stat().st_mtime_ns
            deadline = time.time() + 5
            while (path.stat().st_mtime_ns == first
                   and time.time() < deadline):
                time.sleep(0.005)
            assert path.stat().st_mtime_ns != first
            assert not writer.degraded
        finally:
            writer.stop()

    def test_unwritable_destination_degrades_not_dies(self, tmp_path):
        # Missing parent directory => every write raises OSError, the
        # model for a read-only or full filesystem.  The writer must
        # flip to degraded and the owning thread/worker must survive.
        path = tmp_path / "no_such_dir" / "hb"
        writer = HeartbeatWriter(path, interval_s=0.01)
        writer.start()
        try:
            deadline = time.time() + 5
            while not writer.degraded and time.time() < deadline:
                time.sleep(0.005)
            assert writer.degraded
            assert writer.is_alive()
            assert not path.exists()
        finally:
            writer.stop()

    def test_pause_stops_beats(self, tmp_path):
        path = tmp_path / "hb"
        writer = HeartbeatWriter(path, interval_s=0.01)
        writer.start()
        try:
            deadline = time.time() + 5
            while not path.exists() and time.time() < deadline:
                time.sleep(0.005)
            writer.pause()
            time.sleep(0.05)
            frozen = path.stat().st_mtime_ns
            time.sleep(0.1)
            assert path.stat().st_mtime_ns == frozen
        finally:
            writer.stop()

    def test_pause_heartbeat_noop_outside_worker(self):
        pause_heartbeat()  # must not raise in the driver process


# -- retry backoff -----------------------------------------------------------

class TestBackoffDelay:
    def test_jitter_within_bounds_and_exponential(self):
        rng_state = supervision._JITTER.getstate()
        try:
            supervision._JITTER.seed(1234)
            for attempt in (1, 2, 3):
                base = 0.25 * (2 ** (attempt - 1))
                for _ in range(50):
                    delay = backoff_delay(0.25, attempt)
                    assert base <= delay <= base * 1.5
        finally:
            supervision._JITTER.setstate(rng_state)

    def test_jitter_actually_varies(self):
        rng_state = supervision._JITTER.getstate()
        try:
            supervision._JITTER.seed(99)
            delays = {backoff_delay(1.0, 1) for _ in range(20)}
            assert len(delays) > 1
        finally:
            supervision._JITTER.setstate(rng_state)


# -- adaptive deadlines ------------------------------------------------------

class TestAdaptiveDeadline:
    def test_no_information_no_deadline(self):
        assert AdaptiveDeadline().deadline_for(None) is None

    def test_explicit_timeout_is_floor(self):
        adaptive = AdaptiveDeadline(factor=4.0, min_samples=2)
        for duration in (0.01, 0.01, 0.01):
            adaptive.add(duration)
        # median * factor = 0.04 << timeout: the explicit budget wins.
        assert adaptive.deadline_for(30.0) == 30.0

    def test_median_extends_small_timeout(self):
        adaptive = AdaptiveDeadline(factor=4.0, min_samples=2,
                                    floor_s=0.0)
        for duration in (10.0, 12.0, 14.0):
            adaptive.add(duration)
        assert adaptive.deadline_for(5.0) == pytest.approx(48.0)

    def test_engages_only_after_min_samples(self):
        adaptive = AdaptiveDeadline(factor=4.0, min_samples=3)
        adaptive.add(10.0)
        adaptive.add(10.0)
        assert adaptive.deadline_for(None) is None
        adaptive.add(10.0)
        assert adaptive.deadline_for(None) == pytest.approx(40.0)

    def test_floor_protects_tiny_medians(self):
        adaptive = AdaptiveDeadline(factor=4.0, min_samples=1,
                                    floor_s=0.5)
        adaptive.add(0.001)
        assert adaptive.deadline_for(None) == 0.5


# -- circuit breaker ---------------------------------------------------------

class TestCircuitBreaker:
    def test_trips_at_threshold_and_short_circuits(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=300.0)
        assert breaker.allow("bm|libra")
        assert not breaker.record_failure("bm|libra", now=1.0)
        assert not breaker.record_failure("bm|libra", now=2.0)
        assert breaker.record_failure("bm|libra", now=3.0)  # trips
        assert breaker.state_of("bm|libra") == "open"
        assert not breaker.allow("bm|libra", now=4.0)
        assert breaker.allow("bm|baseline", now=4.0)  # other keys clean
        assert breaker.open_keys == ["bm|libra"]
        assert len(breaker.trip_log) == 1

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(threshold=3)
        breaker.record_failure("k", now=1.0)
        breaker.record_failure("k", now=2.0)
        breaker.record_success("k")
        assert not breaker.record_failure("k", now=3.0)
        assert breaker.state_of("k") == "closed"

    def test_half_open_admits_single_probe(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=10.0)
        breaker.record_failure("k", now=100.0)
        assert not breaker.allow("k", now=105.0)  # still cooling
        assert breaker.allow("k", now=111.0)      # the probe
        assert breaker.state_of("k") == "half_open"
        assert not breaker.allow("k", now=111.5)  # only one probe

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=10.0)
        breaker.record_failure("k", now=0.0)
        assert breaker.allow("k", now=20.0)
        breaker.record_success("k")
        assert breaker.state_of("k") == "closed"
        assert breaker.allow("k", now=20.5)
        assert breaker.allow("k", now=20.6)  # no probe throttle anymore

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=10.0)
        breaker.record_failure("k", now=0.0)
        assert breaker.allow("k", now=20.0)
        assert breaker.record_failure("k", now=20.1)  # reopen = a trip
        assert breaker.state_of("k") == "open"
        assert not breaker.allow("k", now=21.0)
        assert breaker.allow("k", now=31.0)  # cooldown restarts

    def test_state_round_trip(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=50.0)
        breaker.record_failure("a", now=1.0)
        breaker.record_failure("a", now=2.0)
        breaker.record_failure("b", now=3.0)
        restored = CircuitBreaker.from_state(breaker.to_state(),
                                             threshold=2, cooldown_s=50.0)
        assert restored.state_of("a") == "open"
        assert restored.state_of("b") == "closed"
        assert not restored.allow("a", now=10.0)
        assert len(restored.trip_log) == 1

    def test_from_state_tolerates_garbage(self):
        for garbage in (None, [], {"cells": "nope"}, {"cells": {"k": 3}}):
            breaker = CircuitBreaker.from_state(garbage)
            assert breaker.allow("k")


# -- SIGALRM nesting (the _wall_clock_limit satellite fix) -------------------

class TestWallClockNesting:
    def test_inner_block_does_not_cancel_outer_budget(self):
        # Outer 0.5s budget; a quick inner 5s-limited block must give
        # the outer timer back, so the later slow section still trips
        # the *outer* limit.  Before the fix the inner block's exit
        # cancelled the outer timer and this hung until the sleep ended.
        with pytest.raises(BenchmarkTimeoutError, match="outer"):
            with _wall_clock_limit(0.5, "outer"):
                with _wall_clock_limit(5.0, "inner"):
                    time.sleep(0.05)
                time.sleep(2.0)

    def test_inner_timeout_still_fires(self):
        with _wall_clock_limit(5.0, "outer"):
            with pytest.raises(BenchmarkTimeoutError, match="inner"):
                with _wall_clock_limit(0.1, "inner"):
                    time.sleep(2.0)

    def test_expired_outer_fires_on_restore(self):
        # The outer budget runs out entirely inside the inner block;
        # restoring must re-arm with an epsilon so it fires promptly,
        # not silently never.
        with pytest.raises(BenchmarkTimeoutError, match="outer"):
            with _wall_clock_limit(0.1, "outer"):
                with _wall_clock_limit(5.0, "inner"):
                    time.sleep(0.4)
                time.sleep(5.0)
                signal.pause()  # pragma: no cover - alarm fires first

    def test_handler_and_timer_fully_restored(self):
        before_handler = signal.getsignal(signal.SIGALRM)
        with _wall_clock_limit(5.0, "outer"):
            pass
        assert signal.getsignal(signal.SIGALRM) is before_handler
        remaining, _ = signal.setitimer(signal.ITIMER_REAL, 0.0)
        assert remaining == 0.0


# -- the supervisor end to end -----------------------------------------------

def _policy(**overrides):
    defaults = dict(heartbeat_interval_s=0.02, hang_grace_s=0.4,
                    term_grace_s=0.3, poll_interval_s=0.02,
                    deadline_floor_s=30.0)
    defaults.update(overrides)
    return SupervisionPolicy(**defaults)


class TestSupervisor:
    def test_success_returns_result_with_completed_provenance(self):
        outcomes = Supervisor(_policy()).run(
            [SupervisedJob("a", _ok_job, args=(41,)),
             SupervisedJob("b", _ok_job, args=(42,))], workers=2)
        assert [o.status for o in outcomes] == ["ok", "ok"]
        assert [o.result["value"] for o in outcomes] == [41, 42]
        assert all(o.provenance == "completed" for o in outcomes)
        # genuinely ran in worker processes, not the driver
        assert all(o.result["pid"] != os.getpid() for o in outcomes)

    def test_crashed_worker_is_detected_and_reported(self):
        outcomes = Supervisor(_policy()).run(
            [SupervisedJob("boom", _crash_job)], max_attempts=1)
        (outcome,) = outcomes
        assert outcome.status == "failed"
        assert outcome.error_type == "WorkerCrashError"
        assert "17" in outcome.error

    def test_crash_is_retried_and_degraded(self, tmp_path):
        flag = tmp_path / "flag"
        outcomes = Supervisor(_policy()).run(
            [SupervisedJob("flaky", _flaky_job, args=(str(flag),))],
            max_attempts=2, backoff_s=0.01)
        (outcome,) = outcomes
        assert outcome.status == "ok"
        assert outcome.result == "recovered"
        assert outcome.attempts == 2
        assert outcome.provenance == "degraded"

    def test_hung_worker_is_preempted(self):
        outcomes = Supervisor(_policy()).run(
            [SupervisedJob("frozen", _hang_job)], max_attempts=1)
        (outcome,) = outcomes
        assert outcome.status == "failed"
        assert outcome.error_type == "WorkerHungError"
        assert outcome.preemptions == 1

    def test_deadline_preempts_and_does_not_retry(self):
        start = time.monotonic()
        outcomes = Supervisor(_policy(deadline_floor_s=0.5)).run(
            [SupervisedJob("slow", _sleep_job, args=(30.0,))],
            timeout_s=0.4, max_attempts=3)
        (outcome,) = outcomes
        assert time.monotonic() - start < 15.0
        assert outcome.status == "failed"
        assert outcome.error_type == "BenchmarkTimeoutError"
        assert outcome.attempts == 1  # deadline blowouts are terminal
        assert outcome.preemptions == 1

    def test_worker_exception_travels_back(self):
        outcomes = Supervisor(_policy()).run(
            [SupervisedJob("raise", _raise_job)], max_attempts=2)
        (outcome,) = outcomes
        assert outcome.status == "failed"
        assert outcome.error_type == "SimulationError"
        assert "deliberate" in outcome.error
        assert outcome.attempts == 1  # non-transient: no retry

    def test_unpicklable_result_fails_cleanly(self):
        outcomes = Supervisor(_policy()).run(
            [SupervisedJob("lambda", _unpicklable_job)], max_attempts=1)
        (outcome,) = outcomes
        assert outcome.status == "failed"
        assert "serialize" in outcome.error

    def test_breaker_trips_and_quarantines_followers(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=600.0)
        jobs = [SupervisedJob(f"c{i}", _crash_job, breaker_key="bm|bad")
                for i in range(4)]
        outcomes = Supervisor(_policy(), breaker=breaker).run(
            jobs, max_attempts=1, workers=1)
        statuses = [o.status for o in outcomes]
        assert statuses[:2] == ["failed", "failed"]
        assert statuses[2:] == ["tripped", "tripped"]
        tripped = outcomes[2]
        assert tripped.error_type == "CircuitOpenError"
        assert tripped.provenance == "tripped"
        assert tripped.attempts == 0
        assert breaker.state_of("bm|bad") == "open"

    def test_unwritable_heartbeat_root_degrades_to_deadline_only(
            self, tmp_path):
        # Point the heartbeat files at a directory that cannot exist:
        # workers lose heartbeats (read-only/full filesystem model) but
        # jobs still run, and monitoring degrades to deadlines only.
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory should be")
        policy = _policy(heartbeat_root=blocker / "hb")
        outcomes = Supervisor(policy).run(
            [SupervisedJob("a", _ok_job, args=(7,))], timeout_s=30.0)
        (outcome,) = outcomes
        assert outcome.status == "ok"
        assert outcome.result["value"] == 7

    def test_empty_job_list(self):
        assert Supervisor(_policy()).run([]) == []
