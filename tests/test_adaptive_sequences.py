"""Scenario tests: the adaptive FSMs over multi-frame sequences."""

from repro.config import SchedulerConfig
from repro.core.adaptive import (FrameObservation, OrderSelector,
                                 SupertileResizer, TEMPERATURE, Z_ORDER)


def obs(cycles, hit):
    return FrameObservation(raster_cycles=cycles, texture_hit_ratio=hit)


class TestOrderSelectorScenarios:
    def make(self):
        return OrderSelector(SchedulerConfig())

    def test_stable_memory_bound_app_stays_temperature(self):
        fsm = self.make()
        decisions = []
        cycles = 1_000_000
        for _ in range(10):
            fsm.observe(obs(cycles, 0.55))
            decisions.append(fsm.decide())
            cycles = int(cycles * 1.001)  # sub-threshold drift
        assert decisions[0] == TEMPERATURE
        # Once settled, no flapping.
        assert all(d == TEMPERATURE for d in decisions)

    def test_stable_compute_bound_app_stays_zorder(self):
        fsm = self.make()
        decisions = []
        for _ in range(10):
            fsm.observe(obs(1_000_000, 0.95))
            decisions.append(fsm.decide())
        assert all(d == Z_ORDER for d in decisions)

    def test_scene_change_to_memory_bound_switches(self):
        fsm = self.make()
        for _ in range(4):
            fsm.observe(obs(1_000_000, 0.95))
            fsm.decide()
        # Battle starts: hit collapses, cycles jump.
        fsm.observe(obs(1_400_000, 0.55))
        assert fsm.decide() == TEMPERATURE

    def test_scene_change_back_to_menu_switches_back(self):
        fsm = self.make()
        fsm.observe(obs(1_400_000, 0.55))
        assert fsm.decide() == TEMPERATURE
        fsm.observe(obs(1_350_000, 0.55))
        fsm.decide()
        # Menu: cheap frames, hot caches.
        fsm.observe(obs(600_000, 0.96))
        assert fsm.decide() == Z_ORDER

    def test_noise_does_not_flap(self):
        fsm = self.make()
        fsm.observe(obs(1_000_000, 0.55))
        first = fsm.decide()
        flips = 0
        previous = first
        for i in range(20):
            jitter = 1.0 + (0.01 if i % 2 == 0 else -0.01)
            fsm.observe(obs(int(1_000_000 * jitter), 0.55 + 0.002 * (i % 3)))
            decision = fsm.decide()
            if decision != previous:
                flips += 1
            previous = decision
        assert flips == 0


class TestResizerScenarios:
    def make(self, threshold=0.0025):
        return SupertileResizer(SchedulerConfig(
            supertile_resize_threshold=threshold))

    def test_monotone_improvement_walks_to_max(self):
        r = self.make()
        cycles = 1_000_000
        sizes = []
        for _ in range(6):
            r.observe(cycles)
            sizes.append(r.size)
            cycles = int(cycles * 0.9)
        assert 16 in sizes  # reached the top of the ladder

    def test_converges_on_plateau(self):
        r = self.make()
        r.observe(1_000_000)
        r.observe(900_000)   # improvement -> move
        settled = r.size
        for _ in range(10):
            r.observe(900_000)  # flat: within hysteresis
        assert r.size == settled

    def test_oscillating_cost_bounded_walk(self):
        r = self.make()
        sizes = set()
        cycles = [1_000_000, 1_100_000] * 8
        for c in cycles:
            r.observe(c)
            sizes.add(r.size)
        assert sizes <= {2, 4, 8, 16}

    def test_zero_threshold_reacts_to_everything(self):
        r = self.make(threshold=0.0)
        r.observe(1_000_000)
        r.observe(999_999)  # any improvement moves
        assert r.size == 8
