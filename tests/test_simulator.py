"""Tests for the top-level GPUSimulator and RunResult aggregation."""

import pytest

from repro.config import RasterUnitConfig, small_config
from repro.core import LibraScheduler, ZOrderScheduler
from repro.gpu.simulator import GPUSimulator, RunResult
from repro.gpu.workload import FrameTrace, TileWorkload


def traces(n=3):
    out = []
    for frame in range(n):
        workloads = {}
        for y in range(4):
            for x in range(4):
                base = (y * 4 + x) * 1000 + frame
                workloads[(x, y)] = TileWorkload(
                    tile=(x, y), instructions=2000, fragments=250,
                    texture_lines=[base + i for i in range(10)],
                    texture_fetches=20,
                    num_primitives=1, prim_fragments=[250],
                    prim_instructions=[2000])
        out.append(FrameTrace(frame_index=frame, tiles_x=4, tiles_y=4,
                              tile_size=32, workloads=workloads,
                              geometry_cycles=1000))
    return out


def config(num_rus=2):
    return small_config(num_raster_units=num_rus,
                        raster_unit=RasterUnitConfig(num_cores=4))


class TestRun:
    def test_runs_all_frames(self):
        result = GPUSimulator(config()).run(traces(3))
        assert result.num_frames == 3

    def test_default_scheduler_is_zorder(self):
        sim = GPUSimulator(config())
        assert isinstance(sim.scheduler, ZOrderScheduler)

    def test_aggregates(self):
        result = GPUSimulator(config()).run(traces(3))
        assert result.total_cycles == sum(f.total_cycles
                                          for f in result.frames)
        assert result.geometry_cycles == 3000
        assert result.total_energy_j > 0
        assert result.fps > 0

    def test_fps_formula(self):
        result = GPUSimulator(config()).run(traces(2))
        expected = 2 / (result.total_cycles / result.frequency_hz)
        assert result.fps == pytest.approx(expected)

    def test_deterministic(self):
        a = GPUSimulator(config()).run(traces(3))
        b = GPUSimulator(config()).run(traces(3))
        assert a.total_cycles == b.total_cycles
        assert a.raster_dram_accesses == b.raster_dram_accesses

    def test_speedup_over(self):
        slow = GPUSimulator(config(num_rus=1)).run(traces(3))
        fast = GPUSimulator(config(num_rus=2)).run(traces(3))
        assert fast.speedup_over(slow) > 1.0
        assert slow.speedup_over(slow) == pytest.approx(1.0)

    def test_speedup_requires_cycles(self):
        empty = RunResult(config_name="x")
        with pytest.raises(ValueError):
            empty.speedup_over(empty)

    def test_libra_scheduler_integrates(self):
        cfg = config()
        sim = GPUSimulator(cfg, scheduler=LibraScheduler(cfg.scheduler))
        result = sim.run(traces(4))
        assert result.num_frames == 4
        orders = {f.order for f in result.frames}
        assert orders <= {"zorder", "temperature"}

    def test_name_defaults_to_scheduler(self):
        assert GPUSimulator(config()).name == "ZOrderScheduler"
        assert GPUSimulator(config(), name="ptr").name == "ptr"

    def test_empty_run(self):
        result = GPUSimulator(config()).run([])
        assert result.num_frames == 0
        assert result.fps == 0.0
        assert result.mean_texture_hit_ratio == 0.0

    def test_energy_counts_totals(self):
        result = GPUSimulator(config()).run(traces(2))
        counts = result.total_energy_counts()
        assert counts.cycles == result.total_cycles
        assert counts.core_instructions == 2 * 16 * 2000
