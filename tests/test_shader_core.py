"""Tests for the core-cluster throughput model."""

import pytest

from repro.config import RasterUnitConfig, ShaderCoreConfig
from repro.gpu.shader_core import CoreCluster
from repro.gpu.workload import TileWorkload


def cluster(cores=4, ipc=1.0, mshrs=4, min_frags=32):
    return CoreCluster(
        RasterUnitConfig(num_cores=cores),
        ShaderCoreConfig(ipc=ipc, mshrs=mshrs,
                         min_fragments_per_core=min_frags))


class TestBudgets:
    def test_instruction_budget(self):
        assert cluster(cores=4, ipc=1.0).instruction_budget(1000) == 4000

    def test_ipc_scales_budget(self):
        assert cluster(cores=4, ipc=2.0).instruction_budget(100) == 800

    def test_miss_budget_littles_law(self):
        c = cluster(cores=4, mshrs=4)  # 16 outstanding
        assert c.miss_budget(1000, 100.0) == 160

    def test_miss_budget_shrinks_with_latency(self):
        c = cluster()
        assert c.miss_budget(1000, 800.0) < c.miss_budget(1000, 100.0)

    def test_miss_budget_at_least_one(self):
        assert cluster().miss_budget(1, 1e9) == 1

    def test_miss_budget_rejects_bad_latency(self):
        with pytest.raises(ValueError):
            cluster().miss_budget(1000, 0.0)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            cluster(cores=0)


class TestEffectiveCores:
    def test_large_primitive_fills_all_cores(self):
        assert cluster(cores=8).effective_cores(1024) == 8

    def test_small_primitive_uses_one_core(self):
        assert cluster(cores=8).effective_cores(10) == 1

    def test_medium_primitive_partial(self):
        assert cluster(cores=8, min_frags=32).effective_cores(100) == 3

    def test_zero_fragments(self):
        assert cluster().effective_cores(0) == 1


class TestTileComputeCycles:
    def test_per_primitive_costing(self):
        c = cluster(cores=4, min_frags=32)
        w = TileWorkload(tile=(0, 0), instructions=1600, fragments=200,
                         num_primitives=2,
                         prim_fragments=[100, 100],
                         prim_instructions=[800, 800])
        # Each primitive fills 3 cores: 800/3 cycles, plus 2x setup.
        expected = 2 * c.primitive_setup_cycles + 2 * 800 / 3
        assert c.tile_compute_cycles(w) == pytest.approx(expected)

    def test_small_primitives_serialize(self):
        c = cluster(cores=8)
        small = TileWorkload(tile=(0, 0), instructions=800, fragments=80,
                             num_primitives=8,
                             prim_fragments=[10] * 8,
                             prim_instructions=[100] * 8)
        big = TileWorkload(tile=(0, 0), instructions=800, fragments=800,
                           num_primitives=1,
                           prim_fragments=[800],
                           prim_instructions=[800])
        assert c.tile_compute_cycles(small) > c.tile_compute_cycles(big)

    def test_doubling_cores_sublinear_for_small_prims(self):
        # The Figure 4 effect: small primitives do not speed up when the
        # core count doubles.
        w = TileWorkload(tile=(0, 0), instructions=3200, fragments=320,
                         num_primitives=8,
                         prim_fragments=[40] * 8,
                         prim_instructions=[400] * 8)
        four = cluster(cores=4).tile_compute_cycles(w)
        eight = cluster(cores=8).tile_compute_cycles(w)
        assert four / eight < 1.5

    def test_doubling_cores_near_linear_for_big_prims(self):
        w = TileWorkload(tile=(0, 0), instructions=8000, fragments=1000,
                         num_primitives=1,
                         prim_fragments=[1000],
                         prim_instructions=[8000])
        four = cluster(cores=4).tile_compute_cycles(w)
        eight = cluster(cores=8).tile_compute_cycles(w)
        assert four / eight > 1.8

    def test_fallback_without_prim_detail(self):
        c = cluster(cores=4)
        w = TileWorkload(tile=(0, 0), instructions=4000, fragments=100)
        assert c.tile_compute_cycles(w) == pytest.approx(1000.0)

    def test_empty_tile_is_free_compute(self):
        c = cluster()
        assert c.tile_compute_cycles(TileWorkload(tile=(0, 0))) == 0.0
