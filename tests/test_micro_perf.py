"""The synthetic micro perf cases and the numpy dependency gate."""

from __future__ import annotations

from unittest import mock

import numpy as np
import pytest

import repro.compat as compat
from repro.errors import (ConfigValidationError, DependencyError,
                          ReproError)
from repro.perf.baseline import (DEFAULT_CASES, compare_baselines,
                                 record_baseline)
from repro.perf.micro import micro_cache_lru, micro_dram_batch, run_micro


class TestMicroKernels:

    def test_cache_case_deterministic(self):
        assert micro_cache_lru(chunk=2048, chunks=6) \
            == micro_cache_lru(chunk=2048, chunks=6)

    def test_dram_case_deterministic(self):
        assert micro_dram_batch(chunk=2048, chunks=6) \
            == micro_dram_batch(chunk=2048, chunks=6)

    def test_cache_case_has_hits_and_misses(self):
        metrics = micro_cache_lru(chunk=2048, chunks=6)
        assert 0 < metrics["hits"] < metrics["accesses"]

    def test_dram_case_counts_are_consistent(self):
        metrics = micro_dram_batch(chunk=2048, chunks=6)
        assert metrics["accesses"] == 2048 * 6
        hits = metrics["row_hits"]
        misses = metrics["accesses"] - hits
        assert metrics["service_cycles"] == hits * 50 + misses * 100

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigValidationError):
            run_micro("nope", 1024, 2)

    def test_chunk_floor_enforced(self):
        with pytest.raises(ConfigValidationError):
            micro_cache_lru(chunk=16, chunks=1)

    def test_micro_cases_in_default_set(self):
        styles = {case.case_id: case.style for case in DEFAULT_CASES}
        assert styles.get("micro.cache_lru.batch") == "micro"
        assert styles.get("micro.dram.interval_batch") == "micro"


class TestMicroBaselineIntegration:
    """record/compare round-trips through the micro style."""

    def _cases(self):
        return [case for case in DEFAULT_CASES if case.style == "micro"]

    def test_record_and_compare_clean(self):
        cases = self._cases()
        baseline = record_baseline(cases, repeat=1)
        current = record_baseline(cases, repeat=1)
        report = compare_baselines(current, baseline,
                                   wall_threshold_pct=10000.0)
        assert report.exit_code == 0
        assert {v.case_id for v in report.verdicts} \
            == {case.case_id for case in cases}

    def test_metric_drift_is_flagged(self):
        cases = self._cases()[:1]
        baseline = record_baseline(cases, repeat=1)
        current = record_baseline(cases, repeat=1)
        case_id = cases[0].case_id
        current.cases[case_id].metrics["hits"] += 1
        report = compare_baselines(current, baseline,
                                   wall_threshold_pct=10000.0)
        assert report.exit_code == 1
        assert report.verdicts[0].status == "metrics-drift"


class TestNumpyGate:
    """The fail-fast dependency gate of :mod:`repro.compat`."""

    def test_version_tuple_parsing(self):
        assert compat._version_tuple("1.21.3") == (1, 21)
        assert compat._version_tuple("2.4.6rc1") == (2, 4)
        assert compat._version_tuple("weird") == ()

    def test_require_numpy_returns_module(self):
        assert compat.require_numpy() is np

    def test_below_floor_raises_dependency_error(self):
        with mock.patch.object(np, "__version__", "1.20.0"):
            with pytest.raises(DependencyError) as excinfo:
                compat.require_numpy()
        message = str(excinfo.value)
        assert "1.21" in message and "pip install" in message

    def test_dependency_error_taxonomy(self):
        # Callers catching either the package taxonomy or the stdlib
        # ImportError family must both see the gate failure.
        assert issubclass(DependencyError, ReproError)
        assert issubclass(DependencyError, ImportError)

    def test_packaging_floor_matches_runtime_gate(self):
        # pyproject.toml's install requirement and compat.NUMPY_FLOOR
        # must state the same version, or the installer and the
        # import-time gate would disagree about what is supported.
        import pathlib
        import re

        pyproject = (pathlib.Path(__file__).resolve().parent.parent
                     / "pyproject.toml").read_text()
        match = re.search(r'"numpy>=(\d+)\.(\d+)"', pyproject)
        assert match, "no numpy floor declared in pyproject.toml"
        assert (int(match.group(1)), int(match.group(2))) \
            == compat.NUMPY_FLOOR
