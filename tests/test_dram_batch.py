"""``DRAM.request_batch`` versus the scalar ``request`` walk.

Same parity-oracle contract as the cache kernel: the vectorized bank
walk must land bit-identical statistics, open-row state, service-cycle
accounting and interval series, for any stream and any interleaving
with ``end_interval`` — including non-integer service cycles, where
float summation order matters.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import numpy as np

from repro.config import DRAMConfig, small_config
from repro.memory.dram import DRAM
from repro.memory.hierarchy import SharedMemory

bursts = st.lists(st.lists(st.integers(0, 4000), max_size=60), max_size=6)


def _pair(**kw):
    return (DRAM(DRAMConfig(**kw), interval_cycles=1000),
            DRAM(DRAMConfig(**kw), interval_cycles=1000))


def _state(dram):
    s = dram.stats
    return ((s.reads, s.writes, s.row_hits, s.row_misses, s.activations),
            list(dram._open_rows),
            dram._service_cycles_sum, dram._service_count,
            dram._interval_requests, dram._backlog, dram._loaded_latency,
            list(s.interval_requests), list(s.interval_utilization),
            list(s.interval_latency))


class TestRequestBatchProperty:

    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(stream=bursts, write=st.booleans())
    def test_matches_scalar_requests(self, stream, write):
        scalar, batched = _pair()
        for burst in stream:
            total_scalar = sum(scalar.request(line, write=write)
                               for line in burst)
            total_batched = batched.request_batch(burst, write=write)
            assert total_batched == total_scalar
            scalar.end_interval()
            batched.end_interval()
            assert _state(batched) == _state(scalar)

    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(stream=bursts)
    def test_non_integer_service_cycles(self, stream):
        # Fractional service latencies make the running float sum
        # order-sensitive; the batch path must accumulate in stream
        # order, not bulk-multiply.
        scalar, batched = _pair()
        for dram in (scalar, batched):
            dram._hit_service = 50.3
            dram._miss_service = 100.7
        for burst in stream:
            total_scalar = sum(scalar.request(line) for line in burst)
            total_batched = batched.request_batch(burst)
            assert total_batched == total_scalar
            scalar.end_interval()
            batched.end_interval()
            assert _state(batched) == _state(scalar)

    def test_ndarray_input(self):
        scalar, batched = _pair()
        lines = np.arange(0, 4096, 3, dtype=np.int64) % 997
        total_scalar = sum(scalar.request(int(x)) for x in lines)
        assert batched.request_batch(lines) == total_scalar
        assert _state(batched) == _state(scalar)

    def test_empty_batch(self):
        dram = DRAM(DRAMConfig())
        assert dram.request_batch([]) == 0.0
        assert dram.stats.accesses == 0


class TestIdleIntervalFastPath:
    """An all-idle interval reduces exactly to the general derivation."""

    def test_idle_series_matches_unloaded_latency(self):
        dram = DRAM(DRAMConfig())
        for _ in range(3):
            dram.end_interval()
        assert dram.stats.interval_requests == [0, 0, 0]
        assert dram.stats.interval_utilization == [0.0, 0.0, 0.0]
        assert dram.stats.interval_latency \
            == [float(dram.config.row_hit_cycles)] * 3
        assert dram.loaded_latency == float(dram.config.row_hit_cycles)

    def test_idle_after_traffic_keeps_general_path_semantics(self):
        # After a loaded interval the backlog must drain through the
        # general path; only truly idle intervals take the fast path.
        dram = DRAM(DRAMConfig(requests_per_cycle=0.01),
                    interval_cycles=100)
        dram.request_batch(list(range(64)))
        dram.end_interval()
        assert dram.backlog > 0
        latency_loaded = dram.loaded_latency
        dram.end_interval()  # backlog > 0: not the idle fast path
        assert dram.stats.interval_requests == [64, 0]
        assert dram.loaded_latency <= latency_loaded


class TestStreamToDramDispatch:
    """Long L2-bypass streams dispatch to the batched kernel."""

    def _shared(self):
        return SharedMemory(small_config(screen_width=128,
                                         screen_height=64, tile_size=32))

    def test_long_stream_matches_scalar_walk(self):
        a, b = self._shared(), self._shared()
        lines = [int(x) for x in
                 np.random.default_rng(3).integers(0, 5000, size=900)]
        a.stream_to_dram_batch(lines, "framebuffer")
        for line in lines:  # scalar reference: one request per line
            b.dram.request(line, write=True)
        b.traffic.add("framebuffer", len(lines))
        assert _state(a.dram) == _state(b.dram)
        assert a.traffic.counts == b.traffic.counts

    def test_short_stream_keeps_inline_walk(self):
        a, b = self._shared(), self._shared()
        lines = list(range(40))
        a.stream_to_dram_batch(lines, "framebuffer")
        b.stream_to_dram_batch(list(lines), "framebuffer")
        assert _state(a.dram) == _state(b.dram)
