"""Tests for LIBRA's adaptive FSMs (Figure 10 + supertile resizing)."""

import pytest

from repro.config import SchedulerConfig
from repro.core.adaptive import (FrameObservation, OrderSelector,
                                 SupertileResizer, TEMPERATURE, Z_ORDER)


def obs(cycles, hit):
    return FrameObservation(raster_cycles=cycles, texture_hit_ratio=hit)


class TestOrderSelector:
    def make(self):
        return OrderSelector(SchedulerConfig())

    def test_no_history_uses_zorder(self):
        assert self.make().decide() == Z_ORDER

    def test_high_hit_ratio_prefers_zorder(self):
        fsm = self.make()
        fsm.observe(obs(1000, 0.95))
        assert fsm.decide() == Z_ORDER

    def test_low_hit_ratio_prefers_temperature(self):
        fsm = self.make()
        fsm.observe(obs(1000, 0.5))
        assert fsm.decide() == TEMPERATURE

    def test_threshold_is_80_percent(self):
        fsm = self.make()
        fsm.observe(obs(1000, 0.81))
        assert fsm.decide() == Z_ORDER
        fsm = self.make()
        fsm.observe(obs(1000, 0.79))
        assert fsm.decide() == TEMPERATURE

    def test_small_variation_keeps_current_order(self):
        fsm = self.make()
        fsm.observe(obs(1000, 0.5))
        assert fsm.decide() == TEMPERATURE
        # Hit ratio recovers above threshold but cycles move only 1%
        # (< 3% threshold): stick with the current scheme.
        fsm.observe(obs(1010, 0.9))
        assert fsm.decide() == TEMPERATURE

    def test_significant_variation_reevaluates(self):
        fsm = self.make()
        fsm.observe(obs(1000, 0.5))
        fsm.decide()
        fsm.observe(obs(1200, 0.9))  # +20% cycles, high hit ratio
        assert fsm.decide() == Z_ORDER

    def test_double_degradation_switches_scheme(self):
        fsm = self.make()
        fsm.observe(obs(1000, 0.95))
        assert fsm.decide() == Z_ORDER
        # Both performance and hit ratio degrade -> try the alternative
        # even though the hit ratio is still above the threshold.
        fsm.observe(obs(1200, 0.85))
        assert fsm.decide() == TEMPERATURE

    def test_tiny_hit_drop_does_not_count_as_degradation(self):
        fsm = self.make()
        fsm.observe(obs(1000, 0.95))
        fsm.decide()
        fsm.observe(obs(1200, 0.949))  # noise-level hit change
        assert fsm.decide() == Z_ORDER


class TestSupertileResizer:
    def make(self, threshold=0.0025, initial=4):
        cfg = SchedulerConfig(supertile_resize_threshold=threshold,
                              initial_supertile_size=initial)
        return SupertileResizer(cfg)

    def test_initial_size(self):
        assert self.make().size == 4

    def test_first_observation_no_change(self):
        r = self.make()
        r.observe(1000)
        assert r.size == 4

    def test_improvement_grows(self):
        r = self.make()
        r.observe(1000)
        r.observe(900)  # 10% better
        assert r.size == 8

    def test_degradation_reverses(self):
        r = self.make()
        r.observe(1000)
        r.observe(1100)  # worse -> reverse (was growing) -> shrink
        assert r.size == 2

    def test_within_threshold_holds(self):
        r = self.make()
        r.observe(1000)
        r.observe(1001)  # 0.1% < 0.25%? no: 0.1% < 0.25% -> hold
        assert r.size == 4

    def test_bounces_at_max(self):
        r = self.make()
        r.observe(1000)
        r.observe(900)   # -> 8
        r.observe(800)   # -> 16
        r.observe(700)   # at max: bounce, stay 16 with flipped direction
        assert r.size == 16
        r.observe(600)   # improving while shrinking now -> 8
        assert r.size == 8

    def test_invalidate_resets_baseline(self):
        r = self.make()
        r.observe(1000)
        r.invalidate()
        r.observe(100)  # no baseline: no resize
        assert r.size == 4

    def test_rejects_bad_initial_size(self):
        cfg = SchedulerConfig(initial_supertile_size=5)
        with pytest.raises(ValueError):
            SupertileResizer(cfg)

    def test_rejects_empty_sizes(self):
        cfg = SchedulerConfig(supertile_sizes=(),
                              initial_supertile_size=4)
        with pytest.raises(ValueError):
            SupertileResizer(cfg)
