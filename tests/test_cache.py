"""Tests for the set-associative LRU cache simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.memory.cache import Cache, CacheStats, replication


def cache(size=1024, ways=2, name="c"):
    return Cache(CacheConfig(size, ways), name=name)


class TestBasics:
    def test_first_access_misses(self):
        c = cache()
        assert not c.lookup(0)
        assert c.stats.misses == 1

    def test_second_access_hits(self):
        c = cache()
        c.lookup(0)
        assert c.lookup(0)
        assert c.stats.hits == 1

    def test_counts_consistent(self):
        c = cache()
        for line in [0, 1, 0, 2, 1, 0]:
            c.lookup(line)
        stats = c.stats
        assert stats.accesses == stats.hits + stats.misses

    def test_contains(self):
        c = cache()
        c.lookup(5)
        assert c.contains(5)
        assert not c.contains(6)

    def test_hit_ratio(self):
        c = cache()
        c.lookup(0)
        c.lookup(0)
        assert c.stats.hit_ratio == pytest.approx(0.5)

    def test_empty_hit_ratio_zero(self):
        assert CacheStats().hit_ratio == 0.0


class TestLRUReplacement:
    def test_lru_victim_chosen(self):
        # 2 ways, 8 sets; lines 0, 8, 16 all map to set 0.
        c = cache(size=64 * 16, ways=2)
        c.lookup(0)
        c.lookup(8)
        c.lookup(16)      # evicts 0 (LRU)
        assert not c.contains(0)
        assert c.contains(8)
        assert c.contains(16)

    def test_touch_refreshes_lru(self):
        c = cache(size=64 * 16, ways=2)
        c.lookup(0)
        c.lookup(8)
        c.lookup(0)       # 8 is now LRU
        c.lookup(16)      # evicts 8
        assert c.contains(0)
        assert not c.contains(8)

    def test_different_sets_do_not_conflict(self):
        c = cache(size=64 * 16, ways=2)
        for line in range(8):
            c.lookup(line)
        assert all(c.contains(line) for line in range(8))

    def test_eviction_counted(self):
        c = cache(size=64 * 16, ways=2)
        for line in [0, 8, 16]:
            c.lookup(line)
        assert c.stats.evictions == 1


class TestWritebacks:
    def test_dirty_eviction_queued(self):
        c = cache(size=64 * 16, ways=2)
        c.lookup(0, write=True)
        c.lookup(8)
        c.lookup(16)
        assert c.drain_writebacks() == [0]
        assert c.stats.writebacks == 1

    def test_clean_eviction_not_queued(self):
        c = cache(size=64 * 16, ways=2)
        c.lookup(0)
        c.lookup(8)
        c.lookup(16)
        assert c.drain_writebacks() == []

    def test_flush_returns_dirty(self):
        c = cache()
        c.lookup(3, write=True)
        c.lookup(4)
        assert c.flush() == [3]
        assert not c.contains(3)

    def test_rewrite_keeps_single_writeback(self):
        c = cache(size=64 * 16, ways=2)
        c.lookup(0, write=True)
        c.lookup(0, write=True)
        c.lookup(8)
        c.lookup(16)
        assert c.drain_writebacks() == [0]


class TestRepeatHits:
    def test_repeat_hits_affect_only_with_repeats_ratio(self):
        c = cache()
        c.lookup(0)
        c.record_repeat_hits(9)
        assert c.stats.hit_ratio == 0.0
        assert c.stats.hit_ratio_with_repeats == pytest.approx(0.9)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cache().record_repeat_hits(-1)


class TestReset:
    def test_reset_clears_everything(self):
        c = cache()
        c.lookup(0, write=True)
        c.reset()
        assert c.stats.accesses == 0
        assert not c.contains(0)
        assert c.drain_writebacks() == []


class TestAgainstReferenceModel:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    def test_matches_reference_lru(self, lines):
        """Cross-check hits/misses against a brute-force LRU model."""
        config = CacheConfig(64 * 16, 2)  # 8 sets, 2 ways
        c = Cache(config)
        reference = {}  # set -> list of lines, LRU first
        for line in lines:
            set_index = line % 8
            ways = reference.setdefault(set_index, [])
            expected_hit = line in ways
            if expected_hit:
                ways.remove(line)
            elif len(ways) >= 2:
                ways.pop(0)
            ways.append(line)
            assert c.lookup(line) == expected_hit


class TestReplication:
    def test_counts_duplicate_lines(self):
        a, b = cache(name="a"), cache(name="b")
        a.lookup(1)
        a.lookup(2)
        b.lookup(1)
        replicated, total = replication([a, b])
        assert replicated == 1
        assert total == 3

    def test_no_duplicates(self):
        a, b = cache(name="a"), cache(name="b")
        a.lookup(1)
        b.lookup(2)
        assert replication([a, b])[0] == 0

    def test_stats_merge(self):
        a = CacheStats(accesses=2, hits=1, misses=1)
        b = CacheStats(accesses=3, hits=0, misses=3, writebacks=1)
        merged = a.merged_with(b)
        assert merged.accesses == 5
        assert merged.misses == 4
        assert merged.writebacks == 1
