"""Tests for screen-space primitives."""

import numpy as np
import pytest

from repro.geometry.mesh import ShaderProfile
from repro.geometry.primitive import Primitive


def prim(xy=((0, 0), (4, 0), (0, 4)), inv_w=(1, 1, 1),
         uvs=((0, 0), (1, 0), (0, 1))):
    iw = np.array(inv_w, dtype=np.float64)
    return Primitive(
        xy=np.array(xy, dtype=np.float64),
        depth=np.zeros(3), inv_w=iw,
        uv_over_w=np.array(uvs, dtype=np.float64) * iw[:, None],
        texture_id=0, shader=ShaderProfile())


class TestValidation:
    def test_bad_xy_shape(self):
        with pytest.raises(ValueError):
            Primitive(xy=np.zeros((4, 2)), depth=np.zeros(3),
                      inv_w=np.ones(3), uv_over_w=np.zeros((3, 2)),
                      texture_id=0, shader=ShaderProfile())

    def test_bad_depth_shape(self):
        with pytest.raises(ValueError):
            Primitive(xy=np.zeros((3, 2)), depth=np.zeros(4),
                      inv_w=np.ones(3), uv_over_w=np.zeros((3, 2)),
                      texture_id=0, shader=ShaderProfile())

    def test_bad_uv_shape(self):
        with pytest.raises(ValueError):
            Primitive(xy=np.zeros((3, 2)), depth=np.zeros(3),
                      inv_w=np.ones(3), uv_over_w=np.zeros((2, 2)),
                      texture_id=0, shader=ShaderProfile())


class TestGeometry:
    def test_bounding_box(self):
        p = prim(xy=((1, 2), (5, 1), (3, 7)))
        assert p.bounding_box() == (1.0, 1.0, 5.0, 7.0)

    def test_area(self):
        p = prim(xy=((0, 0), (4, 0), (0, 4)))
        assert p.area() == pytest.approx(8.0)

    def test_signed_area_flips_with_winding(self):
        ccw = prim(xy=((0, 0), (4, 0), (0, 4)))
        cw = prim(xy=((0, 0), (0, 4), (4, 0)))
        assert ccw.signed_area() == -cw.signed_area()

    def test_degenerate_zero_area(self):
        p = prim(xy=((0, 0), (1, 1), (2, 2)))
        assert p.area() == 0.0


class TestUVRecovery:
    def test_affine_uv(self):
        p = prim()
        assert p.uv_at_vertex(1) == pytest.approx((1.0, 0.0))

    def test_perspective_uv_recovered(self):
        # Vertex with inv_w=2 stores uv/w = uv*2; recovery divides back.
        p = prim(inv_w=(2.0, 1.0, 1.0))
        assert p.uv_at_vertex(0) == pytest.approx((0.0, 0.0))
        assert p.uv_at_vertex(1) == pytest.approx((1.0, 0.0))

    def test_uv_bounds(self):
        p = prim(uvs=((0.2, 0.1), (0.8, 0.3), (0.4, 0.9)))
        assert p.uv_bounds() == pytest.approx((0.2, 0.1, 0.8, 0.9))

    def test_zero_w_guard(self):
        p = prim(inv_w=(0.0, 1.0, 1.0))
        assert p.uv_at_vertex(0) == (0.0, 0.0)
