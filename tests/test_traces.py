"""Tests for trace building (scene -> FrameTrace) and the trace cache."""

import pytest

from repro.workloads.params import HotspotSpec, WorkloadParams
from repro.workloads.scene import SceneBuilder
from repro.workloads.traces import TraceBuilder, TraceCache


def builder(seed=42, transaction_elimination=True, **overrides):
    defaults = dict(
        name="TST", title="Test", style="2D", seed=seed,
        memory_intensive=True, roaming_sprites=4,
        hotspots=(HotspotSpec(center=(0.5, 0.5), sprites=3, layers=2),),
        hud_elements=2, num_textures=3,
        texture_size=64, detail_texture_size=64,
        scroll_speed=16.0,
    )
    defaults.update(overrides)
    params = WorkloadParams(**defaults)
    scenes = SceneBuilder(params, 256, 128)
    return TraceBuilder(scenes, 256, 128, 32,
                        transaction_elimination=transaction_elimination)


class TestTraceBuilding:
    def test_grid_dimensions(self):
        trace = builder().build(0)
        assert (trace.tiles_x, trace.tiles_y) == (8, 4)
        assert len(trace.workloads) == 32  # every tile has a workload

    def test_nonempty_tiles_have_work(self):
        trace = builder().build(0)
        busy = [w for w in trace.workloads.values() if w.instructions]
        assert busy
        for w in busy:
            assert w.fragments > 0
            assert w.num_primitives > 0
            assert sum(w.prim_fragments) == w.fragments

    def test_geometry_fields_populated(self):
        trace = builder().build(0)
        assert trace.geometry_cycles > 0
        assert trace.vertex_lines
        assert trace.vertex_instructions > 0

    def test_pb_lines_only_for_occupied_tiles(self):
        trace = builder().build(0)
        for tile, w in trace.workloads.items():
            if w.num_primitives == 0:
                assert w.pb_lines == []

    def test_first_frame_flushes_every_tile(self):
        trace = builder().build(0)
        assert all(w.fb_lines for w in trace.workloads.values())

    def test_build_many_indices(self):
        traces = builder().build_many(3, start=2)
        assert [t.frame_index for t in traces] == [2, 3, 4]


class TestTransactionElimination:
    def test_static_tiles_skip_flush_on_second_frame(self):
        b = builder(scroll_speed=0.0, wobble=0.0)
        b.build(0)
        second = b.build(0)  # identical content
        flushed = [w for w in second.workloads.values() if w.fb_lines]
        assert len(flushed) == 0

    def test_moving_content_keeps_flushing(self):
        b = builder(scroll_speed=16.0)
        b.build(0)
        second = b.build(1)
        flushed = [w for w in second.workloads.values() if w.fb_lines]
        assert flushed

    def test_disabled_flushes_everything(self):
        b = builder(transaction_elimination=False, scroll_speed=0.0,
                    wobble=0.0)
        b.build(0)
        second = b.build(0)
        assert all(w.fb_lines for w in second.workloads.values())


class TestFrameCoherence:
    def test_consecutive_traces_similar_footprints(self):
        b = builder(scroll_speed=2.0, wobble=0.5)
        a = b.build(0)
        c = b.build(1)
        common = 0
        total = 0
        for tile, wa in a.workloads.items():
            la = set(wa.texture_lines)
            lb = set(c.workloads[tile].texture_lines)
            if not la and not lb:
                continue
            common += len(la & lb)
            total += len(la | lb)
        assert total > 0
        assert common / total > 0.5  # most lines shared frame-to-frame


class TestTraceCache:
    def test_roundtrip(self, tmp_path):
        cache = TraceCache(tmp_path)
        b = builder()
        traces = cache.get_or_build("k", b, 2)
        again = cache.get("k")
        assert again is not None
        assert len(again) == 2
        assert again[0].total_instructions() == \
            traces[0].total_instructions()

    def test_miss_returns_none(self, tmp_path):
        assert TraceCache(tmp_path).get("absent") is None

    def test_get_or_build_extends(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.get_or_build("k", builder(), 1)
        more = cache.get_or_build("k", builder(), 3)
        assert len(more) == 3

    def test_corrupt_file_ignored(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.get_or_build("k", builder(), 1)
        for path in tmp_path.iterdir():
            path.write_bytes(b"garbage")
        assert cache.get("k") is None
