"""``rasterize_tile`` (batched SoA) versus ``rasterize_in_region``.

Every per-primitive slice of the packed :class:`TileFragments` must be
bit-identical — coordinates, depth, UVs, ordering — to the scalar
oracle, and the raster pipeline must produce identical traces and
pixels with ``batched`` on or off.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.primitive import Primitive, ShaderProfile
from repro.raster.pipeline import RasterPipeline
from repro.raster.rasterizer import rasterize_in_region, rasterize_tile

from faults import tiny_params
from repro.workloads.scene import SceneBuilder
from repro.workloads.traces import TraceBuilder

SHADER = ShaderProfile(fragment_instructions=8, texture_fetches=1)


def _prim(xy, rng):
    inv_w = rng.uniform(0.2, 2.0, 3)
    uv = rng.uniform(0.0, 1.0, (3, 2))
    return Primitive(xy=np.asarray(xy, dtype=float),
                     depth=rng.uniform(0.0, 1.0, 3), inv_w=inv_w,
                     uv_over_w=uv * inv_w[:, None], texture_id=0,
                     shader=SHADER)


def _assert_identical(ref, got):
    assert ref.count == got.count
    for name in ("xs", "ys", "depth", "u", "v"):
        assert np.array_equal(getattr(ref, name), getattr(got, name)), name


class TestTileFragmentsParity:

    def test_random_primitive_sets(self):
        rng = np.random.default_rng(42)
        for trial in range(60):
            count = int(rng.integers(0, 10))
            x0 = int(rng.integers(0, 3)) * 16
            y0 = int(rng.integers(0, 3)) * 16
            size = int(rng.choice([8, 16, 32]))
            prims = [_prim(rng.uniform(x0 - 12, x0 + 44, (3, 2)), rng)
                     for _ in range(count)]
            packed = rasterize_tile(prims, x0, y0, size, size)
            total = 0
            for i, prim in enumerate(prims):
                ref = rasterize_in_region(prim, x0, y0, size, size)
                _assert_identical(ref, packed.batch_for(i))
                total += ref.count
            assert packed.count == total
            assert int(packed.offsets[-1]) == total

    def test_degenerate_and_outside_primitives(self):
        rng = np.random.default_rng(1)
        degenerate = _prim([[0, 0], [8, 8], [16, 16]], rng)   # zero area
        outside = _prim([[100, 100], [120, 100], [100, 120]], rng)
        covering = _prim([[-4, -4], [40, -4], [-4, 40]], rng)
        packed = rasterize_tile([degenerate, outside, covering],
                                0, 0, 16, 16)
        assert packed.batch_for(0).count == 0
        assert packed.batch_for(1).count == 0
        ref = rasterize_in_region(covering, 0, 0, 16, 16)
        _assert_identical(ref, packed.batch_for(2))
        assert np.array_equal(np.unique(packed.prim_id), [2])

    def test_empty_primitive_list(self):
        packed = rasterize_tile([], 0, 0, 16, 16)
        assert packed.count == 0
        assert packed.offsets.tolist() == [0]

    def test_shared_edge_no_double_shade(self):
        # The top-left rule must survive batching: two triangles that
        # share an edge partition their quad exactly once.
        rng = np.random.default_rng(9)
        a = _prim([[0, 0], [16, 0], [16, 16]], rng)
        b = _prim([[0, 0], [16, 16], [0, 16]], rng)
        packed = rasterize_tile([a, b], 0, 0, 16, 16)
        keys = packed.xs * 1000 + packed.ys
        assert len(np.unique(keys)) == len(keys) == 256


class TestPipelineBatchedParity:

    def _traces(self, batched):
        # The TraceBuilder constructs its own pipeline; steer the flag
        # through the class initializer for the duration of the build.
        scenes = SceneBuilder(tiny_params(), 128, 64)
        tb = TraceBuilder(scenes, 128, 64, 32)
        original = RasterPipeline.__init__

        def patched(self, *args, **kwargs):
            kwargs["batched"] = batched
            original(self, *args, **kwargs)

        RasterPipeline.__init__ = patched
        try:
            return tb.build_many(3)
        finally:
            RasterPipeline.__init__ = original

    @staticmethod
    def _key(traces):
        out = []
        for trace in traces:
            for tile in sorted(trace.workloads):
                wl = trace.workloads[tile]
                out.append((tile, wl.instructions, wl.fragments,
                            tuple(wl.texture_lines), wl.texture_fetches,
                            tuple(wl.fb_lines), wl.num_primitives,
                            tuple(wl.prim_fragments),
                            tuple(wl.prim_instructions)))
        return out

    def test_traces_identical(self):
        assert self._key(self._traces(True)) \
            == self._key(self._traces(False))

    def test_rendered_pixels_identical(self):
        from repro.geometry.pipeline import GeometryPipeline
        from repro.tiling.engine import TilingEngine
        scenes = SceneBuilder(tiny_params(), 128, 64)
        scene = scenes.frame(0)
        geometry = GeometryPipeline(128, 64).run(scene.draws,
                                                 scene.view_projection)
        tiled = TilingEngine(4, 2, 32).tile_frame(geometry.primitives)
        images = []
        for batched in (True, False):
            pipeline = RasterPipeline(128, 64, 32,
                                      textures=scenes.textures,
                                      shade_colors=True, batched=batched)
            images.append(pipeline.render_frame(tiled))
        assert np.array_equal(images[0], images[1])
