"""Tests for the telemetry analysis report (repro.perf.report) and the
JSONL event reader (repro.telemetry.io) it consumes."""

import gzip
import json

import pytest

from repro.cli import main
from repro.errors import TraceFormatError
from repro.perf import build_report
from repro.perf.report import _SPARK, _cv, _sparkline
from repro.telemetry import (CacheDelta, DRAMSample, FSMState,
                             FSMTransition, HUB, JsonlSink, PhaseBegin,
                             PhaseEnd, RecordingSink, SchedulerDecision,
                             TileRetire, load_jsonl_events,
                             telemetry_session)
from repro.workloads import TraceBuilder, make_scene_builder

WIDTH, HEIGHT, TILE = 256, 128, 32

SECTIONS = ("## DRAM bandwidth over time",
            "## Per-RU utilization and load balance",
            "## FSM decision timeline",
            "## Cache hit-ratio trend",
            "## Anomalies")


@pytest.fixture(scope="module")
def libra_run():
    """Events + metrics snapshot of a 2-frame LIBRA run."""
    from repro.config import libra_config
    from repro.core import LibraScheduler
    from repro.gpu import GPUSimulator
    builder = make_scene_builder("tri_overlap", WIDTH, HEIGHT)
    traces = TraceBuilder(builder, WIDTH, HEIGHT, TILE).build_many(2)
    cfg = libra_config(screen_width=WIDTH, screen_height=HEIGHT)
    sim = GPUSimulator(cfg, scheduler=LibraScheduler(cfg.scheduler),
                       name="libra")
    sink = RecordingSink()
    with telemetry_session(sink):
        sim.run(traces)
        metrics = HUB.metrics.snapshot()
    return sink.events, metrics


def _seq(events):
    for i, event in enumerate(events):
        event.seq = i + 1
    return events


class TestLiveRunReport:
    def test_all_sections_present(self, libra_run):
        events, metrics = libra_run
        report = build_report(events, metrics=metrics)
        for section in SECTIONS:
            assert section in report
        assert "## Metrics snapshot" in report

    def test_every_ru_appears_with_tiles(self, libra_run):
        events, _ = libra_run
        report = build_report(events)
        assert "| ru0 |" in report and "| ru1 |" in report
        assert "load imbalance" in report

    def test_dram_stats_computed(self, libra_run):
        events, _ = libra_run
        report = build_report(events)
        assert "burst factor (peak/mean)" in report
        assert "coefficient of variation" in report

    def test_fsm_timeline_has_decisions(self, libra_run):
        events, _ = libra_run
        report = build_report(events)
        # Per-frame scheduler decisions and FSM snapshots both render.
        assert "order `zorder`" in report or "order `temperature`" \
            in report
        assert "`order` frame" in report

    def test_empty_stream(self):
        report = build_report([])
        assert "No DRAM interval samples" in report
        assert "No tile-retire events" in report
        assert "No scheduler/FSM events" in report


class TestSparkline:
    def test_empty_series_placeholder(self):
        assert _sparkline([]) == "(no samples)"

    def test_all_equal_positive_renders_flat_mid_height(self):
        assert _sparkline([7.0, 7.0, 7.0]) == _SPARK[4] * 3

    def test_all_zero_renders_flat_floor(self):
        assert _sparkline([0.0, 0.0]) == _SPARK[1] * 2

    def test_all_equal_negative_renders_flat_floor(self):
        assert _sparkline([-3.0, -3.0]) == _SPARK[1] * 2

    def test_negative_values_clamp_instead_of_wrapping(self):
        # A negative sample must pick the floor glyph, never wrap the
        # index around to a tall bar from the end of the scale.
        line = _sparkline([-50.0, 0.0, 100.0])
        assert line[0] == _SPARK[0]
        assert line[-1] == _SPARK[8]

    def test_peak_maps_to_top_glyph(self):
        line = _sparkline([0.0, 50.0, 100.0])
        assert line == _SPARK[0] + _SPARK[4] + _SPARK[8]

    def test_long_series_resampled_to_width(self):
        line = _sparkline(list(range(600)), width=60)
        assert len(line) == 60
        assert line[-1] == _SPARK[8]


class TestCoefficientOfVariation:
    def test_empty_series(self):
        assert _cv([]) == 0.0

    def test_all_equal_has_no_variation(self):
        assert _cv([5.0, 5.0, 5.0]) == 0.0

    def test_zero_mean_is_no_signal_not_a_crash(self):
        assert _cv([-1.0, 1.0]) == 0.0

    def test_known_value(self):
        # mean 2, population variance 2/3
        assert _cv([1.0, 2.0, 3.0]) == pytest.approx((2 / 3) ** 0.5 / 2)


class TestAnomalyFlags:
    def test_bursty_dram_flagged(self):
        events = _seq([DRAMSample(ts=i * 100, requests=r)
                       for i, r in enumerate([1, 1, 1, 1, 100])])
        report = build_report(events)
        assert "DRAM burst factor" in report
        assert "**flag**" in report

    def test_flat_dram_not_flagged(self):
        events = _seq([DRAMSample(ts=i * 100, requests=10)
                       for i in range(8)])
        report = build_report(events)
        assert "None — all analyses within thresholds." in report

    def test_ru_imbalance_flagged(self):
        events = _seq(
            [TileRetire(ru=0, tile=(i, 0), ts=1000 * (i + 1),
                        start_ts=1000 * i, dram_lines=5)
             for i in range(9)]
            + [TileRetire(ru=1, tile=(0, 1), ts=1000, start_ts=0,
                          dram_lines=5)])
        report = build_report(events)
        assert "RU load imbalance" in report

    def test_hit_ratio_collapse_flagged(self):
        events = _seq([
            CacheDelta(name="l1tex", frame=0, accesses=100, hits=90),
            CacheDelta(name="l1tex", frame=1, accesses=100, hits=20),
        ])
        report = build_report(events)
        assert "hit ratio dropped" in report


class TestJsonlRoundTrip:
    def test_report_from_reloaded_stream_matches(self, libra_run,
                                                 tmp_path):
        events, _ = libra_run
        path = tmp_path / "events.jsonl"
        with open(path, "w") as stream:
            sink = JsonlSink(stream)
            for event in events:
                sink.handle(event)
        reloaded = load_jsonl_events(path)
        assert len(reloaded) == len(events)
        assert [e.seq for e in reloaded] == [e.seq for e in events]
        assert build_report(reloaded) == build_report(events)

    def test_gzip_transparent(self, tmp_path):
        path = tmp_path / "events.jsonl.gz"
        events = _seq([PhaseBegin(name="run", ts=0, frame=0),
                       PhaseEnd(name="run", ts=10, frame=0)])
        with gzip.open(path, "wt") as stream:
            sink = JsonlSink(stream)
            for event in events:
                sink.handle(event)
        reloaded = load_jsonl_events(path)
        assert [type(e).__name__ for e in reloaded] == ["PhaseBegin",
                                                        "PhaseEnd"]
        assert reloaded[0].ts == 0 and reloaded[1].ts == 10

    def test_tuple_fields_restored(self, tmp_path):
        path = tmp_path / "e.jsonl"
        event = TileRetire(ru=1, tile=(3, 4), ts=50, start_ts=0)
        event.seq = 1
        with open(path, "w") as stream:
            JsonlSink(stream).handle(event)
        (reloaded,) = load_jsonl_events(path)
        assert reloaded.tile == (3, 4)

    def test_unknown_event_type_skipped(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text(
            json.dumps({"type": "FutureEvent", "seq": 1}) + "\n"
            + json.dumps({"type": "PhaseBegin", "name": "run",
                          "ts": 0, "seq": 2}) + "\n")
        events = load_jsonl_events(path)
        assert len(events) == 1
        assert events[0].name == "run"

    def test_unknown_fields_ignored(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text(json.dumps(
            {"type": "DRAMSample", "ts": 5, "requests": 3,
             "seq": 1, "added_in_v99": True}) + "\n")
        (event,) = load_jsonl_events(path)
        assert event.requests == 3

    def test_malformed_json_names_path_and_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "PhaseBegin"}\nnot json\n')
        with pytest.raises(TraceFormatError, match=r"bad\.jsonl:2"):
            load_jsonl_events(path)

    def test_record_without_type_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 4}\n')
        with pytest.raises(TraceFormatError, match="no 'type'"):
            load_jsonl_events(path)


class TestCliReport:
    def test_report_benchmark_acceptance(self, capsys, tmp_path):
        out = tmp_path / "report.md"
        code = main(["--width", "256", "--height", "128",
                     "report", "tri_overlap", "--frames", "2",
                     "--out", str(out)])
        assert code == 0
        markdown = out.read_text()
        for section in SECTIONS:
            assert section in markdown

    def test_report_from_events_file(self, capsys, tmp_path):
        events = _seq([
            PhaseBegin(name="run", ts=0, frame=0),
            SchedulerDecision(frame=0, order="zorder", supertile_size=2,
                              batches=4, ts=10),
            FSMTransition(machine="order", old=None, new="zorder"),
            FSMState(machine="order", state="zorder", frame=0),
            PhaseEnd(name="run", ts=100, frame=0),
        ])
        path = tmp_path / "events.jsonl"
        with open(path, "w") as stream:
            sink = JsonlSink(stream)
            for event in events:
                sink.handle(event)
        assert main(["report", "--events", str(path)]) == 0
        out = capsys.readouterr().out
        assert "## FSM decision timeline" in out
        assert "initial state" in out

    def test_report_without_input_is_usage_error(self, capsys):
        assert main(["report"]) == 2
